//! Molecular ground-state estimation: the paper's headline workload.
//!
//! Builds the synthetic CH4 (6-qubit) Hamiltonian from the Table 2
//! registry, inspects VarSaw's spatial plan, then runs a budgeted
//! comparison of baseline, JigSaw and VarSaw — a miniature of the paper's
//! Fig.13.
//!
//! ```sh
//! cargo run --release --example molecular_ground_state
//! ```

use chem::{molecular_hamiltonian, MoleculeSpec};
use qnoise::DeviceModel;
use varsaw::{run_method, Method, RunSetup, SpatialPlan, TemporalPolicy};
use vqe::{EfficientSu2, Entanglement, VqeConfig};

fn main() {
    let spec = MoleculeSpec::find("CH4", 6).expect("CH4-6 is in the Table 2 registry");
    let h = molecular_hamiltonian(&spec);
    println!("workload: {spec}");
    println!("exact ground energy: {:.4}\n", h.ground_energy(spec.seed));

    // VarSaw's spatial redundancy elimination, before any tuning happens.
    let plan = SpatialPlan::new(&h, 2);
    let stats = plan.stats();
    println!("spatial plan (window 2):");
    println!(
        "  baseline circuits/iteration : {}",
        stats.baseline_circuits
    );
    println!("  jigsaw subsets/iteration    : {}", stats.jigsaw_subsets);
    println!("  varsaw subsets/iteration    : {}", stats.varsaw_subsets);
    println!(
        "  subset reduction            : {:.1}x\n",
        stats.reduction()
    );

    // A fixed circuit budget, as in Fig.13: every method gets the same
    // number of circuit executions.
    let ansatz = EfficientSu2::new(spec.qubits, 2, Entanglement::Full);
    let budget = 30_000;
    let config = VqeConfig {
        max_iterations: usize::MAX >> 1,
        max_circuits: Some(budget),
    };
    println!("fixed budget: {budget} circuits");
    for (label, method) in [
        ("baseline", Method::Baseline),
        ("jigsaw  ", Method::Jigsaw),
        (
            "varsaw  ",
            Method::VarSaw(TemporalPolicy::Adaptive {
                initial_interval: 2,
            }),
        ),
    ] {
        let setup = RunSetup::new(h.clone(), ansatz.clone(), DeviceModel::mumbai_like(), 17);
        let out = run_method(&setup, method, &config);
        println!(
            "{label}  energy {:>9.4}   iterations {:>5}{}",
            out.trace.converged_energy(0.2),
            out.trace.iterations(),
            out.global_fraction
                .map(|f| format!("   global fraction {f:.3}"))
                .unwrap_or_default(),
        );
    }
}
