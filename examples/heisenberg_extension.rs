//! The paper's Section 7.3 extension: VarSaw on a Hamiltonian-simulation
//! workload (a 6-site anisotropic Heisenberg chain) instead of molecular
//! VQE, plus the selective-mitigation knob.
//!
//! ```sh
//! cargo run --release --example heisenberg_extension
//! ```

use chem::heisenberg_chain;
use qnoise::DeviceModel;
use varsaw::{run_method, Method, RunSetup, SpatialPlan, TemporalPolicy};
use vqe::{EfficientSu2, Entanglement, VqeConfig};

fn main() {
    let h = heisenberg_chain(6, 1.0, 0.8, 0.6, 0.4);
    println!(
        "Heisenberg-6: {} Pauli terms across X/Y/Z bases, exact E0 = {:.4}",
        h.num_terms(),
        h.ground_energy(5)
    );

    // The basis spread is what makes VarSaw profitable here.
    let plan = SpatialPlan::new(&h, 2);
    println!(
        "spatial plan: {} baseline circuits, {} jigsaw subsets → {} varsaw subsets ({:.1}x)\n",
        plan.stats().baseline_circuits,
        plan.stats().jigsaw_subsets,
        plan.stats().varsaw_subsets,
        plan.stats().reduction(),
    );

    let ansatz = EfficientSu2::new(6, 2, Entanglement::Full);
    let config = VqeConfig {
        max_iterations: 200,
        max_circuits: None,
    };
    for (label, device, method) in [
        ("ideal   ", DeviceModel::noiseless(6), Method::Baseline),
        ("baseline", DeviceModel::mumbai_like(), Method::Baseline),
        (
            "varsaw  ",
            DeviceModel::mumbai_like(),
            Method::VarSaw(TemporalPolicy::default()),
        ),
    ] {
        let setup = RunSetup::new(h.clone(), ansatz.clone(), device, 77);
        let out = run_method(&setup, method, &config);
        println!(
            "{label}  energy {:>8.4}   circuits {:>7}",
            out.trace.converged_energy(0.2),
            out.trace.total_circuits(),
        );
    }

    // Selective mitigation (Section 7.3): only the large-coefficient terms
    // get subsets.
    let filtered = SpatialPlan::with_coefficient_floor(&h, 2, 0.7);
    println!(
        "\nselective mitigation at |c| >= 0.7: {} subsets instead of {}",
        filtered.stats().varsaw_subsets,
        plan.stats().varsaw_subsets,
    );
}
