//! Quickstart: run VarSaw-mitigated VQE on a small Ising Hamiltonian and
//! compare it with the unmitigated baseline and the noise-free ideal.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pauli::Hamiltonian;
use qnoise::DeviceModel;
use varsaw::{run_method, Method, RunSetup, TemporalPolicy};
use vqe::{EfficientSu2, Entanglement, VqeConfig};

fn main() {
    // 1. The problem: a 4-qubit Ising-like Hamiltonian.
    let h = Hamiltonian::from_pairs(
        4,
        &[
            (-1.0, "ZZII"),
            (-1.0, "IZZI"),
            (-1.0, "IIZZ"),
            (-0.8, "ZZZZ"),
            (-0.5, "XIII"),
            (-0.5, "IXII"),
            (-0.5, "IIXI"),
            (-0.5, "IIIX"),
        ],
    );
    let reference = h.ground_energy(7);
    println!("exact ground energy: {reference:.4}");

    // 2. The setup: hardware-efficient ansatz on a noisy simulated device.
    let ansatz = EfficientSu2::new(4, 2, Entanglement::Full);
    let config = VqeConfig {
        max_iterations: 150,
        max_circuits: None,
    };

    // 3. Run the three scenarios.
    for (label, device, method) in [
        ("ideal   ", DeviceModel::noiseless(4), Method::Baseline),
        ("baseline", DeviceModel::mumbai_like(), Method::Baseline),
        (
            "varsaw  ",
            DeviceModel::mumbai_like(),
            Method::VarSaw(TemporalPolicy::default()),
        ),
    ] {
        // Master seed. SPSA on this landscape has local minima; 7 is a
        // stream where all three scenarios reach the global basin.
        let setup = RunSetup::new(h.clone(), ansatz.clone(), device, 7);
        let out = run_method(&setup, method, &config);
        println!(
            "{label}  energy {:>8.4}   circuits {:>7}   iterations {}",
            out.trace.converged_energy(0.2),
            out.trace.total_circuits(),
            out.trace.iterations(),
        );
    }
    println!("\nVarSaw should land between the baseline and the ideal, at similar cost.");
}
