//! A single-circuit look at the mitigation machinery, without any VQE:
//! corrupt a GHZ distribution with realistic readout noise, reconstruct it
//! with JigSaw's Bayesian method, and compare with matrix-based mitigation.
//!
//! ```sh
//! cargo run --release --example mitigation_playground
//! ```

use mitigation::{mbm_correct, reconstruct, Pmf, ReconstructionConfig};
use qnoise::{apply_readout_errors, DeviceModel};
use qsim::{Circuit, Statevector};

fn main() {
    // A 5-qubit GHZ state: the classic readout-error victim.
    let n = 5;
    let mut circuit = Circuit::new(n);
    circuit.h(0);
    for q in 1..n {
        circuit.cx(q - 1, q);
    }
    let mut state = Statevector::zero(n);
    state.apply_circuit(&circuit);
    let qubits: Vec<usize> = (0..n).collect();
    let ideal = Pmf::new(qubits.clone(), state.probabilities());

    // Corrupt it: all five qubits measured simultaneously on a noisy device.
    let device = DeviceModel::jakarta_like();
    let errors: Vec<_> = device
        .best_qubits(n)
        .into_iter()
        .map(|q| device.effective_readout(q, n))
        .collect();
    let mut noisy = ideal.probs().to_vec();
    apply_readout_errors(&mut noisy, &errors);
    let global = Pmf::new(qubits.clone(), noisy);

    // JigSaw locals: clean pairwise windows (measured 2-at-a-time on the
    // best qubits, so nearly noise-free).
    let locals: Vec<Pmf> = (0..n - 1)
        .map(|w| {
            let sub = [w, w + 1];
            let marg = ideal.marginal(&sub);
            let errs: Vec<_> = device
                .best_qubits(2)
                .into_iter()
                .map(|q| device.effective_readout(q, 2))
                .collect();
            let mut p = marg.probs().to_vec();
            apply_readout_errors(&mut p, &errs);
            Pmf::new(sub.to_vec(), p)
        })
        .collect();

    let jigsaw = reconstruct(&global, &locals, ReconstructionConfig::default());
    let mbm = mbm_correct(
        &global,
        &device
            .best_qubits(n)
            .into_iter()
            .map(|q| device.readout(q))
            .collect::<Vec<_>>(),
    );

    println!("GHZ-{n} on {device}\n");
    println!("fidelity to ideal (higher is better):");
    println!("  noisy global         : {:.4}", global.fidelity(&ideal));
    println!("  jigsaw reconstruction: {:.4}", jigsaw.fidelity(&ideal));
    println!("  matrix-based (MBM)   : {:.4}", mbm.fidelity(&ideal));
    println!("\ntotal variation distance (lower is better):");
    println!("  noisy global         : {:.4}", global.tvd(&ideal));
    println!("  jigsaw reconstruction: {:.4}", jigsaw.tvd(&ideal));
    println!("  matrix-based (MBM)   : {:.4}", mbm.tvd(&ideal));
    println!("\nMBM knows the calibration but not the crosstalk; JigSaw needs no calibration.");
}
