//! The "real device" study (paper Section 6.5): VQE on a 5-qubit
//! transverse-field Ising model on Lagos/Jakarta-like devices, with and
//! without VarSaw's selective Global execution.
//!
//! ```sh
//! cargo run --release --example tfim_device_study
//! ```

use chem::tfim_paper;
use qnoise::DeviceModel;
use varsaw::{run_method, Method, RunSetup, TemporalPolicy};
use vqe::{EfficientSu2, Entanglement, VqeConfig};

fn main() {
    let h = tfim_paper();
    println!(
        "TFIM workload: {} qubits, {} Pauli terms, exact E0 = {:.4}\n",
        h.num_qubits(),
        h.num_terms(),
        h.ground_energy(1)
    );

    // Tight budget, as on real hardware.
    let config = VqeConfig {
        max_iterations: usize::MAX >> 1,
        max_circuits: Some(1500),
    };

    for device in [DeviceModel::lagos_like(), DeviceModel::jakarta_like()] {
        println!("device: {device}");
        for (label, policy) in [
            ("w/o global sparsity", TemporalPolicy::EveryIteration),
            (
                "w/  global sparsity",
                TemporalPolicy::Adaptive {
                    initial_interval: 2,
                },
            ),
        ] {
            let mut setup = RunSetup::new(
                h.clone(),
                EfficientSu2::new(5, 2, Entanglement::Full),
                device.clone(),
                1000,
            );
            setup.shots = 256;
            let out = run_method(&setup, Method::VarSaw(policy), &config);
            println!(
                "  {label}: energy {:>8.4}  iterations {:>4}  globals fraction {:.3}",
                out.trace.converged_energy(0.2),
                out.trace.iterations(),
                out.global_fraction.unwrap_or(1.0),
            );
        }
        println!();
    }
    println!("Sparse Globals buy extra iterations under the same budget — the Fig.16 effect.");
}
