//! End-to-end integration tests spanning all crates: chem → pauli → qsim →
//! qnoise → mitigation → vqe → varsaw.

use chem::{molecular_hamiltonian, MoleculeSpec};
use qnoise::DeviceModel;
use varsaw::{run_method, Method, RunSetup, TemporalPolicy};
use vqe::{EfficientSu2, Entanglement, VqeConfig};

fn h2_setup(seed: u64, device: DeviceModel) -> RunSetup {
    let spec = MoleculeSpec::find("H2", 4).expect("registry");
    let h = molecular_hamiltonian(&spec);
    let ansatz = EfficientSu2::new(4, 2, Entanglement::Full);
    let mut s = RunSetup::new(h, ansatz, device, seed);
    s.shots = 1024;
    s
}

#[test]
fn noiseless_vqe_approaches_the_exact_ground_energy() {
    let spec = MoleculeSpec::find("H2", 4).expect("registry");
    let h = molecular_hamiltonian(&spec);
    let e0 = h.ground_energy(1);
    let setup = h2_setup(3, DeviceModel::noiseless(4));
    let out = run_method(
        &setup,
        Method::Baseline,
        &VqeConfig {
            max_iterations: 300,
            max_circuits: None,
        },
    );
    let final_e = out.trace.converged_energy(0.1);
    // The hardware-efficient ansatz won't be exact, but it must close most
    // of the gap from the mean-field start.
    let start_e = out.trace.energies[0];
    assert!(
        final_e < e0 + 0.5 * (start_e - e0),
        "final {final_e}, start {start_e}, exact {e0}"
    );
}

#[test]
fn all_methods_respect_a_circuit_budget() {
    let budget = 2_000u64;
    for method in [
        Method::Baseline,
        Method::Jigsaw,
        Method::VarSaw(TemporalPolicy::OneShot),
    ] {
        let setup = h2_setup(5, DeviceModel::mumbai_like());
        let out = run_method(
            &setup,
            method,
            &VqeConfig {
                max_iterations: usize::MAX >> 1,
                max_circuits: Some(budget),
            },
        );
        let total = out.trace.total_circuits();
        // The budget may be overshot by at most one iteration's circuits.
        let per_iter = total / out.trace.iterations().max(1) as u64;
        assert!(
            total <= budget + 2 * per_iter,
            "{method}: {total} circuits for budget {budget}"
        );
    }
}

#[test]
fn varsaw_executes_fewer_circuits_per_iteration_than_jigsaw() {
    let iters = 12;
    let config = VqeConfig {
        max_iterations: iters,
        max_circuits: None,
    };
    let jig = run_method(
        &h2_setup(7, DeviceModel::mumbai_like()),
        Method::Jigsaw,
        &config,
    );
    let vs = run_method(
        &h2_setup(7, DeviceModel::mumbai_like()),
        Method::VarSaw(TemporalPolicy::OneShot),
        &config,
    );
    assert_eq!(jig.trace.iterations(), iters);
    assert_eq!(vs.trace.iterations(), iters);
    assert!(
        vs.trace.total_circuits() * 2 < jig.trace.total_circuits(),
        "varsaw {} vs jigsaw {}",
        vs.trace.total_circuits(),
        jig.trace.total_circuits()
    );
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let config = VqeConfig {
        max_iterations: 10,
        max_circuits: None,
    };
    let a = run_method(
        &h2_setup(11, DeviceModel::mumbai_like()),
        Method::VarSaw(TemporalPolicy::default()),
        &config,
    );
    let b = run_method(
        &h2_setup(11, DeviceModel::mumbai_like()),
        Method::VarSaw(TemporalPolicy::default()),
        &config,
    );
    assert_eq!(a.trace.energies, b.trace.energies);
    assert_eq!(a.trace.circuits, b.trace.circuits);
    assert_eq!(a.global_fraction, b.global_fraction);
}

#[test]
fn varsaw_estimate_tracks_ideal_better_than_baseline_at_fixed_params() {
    use vqe::{BaselineEvaluator, EnergyEvaluator, SimExecutor};
    let spec = MoleculeSpec::find("CH4", 6).expect("registry");
    let h = molecular_hamiltonian(&spec);
    let ansatz = EfficientSu2::new(6, 2, Entanglement::Full);
    let mut better = 0;
    let trials = 6;
    for seed in 0..trials {
        let params = ansatz.initial_parameters(seed);
        let mut ideal = BaselineEvaluator::new(
            &h,
            ansatz.clone(),
            SimExecutor::exact(DeviceModel::noiseless(6), 1),
        );
        let mut noisy = BaselineEvaluator::new(
            &h,
            ansatz.clone(),
            SimExecutor::exact(DeviceModel::mumbai_like(), 1),
        );
        let mut vs = varsaw::VarSawEvaluator::new(
            &h,
            ansatz.clone(),
            2,
            TemporalPolicy::EveryIteration,
            SimExecutor::exact(DeviceModel::mumbai_like(), 1),
        );
        let e_ideal = ideal.evaluate(&params);
        let noisy_err = (noisy.evaluate(&params) - e_ideal).abs();
        let vs_err = (vs.evaluate(&params) - e_ideal).abs();
        if vs_err < noisy_err {
            better += 1;
        }
    }
    assert!(
        better * 3 >= trials * 2,
        "varsaw estimate better in only {better}/{trials} cases"
    );
}

#[test]
fn spatial_plan_matches_executed_subset_costs() {
    // The plan's subset count must equal the circuits a subsets-only
    // evaluation actually executes.
    let spec = MoleculeSpec::find("H2O", 6).expect("registry");
    let h = molecular_hamiltonian(&spec);
    let plan = varsaw::SpatialPlan::new(&h, 2);
    let setup = RunSetup::new(
        h,
        EfficientSu2::new(6, 2, Entanglement::Full),
        DeviceModel::mumbai_like(),
        3,
    );
    let out = run_method(
        &setup,
        Method::VarSaw(TemporalPolicy::OneShot),
        &VqeConfig {
            max_iterations: 6,
            max_circuits: None,
        },
    );
    // 6 iterations × 2 SPSA evaluations × subsets, plus one eval's globals.
    let subsets = plan.stats().varsaw_subsets as u64;
    let globals = plan.stats().baseline_circuits as u64;
    assert_eq!(out.trace.total_circuits(), 12 * subsets + globals);
}
