//! Integration tests for the extension surface: QAOA workloads, spin
//! chains, alternative tuners, selective mitigation and QASM export.

use chem::{heisenberg_chain, maxcut_hamiltonian, random_graph};
use qnoise::DeviceModel;
use varsaw::{Method, RunSetup, SpatialPlan, TemporalPolicy};
use vqe::{
    run_vqe, BaselineEvaluator, EfficientSu2, Entanglement, ImFil, NelderMead, Optimizer,
    SimExecutor, Spsa, VqeConfig,
};

#[test]
fn qaoa_maxcut_vqe_finds_a_good_cut() {
    // MaxCut on a 4-cycle: optimum −4. A noiseless VQE should get close.
    let h = maxcut_hamiltonian(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
    let ansatz = EfficientSu2::new(4, 2, Entanglement::Linear);
    let mut eval = BaselineEvaluator::new(
        &h,
        ansatz.clone(),
        SimExecutor::new(DeviceModel::noiseless(4), 1024, 3),
    );
    let mut tuner = Spsa::new(5);
    let trace = run_vqe(
        &mut eval,
        &mut tuner,
        ansatz.initial_parameters(1),
        &VqeConfig {
            max_iterations: 400,
            max_circuits: None,
        },
    );
    assert!(
        trace.converged_energy(0.1) < -3.0,
        "cut energy {}",
        trace.converged_energy(0.1)
    );
}

#[test]
fn qaoa_hamiltonians_have_trivial_spatial_plans() {
    // All-Z cost Hamiltonians collapse into very few measurement bases —
    // the boundary case where VarSaw's spatial optimization is cheap but
    // cannot help much, exactly as Section 7.3 predicts.
    let edges = random_graph(8, 0.5, 11);
    let h = maxcut_hamiltonian(8, &edges);
    let plan = SpatialPlan::new(&h, 2);
    let stats = plan.stats();
    assert!(
        stats.varsaw_subsets <= 7,
        "Z-only subsets: {}",
        stats.varsaw_subsets
    );
    assert!(stats.varsaw_subsets <= stats.jigsaw_subsets);
}

#[test]
fn all_three_tuners_reduce_the_objective() {
    let h = heisenberg_chain(4, 1.0, 0.8, 0.6, 0.4);
    let ansatz = EfficientSu2::new(4, 1, Entanglement::Full);
    let run = |tuner: &mut dyn Optimizer| {
        let mut eval = BaselineEvaluator::new(
            &h,
            ansatz.clone(),
            SimExecutor::new(DeviceModel::noiseless(4), 2048, 7),
        );
        let trace = run_vqe(
            &mut eval,
            tuner,
            ansatz.initial_parameters(2),
            &VqeConfig {
                max_iterations: 120,
                max_circuits: None,
            },
        );
        (trace.energies[0], trace.converged_energy(0.1))
    };
    for tuner in [
        &mut Spsa::new(1) as &mut dyn Optimizer,
        &mut ImFil::new(0.4),
        &mut NelderMead::new(0.4),
    ] {
        let (start, end) = run(tuner);
        assert!(
            end < start - 0.3,
            "{}: start {start}, end {end}",
            tuner.name()
        );
    }
}

#[test]
fn selective_mitigation_interpolates_between_varsaw_and_baseline() {
    let h = heisenberg_chain(5, 1.0, 0.8, 0.6, 0.4);
    let full = SpatialPlan::new(&h, 2).stats().varsaw_subsets;
    let some = SpatialPlan::with_coefficient_floor(&h, 2, 0.7)
        .stats()
        .varsaw_subsets;
    let none = SpatialPlan::with_coefficient_floor(&h, 2, 10.0)
        .stats()
        .varsaw_subsets;
    assert!(none == 0);
    assert!(some > none && some < full, "{none} < {some} < {full}");
}

#[test]
fn varsaw_runs_on_spin_chain_workloads() {
    let h = heisenberg_chain(4, 1.0, 1.0, 1.0, 0.5);
    let setup = RunSetup::new(
        h,
        EfficientSu2::new(4, 1, Entanglement::Full),
        DeviceModel::mumbai_like(),
        13,
    );
    let out = varsaw::run_method(
        &setup,
        Method::VarSaw(TemporalPolicy::default()),
        &VqeConfig {
            max_iterations: 15,
            max_circuits: None,
        },
    );
    assert_eq!(out.trace.iterations(), 15);
    assert!(out.spatial.unwrap().varsaw_subsets > 0);
}

#[test]
fn ansatz_circuits_export_to_qasm() {
    let ansatz = EfficientSu2::new(3, 1, Entanglement::Circular);
    let circuit = ansatz.circuit(&ansatz.initial_parameters(4));
    let qasm = qsim::to_qasm(&circuit, &[0, 1, 2]);
    assert!(qasm.contains("OPENQASM 2.0;"));
    assert!(qasm.contains("qreg q[3];"));
    assert_eq!(qasm.matches("ry(").count(), 6);
    assert_eq!(qasm.matches("cx ").count(), 3);
    assert_eq!(qasm.matches("measure ").count(), 3);
}

#[test]
fn pauli_algebra_links_to_grouping() {
    // Qubit-wise compatible Hamiltonian terms always fully commute — the
    // containment the paper's Section 3.1 relies on.
    use pauli::{fully_commute, group_by_cover, PauliString};
    let h = heisenberg_chain(4, 1.0, 1.0, 1.0, 0.3);
    let strings: Vec<PauliString> = h
        .measurable_terms()
        .iter()
        .map(|t| t.string().clone())
        .collect();
    for g in group_by_cover(&strings) {
        for &a in &g.members {
            for &b in &g.members {
                assert!(fully_commute(&strings[a], &strings[b]));
            }
        }
    }
}
