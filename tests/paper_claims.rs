//! Integration tests pinning the paper's checkable claims — the worked
//! examples and scaling facts that must hold exactly, independent of
//! noise-model calibration.

use chem::{molecular_hamiltonian, table2, MoleculeSpec};
use pauli::{group_by_cover, Hamiltonian, Pauli, PauliString};
use varsaw::{cost, SpatialPlan};

/// Fig.6: the full worked example, end to end through the public API.
#[test]
fn fig6_worked_example() {
    let h = Hamiltonian::from_pairs(
        4,
        &[
            (1.0, "ZZIZ"),
            (1.0, "ZIZX"),
            (1.0, "ZZII"),
            (1.0, "IIZX"),
            (1.0, "ZXXZ"),
            (1.0, "XZIZ"),
            (1.0, "ZXIZ"),
            (1.0, "IXZZ"),
            (1.0, "XIZZ"),
            (1.0, "XXIX"),
        ],
    );
    let plan = SpatialPlan::new(&h, 2);
    let s = plan.stats();
    assert_eq!(s.hamiltonian_terms, 10, "Eq.1: 10 terms");
    assert_eq!(s.baseline_circuits, 7, "Eq.2: 7 circuits post-commutation");
    assert_eq!(s.jigsaw_subsets, 21, "Eq.3: 21 JigSaw subsets");
    assert_eq!(s.varsaw_subsets, 9, "Eq.4: 9 VarSaw subsets");
}

/// Fig.7: cover-parent counts over the 27 three-qubit X/Z/I strings.
#[test]
fn fig7_commutativity_parent_counts() {
    let alphabet = [Pauli::I, Pauli::X, Pauli::Z];
    let mut all = Vec::new();
    for a in alphabet {
        for b in alphabet {
            for c in alphabet {
                all.push(PauliString::new(vec![a, b, c]));
            }
        }
    }
    let parents = |t: &PauliString| all.iter().filter(|s| *s != t && s.covers(t)).count();
    assert_eq!(parents(&"III".parse().unwrap()), 26);
    assert_eq!(parents(&"IIZ".parse().unwrap()), 8);
    assert_eq!(parents(&"IZZ".parse().unwrap()), 2);
    assert_eq!(parents(&"ZZZ".parse().unwrap()), 0);
}

/// Table 2: the registry's Pauli-term counts generate exactly.
#[test]
fn table2_counts_generate_exactly() {
    for spec in table2().iter().filter(|m| m.qubits <= 20) {
        let h = molecular_hamiltonian(spec);
        assert_eq!(h.num_terms(), spec.pauli_terms, "{}", spec.label());
        assert_eq!(h.num_qubits(), spec.qubits, "{}", spec.label());
    }
}

/// Fig.8's asymptotics: JigSaw costs O(Q) more than traditional VQA;
/// VarSaw with a small global fraction costs less than traditional.
#[test]
fn fig8_scaling_relations() {
    for q in [100usize, 400, 1000] {
        let trad = cost::traditional_cost(q);
        let jig = cost::jigsaw_cost(q, 2);
        let vs = cost::varsaw_cost(q, 0.01, 2);
        assert!(
            jig / trad > 0.9 * q as f64,
            "JigSaw ~Q× traditional at Q={q}"
        );
        assert!(vs < trad, "VarSaw(k=0.01) below traditional at Q={q}");
        assert!(jig / vs > q as f64, "VarSaw ≥Q× below JigSaw at Q={q}");
    }
}

/// Fig.12's qualitative claims: VarSaw's subset counts shrink *relative to
/// the baseline* as molecules grow, and the VarSaw:JigSaw reduction grows.
#[test]
fn fig12_reduction_grows_with_molecule_size() {
    let small = SpatialPlan::new(
        &molecular_hamiltonian(&MoleculeSpec::find("H2", 4).unwrap()),
        2,
    )
    .stats();
    let medium = SpatialPlan::new(
        &molecular_hamiltonian(&MoleculeSpec::find("CH4", 8).unwrap()),
        2,
    )
    .stats();
    let large = SpatialPlan::new(
        &molecular_hamiltonian(&MoleculeSpec::find("H6", 10).unwrap()),
        2,
    )
    .stats();
    assert!(small.reduction() < medium.reduction());
    assert!(medium.reduction() < large.reduction());
    assert!(large.varsaw_ratio() < small.varsaw_ratio());
    // VarSaw never exceeds JigSaw anywhere.
    for s in [small, medium, large] {
        assert!(s.varsaw_subsets <= s.jigsaw_subsets);
    }
}

/// The baseline commutation reduction itself: never more circuits than
/// terms, and every basis is one of the Hamiltonian's own strings
/// (cover-grouping's seed property).
#[test]
fn baseline_commutation_bases_are_hamiltonian_terms() {
    let spec = MoleculeSpec::find("LiH", 6).unwrap();
    let h = molecular_hamiltonian(&spec);
    let strings: Vec<PauliString> = h
        .measurable_terms()
        .iter()
        .map(|t| t.string().clone())
        .collect();
    let groups = group_by_cover(&strings);
    assert!(groups.len() < strings.len());
    for g in &groups {
        assert!(
            strings.contains(&g.basis),
            "basis {} is not a Hamiltonian term",
            g.basis
        );
    }
}

/// Appendix A's structural claim: at window 2 VarSaw needs the fewest
/// subset circuits, because smaller subsets commute far more. The effect
/// is asymptotic — at 6 qubits window 4 can tie (3 window positions vs 5)
/// — so we assert it where the paper's scaling argument applies, on the
/// ≥8-qubit systems.
#[test]
fn appendix_a_window_2_is_cheapest_for_varsaw() {
    for (name, qubits) in [("CH4", 8), ("H6", 10), ("H2O", 12)] {
        let spec = MoleculeSpec::find(name, qubits).unwrap();
        let h = molecular_hamiltonian(&spec);
        let base = SpatialPlan::new(&h, 2).stats().varsaw_subsets;
        for w in 3..=5 {
            let other = SpatialPlan::new(&h, w).stats().varsaw_subsets;
            assert!(
                base < other,
                "{name}-{qubits}: window 2 needs {base}, window {w} needs {other}"
            );
        }
    }
}
