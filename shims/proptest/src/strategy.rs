//! The [`Strategy`] trait and its combinators.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Mirrors `proptest::strategy::Strategy` minus shrinking: a strategy is a
/// pure generator driven by a seeded [`StdRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Map generated values through a fallible `f`, retrying on `None`.
    /// `whence` labels the filter in the panic raised if generation keeps
    /// failing.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            source: self,
            whence,
            f,
        }
    }

    /// Keep only generated values satisfying `pred`, retrying otherwise.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            pred,
        }
    }

    /// Erase the concrete strategy type (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice between boxed strategies; see [`crate::prop_oneof!`].
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Build a union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// How many times filtering strategies retry before giving up.
const MAX_FILTER_RETRIES: usize = 10_000;

/// Strategy returned by [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        for _ in 0..MAX_FILTER_RETRIES {
            if let Some(v) = (self.f)(self.source.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map retries exhausted: {}", self.whence);
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter retries exhausted: {}", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// An inclusive size specification for collection strategies, convertible
/// from `usize`, `Range<usize>` and `RangeInclusive<usize>`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    /// Smallest admissible size.
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// Largest admissible size (inclusive).
    pub fn hi(&self) -> usize {
        self.hi
    }

    /// Draw a size uniformly from the range.
    pub fn pick(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi }
    }
}
