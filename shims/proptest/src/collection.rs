//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::{SizeRange, Strategy};
use rand::rngs::StdRng;

/// Strategy for `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
