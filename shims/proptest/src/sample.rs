//! Sampling strategies, mirroring `proptest::sample`.

use crate::strategy::{SizeRange, Strategy};
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy choosing one element of `items` uniformly.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select requires a non-empty vector");
    Select { items }
}

/// Strategy returned by [`select`].
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.items.len());
        self.items[i].clone()
    }
}

/// Strategy choosing an order-preserving subsequence of `items` whose
/// length is drawn from `size` (clamped to the number of items).
pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    Subsequence {
        items,
        size: size.into(),
    }
}

/// Strategy returned by [`subsequence`].
pub struct Subsequence<T> {
    items: Vec<T>,
    size: SizeRange,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut StdRng) -> Vec<T> {
        let n = self.items.len();
        let k = self.size.pick(rng).min(n);
        // Floyd's algorithm for k distinct indices in [0, n), then emit the
        // chosen items in their original order.
        let mut chosen = vec![false; n];
        for j in n - k..n {
            let t = rng.random_range(0..=j);
            if chosen[t] {
                chosen[j] = true;
            } else {
                chosen[t] = true;
            }
        }
        self.items
            .iter()
            .zip(&chosen)
            .filter(|(_, &c)| c)
            .map(|(x, _)| x.clone())
            .collect()
    }
}
