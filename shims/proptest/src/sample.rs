//! Sampling strategies, mirroring `proptest::sample`.

use crate::strategy::{SizeRange, Strategy};
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy choosing one element of `items` uniformly.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select requires a non-empty vector");
    Select { items }
}

/// Strategy returned by [`select`].
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.items.len());
        self.items[i].clone()
    }
}

/// Strategy choosing an order-preserving subsequence of `items` whose
/// length is drawn from `size` (clamped to the number of items).
pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    Subsequence {
        items,
        size: size.into(),
    }
}

/// Strategy producing uniformly random permutations of `items` — the
/// shim's counterpart of `proptest::sample::Shuffle` (real proptest
/// reaches it through `Just(vec).prop_shuffle()`; offline callers use
/// `sample::shuffle(vec)` directly). Submission-order fuzzing in the
/// scheduler's equivalence suite is the primary consumer.
pub fn shuffle<T: Clone>(items: Vec<T>) -> Shuffle<T> {
    Shuffle { items }
}

/// Strategy returned by [`shuffle`].
pub struct Shuffle<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Shuffle<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut StdRng) -> Vec<T> {
        let mut out = self.items.clone();
        // Fisher–Yates; deterministic given the case's seeded RNG.
        for i in (1..out.len()).rev() {
            let j = rng.random_range(0..=i);
            out.swap(i, j);
        }
        out
    }
}

/// Strategy returned by [`subsequence`].
pub struct Subsequence<T> {
    items: Vec<T>,
    size: SizeRange,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut StdRng) -> Vec<T> {
        let n = self.items.len();
        let k = self.size.pick(rng).min(n);
        // Floyd's algorithm for k distinct indices in [0, n), then emit the
        // chosen items in their original order.
        let mut chosen = vec![false; n];
        for j in n - k..n {
            let t = rng.random_range(0..=j);
            if chosen[t] {
                chosen[j] = true;
            } else {
                chosen[t] = true;
            }
        }
        self.items
            .iter()
            .zip(&chosen)
            .filter(|(_, &c)| c)
            .map(|(x, _)| x.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn shuffle_produces_deterministic_permutations() {
        let items: Vec<u32> = (0..16).collect();
        let strat = shuffle(items.clone());
        let mut rng = StdRng::seed_from_u64(7);
        let a = strat.generate(&mut rng);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, items, "a permutation keeps every element");

        // Same seed, same stream.
        let mut rng2 = StdRng::seed_from_u64(7);
        assert_eq!(strat.generate(&mut rng2), a);

        // The stream actually varies across draws (16! >> draw count).
        let b = strat.generate(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn shuffle_handles_degenerate_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(shuffle(Vec::<u8>::new()).generate(&mut rng), vec![]);
        assert_eq!(shuffle(vec![9u8]).generate(&mut rng), vec![9]);
    }
}
