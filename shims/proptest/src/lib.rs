//! A minimal, dependency-free stand-in for the parts of the `proptest`
//! crate this workspace's property tests use.
//!
//! Provides the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_filter_map` combinators, range and tuple strategies,
//! [`collection::vec`], [`sample::select`] / [`sample::subsequence`] /
//! [`sample::shuffle`], and the [`proptest!`] / [`prop_oneof!`] /
//! [`prop_assert!`] family of macros.
//! Unlike the real crate it does not shrink failing inputs — it generates a
//! fixed number of deterministic cases per property (seeded from the test
//! name), which is what a reproduction CI needs: failures are perfectly
//! reproducible from the test name alone.
//!
//! # Example
//!
//! ```
//! use proptest::prelude::*;
//!
//! let strat = prop::collection::vec(0..10usize, 1..5);
//! let mut runner = proptest::test_runner::TestRunner::deterministic("doc");
//! let v = strat.generate(runner.rng());
//! assert!(!v.is_empty() && v.len() < 5 && v.iter().all(|&x| x < 10));
//! ```

#![forbid(unsafe_code)]

pub mod strategy;

pub mod collection;
pub mod sample;

/// Deterministic case-runner support used by the [`proptest!`] macro.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Number of cases generated per property when `PROPTEST_CASES` is
    /// not set.
    pub const DEFAULT_CASES: u32 = 64;

    /// Number of cases to generate per property: the `PROPTEST_CASES`
    /// environment variable when set (the tiered-CI knob — the deep
    /// equivalence job raises it to 4× the default), otherwise
    /// [`DEFAULT_CASES`].
    ///
    /// # Panics
    ///
    /// Panics if `PROPTEST_CASES` is set but is not a positive integer —
    /// a silently ignored knob would make the deep tier vacuous.
    pub fn cases() -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => match v.trim().parse::<u32>() {
                Ok(n) if n > 0 => n,
                _ => panic!("PROPTEST_CASES must be a positive integer, got {v:?}"),
            },
            Err(_) => DEFAULT_CASES,
        }
    }

    /// Holds the RNG driving one property's cases.
    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        /// Build a runner whose stream is a pure function of `name`
        /// (FNV-1a hashed), so every run of a property sees the same cases.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                rng: StdRng::seed_from_u64(h),
            }
        }

        /// The underlying RNG, handed to [`crate::strategy::Strategy::generate`].
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

/// The common imports for property tests, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`test_runner::cases`] generated cases
/// (the `PROPTEST_CASES` environment variable, or
/// [`test_runner::DEFAULT_CASES`] when unset).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __runner =
                    $crate::test_runner::TestRunner::deterministic(stringify!($name));
                $(let $arg = $strat;)+
                for __case in 0..$crate::test_runner::cases() {
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, __runner.rng());)+
                    $body
                }
            }
        )*
    };
}

/// Assert a condition inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current generated case when an assumption does not hold.
/// Must appear directly inside the [`proptest!`] body (it `continue`s the
/// case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Choose uniformly between several strategies producing the same value
/// type (boxed internally; no weights, which the workspace does not use).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::test_runner::{cases, DEFAULT_CASES};

    #[test]
    fn cases_env_knob_overrides_default() {
        // This single test owns the process-global env var: set, check,
        // and restore serially so no other reader ever races it.
        let saved = std::env::var("PROPTEST_CASES").ok();
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(cases(), DEFAULT_CASES);
        std::env::set_var("PROPTEST_CASES", "256");
        assert_eq!(cases(), 256);
        std::env::set_var("PROPTEST_CASES", " 8 ");
        assert_eq!(cases(), 8, "surrounding whitespace is tolerated");
        std::env::set_var("PROPTEST_CASES", "zero");
        assert!(
            std::panic::catch_unwind(cases).is_err(),
            "malformed knob must panic"
        );
        std::env::set_var("PROPTEST_CASES", "0");
        assert!(
            std::panic::catch_unwind(cases).is_err(),
            "zero cases would be vacuous"
        );
        match saved {
            Some(v) => std::env::set_var("PROPTEST_CASES", v),
            None => std::env::remove_var("PROPTEST_CASES"),
        }
    }
}
