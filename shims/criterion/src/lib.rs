//! A minimal, dependency-free stand-in for the parts of the `criterion`
//! benchmarking crate this workspace uses.
//!
//! Supports [`Criterion`] with `sample_size` / `measurement_time` /
//! `warm_up_time` configuration, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistical analysis
//! it reports the mean wall-clock time per iteration — enough to spot
//! order-of-magnitude regressions in CI logs while keeping the workspace
//! free of network dependencies.
//!
//! # Example
//!
//! ```
//! use criterion::Criterion;
//!
//! let mut c = Criterion::default().sample_size(10);
//! c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
//! ```

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Entry point configuring and running benchmarks, mirroring
/// `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Set the time budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set the time budget for the warm-up phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, &id.to_string(), f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of benchmarks sharing a name prefix, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(self.criterion, &full, f);
        self
    }

    /// Finish the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(self) {}
}

/// Batch-size hint for [`Bencher::iter_batched`]; the shim treats all
/// variants identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Times the closure under measurement, mirroring `criterion::Bencher`.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup`, excluding setup cost.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F>(config: &Criterion, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run single iterations until the warm-up budget is spent.
    let warm_start = Instant::now();
    while warm_start.elapsed() < config.warm_up_time {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
    }

    // Measurement: take `sample_size` samples of one iteration each, or
    // stop early once the measurement budget is exhausted.
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut samples = 0u64;
    let measure_start = Instant::now();
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        best = best.min(b.elapsed);
        total += b.elapsed;
        samples += 1;
        if measure_start.elapsed() > config.measurement_time {
            break;
        }
    }
    let mean = total / samples.max(1) as u32;
    println!("bench {id:<50} mean {mean:>12?}  best {best:>12?}  ({samples} samples)");
}

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group function from a config expression and target
/// functions, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Run every benchmark in this group.
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running the given benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
