//! A minimal, dependency-free stand-in for the parts of the `criterion`
//! benchmarking crate this workspace uses.
//!
//! Supports [`Criterion`] with `sample_size` / `measurement_time` /
//! `warm_up_time` configuration, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistical analysis
//! it reports the mean wall-clock time per iteration — enough to spot
//! order-of-magnitude regressions in CI logs while keeping the workspace
//! free of network dependencies.
//!
//! # Machine-readable output
//!
//! When the [`JSON_ENV`] environment variable (`CRITERION_JSON`) names a
//! file path, every benchmark result of the process is additionally
//! collected into that file as a JSON array of
//! `{"id", "mean_ns", "best_ns", "samples"}` records. The file is
//! rewritten after each benchmark, so it is complete and valid JSON even
//! if a later benchmark aborts. CI archives these as `BENCH_*.json`
//! artifacts for cross-run regression comparisons.
//!
//! # Example
//!
//! ```
//! use criterion::Criterion;
//!
//! let mut c = Criterion::default().sample_size(10);
//! c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
//! ```

#![forbid(unsafe_code)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Environment variable naming the JSON results file (see the crate docs).
pub const JSON_ENV: &str = "CRITERION_JSON";

/// All benchmark records of this process, for the JSON results file.
static JSON_RECORDS: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Appends one benchmark record and rewrites the JSON results file, if
/// [`JSON_ENV`] is set. Reading (never mutating) the environment here
/// keeps bench binaries single-writer; tests exercise [`append_record`]
/// directly with an explicit path instead of touching process env.
fn record_json(id: &str, mean: Duration, best: Duration, samples: u64) {
    let Some(path) = std::env::var_os(JSON_ENV) else {
        return;
    };
    append_record(&path, id, mean, best, samples);
}

/// Appends one record to the in-process list and rewrites `path` as a
/// complete JSON array. Errors are reported to stderr, never fatal — a
/// read-only filesystem must not fail the bench run itself.
fn append_record(path: &std::ffi::OsStr, id: &str, mean: Duration, best: Duration, samples: u64) {
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    let mut records = JSON_RECORDS.lock().expect("json records lock");
    records.push(format!(
        "{{\"id\":\"{escaped}\",\"mean_ns\":{},\"best_ns\":{},\"samples\":{samples}}}",
        mean.as_nanos(),
        best.as_nanos(),
    ));
    let body = format!("[\n  {}\n]\n", records.join(",\n  "));
    if let Err(e) = std::fs::write(path, body) {
        eprintln!(
            "criterion shim: cannot write {}: {e}",
            path.to_string_lossy()
        );
    }
}

/// Entry point configuring and running benchmarks, mirroring
/// `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Set the time budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set the time budget for the warm-up phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, &id.to_string(), f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of benchmarks sharing a name prefix, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(self.criterion, &full, f);
        self
    }

    /// Finish the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(self) {}
}

/// Batch-size hint for [`Bencher::iter_batched`]; the shim treats all
/// variants identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Times the closure under measurement, mirroring `criterion::Bencher`.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup`, excluding setup cost.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F>(config: &Criterion, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run single iterations until the warm-up budget is spent.
    let warm_start = Instant::now();
    while warm_start.elapsed() < config.warm_up_time {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
    }

    // Measurement: take `sample_size` samples of one iteration each, or
    // stop early once the measurement budget is exhausted.
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut samples = 0u64;
    let measure_start = Instant::now();
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        best = best.min(b.elapsed);
        total += b.elapsed;
        samples += 1;
        if measure_start.elapsed() > config.measurement_time {
            break;
        }
    }
    let mean = total / samples.max(1) as u32;
    println!("bench {id:<50} mean {mean:>12?}  best {best:>12?}  ({samples} samples)");
    record_json(id, mean, best, samples);
}

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group function from a config expression and target
/// functions, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Run every benchmark in this group.
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running the given benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn json_records_escape_and_form_an_array() {
        // Drive the writer directly with an explicit path — mutating
        // JSON_ENV here would race sibling tests reading the environment
        // on the multithreaded test harness.
        let path = std::env::temp_dir().join(format!("BENCH_shimtest_{}.json", std::process::id()));
        append_record(
            path.as_os_str(),
            "json/smoke_\"quoted\"",
            Duration::from_nanos(1500),
            Duration::from_nanos(1400),
            2,
        );
        let body = std::fs::read_to_string(&path).expect("json file written");
        std::fs::remove_file(&path).ok();
        assert!(body.trim_start().starts_with('['), "not an array: {body}");
        assert!(
            body.contains("\"id\":\"json/smoke_\\\"quoted\\\"\""),
            "{body}"
        );
        assert!(body.contains("\"mean_ns\":1500"), "{body}");
        assert!(body.contains("\"best_ns\":1400"), "{body}");
        assert!(body.contains("\"samples\":2"), "{body}");
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
