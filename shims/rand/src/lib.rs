//! A minimal, dependency-free stand-in for the parts of the `rand` crate
//! this workspace uses.
//!
//! The reproduction only needs seeded, deterministic pseudo-randomness:
//! [`rngs::StdRng`] (an xoshiro256++ generator seeded through SplitMix64),
//! the [`Rng`] extension trait with [`Rng::random`] / [`Rng::random_range`],
//! and [`SeedableRng::seed_from_u64`]. The API mirrors `rand` 0.9 so the
//! domain crates compile unchanged if the real crate is ever substituted.
//!
//! # Example
//!
//! ```
//! use rand::{rngs::StdRng, Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: f64 = rng.random();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.random_range(0..10usize);
//! assert!(k < 10);
//! // Same seed, same stream.
//! let mut again = StdRng::seed_from_u64(42);
//! assert_eq!(x, again.random::<f64>());
//! ```

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface every RNG implements.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods for random value generation, blanket-implemented for
/// every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over their range,
    /// `bool` fair).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive integer
    /// ranges, half-open float ranges).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A seedable RNG constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their "standard" distribution via [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value from `rng` uniformly within the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, n)` by rejection-free multiply-shift; `n > 0`.
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    // 128-bit multiply-high: unbiased enough for simulation workloads and
    // exactly reproducible across platforms.
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f32::sample(rng)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic for a given seed on every platform.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let k = rng.random_range(3..17usize);
            assert!((3..17).contains(&k));
            let j = rng.random_range(0..=4u8);
            assert!(j <= 4);
            let x = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn works_through_unsized_refs() {
        fn take<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let x = take(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
