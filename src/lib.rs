//! Workspace umbrella crate for the VarSaw reproduction.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See the individual crates for the real APIs:
//! [`parallel`], [`qsim`], [`pauli`], [`qnoise`], [`chem`], [`mitigation`],
//! [`vqe`], [`sched`], [`varsaw`].
pub use chem;
pub use mitigation;
pub use parallel;
pub use pauli;
pub use qnoise;
pub use qsim;
pub use sched;
pub use varsaw;
pub use vqe;
