//! Chaos-schedule accounting: what the fault supervisor delivers under
//! injected transport failures.
//!
//! A fixed multi-tenant job mix runs through [`sched::JobQueue`] under a
//! grid of seed-deterministic kill rates × retry policies × transports.
//! For each cell the table reports how many jobs completed versus
//! failed typed, the attempt counts the retry ladder consumed, and how
//! many completions had to degrade (to local transport or unsharded
//! serial). Every completed job is asserted **bit-identical** to its
//! fault-free sequential reference before anything is reported — the
//! table never shows a "completion" the determinism oracle would
//! reject.

use crate::harness::Options;
use crate::report::{fmt, results_path, Table};
use qnoise::DeviceModel;
use qsim::{Circuit, FaultSchedule, Parallelism, Sharding, TransportMode};
use sched::{
    job_seed, Degradation, JobError, JobQueue, JobSpec, MeasureScope, Measurement, RetryPolicy,
};
use std::collections::BTreeMap;
use vqe::SimExecutor;

const SHOTS: u64 = 128;
const ROOT_SEED: u64 = 41;

/// The job mix: hardware-efficient ansatz evaluations from two tenants,
/// mixed subset/global readouts.
fn job_mix(jobs: usize) -> Vec<JobSpec> {
    (0..jobs)
        .map(|i| {
            let mut c = Circuit::new(5);
            for q in 0..5 {
                c.ry(q, 0.37 * (i + q) as f64 - 1.1);
            }
            for q in 0..4 {
                c.cx(q, q + 1);
            }
            for q in 0..5 {
                c.ry(q, -0.23 * (i * 5 + q) as f64 + 0.4);
            }
            let basis: pauli::PauliString =
                ["ZZIII", "IZZII", "IIZZI", "ZIIIZ"][i % 4].parse().unwrap();
            JobSpec {
                job_id: 7 + 3 * i as u64,
                tenant: i as u64 % 2,
                circuit: c,
                measurements: vec![if i % 3 == 0 {
                    Measurement::global(basis)
                } else {
                    Measurement::subset(basis)
                }],
            }
        })
        .collect()
}

/// Fault-free sequential reference PMFs, keyed by job id.
fn reference(device: &DeviceModel, specs: &[JobSpec]) -> BTreeMap<u64, Vec<mitigation::Pmf>> {
    specs
        .iter()
        .map(|spec| {
            let mut exec =
                SimExecutor::new(device.clone(), SHOTS, job_seed(ROOT_SEED, spec.job_id))
                    .with_parallelism(Parallelism::Serial);
            let state = exec.prepare(&spec.circuit);
            let pmfs = spec
                .measurements
                .iter()
                .map(|m| match m.scope {
                    MeasureScope::Subset => exec.run_prepared(&state, &m.basis),
                    MeasureScope::Global => exec.run_prepared_all(&state, &m.basis),
                })
                .collect();
            (spec.job_id, pmfs)
        })
        .collect()
}

/// The `chaos` experiment: supervisor outcomes across the fault grid.
pub fn chaos(opts: &Options) {
    let jobs = if opts.full { 24 } else { 12 };
    let kill_rates: &[u16] = if opts.full {
        &[0, 125, 250, 500, 800]
    } else {
        &[0, 250, 800]
    };
    let device = DeviceModel::mumbai_like();
    let specs = job_mix(jobs);
    let expected = reference(&device, &specs);

    let mut t = Table::new([
        "backend",
        "kill/1000",
        "retries",
        "degrade",
        "jobs",
        "completed",
        "typed errs",
        "mean attempts",
        "degraded local",
        "degraded serial",
    ]);
    for transport in [TransportMode::Local, TransportMode::Channel] {
        for &kill in kill_rates {
            for (retries, degrade) in [(0u32, false), (2, false), (2, true)] {
                let queue = JobQueue::new(device.clone(), SHOTS, ROOT_SEED)
                    .with_workers(3)
                    .with_sharding(Sharding::Shards(4))
                    .with_transport(transport)
                    .with_fault_schedule(FaultSchedule::new(97 + u64::from(kill), kill, 0))
                    .with_retry_policy(RetryPolicy::retries(retries).with_degrade(degrade));
                let handles: Vec<_> = specs
                    .iter()
                    .map(|s| queue.submit(s.clone()).unwrap())
                    .collect();
                queue.drain();
                assert_eq!(queue.in_flight_bytes(), 0, "budget must drain to zero");

                let (mut completed, mut errs, mut attempts) = (0u64, 0u64, 0u64);
                let (mut deg_local, mut deg_serial) = (0u64, 0u64);
                for h in &handles {
                    match h.wait() {
                        Ok(out) => {
                            assert_eq!(
                                &out.pmfs, &expected[&out.job_id],
                                "completed jobs must match their fault-free reference"
                            );
                            completed += 1;
                            attempts += u64::from(out.attempts);
                            match out.degraded_to {
                                Some(Degradation::LocalTransport) => deg_local += 1,
                                Some(Degradation::Unsharded) => deg_serial += 1,
                                None => {}
                            }
                        }
                        Err(JobError::Transport(_)) => {
                            errs += 1;
                            attempts += u64::from(retries + 1);
                        }
                        Err(e) => panic!("unexpected non-transport failure: {e}"),
                    }
                }
                t.row([
                    transport.name().to_string(),
                    kill.to_string(),
                    retries.to_string(),
                    if degrade { "yes" } else { "no" }.to_string(),
                    jobs.to_string(),
                    completed.to_string(),
                    errs.to_string(),
                    fmt(attempts as f64 / jobs as f64),
                    deg_local.to_string(),
                    deg_serial.to_string(),
                ]);
            }
        }
    }
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "chaos", "chaos.csv"));
}
