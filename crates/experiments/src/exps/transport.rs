//! Shard-transport accounting: what each backend moves to execute one
//! ansatz, and what that movement costs.
//!
//! For each register size the same exchange-minimized [`ShardPlan`] runs
//! through both transport backends — zero-copy in-process handle swaps
//! and message-passing rank threads — and the table reports the
//! per-apply movement counters ([`qsim::TransportCounters`]) next to the
//! measured wall time. The amplitudes are asserted bit-identical across
//! backends before anything is reported, so every row describes the
//! same computation; only the data movement differs.

use crate::harness::Options;
use crate::report::{fmt, results_path, Table};
use qsim::{CircuitPlan, ShardPlan, ShardedState, TransportMode};
use std::time::Instant;
use vqe::{EfficientSu2, Entanglement};

/// Applies `sp` on a fresh state through `mode`, returning the final
/// norm-check value, the movement counters, and the mean wall time over
/// `reps` applies.
fn run_backend(
    num_qubits: usize,
    shards: usize,
    sp: &ShardPlan,
    mode: TransportMode,
    reps: u32,
) -> (Vec<qsim::C64>, qsim::TransportCounters, f64) {
    let mut last = None;
    let start = Instant::now();
    for _ in 0..reps {
        let mut st = ShardedState::zero(num_qubits, shards).with_transport(mode);
        st.apply_shard_plan(sp);
        last = Some(st);
    }
    let ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
    let st = last.expect("at least one rep");
    let stats = st.shard_stats();
    (st.to_statevector().amplitudes().to_vec(), stats, ms)
}

/// The `transport` experiment: per-backend movement counters and apply
/// times for a 2-rep EfficientSU2 ansatz across register sizes.
pub fn transport(opts: &Options) {
    let sizes: &[(usize, usize)] = if opts.full {
        &[(12, 8), (16, 16), (18, 64)]
    } else {
        &[(10, 8), (12, 16)]
    };
    let reps = if opts.full { 5 } else { 3 };
    let mut t = Table::new([
        "qubits",
        "shards",
        "backend",
        "local runs",
        "exchanges",
        "quad exch",
        "plane swaps",
        "sub splits",
        "messages",
        "MiB moved",
        "ms/apply",
    ]);
    for &(n, shards) in sizes {
        let ansatz = EfficientSu2::new(n, 2, Entanglement::Linear);
        let circuit = ansatz.circuit(&ansatz.initial_parameters(7));
        let plan = CircuitPlan::compile(&circuit);
        let sp = ShardPlan::analyze(&plan, shards);
        let mut reference: Option<Vec<qsim::C64>> = None;
        for mode in [TransportMode::Local, TransportMode::Channel] {
            let (amps, stats, ms) = run_backend(n, shards, &sp, mode, reps);
            match &reference {
                None => reference = Some(amps),
                Some(r) => assert_eq!(r, &amps, "{n}q/{shards}: transports must be bit-identical"),
            }
            t.row([
                n.to_string(),
                shards.to_string(),
                mode.name().to_string(),
                stats.local_runs.to_string(),
                stats.exchanges.to_string(),
                stats.quad_exchanges.to_string(),
                stats.plane_swaps.to_string(),
                stats.sub_splits.to_string(),
                stats.messages.to_string(),
                fmt(stats.bytes_moved as f64 / (1024.0 * 1024.0)),
                fmt(ms),
            ]);
        }
    }
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "transport", "transport.csv"));
}
