//! Full-VQE-tuning experiments: Table 1, Fig.9, Fig.13, Fig.14, Fig.15.

use crate::harness::{
    adaptive, max_sparsity, mean_converged, molecule_setup, no_sparsity, parallel_map, run_trials,
    with_device, Options,
};
use crate::report::{fmt, results_path, Table};
use chem::{molecular_hamiltonian, temporal_workloads, MoleculeSpec};
use qnoise::DeviceModel;
use varsaw::{percent_gap_recovered, run_method, JigsawEvaluator, Method};
use vqe::{BaselineEvaluator, EnergyEvaluator, SimExecutor, VqeConfig};

/// The tail fraction used for "converged energy" summaries.
const TAIL: f64 = 0.1;

/// The median of a sample (mean of the middle two for even sizes).
fn median(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty(), "median of empty sample");
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

fn unlimited(iters: usize) -> VqeConfig {
    VqeConfig {
        max_iterations: iters,
        max_circuits: None,
    }
}

fn budgeted(budget: u64) -> VqeConfig {
    VqeConfig {
        max_iterations: usize::MAX >> 1,
        max_circuits: Some(budget),
    }
}

/// Tunes a noiseless VQE to get "optimal parameters known from ideal
/// simulation" (Table 1's setup).
fn noiseless_optimal_params(spec: &MoleculeSpec, iters: usize) -> Vec<f64> {
    let setup = with_device(
        molecule_setup(spec, spec.seed),
        DeviceModel::noiseless(spec.qubits),
    );
    let out = run_method(&setup, Method::Baseline, &unlimited(iters));
    out.trace.final_params
}

/// Table 1: JigSaw at the circuit level — for a VQE instance parameterized
/// at (noiselessly tuned) optimal parameters, compare the reference energy,
/// the noisy estimate, and the JigSaw-mitigated estimate.
pub fn table1(opts: &Options) {
    println!("Table 1: circuit-level JigSaw on VQE instances at optimal parameters");
    let specs: Vec<MoleculeSpec> = [("LiH", 6), ("H2O", 6), ("H2", 4), ("CH4", 6)]
        .iter()
        .map(|&(n, q)| MoleculeSpec::find(n, q).expect("registry"))
        .collect();
    let iters = opts.iterations();
    let rows = parallel_map(specs, |spec| {
        let h = molecular_hamiltonian(spec);
        let reference = h.ground_energy(spec.seed);
        let params = noiseless_optimal_params(spec, iters);
        let setup = molecule_setup(spec, spec.seed);
        // Deterministic single-instance evaluations (exact channel, no
        // shot noise).
        let mut noisy = BaselineEvaluator::new(
            &h,
            setup.ansatz.clone(),
            SimExecutor::exact(setup.device.clone(), 1),
        );
        let mut jig = JigsawEvaluator::new(
            &h,
            setup.ansatz.clone(),
            setup.window,
            SimExecutor::exact(setup.device.clone(), 1),
        );
        let mut ideal = BaselineEvaluator::new(
            &h,
            setup.ansatz.clone(),
            SimExecutor::exact(DeviceModel::noiseless(spec.qubits), 1),
        );
        let e_ideal = ideal.evaluate(&params);
        let e_noisy = noisy.evaluate(&params);
        let e_jig = jig.evaluate(&params);
        (
            spec.label(),
            reference,
            e_ideal,
            e_noisy,
            e_jig,
            percent_gap_recovered(e_ideal, e_noisy, e_jig),
        )
    });
    let mut t = Table::new([
        "workload",
        "ref energy",
        "ideal@params",
        "noisy vqe",
        "vqe+jigsaw",
        "% recovered",
    ]);
    let mut recs = Vec::new();
    for (label, reference, e_ideal, e_noisy, e_jig, rec) in rows {
        recs.push(rec);
        t.row([
            label,
            fmt(reference),
            fmt(e_ideal),
            fmt(e_noisy),
            fmt(e_jig),
            fmt(rec),
        ]);
    }
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "table1", "table1.csv"));
    println!(
        "paper shape: JigSaw recovers >70% of the measurement-error gap; measured mean: {:.0}%",
        recs.iter().sum::<f64>() / recs.len() as f64
    );
}

/// Writes an energy-vs-iteration series CSV with one column per scenario.
pub(crate) fn write_series_pub(
    opts: &Options,
    id: &str,
    file: &str,
    columns: &[(&str, &varsaw::MethodOutcome)],
) {
    let mut t = Table::new(
        std::iter::once("iteration".to_string())
            .chain(
                columns
                    .iter()
                    .flat_map(|(name, _)| [format!("{name}:energy"), format!("{name}:circuits")]),
            )
            .collect::<Vec<_>>(),
    );
    let len = columns
        .iter()
        .map(|(_, o)| o.trace.iterations())
        .max()
        .unwrap_or(0);
    for i in 0..len {
        let mut row = vec![i.to_string()];
        for (_, o) in columns {
            match o.trace.energies.get(i) {
                Some(e) => {
                    row.push(format!("{e:.6}"));
                    row.push(o.trace.circuits[i].to_string());
                }
                None => {
                    row.push(String::new());
                    row.push(String::new());
                }
            }
        }
        t.row(row);
    }
    t.write_reports(&results_path(&opts.out_dir, id, file));
}

/// Fig.9: Max-Sparsity vs No-Sparsity on CH4-6, noise-free and noisy, at a
/// fixed circuit budget.
pub fn fig9(opts: &Options) {
    println!("Fig.9: temporal sparsity extremes on CH4-6 (fixed circuit budget)");
    let spec = MoleculeSpec::find("CH4", 6).expect("registry");
    let iters = opts.iterations();
    // Budget: what No-Sparsity needs for the full iteration count.
    let probe = run_method(&molecule_setup(&spec, 1), no_sparsity(), &unlimited(8));
    let per_iter = probe.trace.total_circuits() / 8;
    let budget = per_iter * iters as u64;

    let scenarios = [
        ("noise-free", DeviceModel::noiseless(spec.qubits)),
        ("noisy", DeviceModel::mumbai_like()),
    ];
    let mut t = Table::new([
        "scenario",
        "policy",
        "iterations",
        "circuits",
        "converged energy",
    ]);
    for (name, device) in scenarios {
        let outs = parallel_map(vec![no_sparsity(), max_sparsity()], |&m| {
            run_method(
                &with_device(molecule_setup(&spec, 11), device.clone()),
                m,
                &budgeted(budget),
            )
        });
        write_series_pub(
            opts,
            "fig9",
            &format!("fig9_{name}.csv"),
            &[("no-sparsity", &outs[0]), ("max-sparsity", &outs[1])],
        );
        for (policy, o) in [("no-sparsity", &outs[0]), ("max-sparsity", &outs[1])] {
            t.row([
                name.to_string(),
                policy.to_string(),
                o.trace.iterations().to_string(),
                o.trace.total_circuits().to_string(),
                fmt(o.trace.converged_energy(TAIL)),
            ]);
        }
    }
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "fig9", "fig9_summary.csv"));
    println!("paper shape: noise-free → max-sparsity much worse; noisy → comparable-or-better,");
    println!("             and max-sparsity always completes more iterations");
}

/// Fig.13: the four scenarios on CH4-6 under one fixed circuit budget.
pub fn fig13(opts: &Options) {
    println!("Fig.13: CH4-6 energy vs iteration at a fixed circuit budget");
    let spec = MoleculeSpec::find("CH4", 6).expect("registry");
    let iters = opts.iterations();
    let probe = run_method(&molecule_setup(&spec, 3), adaptive(), &unlimited(8));
    let per_iter = probe.trace.total_circuits() / 8;
    let budget = per_iter * iters as u64;

    let jobs: Vec<(&str, Method, DeviceModel)> = vec![
        (
            "ideal",
            Method::Baseline,
            DeviceModel::noiseless(spec.qubits),
        ),
        ("baseline", Method::Baseline, DeviceModel::mumbai_like()),
        ("jigsaw", Method::Jigsaw, DeviceModel::mumbai_like()),
        ("varsaw", adaptive(), DeviceModel::mumbai_like()),
    ];
    let outs = parallel_map(jobs, |(name, m, dev)| {
        (
            *name,
            run_method(
                &with_device(molecule_setup(&spec, 17), dev.clone()),
                *m,
                &budgeted(budget),
            ),
        )
    });
    let columns: Vec<(&str, &varsaw::MethodOutcome)> = outs.iter().map(|(n, o)| (*n, o)).collect();
    write_series_pub(opts, "fig13", "fig13_series.csv", &columns);

    let h = molecular_hamiltonian(&spec);
    let reference = h.ground_energy(spec.seed);
    let mut t = Table::new(["scenario", "iterations", "circuits", "converged energy"]);
    for (name, o) in &outs {
        t.row([
            name.to_string(),
            o.trace.iterations().to_string(),
            o.trace.total_circuits().to_string(),
            fmt(o.trace.converged_energy(TAIL)),
        ]);
    }
    t.row([
        "reference (exact E0)".to_string(),
        String::new(),
        String::new(),
        fmt(reference),
    ]);
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "fig13", "fig13_summary.csv"));
    println!("paper shape: varsaw ≈ ideal; jigsaw completes a fraction of the iterations and");
    println!("             lands above the baseline under the same budget");
}

/// Fig.14: % of the noisy-VQE inaccuracy (vs. Ideal) mitigated by VarSaw,
/// plus the optimal Global-execution fraction, for the seven temporal
/// workloads.
pub fn fig14(opts: &Options) {
    println!("Fig.14: VarSaw accuracy recovery vs the noisy baseline (unbounded iterations)");
    let iters = opts.iterations();
    let trials = opts.trials();
    let specs = temporal_workloads();
    let rows = parallel_map(specs, |spec| {
        let ideal = run_trials(
            |s| {
                with_device(
                    molecule_setup(spec, s ^ spec.seed),
                    DeviceModel::noiseless(spec.qubits),
                )
            },
            Method::Baseline,
            &unlimited(iters),
            trials,
        );
        let baseline = run_trials(
            |s| molecule_setup(spec, s ^ spec.seed),
            Method::Baseline,
            &unlimited(iters),
            trials,
        );
        let varsaw = run_trials(
            |s| molecule_setup(spec, s ^ spec.seed),
            adaptive(),
            &unlimited(iters),
            trials,
        );
        let e_ideal = mean_converged(&ideal, TAIL);
        let e_base = mean_converged(&baseline, TAIL);
        let e_vs = mean_converged(&varsaw, TAIL);
        let frac = varsaw
            .iter()
            .map(|o| o.global_fraction.unwrap_or(0.0))
            .sum::<f64>()
            / varsaw.len() as f64;
        // Pair trials by seed and take the median percentage — robust to
        // the occasional trial where the ideal/baseline gap degenerates.
        let per_trial: Vec<f64> = ideal
            .iter()
            .zip(&baseline)
            .zip(&varsaw)
            .map(|((i, b), v)| {
                percent_gap_recovered(
                    i.trace.converged_energy(TAIL),
                    b.trace.converged_energy(TAIL),
                    v.trace.converged_energy(TAIL),
                )
            })
            .collect();
        (spec.label(), e_ideal, e_base, e_vs, median(per_trial), frac)
    });
    let mut t = Table::new([
        "molecule",
        "ideal",
        "baseline",
        "varsaw",
        "% mitigated",
        "global fraction",
    ]);
    let mut percents = Vec::new();
    let mut fracs = Vec::new();
    for (label, e_ideal, e_base, e_vs, pct, frac) in rows {
        percents.push(pct);
        fracs.push(frac);
        t.row([
            label,
            fmt(e_ideal),
            fmt(e_base),
            fmt(e_vs),
            fmt(pct),
            format!("{frac:.4}"),
        ]);
    }
    let mean_pct = percents.iter().sum::<f64>() / percents.len() as f64;
    let mean_frac = fracs.iter().sum::<f64>() / fracs.len() as f64;
    t.row([
        "Mean".to_string(),
        String::new(),
        String::new(),
        String::new(),
        fmt(mean_pct),
        format!("{mean_frac:.4}"),
    ]);
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "fig14", "fig14.csv"));
    println!(
        "paper shape: 13–86% mitigated (mean 45%), global fraction ~0.01; measured mean {:.0}%, fraction {:.3}",
        mean_pct, mean_frac
    );
}

/// Fig.15: % of the VQE inaccuracy over JigSaw mitigated by VarSaw under a
/// fixed circuit budget.
pub fn fig15(opts: &Options) {
    println!("Fig.15: VarSaw vs JigSaw at a fixed circuit budget");
    let iters = opts.iterations();
    let trials = opts.trials();
    let specs = temporal_workloads();
    let rows = parallel_map(specs, |spec| {
        // Budget: what VarSaw needs for the full iteration count.
        let probe = run_method(&molecule_setup(spec, 5), adaptive(), &unlimited(8));
        let budget = (probe.trace.total_circuits() / 8) * iters as u64;
        let ideal = run_trials(
            |s| {
                with_device(
                    molecule_setup(spec, s ^ spec.seed),
                    DeviceModel::noiseless(spec.qubits),
                )
            },
            Method::Baseline,
            &unlimited(iters),
            trials,
        );
        let jig = run_trials(
            |s| molecule_setup(spec, s ^ spec.seed),
            Method::Jigsaw,
            &budgeted(budget),
            trials,
        );
        let vs = run_trials(
            |s| molecule_setup(spec, s ^ spec.seed),
            adaptive(),
            &budgeted(budget),
            trials,
        );
        let e_ideal = mean_converged(&ideal, TAIL);
        let e_jig = mean_converged(&jig, 0.3); // short traces: wider tail
        let e_vs = mean_converged(&vs, TAIL);
        let jig_iters = jig.iter().map(|o| o.trace.iterations()).sum::<usize>() / jig.len();
        let vs_iters = vs.iter().map(|o| o.trace.iterations()).sum::<usize>() / vs.len();
        let per_trial: Vec<f64> = ideal
            .iter()
            .zip(&jig)
            .zip(&vs)
            .map(|((i, j), v)| {
                percent_gap_recovered(
                    i.trace.converged_energy(TAIL),
                    j.trace.converged_energy(0.3),
                    v.trace.converged_energy(TAIL),
                )
            })
            .collect();
        (
            spec.label(),
            e_ideal,
            e_jig,
            e_vs,
            jig_iters,
            vs_iters,
            median(per_trial),
        )
    });
    let mut t = Table::new([
        "molecule",
        "ideal",
        "jigsaw",
        "varsaw",
        "jigsaw iters",
        "varsaw iters",
        "% over jigsaw",
    ]);
    let mut percents = Vec::new();
    for (label, e_ideal, e_jig, e_vs, ji, vi, pct) in rows {
        percents.push(pct);
        t.row([
            label,
            fmt(e_ideal),
            fmt(e_jig),
            fmt(e_vs),
            ji.to_string(),
            vi.to_string(),
            fmt(pct),
        ]);
    }
    let mean_pct = percents.iter().sum::<f64>() / percents.len() as f64;
    t.row([
        "Mean".to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        fmt(mean_pct),
    ]);
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "fig15", "fig15.csv"));
    println!(
        "paper shape: 21–92% mitigated over JigSaw (mean 55%), VarSaw runs ~10x the iterations; measured mean {:.0}%",
        mean_pct
    );
}
