//! Ablation studies beyond the paper's figures: the Section 7.3
//! extensions (selective term mitigation, spin-chain workloads) and the
//! design choices ARCHITECTURE.md calls out (cover vs union grouping).

use crate::harness::{adaptive, molecule_setup, parallel_map, Options};
use crate::report::{fmt, results_path, Table};
use chem::{heisenberg_chain, molecular_hamiltonian, xy_chain, MoleculeSpec};
use pauli::{group_by_cover, group_by_union, PauliString};
use qnoise::DeviceModel;
use varsaw::{
    percent_gap_recovered, run_method, RunSetup, SpatialPlan, TemporalPolicy, VarSawEvaluator,
};
use vqe::{BaselineEvaluator, EfficientSu2, EnergyEvaluator, Entanglement, SimExecutor, VqeConfig};

/// Selective mitigation (Section 7.3): sweep the coefficient floor and
/// measure the cost/accuracy trade-off at fixed parameters.
pub fn selective_mitigation(opts: &Options) {
    println!("Ablation: selective term mitigation (coefficient floor sweep, CH4-6)");
    let spec = MoleculeSpec::find("CH4", 6).expect("registry");
    let h = molecular_hamiltonian(&spec);
    let ansatz = EfficientSu2::new(6, 2, Entanglement::Full);
    // Tuned parameters from a noiseless run.
    let setup =
        crate::harness::with_device(molecule_setup(&spec, spec.seed), DeviceModel::noiseless(6));
    let params = run_method(
        &setup,
        varsaw::Method::Baseline,
        &VqeConfig {
            max_iterations: opts.iterations(),
            max_circuits: None,
        },
    )
    .trace
    .final_params;

    let dev = DeviceModel::mumbai_like();
    let mut ideal = BaselineEvaluator::new(
        &h,
        ansatz.clone(),
        SimExecutor::exact(DeviceModel::noiseless(6), 1),
    );
    let mut noisy = BaselineEvaluator::new(&h, ansatz.clone(), SimExecutor::exact(dev.clone(), 1));
    let e_ideal = ideal.evaluate(&params);
    let e_noisy = noisy.evaluate(&params);

    let mut t = Table::new(["floor", "subset circuits", "% accuracy improvement"]);
    for floor in [0.0, 0.02, 0.05, 0.1, 0.3, f64::INFINITY] {
        let plan = SpatialPlan::with_coefficient_floor(&h, 2, floor);
        let mut vs = VarSawEvaluator::with_coefficient_floor(
            &h,
            ansatz.clone(),
            2,
            floor,
            TemporalPolicy::EveryIteration,
            SimExecutor::exact(dev.clone(), 1),
        );
        let e_vs = vs.evaluate(&params);
        t.row([
            if floor.is_infinite() {
                "inf".to_string()
            } else {
                format!("{floor}")
            },
            plan.stats().varsaw_subsets.to_string(),
            fmt(percent_gap_recovered(e_ideal, e_noisy, e_vs)),
        ]);
    }
    t.print();
    t.write_reports(&results_path(
        &opts.out_dir,
        "ablation",
        "selective_mitigation.csv",
    ));
    println!("expected: accuracy degrades gracefully as the floor rises; floor=inf ≈ 0%");
}

/// Spin-chain workloads (Section 7.3): VarSaw on Heisenberg and XY chains.
pub fn spin_chains(opts: &Options) {
    println!("Ablation: VarSaw on spin-chain workloads (Heisenberg, XY — Section 7.3)");
    let iters = opts.iterations().min(300);
    let workloads = [
        ("heisenberg-6", heisenberg_chain(6, 1.0, 1.0, 1.0, 0.5)),
        ("xy-6", xy_chain(6, 1.0, 0.8, 0.5)),
    ];
    let mut t = Table::new([
        "workload",
        "exact E0",
        "ideal",
        "baseline",
        "varsaw",
        "% mitigated",
    ]);
    let rows = parallel_map(workloads.to_vec(), |(name, h)| {
        let e0 = h.ground_energy(5);
        let ansatz = EfficientSu2::new(6, 2, Entanglement::Full);
        let config = VqeConfig {
            max_iterations: iters,
            max_circuits: None,
        };
        let run = |device: DeviceModel, method| {
            let setup = RunSetup::new(h.clone(), ansatz.clone(), device, 77);
            run_method(&setup, method, &config)
                .trace
                .converged_energy(0.1)
        };
        let e_ideal = run(DeviceModel::noiseless(6), varsaw::Method::Baseline);
        let e_base = run(DeviceModel::mumbai_like(), varsaw::Method::Baseline);
        let e_vs = run(DeviceModel::mumbai_like(), adaptive());
        (
            name.to_string(),
            e0,
            e_ideal,
            e_base,
            e_vs,
            percent_gap_recovered(e_ideal, e_base, e_vs),
        )
    });
    for (name, e0, e_ideal, e_base, e_vs, pct) in rows {
        t.row([
            name,
            fmt(e0),
            fmt(e_ideal),
            fmt(e_base),
            fmt(e_vs),
            fmt(pct),
        ]);
    }
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "ablation", "spin_chains.csv"));
    println!("expected: positive mitigation — the extension workloads benefit like VQE does");
}

/// Grouping ablation: cover-based (the paper's trivial commutation) vs
/// union-based grouping, for baseline circuits and VarSaw subsets.
pub fn grouping(opts: &Options) {
    println!("Ablation: cover-based vs union-based commutation grouping");
    let mut t = Table::new([
        "molecule",
        "cover groups",
        "union groups",
        "cover subsets",
        "union subsets*",
    ]);
    let specs: Vec<MoleculeSpec> = ["H2-4", "CH4-6", "LiH-8", "H2O-12"]
        .iter()
        .map(|l| {
            let (n, q) = l.split_once('-').unwrap();
            MoleculeSpec::find(n, q.parse().unwrap()).expect("registry")
        })
        .collect();
    let rows = parallel_map(specs, |spec| {
        let h = molecular_hamiltonian(spec);
        let strings: Vec<PauliString> = h
            .measurable_terms()
            .iter()
            .map(|x| x.string().clone())
            .collect();
        let cover = group_by_cover(&strings).len();
        let union = group_by_union(&strings).len();
        let plan = SpatialPlan::new(&h, 2);
        // Union-grouping the same subset pool (reusing the plan's groups'
        // bases as the pool approximation).
        let pool: Vec<PauliString> = plan
            .subset_groups()
            .iter()
            .map(|g| g.basis.clone())
            .collect();
        let union_subsets = group_by_union(&pool).len();
        (
            spec.label(),
            cover,
            union,
            plan.stats().varsaw_subsets,
            union_subsets,
        )
    });
    for (label, cover, union, cover_subsets, union_subsets) in rows {
        t.row([
            label,
            cover.to_string(),
            union.to_string(),
            cover_subsets.to_string(),
            union_subsets.to_string(),
        ]);
    }
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "ablation", "grouping.csv"));
    println!("* union grouping of subsets can merge across windows, losing the small-subset");
    println!("  property — which is why VarSaw uses cover grouping (see ARCHITECTURE.md)");
}
