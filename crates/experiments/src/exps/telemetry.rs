//! Stage-attributed wall-time breakdown of one representative VQE
//! iteration, across executor tiers and transports.
//!
//! One iteration — prepare an EfficientSU2 ansatz state, then run a
//! JigSaw-shaped measurement family (full-register Globals plus subset
//! reads) — executes on each tier: serial, threaded, and sharded over
//! both transport backends. The table reports, per tier, every telemetry
//! stage the iteration passed through (call count, total milliseconds,
//! share of the tier's wall time) and an `attributed` summary row — the
//! fraction of wall time the instrumentation accounts for. With the
//! `telemetry` feature compiled out the experiment emits a single note
//! row instead of numbers.

use crate::harness::Options;
use crate::report::{fmt, results_path, Table};
use qnoise::DeviceModel;
use qsim::{Parallelism, Sharding, TransportMode};
use std::time::Instant;
use vqe::{EfficientSu2, Entanglement, SimExecutor};

const NUM_QUBITS: usize = 12;
const SHARDS: usize = 4;
const SHOTS: u64 = 2048;
const SEED: u64 = 11;

/// One representative iteration on a fresh executor configured for the
/// tier. Returns the metered circuit count (sanity: identical across
/// tiers, since every tier is bit-identical by contract).
fn iteration(parallelism: Parallelism, sharding: Sharding, transport: TransportMode) -> u64 {
    let mut exec = SimExecutor::new(DeviceModel::mumbai_like(), SHOTS, SEED)
        .with_parallelism(parallelism)
        .with_sharding(sharding)
        .with_transport(transport);
    let ansatz = EfficientSu2::new(NUM_QUBITS, 2, Entanglement::Linear);
    let circuit = ansatz.circuit(&ansatz.initial_parameters(3));
    let state = exec.prepare(&circuit);
    let globals: [pauli::PauliString; 2] = [
        "ZZZZZZZZZZZZ".parse().unwrap(),
        "XXXXXXXXXXXX".parse().unwrap(),
    ];
    let subsets: [pauli::PauliString; 3] = [
        "ZZIIIIIIIIII".parse().unwrap(),
        "IIXXXIIIIIII".parse().unwrap(),
        "IIIIIIYYZIII".parse().unwrap(),
    ];
    for basis in &globals {
        exec.run_prepared_all(&state, basis);
    }
    for basis in &subsets {
        exec.run_prepared(&state, basis);
    }
    exec.circuits_executed()
}

/// The `telemetry` experiment: per-stage wall-time attribution of one
/// VQE iteration across serial / threaded / sharded×{local,channel}.
pub fn telemetry_exp(opts: &Options) {
    let mut t = Table::new(["tier", "stage", "calls", "total ms", "% of wall"]);
    let path = results_path(&opts.out_dir, "telemetry", "telemetry.csv");

    if !telemetry::compiled() {
        t.row([
            "(all)".to_string(),
            "telemetry feature compiled out — rebuild with --features telemetry".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
        t.print();
        t.write_reports(&path);
        return;
    }
    telemetry::set_active(true);

    let tiers: [(&str, Parallelism, Sharding, TransportMode); 4] = [
        (
            "serial",
            Parallelism::Serial,
            Sharding::Off,
            TransportMode::Local,
        ),
        (
            "threaded",
            Parallelism::Threads(4),
            Sharding::Off,
            TransportMode::Local,
        ),
        (
            "sharded/local",
            Parallelism::Serial,
            Sharding::Shards(SHARDS),
            TransportMode::Local,
        ),
        (
            "sharded/channel",
            Parallelism::Serial,
            Sharding::Shards(SHARDS),
            TransportMode::Channel,
        ),
    ];

    // A single iteration is ~1-3ms; scheduler jitter on that scale can
    // swing the attributed share by several points. Averaging a few
    // measured passes keeps the share stable without changing it.
    let measured_passes: u32 = if opts.full { 10 } else { 3 };

    let mut reference_cost = None;
    for (name, parallelism, sharding, transport) in tiers {
        // Warm up once so OS page faults and lazy thread pools don't
        // masquerade as unattributed time on the measured passes.
        iteration(parallelism, sharding, transport);
        let before = telemetry::global_snapshot();
        let start = Instant::now();
        let mut cost = 0;
        for _ in 0..measured_passes {
            cost = iteration(parallelism, sharding, transport);
        }
        let wall_ns = (start.elapsed().as_nanos().max(1) as u64) / u64::from(measured_passes);
        let delta = telemetry::global_snapshot()
            .since(&before)
            .scaled_down(measured_passes);

        match reference_cost {
            None => reference_cost = Some(cost),
            Some(r) => assert_eq!(r, cost, "{name}: tiers must meter identically"),
        }
        for (stage, stat) in delta.rows() {
            if stat.count == 0 {
                continue;
            }
            t.row([
                name.to_string(),
                stage.name().to_string(),
                stat.count.to_string(),
                fmt(stat.total_ns as f64 / 1e6),
                fmt(100.0 * stat.total_ns as f64 / wall_ns as f64),
            ]);
        }
        t.row([
            name.to_string(),
            "attributed".to_string(),
            delta.total_count().to_string(),
            fmt(delta.total_ns() as f64 / 1e6),
            fmt(100.0 * delta.total_ns() as f64 / wall_ns as f64),
        ]);
    }

    t.print();
    t.write_reports(&path);
}
