//! One module per experiment family; each public function regenerates one
//! table or figure of the paper.

pub mod ablation;
pub mod chaos;
pub mod structural;
pub mod sweeps;
pub mod telemetry;
pub mod transport;
pub mod tuning;
