//! Sweep experiments: Fig.16 (devices), Tables 3/4 (ansatz types and
//! depths), Fig.17 (depth-4 trace), Fig.18 (MBM combination), Fig.19
//! (subset sizes), Table 5 (noise scales).

use crate::harness::{
    adaptive, max_sparsity, mean_converged, molecule_setup, no_sparsity, parallel_map, run_trials,
    with_device, Options,
};
use crate::report::{fmt, results_path, Table};
use chem::{molecular_hamiltonian, tfim_paper, MoleculeSpec};
use qnoise::DeviceModel;
use varsaw::{percent_gap_recovered, run_method, Method, RunSetup, SpatialPlan, VarSawEvaluator};
use vqe::{BaselineEvaluator, EfficientSu2, EnergyEvaluator, Entanglement, SimExecutor, VqeConfig};

const TAIL: f64 = 0.1;

fn unlimited(iters: usize) -> VqeConfig {
    VqeConfig {
        max_iterations: iters,
        max_circuits: None,
    }
}

fn budgeted(budget: u64) -> VqeConfig {
    VqeConfig {
        max_iterations: usize::MAX >> 1,
        max_circuits: Some(budget),
    }
}

/// The circuit budget that `method` needs for `iters` iterations of this
/// setup.
fn budget_for(setup: &RunSetup, method: Method, iters: usize) -> u64 {
    let probe = run_method(setup, method, &unlimited(8));
    (probe.trace.total_circuits() / 8) * iters as u64
}

/// Fig.16: the "real device" TFIM study on the Lagos- and Jakarta-like
/// devices — VarSaw with vs without Global sparsity at a fixed budget.
pub fn fig16(opts: &Options) {
    println!("Fig.16: 5-qubit TFIM (3 Pauli terms) on lagos-like and jakarta-like devices");
    let iters = opts.iterations().min(400);
    let h = tfim_paper();
    let reference = h.ground_energy(1);
    let mut t = Table::new([
        "device",
        "policy",
        "iterations",
        "circuits",
        "converged energy",
    ]);
    for device in [DeviceModel::lagos_like(), DeviceModel::jakarta_like()] {
        let mk = |seed: u64| {
            let ansatz = EfficientSu2::new(5, 2, Entanglement::Full);
            let mut s = RunSetup::new(h.clone(), ansatz, device.clone(), seed);
            // Real-device shot counts are modest; the extra shot noise also
            // reflects the hardware setting.
            s.shots = 256;
            s
        };
        // Real-device budgets are tight: give the no-sparsity variant only
        // half the iterations' worth of circuits, as the paper's
        // "minimal circuit overheads" regime implies.
        let budget = budget_for(&mk(1), no_sparsity(), iters / 4);
        let trials = opts.trials().max(3);
        let without = run_trials(|s| mk(s), no_sparsity(), &budgeted(budget), trials);
        let with_sp = run_trials(|s| mk(s), adaptive(), &budgeted(budget), trials);
        crate::exps::tuning::write_series_pub(
            opts,
            "fig16",
            &format!("fig16_{}.csv", device.name()),
            &[("no-sparsity", &without[0]), ("with-sparsity", &with_sp[0])],
        );
        let mean_iters = |outs: &[varsaw::MethodOutcome]| {
            outs.iter().map(|o| o.trace.iterations()).sum::<usize>() / outs.len()
        };
        for (name, outs) in [("w/o sparsity", &without), ("w/ sparsity", &with_sp)] {
            t.row([
                device.name().to_string(),
                name.to_string(),
                mean_iters(outs).to_string(),
                outs[0].trace.total_circuits().to_string(),
                fmt(mean_converged(outs, TAIL)),
            ]);
        }
    }
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "fig16", "fig16_summary.csv"));
    println!("reference (exact E0): {}", fmt(reference));
    println!(
        "paper shape: sparse VarSaw completes ~4x the iterations and reaches a better objective"
    );
}

/// Shared engine for Tables 3 and 4: % inaccuracy mitigated by VarSaw with
/// selective Global execution over VarSaw without it, at a fixed budget.
fn selective_vs_nonselective(spec: &MoleculeSpec, ansatz: EfficientSu2, opts: &Options) -> f64 {
    let iters = opts.iterations();
    let trials = opts.trials();
    let mk = |seed: u64| {
        let h = molecular_hamiltonian(spec);
        let mut s = RunSetup::new(h, ansatz.clone(), DeviceModel::mumbai_like(), seed);
        s.shots = 1024;
        s
    };
    let budget = budget_for(&mk(1), no_sparsity(), iters);
    // Reference: the exact ground energy — deterministic, unlike a
    // scaled-down noiseless VQE run whose basin luck would destabilize the
    // percentage at high parameter counts.
    let reference = molecular_hamiltonian(spec).ground_energy(spec.seed);
    let without = run_trials(
        |s| mk(s ^ spec.seed),
        no_sparsity(),
        &budgeted(budget),
        trials,
    );
    let with_sel = run_trials(|s| mk(s ^ spec.seed), adaptive(), &budgeted(budget), trials);
    // Median of seed-paired percentages.
    let mut per_trial: Vec<f64> = without
        .iter()
        .zip(&with_sel)
        .map(|(w, s)| {
            percent_gap_recovered(
                reference,
                w.trace.converged_energy(TAIL),
                s.trace.converged_energy(TAIL),
            )
        })
        .collect();
    per_trial.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = per_trial.len();
    if n % 2 == 1 {
        per_trial[n / 2]
    } else {
        0.5 * (per_trial[n / 2 - 1] + per_trial[n / 2])
    }
}

/// Table 3: selective execution across ansatz entanglement types.
pub fn table3(opts: &Options) {
    println!("Table 3: % inaccuracy mitigated by selective Globals, per ansatz type");
    let molecules = ["CH4", "H2O", "LiH"];
    let types = [
        ("Full", Entanglement::Full),
        ("Linear", Entanglement::Linear),
        ("Circular", Entanglement::Circular),
        ("Asymmetric", Entanglement::Asymmetric),
    ];
    let jobs: Vec<(String, Entanglement, MoleculeSpec)> = molecules
        .iter()
        .flat_map(|m| {
            let spec = MoleculeSpec::find(m, 6).expect("registry");
            types
                .iter()
                .map(move |(tn, te)| (tn.to_string(), *te, spec.clone()))
        })
        .collect();
    let results = parallel_map(jobs, |(_, te, spec)| {
        selective_vs_nonselective(spec, EfficientSu2::new(6, 2, *te), opts)
    });
    let mut t = Table::new(["workload", "Full", "Linear", "Circular", "Asymmetric"]);
    for (i, m) in molecules.iter().enumerate() {
        let row: Vec<String> = std::iter::once(format!("{m}-6"))
            .chain((0..4).map(|j| fmt(results[i * 4 + j])))
            .collect();
        t.row(row);
    }
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "table3", "table3.csv"));
    println!("paper shape: positive in all 12 cells (23–96%)");
}

/// Table 4: selective execution across ansatz depths p ∈ {1, 2, 4, 8}.
pub fn table4(opts: &Options) {
    println!("Table 4: % inaccuracy mitigated by selective Globals, per ansatz depth");
    let molecules = ["CH4", "H2O", "LiH"];
    let depths = [1usize, 2, 4, 8];
    let jobs: Vec<(usize, MoleculeSpec)> = molecules
        .iter()
        .flat_map(|m| {
            let spec = MoleculeSpec::find(m, 6).expect("registry");
            depths.iter().map(move |&p| (p, spec.clone()))
        })
        .collect();
    let results = parallel_map(jobs, |(p, spec)| {
        selective_vs_nonselective(spec, EfficientSu2::new(6, *p, Entanglement::Full), opts)
    });
    let mut t = Table::new(["workload", "p = 1", "p = 2", "p = 4", "p = 8"]);
    for (i, m) in molecules.iter().enumerate() {
        let row: Vec<String> = std::iter::once(format!("{m}-6"))
            .chain((0..4).map(|j| fmt(results[i * 4 + j])))
            .collect();
        t.row(row);
    }
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "table4", "table4.csv"));
    println!("paper shape: positive in 11 of 12 cells, shrinking at p = 8");
}

/// Fig.17: LiH-6 at p = 4, with vs without Global sparsity (trace).
pub fn fig17(opts: &Options) {
    println!("Fig.17: LiH-6, p=4 — VarSaw w/ and w/o global sparsity (fixed budget)");
    let spec = MoleculeSpec::find("LiH", 6).expect("registry");
    let iters = opts.iterations();
    let mk = |seed: u64| {
        let h = molecular_hamiltonian(&spec);
        let ansatz = EfficientSu2::new(6, 4, Entanglement::Full);
        let mut s = RunSetup::new(h, ansatz, DeviceModel::mumbai_like(), seed);
        s.shots = 1024;
        s
    };
    let budget = budget_for(&mk(1), no_sparsity(), iters);
    let outs = parallel_map(vec![no_sparsity(), adaptive()], |&m| {
        run_method(&mk(21), m, &budgeted(budget))
    });
    crate::exps::tuning::write_series_pub(
        opts,
        "fig17",
        "fig17_series.csv",
        &[("no-sparsity", &outs[0]), ("with-sparsity", &outs[1])],
    );
    let mut t = Table::new(["policy", "iterations", "circuits", "converged energy"]);
    for (name, o) in [("w/o sparsity", &outs[0]), ("w/ sparsity", &outs[1])] {
        t.row([
            name.to_string(),
            o.trace.iterations().to_string(),
            o.trace.total_circuits().to_string(),
            fmt(o.trace.converged_energy(TAIL)),
        ]);
    }
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "fig17", "fig17_summary.csv"));
    println!("paper shape: sparsity converges lower by completing many more iterations");
}

/// Fig.18: VarSaw vs VarSaw + matrix-based mitigation on LiH-6 and H2O-6.
pub fn fig18(opts: &Options) {
    println!("Fig.18: VarSaw vs VarSaw+MBM");
    let iters = opts.iterations();
    let mut t = Table::new(["workload", "method", "converged energy"]);
    for name in ["LiH", "H2O"] {
        let spec = MoleculeSpec::find(name, 6).expect("registry");
        let outs = parallel_map(vec![false, true], |&mbm| {
            let mut setup = molecule_setup(&spec, 51);
            setup.mbm = mbm;
            run_method(&setup, adaptive(), &unlimited(iters))
        });
        crate::exps::tuning::write_series_pub(
            opts,
            "fig18",
            &format!("fig18_{}.csv", spec.label()),
            &[("varsaw", &outs[0]), ("varsaw+mbm", &outs[1])],
        );
        for (m, o) in [("varsaw", &outs[0]), ("varsaw+mbm", &outs[1])] {
            t.row([
                spec.label(),
                m.to_string(),
                fmt(o.trace.converged_energy(TAIL)),
            ]);
        }
    }
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "fig18", "fig18_summary.csv"));
    println!("paper shape: MBM on top helps ~10% for H2O, negligibly (but less noisily) for LiH");
}

/// Fig.19 (Appendix A): subset-size sweep — accuracy improvement vs the
/// number of subset circuits, for window sizes 2–5.
pub fn fig19(opts: &Options) {
    println!("Fig.19: subset-size sweep (single mitigated instance at tuned parameters)");
    let iters = opts.iterations();
    let mut t = Table::new([
        "workload",
        "window",
        "subset circuits",
        "% accuracy improvement",
    ]);
    let jobs: Vec<MoleculeSpec> = ["LiH", "CH4", "H2O"]
        .iter()
        .map(|m| MoleculeSpec::find(m, 6).expect("registry"))
        .collect();
    let rows = parallel_map(jobs, |spec| {
        let h = molecular_hamiltonian(spec);
        // Tune noiselessly, then evaluate mitigation quality at those
        // parameters (as the paper does for this appendix).
        let setup = with_device(
            molecule_setup(spec, spec.seed),
            DeviceModel::noiseless(spec.qubits),
        );
        let params = run_method(&setup, Method::Baseline, &unlimited(iters))
            .trace
            .final_params;
        let ansatz = EfficientSu2::new(spec.qubits, 2, Entanglement::Full);
        let dev = DeviceModel::mumbai_like();
        let mut ideal = BaselineEvaluator::new(
            &h,
            ansatz.clone(),
            SimExecutor::exact(DeviceModel::noiseless(spec.qubits), 1),
        );
        let mut noisy =
            BaselineEvaluator::new(&h, ansatz.clone(), SimExecutor::exact(dev.clone(), 1));
        let e_ideal = ideal.evaluate(&params);
        let e_noisy = noisy.evaluate(&params);
        let mut per_window = Vec::new();
        for window in 2..=5usize {
            let mut vs = VarSawEvaluator::new(
                &h,
                ansatz.clone(),
                window,
                varsaw::TemporalPolicy::EveryIteration,
                SimExecutor::exact(dev.clone(), 1),
            );
            let e_vs = vs.evaluate(&params);
            let circuits = SpatialPlan::new(&h, window).stats().varsaw_subsets;
            per_window.push((
                window,
                circuits,
                percent_gap_recovered(e_ideal, e_noisy, e_vs),
            ));
        }
        (spec.label(), per_window)
    });
    for (label, per_window) in rows {
        for (window, circuits, pct) in per_window {
            t.row([
                label.clone(),
                window.to_string(),
                circuits.to_string(),
                fmt(pct),
            ]);
        }
    }
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "fig19", "fig19.csv"));
    println!("paper shape: accuracy varies little with window size, but window 2 needs the");
    println!("             fewest subset circuits — so 2 is the clear choice");
}

/// Table 5 (Appendix B): sparsity benefit across noise scales on H2O-6.
pub fn table5(opts: &Options) {
    println!("Table 5: baseline vs VarSaw no-/max-sparsity across noise scales (H2O-6)");
    let spec = MoleculeSpec::find("H2O", 6).expect("registry");
    let iters = opts.iterations();
    let scales = [5.0, 3.0, 1.0, 0.8, 0.5, 0.1, 0.05];
    let rows = parallel_map(scales.to_vec(), |&scale| {
        let device = DeviceModel::mumbai_like().scaled(scale);
        let base = run_method(
            &with_device(molecule_setup(&spec, 61), device.clone()),
            Method::Baseline,
            &unlimited(iters),
        );
        let nosp = run_method(
            &with_device(molecule_setup(&spec, 61), device.clone()),
            no_sparsity(),
            &unlimited(iters),
        );
        let maxsp = run_method(
            &with_device(molecule_setup(&spec, 61), device),
            max_sparsity(),
            &unlimited(iters),
        );
        (
            scale,
            base.trace.converged_energy(TAIL),
            nosp.trace.converged_energy(TAIL),
            maxsp.trace.converged_energy(TAIL),
        )
    });
    let mut t = Table::new([
        "noise scale",
        "baseline",
        "varsaw (no sparsity)",
        "varsaw (max sparsity)",
    ]);
    let mut wins = 0;
    for (scale, b, n, m) in rows {
        if m <= b {
            wins += 1;
        }
        t.row([format!("{scale}"), fmt(b), fmt(n), fmt(m)]);
    }
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "table5", "table5.csv"));
    println!(
        "paper shape: max-sparsity beats the baseline at every scale; measured: {wins}/{} scales",
        scales.len()
    );
}
