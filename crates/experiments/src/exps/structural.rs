//! Structure-only experiments: no VQE tuning required.
//!
//! Covers Fig.6 (worked example), Fig.7 (commutativity graph), Fig.8
//! (cost-model scaling), Table 2 (workload inventory) and Fig.12 (subset
//! reduction across all molecules).

use crate::harness::Options;
use crate::report::{fmt, results_path, Table};
use chem::{molecular_hamiltonian, table2};
use pauli::{group_by_cover, Hamiltonian, Pauli, PauliString};
use varsaw::{cost, SpatialPlan};

/// Fig.6: the worked 4-qubit example — 10 terms → 7 commuted bases →
/// 21 JigSaw subsets → 9 VarSaw subsets.
pub fn fig6(opts: &Options) {
    let h = Hamiltonian::from_pairs(
        4,
        &[
            (1.0, "ZZIZ"),
            (1.0, "ZIZX"),
            (1.0, "ZZII"),
            (1.0, "IIZX"),
            (1.0, "ZXXZ"),
            (1.0, "XZIZ"),
            (1.0, "ZXIZ"),
            (1.0, "IXZZ"),
            (1.0, "XIZZ"),
            (1.0, "XXIX"),
        ],
    );
    let plan = SpatialPlan::new(&h, 2);
    let stats = plan.stats();
    println!("Fig.6 worked example (4-qubit Hamiltonian)");
    println!(
        "(1) H_Base: {} terms: {}",
        stats.hamiltonian_terms,
        h.iter()
            .map(|t| t.string().to_string())
            .collect::<Vec<_>>()
            .join(" + ")
    );
    println!(
        "(2) C_Comm: {} circuits: {}",
        stats.baseline_circuits,
        plan.bases()
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(" + ")
    );
    println!("(3) C_JigSaw: {} subset circuits", stats.jigsaw_subsets);
    println!(
        "(4) C_VarSaw: {} subset circuits: {}",
        stats.varsaw_subsets,
        plan.subset_groups()
            .iter()
            .map(|g| g.basis.to_string())
            .collect::<Vec<_>>()
            .join(" + ")
    );
    let mut t = Table::new(["stage", "circuits", "paper"]);
    t.row(["H_Base terms", &stats.hamiltonian_terms.to_string(), "10"]);
    t.row(["C_Comm", &stats.baseline_circuits.to_string(), "7"]);
    t.row(["C_JigSaw", &stats.jigsaw_subsets.to_string(), "21"]);
    t.row(["C_VarSaw", &stats.varsaw_subsets.to_string(), "9"]);
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "fig6", "fig6.csv"));
}

/// Fig.7: cover-parent counts over the 27 three-qubit X/Z/I strings.
pub fn fig7(opts: &Options) {
    let alphabet = [Pauli::I, Pauli::X, Pauli::Z];
    let mut all = Vec::new();
    for a in alphabet {
        for b in alphabet {
            for c in alphabet {
                all.push(PauliString::new(vec![a, b, c]));
            }
        }
    }
    let parents = |target: &PauliString| {
        all.iter()
            .filter(|s| *s != target && s.covers(target))
            .count()
    };
    println!("Fig.7: qubit commutativity (cover) parents among 27 3-qubit X/Z/I strings");
    let mut t = Table::new(["pauli", "parents", "paper"]);
    for (s, paper) in [("III", "26"), ("IIZ", "8"), ("IZZ", "2"), ("ZZZ", "0")] {
        let ps: PauliString = s.parse().expect("literal");
        t.row([s.to_string(), parents(&ps).to_string(), paper.to_string()]);
    }
    t.print();

    let mut hist = Table::new(["pauli", "parents"]);
    let mut sorted: Vec<(String, usize)> =
        all.iter().map(|s| (s.to_string(), parents(s))).collect();
    sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (name, n) in &sorted {
        hist.row([name.clone(), n.to_string()]);
    }
    hist.write_reports(&results_path(&opts.out_dir, "fig7", "fig7.csv"));
    println!("(full 27-string histogram written to fig7.csv)");
}

/// Fig.8: per-iteration circuit-count scaling, Q up to 1000 (log-spaced).
pub fn fig8(opts: &Options) {
    println!("Fig.8: circuits executed per VQA iteration vs qubits (cost model)");
    let mut t = Table::new([
        "qubits",
        "traditional",
        "jigsaw",
        "varsaw k=1",
        "varsaw k=0.1",
        "varsaw k=0.01",
        "varsaw k=0.001",
    ]);
    let qs = [4, 8, 16, 32, 64, 128, 200, 400, 600, 800, 1000];
    for q in qs {
        t.row([
            q.to_string(),
            fmt(cost::traditional_cost(q)),
            fmt(cost::jigsaw_cost(q, 2)),
            fmt(cost::varsaw_cost(q, 1.0, 2)),
            fmt(cost::varsaw_cost(q, 0.1, 2)),
            fmt(cost::varsaw_cost(q, 0.01, 2)),
            fmt(cost::varsaw_cost(q, 0.001, 2)),
        ]);
    }
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "fig8", "fig8.csv"));
    let q = 1000;
    println!(
        "shape check @Q=1000: jigsaw/traditional = {:.0}x (paper: ~O(Q)), varsaw(k=0.01)/traditional = {:.3}x (<1)",
        cost::jigsaw_cost(q, 2) / cost::traditional_cost(q),
        cost::varsaw_cost(q, 0.01, 2) / cost::traditional_cost(q)
    );
}

/// Table 2: the workload inventory with generated-Hamiltonian checks.
pub fn table2_exp(opts: &Options) {
    println!("Table 2: molecular workloads (synthetic Hamiltonians, counts from the paper)");
    let mut t = Table::new([
        "molecule",
        "qubits",
        "pauli terms",
        "temporal?",
        "baseline circuits",
    ]);
    for spec in table2() {
        let h = molecular_hamiltonian(&spec);
        let strings: Vec<PauliString> = h
            .measurable_terms()
            .iter()
            .map(|x| x.string().clone())
            .collect();
        let groups = group_by_cover(&strings);
        t.row([
            spec.label(),
            spec.qubits.to_string(),
            h.num_terms().to_string(),
            if spec.temporal { "Y" } else { "N" }.to_string(),
            groups.len().to_string(),
        ]);
    }
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "table2", "table2.csv"));
}

/// Fig.12: Pauli-term reduction in measurement subsets, all 13 molecules.
pub fn fig12(opts: &Options) {
    println!("Fig.12: subset counts relative to baseline circuits (orange bars) and");
    println!("        VarSaw:JigSaw reduction (green line)");
    let mut t = Table::new([
        "molecule",
        "terms",
        "baseline",
        "jigsaw subsets",
        "varsaw subsets",
        "jigsaw ratio",
        "varsaw ratio",
        "reduction",
    ]);
    let specs = table2();
    let stats: Vec<_> = crate::harness::parallel_map(specs.clone(), |spec| {
        let h = molecular_hamiltonian(spec);
        SpatialPlan::new(&h, 2).stats()
    });
    let mut jig_ratios = Vec::new();
    let mut var_ratios = Vec::new();
    let mut reductions = Vec::new();
    for (spec, s) in specs.iter().zip(&stats) {
        jig_ratios.push(s.jigsaw_ratio());
        var_ratios.push(s.varsaw_ratio());
        reductions.push(s.reduction());
        t.row([
            spec.label(),
            s.hamiltonian_terms.to_string(),
            s.baseline_circuits.to_string(),
            s.jigsaw_subsets.to_string(),
            s.varsaw_subsets.to_string(),
            fmt(s.jigsaw_ratio()),
            fmt(s.varsaw_ratio()),
            fmt(s.reduction()),
        ]);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let geo_mean = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    t.row([
        "Mean".to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        fmt(mean(&jig_ratios)),
        fmt(mean(&var_ratios)),
        fmt(geo_mean(&reductions)),
    ]);
    t.print();
    t.write_reports(&results_path(&opts.out_dir, "fig12", "fig12.csv"));
    println!(
        "paper shape: jigsaw mean ratio 5.5x (max 12.4 @Cr2); varsaw mean 0.2x; mean reduction ~25x, >1000x @Cr2"
    );
    println!(
        "measured:    jigsaw mean ratio {:.1}x (max {:.1}); varsaw mean {:.2}x; geo-mean reduction {:.0}x, max {:.0}x",
        mean(&jig_ratios),
        jig_ratios.iter().cloned().fold(0.0, f64::max),
        mean(&var_ratios),
        geo_mean(&reductions),
        reductions.iter().cloned().fold(0.0, f64::max),
    );
}
