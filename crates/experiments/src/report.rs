//! Plain-text tables, CSV and JSON output for the experiment harnesses.
//!
//! The JSON emitter mirrors the `BENCH_*.json` record format the
//! criterion shim writes and `bench_diff` consumes: a flat array of flat
//! objects, one per table row, string values escaped the same way and
//! numeric cells emitted as JSON numbers — so downstream tooling can diff
//! experiment outputs with the same machinery it diffs kernel timings.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A simple fixed-width table printer for experiment summaries.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (missing cells render empty; extra cells are kept).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + widths.len() * 2));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV to `path` (headers first, comma-separated,
    /// cells containing commas quoted).
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write_csv(&self, path: &Path) {
        let mut text = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        text.push_str(
            &self
                .header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        text.push('\n');
        for row in &self.rows {
            text.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            text.push('\n');
        }
        write_file(path, &text);
    }

    /// Writes the table as a JSON array of records to `path`: one flat
    /// object per row keyed by the column headers, in the style of the
    /// `BENCH_*.json` artifacts (same string escaping; cells that parse
    /// as finite numbers are emitted unquoted). Missing cells are
    /// omitted; extra cells beyond the header are dropped.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write_json(&self, path: &Path) {
        let mut records = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            let fields: Vec<String> = self
                .header
                .iter()
                .zip(row)
                .map(|(key, cell)| format!("{}:{}", json_string(key), json_value(cell)))
                .collect();
            records.push(format!("{{{}}}", fields.join(",")));
        }
        let body = if records.is_empty() {
            "[\n]\n".to_string()
        } else {
            format!("[\n  {}\n]\n", records.join(",\n  "))
        };
        write_file(path, &body);
    }

    /// Writes both report artifacts for one experiment table: `path` as
    /// CSV and its `.json` sibling as the record array of
    /// [`Table::write_json`].
    ///
    /// # Panics
    ///
    /// Panics if either file cannot be written.
    pub fn write_reports(&self, path: &Path) {
        self.write_csv(path);
        self.write_json(&path.with_extension("json"));
    }
}

/// Escapes a string the way the criterion shim does: backslash-escapes
/// quotes and backslashes, `\uXXXX` for control characters.
fn json_string(s: &str) -> String {
    let escaped: String = s
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    format!("\"{escaped}\"")
}

/// A cell as a JSON value: unquoted when it is already a valid JSON
/// number token (finite, and not relying on Rust-only spellings like
/// `inf`, `1.` or `.5`), a string otherwise.
fn json_value(cell: &str) -> String {
    let looks_numeric = {
        let digits = cell.strip_prefix('-').unwrap_or(cell);
        !digits.is_empty()
            && digits.chars().all(|c| c.is_ascii_digit() || c == '.')
            && digits.chars().filter(|&c| c == '.').count() <= 1
            && !digits.starts_with('.')
            && !digits.ends_with('.')
            // JSON forbids leading zeros ("007", "01.5").
            && !(digits.len() > 1 && digits.starts_with('0') && !digits[1..].starts_with('.'))
    };
    if looks_numeric && cell.parse::<f64>().is_ok_and(f64::is_finite) {
        cell.to_string()
    } else {
        json_string(cell)
    }
}

/// Writes a text file, creating parent directories as needed.
///
/// # Panics
///
/// Panics on I/O errors.
pub fn write_file(path: &Path, content: &str) {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).expect("create results directory");
    }
    let mut f = fs::File::create(path).expect("create results file");
    f.write_all(content.as_bytes()).expect("write results file");
}

/// The results directory for an experiment id (e.g. `fig12`).
pub fn results_path(out_dir: &Path, id: &str, file: &str) -> PathBuf {
    out_dir.join(id).join(file)
}

/// Formats a float compactly for tables.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer", "2.5"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(["a,b", "c"]);
        t.row(["x", "y"]);
        let dir = std::env::temp_dir().join("varsaw-test-csv");
        let path = dir.join("t.csv");
        t.write_csv(&path);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("\"a,b\",c\n"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_records_mirror_the_bench_format() {
        let mut t = Table::new(["id", "energy", "note"]);
        t.row(["fig9/varsaw", "-1.25", "tail \"avg\""])
            .row(["fig9/baseline", "0", "n/a"]);
        let dir = std::env::temp_dir().join("varsaw-test-json");
        let path = dir.join("t.json");
        t.write_json(&path);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n"));
        assert!(text.contains(r#"{"id":"fig9/varsaw","energy":-1.25,"note":"tail \"avg\""}"#));
        assert!(text.contains(r#"{"id":"fig9/baseline","energy":0,"note":"n/a"}"#));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_values_quote_non_numbers() {
        assert_eq!(json_value("12.5"), "12.5");
        assert_eq!(json_value("-3"), "-3");
        assert_eq!(json_value("1.2.3"), "\"1.2.3\"");
        assert_eq!(json_value("inf"), "\"inf\"");
        assert_eq!(json_value("NaN"), "\"NaN\"");
        assert_eq!(json_value(".5"), "\".5\"");
        assert_eq!(json_value("5."), "\"5.\"");
        assert_eq!(json_value(""), "\"\"");
        // JSON rejects leading zeros; such cells must stay strings.
        assert_eq!(json_value("007"), "\"007\"");
        assert_eq!(json_value("-01.5"), "\"-01.5\"");
        assert_eq!(json_value("0"), "0");
        assert_eq!(json_value("0.25"), "0.25");
        assert_eq!(json_value("-0.5"), "-0.5");
    }

    #[test]
    fn write_reports_emits_csv_and_json_siblings() {
        let mut t = Table::new(["k", "v"]);
        t.row(["a", "1"]);
        let dir = std::env::temp_dir().join("varsaw-test-reports");
        t.write_reports(&dir.join("r.csv"));
        assert!(dir.join("r.csv").exists());
        assert!(dir.join("r.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fmt_scales() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.0), "1234");
        assert_eq!(fmt(12.34), "12.3");
        assert_eq!(fmt(1.2345), "1.234");
    }
}
