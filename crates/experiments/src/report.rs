//! Plain-text tables and CSV output for the experiment harnesses.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A simple fixed-width table printer for experiment summaries.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (missing cells render empty; extra cells are kept).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + widths.len() * 2));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV to `path` (headers first, comma-separated,
    /// cells containing commas quoted).
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write_csv(&self, path: &Path) {
        let mut text = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        text.push_str(
            &self
                .header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        text.push('\n');
        for row in &self.rows {
            text.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            text.push('\n');
        }
        write_file(path, &text);
    }
}

/// Writes a text file, creating parent directories as needed.
///
/// # Panics
///
/// Panics on I/O errors.
pub fn write_file(path: &Path, content: &str) {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).expect("create results directory");
    }
    let mut f = fs::File::create(path).expect("create results file");
    f.write_all(content.as_bytes()).expect("write results file");
}

/// The results directory for an experiment id (e.g. `fig12`).
pub fn results_path(out_dir: &Path, id: &str, file: &str) -> PathBuf {
    out_dir.join(id).join(file)
}

/// Formats a float compactly for tables.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer", "2.5"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(["a,b", "c"]);
        t.row(["x", "y"]);
        let dir = std::env::temp_dir().join("varsaw-test-csv");
        let path = dir.join("t.csv");
        t.write_csv(&path);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("\"a,b\",c\n"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fmt_scales() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.0), "1234");
        assert_eq!(fmt(12.34), "12.3");
        assert_eq!(fmt(1.2345), "1.234");
    }
}
