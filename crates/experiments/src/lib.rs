//! Experiment harnesses regenerating every table and figure of the VarSaw
//! paper's evaluation (see DESIGN.md for the experiment index).

pub mod exps;
pub mod harness;
pub mod report;
