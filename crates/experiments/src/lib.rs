//! Experiment harnesses regenerating every table and figure of the VarSaw
//! paper's evaluation.
//!
//! Each experiment id accepted by the `experiments` binary (`table1`…
//! `table5`, `fig6`…`fig19`, the ablations, or `all`) maps to a function
//! in [`exps`]; [`harness`] holds the shared setup/trial plumbing and the
//! `--full` scaling knobs, and [`report`] renders aligned text tables and
//! CSV files.
//!
//! # Example
//!
//! ```
//! use experiments::report::Table;
//!
//! let mut t = Table::new(["method", "energy"]);
//! t.row(["baseline", "-0.912"]).row(["varsaw", "-1.388"]);
//! let rendered = t.render();
//! assert!(rendered.contains("baseline") && rendered.contains("varsaw"));
//! ```

pub mod exps;
pub mod harness;
pub mod report;
