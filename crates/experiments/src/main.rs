//! CLI entry point: `experiments <id> [--full] [--out DIR]`.

use experiments::exps;
use experiments::harness::Options;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut command: Option<String> = None;
    let mut opts = Options::default();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => opts.full = true,
            "--out" => {
                opts.out_dir = args.next().expect("--out needs a directory").into();
            }
            c if command.is_none() => command = Some(c.to_string()),
            other => {
                eprintln!("unexpected argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let Some(command) = command else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    run(&command, &opts);
}

const USAGE: &str = "usage: experiments <id> [--full] [--out DIR]

ids: table1 table2 table3 table4 table5
     fig6 fig7 fig8 fig9 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19
     ablations | ablation-selective | ablation-spin | ablation-grouping
     transport  (per-backend shard movement counters)
     telemetry  (per-stage wall-time breakdown of a VQE iteration; needs --features telemetry)
     chaos  (fault-supervisor outcomes across kill rates and retry policies)
     all  (everything, in order)";

fn run(command: &str, opts: &Options) {
    match command {
        "fig6" => exps::structural::fig6(opts),
        "fig7" => exps::structural::fig7(opts),
        "fig8" => exps::structural::fig8(opts),
        "table2" => exps::structural::table2_exp(opts),
        "fig12" => exps::structural::fig12(opts),
        "table1" => exps::tuning::table1(opts),
        "fig9" => exps::tuning::fig9(opts),
        "fig13" => exps::tuning::fig13(opts),
        "fig14" => exps::tuning::fig14(opts),
        "fig15" => exps::tuning::fig15(opts),
        "fig16" => exps::sweeps::fig16(opts),
        "fig17" => exps::sweeps::fig17(opts),
        "fig18" => exps::sweeps::fig18(opts),
        "fig19" => exps::sweeps::fig19(opts),
        "table3" => exps::sweeps::table3(opts),
        "table4" => exps::sweeps::table4(opts),
        "table5" => exps::sweeps::table5(opts),
        "ablation-selective" => exps::ablation::selective_mitigation(opts),
        "ablation-spin" => exps::ablation::spin_chains(opts),
        "ablation-grouping" => exps::ablation::grouping(opts),
        "transport" => exps::transport::transport(opts),
        "telemetry" => exps::telemetry::telemetry_exp(opts),
        "chaos" => exps::chaos::chaos(opts),
        "ablations" => {
            exps::ablation::selective_mitigation(opts);
            exps::ablation::spin_chains(opts);
            exps::ablation::grouping(opts);
        }
        "all" => {
            for id in [
                "fig6",
                "fig7",
                "fig8",
                "table2",
                "fig12",
                "table1",
                "fig9",
                "fig13",
                "fig14",
                "fig15",
                "fig16",
                "fig17",
                "fig18",
                "fig19",
                "table3",
                "table4",
                "table5",
                "ablations",
                "transport",
                "telemetry",
                "chaos",
            ] {
                println!("\n=== {id} ===");
                run(id, opts);
            }
        }
        other => {
            eprintln!("unknown experiment id: {other}\n{USAGE}");
            std::process::exit(2);
        }
    }
}
