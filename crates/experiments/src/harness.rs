//! Shared experiment harness: workload construction and trial running on
//! the workspace's `parallel` utilities.

use chem::{molecular_hamiltonian, MoleculeSpec};
use qnoise::DeviceModel;
use varsaw::{run_method, Method, MethodOutcome, RunSetup, TemporalPolicy};
use vqe::{EfficientSu2, Entanglement, VqeConfig};

/// Global experiment options parsed from the command line.
#[derive(Clone, Debug)]
pub struct Options {
    /// Paper-scale parameters (`--full`) vs the scaled-down defaults.
    pub full: bool,
    /// Output directory for CSV artifacts.
    pub out_dir: std::path::PathBuf,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            full: false,
            out_dir: std::path::PathBuf::from("results"),
        }
    }
}

impl Options {
    /// VQE iterations for the long tuning studies (paper: 2000).
    pub fn iterations(&self) -> usize {
        if self.full {
            2000
        } else {
            240
        }
    }

    /// Independent trials averaged per configuration (paper: up to 10).
    pub fn trials(&self) -> u64 {
        if self.full {
            7
        } else {
            3
        }
    }

    /// Shots per circuit.
    pub fn shots(&self) -> u64 {
        1024
    }
}

/// The standard per-molecule setup of the paper's evaluation: synthetic
/// molecular Hamiltonian, full-entanglement EfficientSU2 with 2 reps,
/// IBMQ-Mumbai-like noise, window-2 subsets.
pub fn molecule_setup(spec: &MoleculeSpec, seed: u64) -> RunSetup {
    let h = molecular_hamiltonian(spec);
    let ansatz = EfficientSu2::new(spec.qubits, 2, Entanglement::Full);
    let mut setup = RunSetup::new(h, ansatz, DeviceModel::mumbai_like(), seed);
    setup.shots = 1024;
    setup
}

/// Replaces the device of a setup (noise sweeps, noiseless ideals).
pub fn with_device(mut setup: RunSetup, device: DeviceModel) -> RunSetup {
    setup.device = device;
    setup
}

/// Runs `trials` seeds of the same (setup-template, method) and returns all
/// outcomes, in seed order, computed in parallel.
pub fn run_trials(
    make_setup: impl Fn(u64) -> RunSetup + Sync,
    method: Method,
    config: &VqeConfig,
    trials: u64,
) -> Vec<MethodOutcome> {
    parallel_map((0..trials).collect::<Vec<_>>(), |&t| {
        let setup = make_setup(1000 + t * 7919);
        run_method(&setup, method, config)
    })
}

/// The mean converged energy across trial outcomes (tail-averaged traces).
pub fn mean_converged(outcomes: &[MethodOutcome], tail: f64) -> f64 {
    let sum: f64 = outcomes
        .iter()
        .map(|o| o.trace.converged_energy(tail))
        .sum();
    sum / outcomes.len() as f64
}

// The scoped-thread parallel map this harness originally carried now
// lives in the workspace-wide `parallel` crate (the statevector engine
// shares its machinery); re-exported here so experiment modules keep
// their import path. Worker count follows `parallel::num_threads`
// (the `VARSAW_NUM_THREADS` environment variable).
pub use parallel::parallel_map;

/// The paper's default VarSaw temporal policy for experiments.
pub fn adaptive() -> Method {
    Method::VarSaw(TemporalPolicy::Adaptive {
        initial_interval: 2,
    })
}

/// VarSaw with Globals every evaluation ("no sparsity").
pub fn no_sparsity() -> Method {
    Method::VarSaw(TemporalPolicy::EveryIteration)
}

/// VarSaw with a single Global ("max sparsity").
pub fn max_sparsity() -> Method {
    Method::VarSaw(TemporalPolicy::OneShot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..50).collect(), |&x| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_is_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn molecule_setup_uses_paper_defaults() {
        let spec = MoleculeSpec::find("H2", 4).unwrap();
        let setup = molecule_setup(&spec, 1);
        assert_eq!(setup.window, 2);
        assert_eq!(setup.shots, 1024);
        assert_eq!(setup.ansatz.num_qubits(), 4);
        assert_eq!(setup.ansatz.reps(), 2);
    }
}
