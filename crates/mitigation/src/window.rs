//! Sliding-window measurement subsets (JigSaw's CPMs).

use pauli::PauliString;

/// Generates JigSaw's sliding-window measurement subsets for a measurement
/// basis: one subset per `window`-wide qubit window, each the restriction of
/// the basis to that window, with all-identity windows dropped (they would
/// measure nothing — the paper notes these "are already weeded out").
///
/// For an `n`-qubit basis and window size `m` this yields at most
/// `n − m + 1` subsets. If `window >= n` the single full-basis "subset" is
/// returned (if non-trivial).
///
/// # Panics
///
/// Panics if `window == 0`.
///
/// # Examples
///
/// Fig.6's first row: the subsets of `ZZIZ` at window 2 are
/// `ZZ--`, `-ZI-`, `--IZ`:
///
/// ```
/// use mitigation::sliding_windows;
/// use pauli::PauliString;
///
/// let basis: PauliString = "ZZIZ".parse().unwrap();
/// let subsets = sliding_windows(&basis, 2);
/// let as_text: Vec<String> = subsets.iter().map(|s| s.to_string()).collect();
/// assert_eq!(as_text, vec!["ZZII", "IZII", "IIIZ"]);
/// ```
pub fn sliding_windows(basis: &PauliString, window: usize) -> Vec<PauliString> {
    assert!(window > 0, "window size must be positive");
    let n = basis.num_qubits();
    if n == 0 {
        return Vec::new();
    }
    if window >= n {
        return if basis.is_identity() {
            Vec::new()
        } else {
            vec![basis.clone()]
        };
    }
    (0..=n - window)
        .map(|start| basis.window(start, window))
        .filter(|s| !s.is_identity())
        .collect()
}

/// The total number of sliding-window subsets JigSaw executes for a set of
/// measurement bases (no cross-circuit deduplication — JigSaw is
/// application-agnostic, Section 3.2).
pub fn jigsaw_subset_count(bases: &[PauliString], window: usize) -> usize {
    bases.iter().map(|b| sliding_windows(b, window).len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn dense_basis_has_n_minus_1_windows() {
        assert_eq!(sliding_windows(&ps("ZZZZ"), 2).len(), 3);
        assert_eq!(sliding_windows(&ps("XYZXY"), 2).len(), 4);
    }

    #[test]
    fn all_identity_windows_are_dropped() {
        // ZIIZ at window 2: windows are ZI, II, IZ → the middle is dropped.
        let subsets = sliding_windows(&ps("ZIIZ"), 2);
        assert_eq!(subsets.len(), 2);
        assert_eq!(subsets[0], ps("ZIII"));
        assert_eq!(subsets[1], ps("IIIZ"));
    }

    #[test]
    fn identity_basis_has_no_windows() {
        assert!(sliding_windows(&ps("IIII"), 2).is_empty());
    }

    #[test]
    fn oversized_window_returns_whole_basis() {
        assert_eq!(sliding_windows(&ps("XZ"), 5), vec![ps("XZ")]);
        assert!(sliding_windows(&ps("II"), 5).is_empty());
    }

    #[test]
    fn window_size_three() {
        let subsets = sliding_windows(&ps("ZXIZY"), 3);
        assert_eq!(subsets.len(), 3);
        assert_eq!(subsets[0], ps("ZXIII"));
        assert_eq!(subsets[1], ps("IXIZI"));
        assert_eq!(subsets[2], ps("IIIZY"));
    }

    #[test]
    fn fig6_jigsaw_count_is_21() {
        // The seven post-commutation bases of Eq.2 produce 21 subsets at
        // window 2 (Eq.3).
        let bases: Vec<PauliString> = ["ZZIZ", "ZIZX", "ZXXZ", "XZIZ", "IXZZ", "XIZZ", "XXIX"]
            .iter()
            .map(|s| ps(s))
            .collect();
        assert_eq!(jigsaw_subset_count(&bases, 2), 21);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_window_panics() {
        sliding_windows(&ps("ZZ"), 0);
    }
}
