//! Zero-noise extrapolation (ZNE).
//!
//! The other mainstream VQA error-mitigation family (the paper's related
//! work, Kandala et al. 2019): measure the observable at several
//! *amplified* noise levels and Richardson-extrapolate back to zero noise.
//! It composes naturally with this crate's measurement-error machinery —
//! our noise amplification knob is [`qnoise::DeviceModel::scaled`] — and
//! gives the repository a second mitigation baseline to compare VarSaw
//! against.

/// Richardson extrapolation of measurements `(scale, value)` to scale 0.
///
/// Fits the unique polynomial of degree `points − 1` through the samples
/// (Lagrange form evaluated at 0). With two points this is linear
/// extrapolation; more points fit higher-order noise dependence but
/// amplify statistical noise — two or three points is standard practice.
///
/// # Panics
///
/// Panics if fewer than two points are given or two points share a scale.
///
/// # Examples
///
/// ```
/// use mitigation::richardson_extrapolate;
///
/// // A linearly degrading observable: value = 1 − 0.2·scale.
/// let z = richardson_extrapolate(&[(1.0, 0.8), (2.0, 0.6)]);
/// assert!((z - 1.0).abs() < 1e-12);
/// ```
pub fn richardson_extrapolate(points: &[(f64, f64)]) -> f64 {
    assert!(
        points.len() >= 2,
        "extrapolation needs at least two noise scales"
    );
    for (i, &(si, _)) in points.iter().enumerate() {
        for &(sj, _) in &points[..i] {
            assert!(
                (si - sj).abs() > 1e-12,
                "duplicate noise scale {si} in extrapolation"
            );
        }
    }
    // Lagrange interpolation evaluated at scale 0.
    let mut total = 0.0;
    for (i, &(si, yi)) in points.iter().enumerate() {
        let mut weight = 1.0;
        for (j, &(sj, _)) in points.iter().enumerate() {
            if i != j {
                weight *= (0.0 - sj) / (si - sj);
            }
        }
        total += weight * yi;
    }
    total
}

/// Runs ZNE over a caller-supplied noisy evaluation: `evaluate(scale)`
/// must measure the observable with the device noise amplified by
/// `scale`, and the result is the extrapolation of those measurements to
/// zero noise.
///
/// # Panics
///
/// Panics if fewer than two scales are given, any scale is
/// non-positive, or scales repeat.
///
/// # Examples
///
/// ```
/// use mitigation::zero_noise_extrapolate;
///
/// // A quadratic noise response: E(s) = −2 + 0.3·s + 0.05·s².
/// let e0 = zero_noise_extrapolate(&[1.0, 2.0, 3.0], |s| -2.0 + 0.3 * s + 0.05 * s * s);
/// assert!((e0 + 2.0).abs() < 1e-10);
/// ```
pub fn zero_noise_extrapolate(scales: &[f64], mut evaluate: impl FnMut(f64) -> f64) -> f64 {
    assert!(scales.len() >= 2, "ZNE needs at least two noise scales");
    assert!(
        scales.iter().all(|&s| s > 0.0),
        "noise scales must be positive"
    );
    let points: Vec<(f64, f64)> = scales.iter().map(|&s| (s, evaluate(s))).collect();
    richardson_extrapolate(&points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_extrapolation_is_exact_for_linear_noise() {
        let z = richardson_extrapolate(&[(1.0, 0.9), (3.0, 0.7)]);
        assert!((z - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quadratic_fit_recovers_quadratic_response() {
        let f = |s: f64| 5.0 - 2.0 * s + 0.5 * s * s;
        let z = richardson_extrapolate(&[(1.0, f(1.0)), (2.0, f(2.0)), (3.0, f(3.0))]);
        assert!((z - 5.0).abs() < 1e-10);
    }

    #[test]
    fn zne_against_a_simulated_device() {
        // End-to-end: readout noise shrinks ⟨ZZ⟩ from 1; ZNE over device
        // scalings should recover most of the loss.
        use qnoise::{apply_readout_errors, DeviceModel};
        let measure = |scale: f64| {
            let dev = DeviceModel::uniform(2, 0.04).scaled(scale);
            let mut probs = vec![1.0, 0.0, 0.0, 0.0];
            let errs: Vec<_> = (0..2).map(|q| dev.readout(q)).collect();
            apply_readout_errors(&mut probs, &errs);
            // ⟨ZZ⟩ from the distribution.
            probs[0b00] - probs[0b01] - probs[0b10] + probs[0b11]
        };
        let noisy = measure(1.0);
        let mitigated = zero_noise_extrapolate(&[1.0, 1.5, 2.0], measure);
        assert!(noisy < 0.95);
        assert!(
            (mitigated - 1.0).abs() < (noisy - 1.0).abs() * 0.2,
            "noisy {noisy}, mitigated {mitigated}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_rejected() {
        richardson_extrapolate(&[(1.0, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "duplicate noise scale")]
    fn duplicate_scale_rejected() {
        richardson_extrapolate(&[(1.0, 0.5), (1.0, 0.6)]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn nonpositive_scale_rejected() {
        zero_noise_extrapolate(&[0.0, 1.0], |_| 0.0);
    }
}
