//! Probability mass functions over measured qubit subsets.

use std::fmt;

/// A probability mass function over the outcomes of a set of measured
/// qubits — the paper's "PMF" (Global-PMF, Local-PMF, Output-PMF of Fig.3).
///
/// The distribution is dense over `2^qubits.len()` outcomes; bit `j` of an
/// outcome index is the measured value of `qubits[j]`.
///
/// # Examples
///
/// ```
/// use mitigation::Pmf;
///
/// // A Bell-pair distribution over qubits 0 and 2.
/// let pmf = Pmf::new(vec![0, 2], vec![0.5, 0.0, 0.0, 0.5]);
/// let marg = pmf.marginal(&[2]);
/// assert_eq!(marg.probs(), &[0.5, 0.5]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Pmf {
    qubits: Vec<usize>,
    probs: Vec<f64>,
}

impl Pmf {
    /// Creates a PMF over `qubits` with the given outcome probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != 2^qubits.len()`, a qubit repeats, a
    /// probability is negative, or the total mass is zero.
    pub fn new(qubits: Vec<usize>, probs: Vec<f64>) -> Self {
        assert_eq!(
            probs.len(),
            1usize << qubits.len(),
            "{} probabilities for {} qubits",
            probs.len(),
            qubits.len()
        );
        for (i, &q) in qubits.iter().enumerate() {
            assert!(!qubits[..i].contains(&q), "qubit {q} repeated");
        }
        assert!(
            probs.iter().all(|&p| p >= 0.0),
            "negative probability in PMF"
        );
        assert!(probs.iter().sum::<f64>() > 0.0, "PMF has zero total mass");
        let mut pmf = Pmf { qubits, probs };
        pmf.normalize();
        pmf
    }

    /// The uniform distribution over `qubits`.
    pub fn uniform(qubits: Vec<usize>) -> Self {
        let n = 1usize << qubits.len();
        Pmf::new(qubits, vec![1.0 / n as f64; n])
    }

    /// The measured qubits, in index-bit order.
    pub fn qubits(&self) -> &[usize] {
        &self.qubits
    }

    /// The outcome probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Mutable access to the probabilities. Callers should
    /// [`normalize`](Pmf::normalize) afterwards.
    pub fn probs_mut(&mut self) -> &mut [f64] {
        &mut self.probs
    }

    /// The probability of a specific outcome bit pattern.
    ///
    /// # Panics
    ///
    /// Panics if `outcome >= 2^qubits.len()`.
    pub fn prob(&self, outcome: usize) -> f64 {
        self.probs[outcome]
    }

    /// The number of measured qubits.
    pub fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Rescales to unit mass.
    ///
    /// # Panics
    ///
    /// Panics if the total mass is zero.
    pub fn normalize(&mut self) {
        let total: f64 = self.probs.iter().sum();
        assert!(total > 0.0, "cannot normalize a zero PMF");
        if (total - 1.0).abs() > 1e-15 {
            self.probs.iter_mut().for_each(|p| *p /= total);
        }
    }

    /// The bit position of global qubit `q` within this PMF's outcome
    /// indices, if `q` is measured here.
    pub fn position_of(&self, q: usize) -> Option<usize> {
        self.qubits.iter().position(|&x| x == q)
    }

    /// Projects an outcome of this PMF onto the outcome of a qubit subset.
    ///
    /// # Panics
    ///
    /// Panics if some qubit of `sub` is not measured by this PMF.
    pub fn project_outcome(&self, outcome: usize, sub: &[usize]) -> usize {
        let mut key = 0usize;
        for (j, &q) in sub.iter().enumerate() {
            let pos = self
                .position_of(q)
                .unwrap_or_else(|| panic!("qubit {q} not in PMF"));
            key |= ((outcome >> pos) & 1) << j;
        }
        key
    }

    /// The bit positions of each qubit of `sub` within this PMF's outcome
    /// indices — the projection [`project_outcome`](Pmf::project_outcome)
    /// performs, resolved once instead of per outcome.
    ///
    /// # Panics
    ///
    /// Panics if some qubit of `sub` is not measured by this PMF.
    pub fn projection_positions(&self, sub: &[usize]) -> Vec<usize> {
        sub.iter()
            .map(|&q| {
                self.position_of(q)
                    .unwrap_or_else(|| panic!("qubit {q} not in PMF"))
            })
            .collect()
    }

    /// The marginal distribution over a subset of this PMF's qubits.
    ///
    /// # Panics
    ///
    /// Panics if some qubit of `sub` is not measured by this PMF or `sub`
    /// repeats a qubit.
    pub fn marginal(&self, sub: &[usize]) -> Pmf {
        // Resolve the bit positions once; per-outcome `project_outcome`
        // would rescan the qubit list for every one of the 2^n outcomes.
        let positions = self.projection_positions(sub);
        let mut probs = vec![0.0; 1usize << sub.len()];
        for (x, &p) in self.probs.iter().enumerate() {
            let mut key = 0usize;
            for (j, &pos) in positions.iter().enumerate() {
                key |= ((x >> pos) & 1) << j;
            }
            probs[key] += p;
        }
        Pmf::new(sub.to_vec(), probs)
    }

    /// Total variation distance to another PMF over the same qubits (in the
    /// same order).
    ///
    /// # Panics
    ///
    /// Panics if the qubit lists differ.
    pub fn tvd(&self, other: &Pmf) -> f64 {
        assert_eq!(self.qubits, other.qubits, "PMFs over different qubits");
        0.5 * self
            .probs
            .iter()
            .zip(&other.probs)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
    }

    /// Hellinger fidelity `(Σ √(pᵢ·qᵢ))²` to another PMF over the same
    /// qubits — the fidelity measure used by JigSaw-style evaluations.
    ///
    /// # Panics
    ///
    /// Panics if the qubit lists differ.
    pub fn fidelity(&self, other: &Pmf) -> f64 {
        assert_eq!(self.qubits, other.qubits, "PMFs over different qubits");
        let bc: f64 = self
            .probs
            .iter()
            .zip(&other.probs)
            .map(|(a, b)| (a * b).sqrt())
            .sum();
        bc * bc
    }
}

impl fmt::Display for Pmf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pmf over qubits {:?}:", self.qubits)?;
        for (x, p) in self.probs.iter().enumerate() {
            if *p > 1e-9 {
                writeln!(
                    f,
                    "  {x:0width$b}: {p:.6}",
                    width = self.qubits.len().max(1)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes() {
        let pmf = Pmf::new(vec![0], vec![2.0, 2.0]);
        assert_eq!(pmf.probs(), &[0.5, 0.5]);
    }

    #[test]
    fn marginal_sums_rows() {
        // Over qubits [1, 3]: P(q1=0,q3=0)=0.1, (1,0)=0.2, (0,1)=0.3, (1,1)=0.4.
        let pmf = Pmf::new(vec![1, 3], vec![0.1, 0.2, 0.3, 0.4]);
        let m1 = pmf.marginal(&[1]);
        assert!((m1.prob(0) - 0.4).abs() < 1e-12);
        assert!((m1.prob(1) - 0.6).abs() < 1e-12);
        let m3 = pmf.marginal(&[3]);
        assert!((m3.prob(0) - 0.3).abs() < 1e-12);
        assert!((m3.prob(1) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn marginal_respects_order() {
        let pmf = Pmf::new(vec![1, 3], vec![0.1, 0.2, 0.3, 0.4]);
        let swapped = pmf.marginal(&[3, 1]);
        assert!((swapped.prob(0b01) - 0.3).abs() < 1e-12); // q3=1, q1=0
        assert!((swapped.prob(0b10) - 0.2).abs() < 1e-12); // q3=0, q1=1
    }

    #[test]
    fn marginal_over_all_qubits_is_identity() {
        let pmf = Pmf::new(vec![0, 2], vec![0.25, 0.3, 0.25, 0.2]);
        assert_eq!(pmf.marginal(&[0, 2]), pmf);
    }

    #[test]
    fn tvd_and_fidelity_extremes() {
        let a = Pmf::new(vec![0], vec![1.0, 0.0]);
        let b = Pmf::new(vec![0], vec![0.0, 1.0]);
        assert_eq!(a.tvd(&b), 1.0);
        assert_eq!(a.fidelity(&b), 0.0);
        assert_eq!(a.tvd(&a), 0.0);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_is_uniform() {
        let u = Pmf::uniform(vec![4, 5, 6]);
        assert!(u.probs().iter().all(|&p| (p - 0.125).abs() < 1e-15));
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn repeated_qubit_rejected() {
        Pmf::new(vec![1, 1], vec![0.25; 4]);
    }

    #[test]
    #[should_panic(expected = "zero total mass")]
    fn zero_mass_rejected() {
        Pmf::new(vec![0], vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "not in PMF")]
    fn marginal_of_unmeasured_qubit_panics() {
        Pmf::uniform(vec![0, 1]).marginal(&[2]);
    }

    #[test]
    fn project_outcome_extracts_bits() {
        let pmf = Pmf::uniform(vec![5, 2, 9]);
        // outcome 0b011 → q5=1, q2=1, q9=0.
        // Projecting onto [9, 5]: bit 0 ← q9 = 0, bit 1 ← q5 = 1.
        assert_eq!(pmf.project_outcome(0b011, &[9, 5]), 0b10);
        assert_eq!(pmf.project_outcome(0b011, &[2]), 1);
    }
}
