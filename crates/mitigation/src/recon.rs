//! The Bayesian-reconstruction engine: allocation-free, key-cached, and
//! optionally parallel.
//!
//! [`reconstruct`](crate::reconstruct) is the second-hottest kernel in the
//! workspace (`reconstruction/bayesian_8q_7windows`): both VQE evaluators
//! re-run it per basis group per tuner iteration, yet the expensive parts
//! of each update — resolving where every local qubit sits inside the
//! global outcome index and projecting all `2^n` outcomes onto the window
//! — depend only on the *(global-qubits, local-qubits)* geometry, which
//! never changes across iterations. [`Reconstructor`] exploits that:
//!
//! - **Key caching.** The `2^n`-entry projection-key table of every
//!   (global, local) signature is computed once and cached; later sweeps
//!   reuse it with a cheap signature lookup.
//! - **Fused, allocation-free sweeps.** Each Bayesian update is three
//!   passes over the outcome array — marginal-accumulate, reweight (which
//!   also accumulates the post-update mass), and a conditional normalize —
//!   on preallocated scratch. No intermediate [`Pmf`]s, marginals, or
//!   ratio vectors are constructed per call.
//! - **Parallel marginal reduction.** For large globals the outcome range
//!   is partitioned into fixed-size chunks; scoped workers (from
//!   `crates/parallel`, behind the same [`Parallelism`] seam the
//!   statevector engine uses) accumulate per-chunk partial marginal
//!   histograms that are reduced in chunk order before the reweight pass.
//!
//! # Bit-identical results
//!
//! Serial, key-cached, and threaded execution produce bit-identical
//! output PMFs: the chunk grid is a pure function of the problem shape
//! (outcome count and window size), never of the worker count, so the
//! floating-point reduction order is fixed and the partition only changes
//! *which thread* computes a partial, never the arithmetic. For globals
//! that fit in a single chunk (up to 12 qubits) the kernel is additionally
//! bit-identical to a textbook sequential implementation; beyond that the
//! chunk-ordered marginal reduction re-associates sums and agreement is
//! within floating-point tolerance instead. The property tests in
//! `tests/recon_equiv.rs` (mirroring `qsim/tests/parallel_equiv.rs`)
//! assert exact equality across qubit counts, window sizes, rounds, and
//! thread counts.
//!
//! Because the workspace denies `unsafe`, workers share the outcome array
//! and scratch as planes of [`AtomicU64`] `f64` bit patterns — relaxed
//! loads and stores compile to plain moves, every phase's write set is
//! disjoint across workers by construction, and a
//! [`parallel::SpinBarrier`] provides the ordering edges between phases.

use crate::bayes::ReconstructionConfig;
use crate::pmf::Pmf;
use parallel::Parallelism;
use std::sync::atomic::{AtomicU64, Ordering};

/// Outcomes per partition chunk. Fixed (never derived from the worker
/// count) so the chunk grid — and with it the floating-point reduction
/// order — depends only on the problem shape, keeping serial and threaded
/// sweeps bit-identical. Globals at or below this size run single-chunk,
/// where the kernel matches a textbook sequential update bit for bit.
const CHUNK_OUTCOMES: usize = 1 << 12;

/// Smallest outcome count for which [`Parallelism::Auto`] goes threaded.
/// Below this (< 15 qubits) a whole sweep costs less than spawning.
const AUTO_MIN_OUTCOMES: usize = 1 << 15;

/// A cached projection-key table: `keys[x]` is the window outcome that
/// global outcome `x` projects to, for one (global, local) signature.
#[derive(Clone, Debug)]
struct KeyTable {
    global: Vec<usize>,
    local: Vec<usize>,
    keys: Vec<u32>,
}

/// The number of chunks the outcome range splits into for a window of
/// `k` outcomes: `dim / CHUNK_OUTCOMES`, capped so the per-chunk partial
/// histograms never outweigh the outcome array itself (relevant only for
/// windows spanning most of the register). All quantities are powers of
/// two, so chunks always divide `dim` exactly.
fn chunk_count(dim: usize, k: usize) -> usize {
    (dim / CHUNK_OUTCOMES).max(1).min((dim / k).max(1))
}

#[inline]
fn load(a: &AtomicU64) -> f64 {
    f64::from_bits(a.load(Ordering::Relaxed))
}

#[inline]
fn store(a: &AtomicU64, v: f64) {
    a.store(v.to_bits(), Ordering::Relaxed);
}

/// Grows an atomic scratch buffer to at least `len` slots.
fn ensure(buf: &mut Vec<AtomicU64>, len: usize) {
    if buf.len() < len {
        buf.resize_with(len, || AtomicU64::new(0));
    }
}

/// A reusable Bayesian-reconstruction engine: the `2^n`-entry
/// projection-key table of every (global-qubits, local-qubits) signature
/// is computed once and cached, sweeps run as fused allocation-free
/// passes over preallocated scratch (no intermediate [`Pmf`]s), and large
/// globals reduce per-chunk partial marginal histograms on scoped worker
/// threads behind the same [`Parallelism`] seam the statevector engine
/// uses.
///
/// One `Reconstructor` should persist wherever reconstruction repeats
/// with the same measurement geometry — `varsaw`'s evaluators keep one
/// across all VQE iterations, so every sweep after the first runs with
/// zero key-table construction and zero scratch allocation. The one-shot
/// [`crate::reconstruct`] / [`crate::bayesian_update`] functions are thin
/// wrappers over a temporary instance.
///
/// Serial, key-cached, and threaded sweeps are **bit-identical**: the
/// chunk grid is a pure function of the problem shape (outcome count and
/// window size), never of the worker count, so the floating-point
/// reduction order is fixed and the partition only changes *which
/// thread* computes a partial, never the arithmetic. See the
/// "reconstruction hot path" section of `ARCHITECTURE.md` and the
/// property tests in `tests/recon_equiv.rs`.
///
/// # Examples
///
/// ```
/// use mitigation::{Pmf, Reconstructor, ReconstructionConfig};
///
/// let global = Pmf::new(vec![0, 1], vec![0.35, 0.15, 0.15, 0.35]);
/// let local = Pmf::new(vec![0], vec![0.95, 0.05]);
/// let mut engine = Reconstructor::new();
/// let out = engine.reconstruct(&global, &[local], ReconstructionConfig::default());
/// assert!(out.marginal(&[0]).prob(0) > 0.9);
/// // The projection-key table is now cached for later iterations.
/// assert_eq!(engine.cached_key_tables(), 1);
/// ```
#[derive(Debug)]
pub struct Reconstructor {
    parallelism: Parallelism,
    tables: Vec<KeyTable>,
    /// Table index per local of the sweep in progress (reused scratch).
    order: Vec<usize>,
    // Sweep scratch, shared across scoped workers as `f64` bit patterns.
    plane: Vec<AtomicU64>,
    partials: Vec<AtomicU64>,
    marg: Vec<AtomicU64>,
    ratio: Vec<AtomicU64>,
    totals: Vec<AtomicU64>,
    total: AtomicU64,
    skip: AtomicU64,
}

impl Default for Reconstructor {
    fn default() -> Self {
        Reconstructor::new()
    }
}

impl Clone for Reconstructor {
    /// Clones the configuration and the cached key tables; sweep scratch
    /// is transient and starts empty in the clone.
    fn clone(&self) -> Self {
        Reconstructor {
            parallelism: self.parallelism,
            tables: self.tables.clone(),
            order: Vec::new(),
            plane: Vec::new(),
            partials: Vec::new(),
            marg: Vec::new(),
            ratio: Vec::new(),
            totals: Vec::new(),
            total: AtomicU64::new(0),
            skip: AtomicU64::new(0),
        }
    }
}

impl Reconstructor {
    /// A fresh engine with no cached tables, dispatching
    /// [`Parallelism::Auto`].
    pub fn new() -> Self {
        Reconstructor {
            parallelism: Parallelism::Auto,
            tables: Vec::new(),
            order: Vec::new(),
            plane: Vec::new(),
            partials: Vec::new(),
            marg: Vec::new(),
            ratio: Vec::new(),
            totals: Vec::new(),
            total: AtomicU64::new(0),
            skip: AtomicU64::new(0),
        }
    }

    /// Sets how sweeps spread across threads (default
    /// [`Parallelism::Auto`]: threaded from 2¹⁵ outcomes up). The choice
    /// never changes results — all dispatch modes are bit-identical.
    pub fn with_parallelism(mut self, mode: Parallelism) -> Self {
        self.parallelism = mode;
        self
    }

    /// The configured dispatch mode.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// How many (global, local) projection-key tables are cached.
    pub fn cached_key_tables(&self) -> usize {
        self.tables.len()
    }

    /// Drops all cached key tables (e.g. after a workload change to a
    /// disjoint set of measurement geometries).
    pub fn clear_key_cache(&mut self) {
        self.tables.clear();
    }

    /// JigSaw's full reconstruction: starts from the Global-PMF and
    /// applies the Bayesian update for every Local-PMF, returning the
    /// Output-PMF. Equivalent to [`crate::reconstruct`] but reusing this
    /// engine's cached key tables and scratch.
    ///
    /// # Panics
    ///
    /// Panics if a local PMF measures a qubit the global does not.
    pub fn reconstruct(
        &mut self,
        global: &Pmf,
        locals: &[Pmf],
        config: ReconstructionConfig,
    ) -> Pmf {
        let mut out = global.clone();
        self.sweep(&mut out, locals, config);
        out
    }

    /// Applies one Bayesian update of `global` by the evidence `local`,
    /// in place. Equivalent to [`crate::bayesian_update`] but reusing
    /// this engine's cached key tables and scratch.
    ///
    /// # Panics
    ///
    /// Panics if some qubit of `local` is not measured by `global`.
    pub fn update(&mut self, global: &mut Pmf, local: &Pmf, epsilon: f64) {
        self.sweep(
            global,
            std::slice::from_ref(local),
            ReconstructionConfig { epsilon, rounds: 1 },
        );
    }

    /// Runs `config.rounds` sweeps of Bayesian updates over `locals`,
    /// mutating `output` in place. `rounds: 0` leaves it untouched.
    ///
    /// # Panics
    ///
    /// Panics if a local measures a qubit `output` does not, or a window
    /// exceeds 32 qubits.
    pub fn sweep(&mut self, output: &mut Pmf, locals: &[Pmf], config: ReconstructionConfig) {
        if config.rounds == 0 || locals.is_empty() {
            return;
        }
        let _span = telemetry::span(telemetry::Stage::Reconstruction);
        let dim = output.probs().len();

        // Resolve (and on first sight, build) every local's key table up
        // front: cache insertion needs `&mut self`, while the worker
        // scope below only shares `&self`-reachable state.
        self.order.clear();
        for local in locals {
            let idx = self.table_index(output, local);
            self.order.push(idx);
        }

        let k_max = locals
            .iter()
            .map(|l| l.probs().len())
            .max()
            .expect("nonempty");
        let chunks_max = locals
            .iter()
            .map(|l| chunk_count(dim, l.probs().len()))
            .max()
            .expect("nonempty");
        let partial_max = locals
            .iter()
            .map(|l| chunk_count(dim, l.probs().len()) * l.probs().len())
            .max()
            .expect("nonempty");
        ensure(&mut self.plane, dim);
        ensure(&mut self.marg, k_max);
        ensure(&mut self.ratio, k_max);
        ensure(&mut self.partials, partial_max);
        ensure(&mut self.totals, chunks_max);

        // Stage the outcome probabilities into the shared plane.
        for (x, &p) in output.probs().iter().enumerate() {
            store(&self.plane[x], p);
        }

        let workers = self.resolve_workers(dim);
        let barrier = parallel::SpinBarrier::new(workers);
        let tables = &self.tables;
        let order = &self.order;
        let plane = &self.plane;
        let partials = &self.partials;
        let marg = &self.marg;
        let ratio = &self.ratio;
        let totals = &self.totals;
        let total = &self.total;
        let skip = &self.skip;
        let epsilon = config.epsilon;

        parallel::scope_workers(workers, |w| {
            for _ in 0..config.rounds {
                for (li, local) in locals.iter().enumerate() {
                    let keys = &tables[order[li]].keys[..dim];
                    let lp = local.probs();
                    let k = lp.len();
                    let n_chunks = chunk_count(dim, k);
                    let chunk_len = dim / n_chunks;
                    // Workers beyond the chunk count get empty ranges and
                    // only participate in the barriers.
                    let my = parallel::worker_range(n_chunks, workers, w);

                    // Phase A: per-chunk partial marginal histograms.
                    for c in my.clone() {
                        let part = &partials[c * k..(c + 1) * k];
                        for slot in part {
                            store(slot, 0.0);
                        }
                        for x in c * chunk_len..(c + 1) * chunk_len {
                            let j = keys[x] as usize;
                            store(&part[j], load(&part[j]) + load(&plane[x]));
                        }
                    }
                    barrier.wait();

                    if w == 0 {
                        // Reduce the partials in fixed chunk order, then
                        // compute the guarded ratios. The update is Bayes
                        // conditioned on the prior's support: window
                        // outcomes whose prior marginal is at or below
                        // epsilon keep their mass *exactly* (ratio 1 with
                        // the evidence renormalized around them), so
                        // near-zero prior mass is neither amplified by up
                        // to local/epsilon nor eroded by normalization
                        // drift, however many rounds run. If the prior
                        // supports no outcome carrying local evidence the
                        // update is skipped — reweighting would
                        // annihilate all mass.
                        for j in 0..k {
                            let mut s = 0.0;
                            for c in 0..n_chunks {
                                s += load(&partials[c * k + j]);
                            }
                            store(&marg[j], s);
                        }
                        // Unsupported prior mass (frozen) and the local
                        // evidence mass on supported outcomes.
                        let mut unsupported = 0.0;
                        let mut supported_evidence = 0.0;
                        for j in 0..k {
                            let m = load(&marg[j]);
                            if m > epsilon {
                                supported_evidence += lp[j];
                            } else {
                                unsupported += m;
                            }
                        }
                        if supported_evidence > 0.0 {
                            let scale = (1.0 - unsupported) / supported_evidence;
                            for j in 0..k {
                                let m = load(&marg[j]);
                                let r = if m > epsilon { lp[j] * scale / m } else { 1.0 };
                                store(&ratio[j], r);
                            }
                        }
                        skip.store(u64::from(supported_evidence <= 0.0), Ordering::Relaxed);
                    }
                    barrier.wait();
                    // Every worker reads the same flag after the barrier,
                    // so the remaining barrier sequence stays uniform.
                    if skip.load(Ordering::Relaxed) != 0 {
                        continue;
                    }

                    // Phase B: reweight, accumulating per-chunk masses.
                    for c in my.clone() {
                        let mut t = 0.0;
                        for x in c * chunk_len..(c + 1) * chunk_len {
                            let p = load(&plane[x]) * load(&ratio[keys[x] as usize]);
                            store(&plane[x], p);
                            t += p;
                        }
                        store(&totals[c], t);
                    }
                    barrier.wait();

                    if w == 0 {
                        let mut t = 0.0;
                        for c in 0..n_chunks {
                            t += load(&totals[c]);
                        }
                        store(total, t);
                    }
                    barrier.wait();

                    // Phase C: normalize, mirroring `Pmf::normalize`'s
                    // skip of already-unit mass. Every worker reads the
                    // same total, so the branch stays uniform.
                    let t = load(total);
                    if (t - 1.0).abs() > 1e-15 {
                        for c in my {
                            for x in c * chunk_len..(c + 1) * chunk_len {
                                store(&plane[x], load(&plane[x]) / t);
                            }
                        }
                    }
                    // Trailing barrier: consecutive locals can use
                    // *different* chunk grids (window size caps the chunk
                    // count), shifting worker boundaries in outcome space
                    // — the next phase A may read plane entries this
                    // update's phase C wrote on another worker.
                    barrier.wait();
                }
            }
        });

        for (x, p) in output.probs_mut().iter_mut().enumerate() {
            *p = load(&self.plane[x]);
        }
    }

    /// The cached key-table index for the (global, local) signature,
    /// building the table on first sight.
    fn table_index(&mut self, global: &Pmf, local: &Pmf) -> usize {
        if let Some(i) = self.tables.iter().position(|t| {
            t.global.as_slice() == global.qubits() && t.local.as_slice() == local.qubits()
        }) {
            return i;
        }
        assert!(
            local.num_qubits() <= 32,
            "window of {} qubits exceeds the 32-qubit key width",
            local.num_qubits()
        );
        let positions = global.projection_positions(local.qubits());
        let keys = (0..global.probs().len())
            .map(|x| {
                let mut key = 0u32;
                for (j, &pos) in positions.iter().enumerate() {
                    key |= (((x >> pos) & 1) as u32) << j;
                }
                key
            })
            .collect();
        self.tables.push(KeyTable {
            global: global.qubits().to_vec(),
            local: local.qubits().to_vec(),
            keys,
        });
        self.tables.len() - 1
    }

    /// The worker count a sweep over `dim` outcomes uses.
    fn resolve_workers(&self, dim: usize) -> usize {
        let cap = (dim / CHUNK_OUTCOMES).max(1).min(parallel::MAX_THREADS);
        match self.parallelism {
            Parallelism::Serial => 1,
            Parallelism::Threads(t) => t.clamp(1, cap),
            Parallelism::Auto => {
                if dim >= AUTO_MIN_OUTCOMES {
                    parallel::num_threads().min(cap)
                } else {
                    1
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn global3() -> Pmf {
        Pmf::new(
            vec![0, 1, 2],
            vec![0.2, 0.05, 0.1, 0.15, 0.05, 0.1, 0.15, 0.2],
        )
    }

    #[test]
    fn key_tables_cached_by_signature() {
        let global = global3();
        let locals = vec![global.marginal(&[0, 1]), global.marginal(&[1, 2])];
        let mut r = Reconstructor::new();
        r.reconstruct(&global, &locals, ReconstructionConfig::default());
        assert_eq!(r.cached_key_tables(), 2);
        // Same geometry: no new tables.
        r.reconstruct(&global, &locals, ReconstructionConfig::default());
        assert_eq!(r.cached_key_tables(), 2);
        // A new window geometry adds exactly one.
        r.reconstruct(
            &global,
            &[global.marginal(&[0, 2])],
            ReconstructionConfig::default(),
        );
        assert_eq!(r.cached_key_tables(), 3);
        r.clear_key_cache();
        assert_eq!(r.cached_key_tables(), 0);
    }

    #[test]
    fn cached_and_fresh_runs_are_bit_identical() {
        let global = global3();
        let locals = vec![
            Pmf::new(vec![0, 1], vec![0.4, 0.3, 0.2, 0.1]),
            Pmf::new(vec![1, 2], vec![0.1, 0.2, 0.3, 0.4]),
        ];
        let cfg = ReconstructionConfig::default();
        let mut engine = Reconstructor::new();
        let first = engine.reconstruct(&global, &locals, cfg);
        let prekeyed = engine.reconstruct(&global, &locals, cfg);
        let fresh = Reconstructor::new().reconstruct(&global, &locals, cfg);
        assert_eq!(first.probs(), prekeyed.probs());
        assert_eq!(first.probs(), fresh.probs());
    }

    #[test]
    fn serial_and_threaded_agree_bitwise_on_small_inputs() {
        let global = global3();
        let locals = vec![Pmf::new(vec![0], vec![0.9, 0.1])];
        let cfg = ReconstructionConfig::default();
        let serial = Reconstructor::new()
            .with_parallelism(Parallelism::Serial)
            .reconstruct(&global, &locals, cfg);
        for t in [2, 3, 8] {
            let threaded = Reconstructor::new()
                .with_parallelism(Parallelism::Threads(t))
                .reconstruct(&global, &locals, cfg);
            assert_eq!(serial.probs(), threaded.probs(), "{t} threads");
        }
    }

    #[test]
    fn incompatible_evidence_is_skipped() {
        // The prior supports only q0=0; the local insists on q0=1. No
        // supported window outcome carries evidence, so the update is a
        // documented no-op instead of annihilating all mass.
        let global = Pmf::new(vec![0, 1], vec![0.6, 0.0, 0.4, 0.0]);
        let local = Pmf::new(vec![0], vec![0.0, 1.0]);
        let out =
            Reconstructor::new().reconstruct(&global, &[local], ReconstructionConfig::default());
        assert_eq!(out.probs(), global.probs());
    }

    #[test]
    fn chunk_grid_is_worker_independent() {
        assert_eq!(chunk_count(1 << 10, 4), 1);
        assert_eq!(chunk_count(1 << 12, 4), 1);
        assert_eq!(chunk_count(1 << 13, 4), 2);
        assert_eq!(chunk_count(1 << 16, 4), 16);
        // Huge windows cap the grid so partials never outweigh the plane.
        assert_eq!(chunk_count(1 << 16, 1 << 14), 4);
        assert_eq!(chunk_count(1 << 16, 1 << 16), 1);
    }

    #[test]
    fn clone_keeps_tables_but_not_scratch() {
        let global = global3();
        let mut r = Reconstructor::new();
        r.reconstruct(
            &global,
            &[global.marginal(&[0, 1])],
            ReconstructionConfig::default(),
        );
        let c = r.clone();
        assert_eq!(c.cached_key_tables(), 1);
        assert!(c.plane.is_empty());
        assert_eq!(c.parallelism(), r.parallelism());
    }
}
