//! Matrix-based complete measurement error mitigation (MBM).
//!
//! IBM's standard mitigation (the paper's Section 6.8 combination study):
//! calibrate the full readout confusion matrix, invert it, and apply the
//! inverse to measured distributions. Because our noise channel is a tensor
//! product of per-qubit confusions, the inverse is the tensor product of the
//! 2×2 inverses and can be applied axis-by-axis in `O(k·2ᵏ)` — equivalent to
//! the `2ᵏ×2ᵏ` matrix inversion the textbook method performs, without the
//! exponential memory.
//!
//! Matrix inversion can produce negative quasi-probabilities; like Qiskit's
//! fitter we clip at zero and renormalize.

use crate::pmf::Pmf;
use qnoise::ReadoutError;

/// Applies the inverse readout-confusion map to a measured distribution.
///
/// `errors[j]` must be the (calibrated) readout error of `pmf.qubits()[j]`.
/// Returns the corrected PMF (clipped to nonnegative and renormalized).
///
/// # Panics
///
/// Panics if the error list length differs from the PMF's qubit count, or
/// if some confusion matrix is singular (`p10 + p01 = 1`, i.e. the readout
/// carries no information).
///
/// # Examples
///
/// MBM exactly undoes the modelled channel:
///
/// ```
/// use mitigation::{mbm_correct, Pmf};
/// use qnoise::{apply_readout_errors, ReadoutError};
///
/// let errors = [ReadoutError::new(0.08, 0.12), ReadoutError::new(0.02, 0.05)];
/// let ideal = Pmf::new(vec![0, 1], vec![0.5, 0.0, 0.0, 0.5]);
/// let mut noisy = ideal.probs().to_vec();
/// apply_readout_errors(&mut noisy, &errors);
/// let corrected = mbm_correct(&Pmf::new(vec![0, 1], noisy), &errors);
/// assert!(corrected.tvd(&ideal) < 1e-9);
/// ```
pub fn mbm_correct(pmf: &Pmf, errors: &[ReadoutError]) -> Pmf {
    assert_eq!(
        errors.len(),
        pmf.num_qubits(),
        "{} errors for {} measured qubits",
        errors.len(),
        pmf.num_qubits()
    );
    let mut probs = pmf.probs().to_vec();
    for (j, e) in errors.iter().enumerate() {
        if *e == ReadoutError::NONE {
            continue;
        }
        let det = 1.0 - e.p10() - e.p01();
        assert!(
            det.abs() > 1e-9,
            "confusion matrix of {e} is singular; cannot invert"
        );
        // Inverse of [[1-p10, p01], [p10, 1-p01]].
        let inv = [
            [(1.0 - e.p01()) / det, -e.p01() / det],
            [-e.p10() / det, (1.0 - e.p10()) / det],
        ];
        let mask = 1usize << j;
        for x in 0..probs.len() {
            if x & mask == 0 {
                let y = x | mask;
                let p0 = probs[x];
                let p1 = probs[y];
                probs[x] = inv[0][0] * p0 + inv[0][1] * p1;
                probs[y] = inv[1][0] * p0 + inv[1][1] * p1;
            }
        }
    }
    // Clip quasi-probabilities and renormalize (Qiskit's least-squares
    // fitter does the equivalent projection).
    let mut clipped: Vec<f64> = probs.iter().map(|&p| p.max(0.0)).collect();
    let total: f64 = clipped.iter().sum();
    if total <= 0.0 {
        // Degenerate input; fall back to uniform rather than panicking.
        let uniform = 1.0 / clipped.len() as f64;
        clipped.fill(uniform);
    }
    Pmf::new(pmf.qubits().to_vec(), clipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnoise::apply_readout_errors;

    #[test]
    fn exact_inverse_on_modelled_noise() {
        let errors = [
            ReadoutError::new(0.05, 0.1),
            ReadoutError::new(0.02, 0.07),
            ReadoutError::new(0.04, 0.04),
        ];
        let ideal = Pmf::new(vec![0, 1, 2], vec![0.3, 0.0, 0.1, 0.0, 0.0, 0.2, 0.0, 0.4]);
        let mut noisy = ideal.probs().to_vec();
        apply_readout_errors(&mut noisy, &errors);
        let corrected = mbm_correct(&Pmf::new(vec![0, 1, 2], noisy), &errors);
        assert!(corrected.tvd(&ideal) < 1e-9);
    }

    #[test]
    fn noiseless_errors_are_identity() {
        let pmf = Pmf::new(vec![0], vec![0.7, 0.3]);
        let out = mbm_correct(&pmf, &[ReadoutError::NONE]);
        assert_eq!(out, pmf);
    }

    #[test]
    fn clipping_handles_sampling_noise() {
        // A distribution inconsistent with the channel (e.g. from finite
        // shots) can invert to quasi-probabilities; output must still be a
        // valid PMF.
        let errors = [ReadoutError::new(0.2, 0.2)];
        let pmf = Pmf::new(vec![0], vec![0.99, 0.01]);
        let out = mbm_correct(&pmf, &errors);
        assert!(out.probs().iter().all(|&p| p >= 0.0));
        assert!((out.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(out.prob(0) > 0.99);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_confusion_panics() {
        let pmf = Pmf::new(vec![0], vec![0.5, 0.5]);
        mbm_correct(&pmf, &[ReadoutError::new(0.5, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "errors for")]
    fn wrong_error_count_panics() {
        let pmf = Pmf::new(vec![0, 1], vec![0.25; 4]);
        mbm_correct(&pmf, &[ReadoutError::NONE]);
    }
}
