//! Measurement shot counts.

use crate::pmf::Pmf;
use std::fmt;

/// Raw measurement counts over a set of measured qubits.
///
/// Bit `j` of an outcome index is the measured value of `qubits[j]`, as in
/// [`Pmf`].
///
/// # Examples
///
/// ```
/// use mitigation::Counts;
///
/// let c = Counts::new(vec![0, 1], vec![512, 0, 0, 512]);
/// assert_eq!(c.shots(), 1024);
/// let pmf = c.to_pmf();
/// assert_eq!(pmf.prob(0b00), 0.5);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counts {
    qubits: Vec<usize>,
    counts: Vec<u64>,
}

impl Counts {
    /// Creates counts over `qubits`.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != 2^qubits.len()`, a qubit repeats, or all
    /// counts are zero.
    pub fn new(qubits: Vec<usize>, counts: Vec<u64>) -> Self {
        assert_eq!(
            counts.len(),
            1usize << qubits.len(),
            "{} counts for {} qubits",
            counts.len(),
            qubits.len()
        );
        for (i, &q) in qubits.iter().enumerate() {
            assert!(!qubits[..i].contains(&q), "qubit {q} repeated");
        }
        assert!(counts.iter().any(|&c| c > 0), "all counts are zero");
        Counts { qubits, counts }
    }

    /// The measured qubits, in index-bit order.
    pub fn qubits(&self) -> &[usize] {
        &self.qubits
    }

    /// The per-outcome counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The total number of shots.
    pub fn shots(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The empirical distribution.
    pub fn to_pmf(&self) -> Pmf {
        let shots = self.shots() as f64;
        Pmf::new(
            self.qubits.clone(),
            self.counts.iter().map(|&c| c as f64 / shots).collect(),
        )
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "counts over qubits {:?} ({} shots):",
            self.qubits,
            self.shots()
        )?;
        for (x, c) in self.counts.iter().enumerate() {
            if *c > 0 {
                writeln!(f, "  {x:0width$b}: {c}", width = self.qubits.len().max(1))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_conversion_normalizes() {
        let c = Counts::new(vec![3], vec![300, 100]);
        let pmf = c.to_pmf();
        assert!((pmf.prob(0) - 0.75).abs() < 1e-12);
        assert!((pmf.prob(1) - 0.25).abs() < 1e-12);
        assert_eq!(pmf.qubits(), &[3]);
    }

    #[test]
    fn shots_sum_counts() {
        let c = Counts::new(vec![0, 1], vec![1, 2, 3, 4]);
        assert_eq!(c.shots(), 10);
    }

    #[test]
    #[should_panic(expected = "all counts are zero")]
    fn empty_counts_rejected() {
        Counts::new(vec![0], vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "counts for")]
    fn wrong_length_rejected() {
        Counts::new(vec![0, 1], vec![1, 2]);
    }
}
