//! JigSaw's Bayesian reconstruction.
//!
//! The third step of JigSaw (Fig.3): the low-fidelity, high-correlation
//! Global-PMF is reweighted by each high-fidelity Local-PMF. For a window
//! `w` the update is
//!
//! `P'(x) ∝ P(x) · L(x|w) / margw(P)(x|w)`
//!
//! — the probability of every full outcome `x` is rescaled so that the
//! marginal over `w` matches the local observation while the conditional
//! structure of the prior (the qubit-qubit correlations captured by the
//! global run) is preserved. This is Bayesian updating with the local
//! distributions as evidence.
//!
//! Where the prior runs out of support, the update is Bayes *conditioned
//! on the support*: window outcomes whose prior marginal mass is at or
//! below [`ReconstructionConfig::epsilon`] keep their mass exactly, and
//! the local evidence is renormalized over the supported outcomes. A
//! naive `local/(marginal+ε)` ratio would amplify near-zero prior mass by
//! up to `local/ε` and fully resurrect it within a round or two; freezing
//! the unsupported mass keeps it invariant across arbitrarily many
//! rounds. An update whose evidence lands *entirely* on unsupported
//! window outcomes is skipped as a whole (reweighting would annihilate
//! all mass).
//!
//! The functions here are one-shot conveniences; the engine underneath,
//! with its cached projection-key tables, preallocated scratch, and
//! parallel sweeps, is [`Reconstructor`](crate::Reconstructor).

use crate::pmf::Pmf;
use crate::recon::Reconstructor;
use parallel::Parallelism;

/// Configuration for [`reconstruct`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReconstructionConfig {
    /// Support threshold guarding the local/marginal ratio. Window
    /// outcomes whose prior marginal mass is at or below `epsilon` keep
    /// their mass exactly — the local evidence is renormalized over the
    /// supported outcomes instead of dividing by a vanishing marginal,
    /// which would amplify near-zero prior mass by up to `local/epsilon`
    /// per round and resurrect it within a few sweeps. JigSaw's
    /// reconstruction is statistical and tolerant of a small threshold;
    /// `1e-9` is a good default.
    pub epsilon: f64,
    /// Number of sweeps over the local PMFs. JigSaw performs one; extra
    /// rounds tighten the fixpoint at extra (classical) cost, and
    /// `rounds: 0` performs no update at all — [`reconstruct`] returns
    /// the prior unchanged.
    pub rounds: usize,
}

impl Default for ReconstructionConfig {
    fn default() -> Self {
        ReconstructionConfig {
            epsilon: 1e-9,
            rounds: 1,
        }
    }
}

/// Applies one Bayesian update of `global` by the evidence `local`.
///
/// One-shot wrapper over [`Reconstructor::update`]; callers updating
/// repeatedly with the same window geometry should hold a
/// [`Reconstructor`] instead to reuse its cached projection-key tables.
///
/// # Panics
///
/// Panics if some qubit of `local` is not measured by `global`.
pub fn bayesian_update(global: &mut Pmf, local: &Pmf, epsilon: f64) {
    Reconstructor::new()
        .with_parallelism(Parallelism::Serial)
        .update(global, local, epsilon);
}

/// JigSaw's full reconstruction: starts from the Global-PMF and applies the
/// Bayesian update for every Local-PMF, returning the Output-PMF.
///
/// One-shot wrapper over [`Reconstructor::reconstruct`]; callers
/// reconstructing repeatedly with the same window geometry (every VQE
/// evaluator) should hold a [`Reconstructor`] instead to reuse its cached
/// projection-key tables and scratch.
///
/// # Panics
///
/// Panics if a local PMF measures a qubit the global does not.
///
/// # Examples
///
/// When the locals agree with the global's own marginals, the
/// reconstruction is a no-op:
///
/// ```
/// use mitigation::{reconstruct, Pmf, ReconstructionConfig};
///
/// let global = Pmf::new(vec![0, 1, 2], vec![0.4, 0.1, 0.05, 0.05, 0.1, 0.05, 0.05, 0.2]);
/// let locals = vec![global.marginal(&[0, 1]), global.marginal(&[1, 2])];
/// let out = reconstruct(&global, &locals, ReconstructionConfig::default());
/// assert!(out.tvd(&global) < 1e-6);
/// ```
pub fn reconstruct(global: &Pmf, locals: &[Pmf], config: ReconstructionConfig) -> Pmf {
    Reconstructor::new().reconstruct(global, locals, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A noisy 2-qubit Bell distribution and a clean local on qubit 0.
    #[test]
    fn update_pulls_marginal_toward_local() {
        // Global says q0 is 0 with prob 0.6; local evidence says 0.9.
        let mut global = Pmf::new(vec![0, 1], vec![0.3, 0.2, 0.3, 0.2]);
        let local = Pmf::new(vec![0], vec![0.9, 0.1]);
        bayesian_update(&mut global, &local, 1e-12);
        let m = global.marginal(&[0]);
        assert!((m.prob(0) - 0.9).abs() < 1e-6, "{}", m.prob(0));
        // Conditional structure preserved: P(q1 | q0=0) unchanged (was 0.5/0.5).
        assert!((global.prob(0b00) - 0.45).abs() < 1e-6);
        assert!((global.prob(0b10) - 0.45).abs() < 1e-6);
    }

    #[test]
    fn fixpoint_when_local_matches_marginal() {
        let global = Pmf::new(
            vec![0, 1, 2],
            vec![0.2, 0.05, 0.1, 0.15, 0.05, 0.1, 0.15, 0.2],
        );
        let local = global.marginal(&[1, 2]);
        let out = reconstruct(&global, &[local], ReconstructionConfig::default());
        assert!(out.tvd(&global) < 1e-7);
    }

    #[test]
    fn reconstruction_recovers_readout_corrupted_ghz() {
        // Ideal GHZ over 3 qubits; global corrupted by heavy symmetric
        // readout noise; locals are clean pairwise marginals. The output
        // should be much closer to the ideal than the global was.
        let ideal = Pmf::new(vec![0, 1, 2], {
            let mut v = vec![0.0; 8];
            v[0] = 0.5;
            v[7] = 0.5;
            v
        });
        let mut noisy_probs: Vec<f64> = ideal.probs().to_vec();
        qnoise::apply_readout_errors(
            &mut noisy_probs,
            &[qnoise::ReadoutError::symmetric(0.15); 3],
        );
        let global = Pmf::new(vec![0, 1, 2], noisy_probs);
        let locals = vec![ideal.marginal(&[0, 1]), ideal.marginal(&[1, 2])];
        let out = reconstruct(&global, &locals, ReconstructionConfig::default());
        assert!(
            out.tvd(&ideal) < global.tvd(&ideal) * 0.5,
            "reconstruction tvd {} vs noisy {}",
            out.tvd(&ideal),
            global.tvd(&ideal)
        );
        assert!(out.fidelity(&ideal) > global.fidelity(&ideal));
    }

    #[test]
    fn zero_rounds_returns_prior_unchanged() {
        // Regression: `rounds: 0` used to be silently promoted to one
        // sweep. Zero rounds must perform zero updates.
        let global = Pmf::new(vec![0, 1], vec![0.4, 0.1, 0.1, 0.4]);
        let locals = vec![Pmf::new(vec![0], vec![0.9, 0.1])];
        let out = reconstruct(
            &global,
            &locals,
            ReconstructionConfig {
                epsilon: 1e-9,
                rounds: 0,
            },
        );
        assert_eq!(out.probs(), global.probs());
        assert_eq!(out.qubits(), global.qubits());
    }

    #[test]
    fn zero_prior_mass_is_not_resurrected() {
        // The global assigns zero to outcome 0b11 region; a local insisting
        // on q0=1 cannot move mass there beyond epsilon effects.
        let mut global = Pmf::new(vec![0, 1], vec![0.5, 0.0, 0.5, 0.0]);
        let local = Pmf::new(vec![0], vec![0.2, 0.8]);
        bayesian_update(&mut global, &local, 1e-9);
        assert!(global.prob(0b01) < 1e-6);
        assert!(global.prob(0b11) < 1e-6);
    }

    #[test]
    fn near_zero_prior_mass_is_not_resurrected_across_rounds() {
        // Regression for the epsilon-ratio blowup: with the old
        // `(local+ε)/(marg+ε)` update, a prior marginal of ~2e-12 was
        // amplified by ~local/ε ≈ 8e8 in round one and fully resurrected
        // to the local's 0.8 by round two. The support guard keeps it
        // within normalization drift of zero across many rounds.
        let global = Pmf::new(vec![0, 1], vec![0.5, 1e-12, 0.5, 1e-12]);
        let local = Pmf::new(vec![0], vec![0.2, 0.8]);
        let out = reconstruct(
            &global,
            &[local],
            ReconstructionConfig {
                epsilon: 1e-9,
                rounds: 8,
            },
        );
        let resurrected = out.marginal(&[0]).prob(1);
        assert!(resurrected < 1e-6, "resurrected mass {resurrected}");
    }

    #[test]
    fn multiple_rounds_tighten_consistency() {
        let global = Pmf::new(vec![0, 1], vec![0.4, 0.1, 0.1, 0.4]);
        let locals = vec![
            Pmf::new(vec![0], vec![0.8, 0.2]),
            Pmf::new(vec![1], vec![0.3, 0.7]),
        ];
        let once = reconstruct(
            &global,
            &locals,
            ReconstructionConfig {
                epsilon: 1e-9,
                rounds: 1,
            },
        );
        let many = reconstruct(
            &global,
            &locals,
            ReconstructionConfig {
                epsilon: 1e-9,
                rounds: 8,
            },
        );
        // After many rounds both marginals should be (nearly) satisfied.
        let m0 = many.marginal(&[0]);
        let m1 = many.marginal(&[1]);
        assert!((m0.prob(0) - 0.8).abs() < 0.02);
        assert!((m1.prob(1) - 0.7).abs() < 0.02);
        // One round gets the *last applied* marginal right.
        let m1_once = once.marginal(&[1]);
        assert!((m1_once.prob(1) - 0.7).abs() < 1e-6);
    }
}
