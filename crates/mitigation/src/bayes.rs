//! JigSaw's Bayesian reconstruction.
//!
//! The third step of JigSaw (Fig.3): the low-fidelity, high-correlation
//! Global-PMF is reweighted by each high-fidelity Local-PMF. For a window
//! `w` the update is
//!
//! `P'(x) ∝ P(x) · L(x|w) / margw(P)(x|w)`
//!
//! — the probability of every full outcome `x` is rescaled so that the
//! marginal over `w` matches the local observation while the conditional
//! structure of the prior (the qubit-qubit correlations captured by the
//! global run) is preserved. This is Bayesian updating with the local
//! distributions as evidence.

use crate::pmf::Pmf;

/// Configuration for [`reconstruct`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReconstructionConfig {
    /// Additive smoothing applied to the local/marginal ratio, guarding the
    /// division when the prior assigns (near-)zero mass to an observed
    /// window outcome. JigSaw's reconstruction is statistical and tolerant
    /// of small epsilon; `1e-9` is a good default.
    pub epsilon: f64,
    /// Number of sweeps over the local PMFs. JigSaw performs one; extra
    /// rounds tighten the fixpoint at extra (classical) cost.
    pub rounds: usize,
}

impl Default for ReconstructionConfig {
    fn default() -> Self {
        ReconstructionConfig {
            epsilon: 1e-9,
            rounds: 1,
        }
    }
}

/// Applies one Bayesian update of `global` by the evidence `local`.
///
/// # Panics
///
/// Panics if some qubit of `local` is not measured by `global`.
pub fn bayesian_update(global: &mut Pmf, local: &Pmf, epsilon: f64) {
    let sub = local.qubits().to_vec();
    let marg = global.marginal(&sub);
    // Precompute the per-window-outcome ratio.
    let ratios: Vec<f64> = (0..local.probs().len())
        .map(|w| (local.prob(w) + epsilon) / (marg.prob(w) + epsilon))
        .collect();
    let keys: Vec<usize> = (0..global.probs().len())
        .map(|x| global.project_outcome(x, &sub))
        .collect();
    let probs = global.probs_mut();
    for (x, p) in probs.iter_mut().enumerate() {
        *p *= ratios[keys[x]];
    }
    global.normalize();
}

/// JigSaw's full reconstruction: starts from the Global-PMF and applies the
/// Bayesian update for every Local-PMF, returning the Output-PMF.
///
/// # Panics
///
/// Panics if a local PMF measures a qubit the global does not.
///
/// # Examples
///
/// When the locals agree with the global's own marginals, the
/// reconstruction is a no-op:
///
/// ```
/// use mitigation::{reconstruct, Pmf, ReconstructionConfig};
///
/// let global = Pmf::new(vec![0, 1, 2], vec![0.4, 0.1, 0.05, 0.05, 0.1, 0.05, 0.05, 0.2]);
/// let locals = vec![global.marginal(&[0, 1]), global.marginal(&[1, 2])];
/// let out = reconstruct(&global, &locals, ReconstructionConfig::default());
/// assert!(out.tvd(&global) < 1e-6);
/// ```
pub fn reconstruct(global: &Pmf, locals: &[Pmf], config: ReconstructionConfig) -> Pmf {
    let mut out = global.clone();
    for _ in 0..config.rounds.max(1) {
        for local in locals {
            bayesian_update(&mut out, local, config.epsilon);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A noisy 2-qubit Bell distribution and a clean local on qubit 0.
    #[test]
    fn update_pulls_marginal_toward_local() {
        // Global says q0 is 0 with prob 0.6; local evidence says 0.9.
        let mut global = Pmf::new(vec![0, 1], vec![0.3, 0.2, 0.3, 0.2]);
        let local = Pmf::new(vec![0], vec![0.9, 0.1]);
        bayesian_update(&mut global, &local, 1e-12);
        let m = global.marginal(&[0]);
        assert!((m.prob(0) - 0.9).abs() < 1e-6, "{}", m.prob(0));
        // Conditional structure preserved: P(q1 | q0=0) unchanged (was 0.5/0.5).
        assert!((global.prob(0b00) - 0.45).abs() < 1e-6);
        assert!((global.prob(0b10) - 0.45).abs() < 1e-6);
    }

    #[test]
    fn fixpoint_when_local_matches_marginal() {
        let global = Pmf::new(
            vec![0, 1, 2],
            vec![0.2, 0.05, 0.1, 0.15, 0.05, 0.1, 0.15, 0.2],
        );
        let local = global.marginal(&[1, 2]);
        let out = reconstruct(&global, &[local], ReconstructionConfig::default());
        assert!(out.tvd(&global) < 1e-7);
    }

    #[test]
    fn reconstruction_recovers_readout_corrupted_ghz() {
        // Ideal GHZ over 3 qubits; global corrupted by heavy symmetric
        // readout noise; locals are clean pairwise marginals. The output
        // should be much closer to the ideal than the global was.
        let ideal = Pmf::new(vec![0, 1, 2], {
            let mut v = vec![0.0; 8];
            v[0] = 0.5;
            v[7] = 0.5;
            v
        });
        let mut noisy_probs: Vec<f64> = ideal.probs().to_vec();
        qnoise::apply_readout_errors(
            &mut noisy_probs,
            &[qnoise::ReadoutError::symmetric(0.15); 3],
        );
        let global = Pmf::new(vec![0, 1, 2], noisy_probs);
        let locals = vec![ideal.marginal(&[0, 1]), ideal.marginal(&[1, 2])];
        let out = reconstruct(&global, &locals, ReconstructionConfig::default());
        assert!(
            out.tvd(&ideal) < global.tvd(&ideal) * 0.5,
            "reconstruction tvd {} vs noisy {}",
            out.tvd(&ideal),
            global.tvd(&ideal)
        );
        assert!(out.fidelity(&ideal) > global.fidelity(&ideal));
    }

    #[test]
    fn zero_prior_mass_is_not_resurrected() {
        // The global assigns zero to outcome 0b11 region; a local insisting
        // on q0=1 cannot move mass there beyond epsilon effects.
        let mut global = Pmf::new(vec![0, 1], vec![0.5, 0.0, 0.5, 0.0]);
        let local = Pmf::new(vec![0], vec![0.2, 0.8]);
        bayesian_update(&mut global, &local, 1e-9);
        assert!(global.prob(0b01) < 1e-6);
        assert!(global.prob(0b11) < 1e-6);
    }

    #[test]
    fn multiple_rounds_tighten_consistency() {
        let global = Pmf::new(vec![0, 1], vec![0.4, 0.1, 0.1, 0.4]);
        let locals = vec![
            Pmf::new(vec![0], vec![0.8, 0.2]),
            Pmf::new(vec![1], vec![0.3, 0.7]),
        ];
        let once = reconstruct(
            &global,
            &locals,
            ReconstructionConfig {
                epsilon: 1e-9,
                rounds: 1,
            },
        );
        let many = reconstruct(
            &global,
            &locals,
            ReconstructionConfig {
                epsilon: 1e-9,
                rounds: 8,
            },
        );
        // After many rounds both marginals should be (nearly) satisfied.
        let m0 = many.marginal(&[0]);
        let m1 = many.marginal(&[1]);
        assert!((m0.prob(0) - 0.8).abs() < 0.02);
        assert!((m1.prob(1) - 0.7).abs() < 0.02);
        // One round gets the *last applied* marginal right.
        let m1_once = once.marginal(&[1]);
        assert!((m1_once.prob(1) - 0.7).abs() < 1e-6);
    }
}
