//! Measurement-error mitigation substrate for the VarSaw reproduction.
//!
//! Implements the prior work the paper builds on:
//!
//! - [`Pmf`] / [`Counts`]: outcome distributions and shot counts over
//!   measured-qubit subsets (the Global-/Local-/Output-PMFs of Fig.3),
//! - [`sliding_windows`] / [`JigsawPlan`]: JigSaw's Circuits with Partial
//!   Measurement (Das et al., MICRO'21),
//! - [`reconstruct`] / [`bayesian_update`]: JigSaw's Bayesian
//!   reconstruction, with [`Reconstructor`] as the reusable engine
//!   underneath (cached projection-key tables, allocation-free fused
//!   sweeps, optional parallel marginal reduction behind the shared
//!   [`Parallelism`] seam),
//! - [`mbm_correct`]: IBM-style matrix-based complete measurement
//!   mitigation (combined with VarSaw in the paper's Section 6.8).
//!
//! # Example
//!
//! ```
//! use mitigation::{Pmf, reconstruct, ReconstructionConfig};
//!
//! // A noisy global and one clean local over qubit 0.
//! let global = Pmf::new(vec![0, 1], vec![0.35, 0.15, 0.15, 0.35]);
//! let local = Pmf::new(vec![0], vec![0.95, 0.05]);
//! let output = reconstruct(&global, &[local], ReconstructionConfig::default());
//! assert!(output.marginal(&[0]).prob(0) > 0.9);
//! ```

mod bayes;
mod counts;
mod jigsaw;
mod mbm;
mod pmf;
mod recon;
mod window;
mod zne;

pub use bayes::{bayesian_update, reconstruct, ReconstructionConfig};
pub use counts::Counts;
pub use jigsaw::JigsawPlan;
pub use mbm::mbm_correct;
pub use parallel::Parallelism;
pub use pmf::Pmf;
pub use recon::Reconstructor;
pub use window::{jigsaw_subset_count, sliding_windows};
pub use zne::{richardson_extrapolate, zero_noise_extrapolate};
