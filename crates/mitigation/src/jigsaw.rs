//! Circuit-level JigSaw: subset planning and mitigation for one
//! measurement-basis circuit.
//!
//! This is the prior work the paper builds on (Das et al., MICRO'21),
//! reimplemented as a substrate: given a basis circuit, plan its
//! Circuits-with-Partial-Measurement (sliding windows) and reconstruct a
//! mitigated Output-PMF from the global and local counts. The VQA-level
//! orchestration (which circuits actually run, and when) lives in the
//! `varsaw` crate.

use crate::bayes::{reconstruct, ReconstructionConfig};
use crate::counts::Counts;
use crate::pmf::Pmf;
use crate::window::sliding_windows;
use pauli::PauliString;

/// The JigSaw execution plan for a single measurement-basis circuit.
///
/// # Examples
///
/// ```
/// use mitigation::JigsawPlan;
/// use pauli::PauliString;
///
/// let basis: PauliString = "ZZIZ".parse().unwrap();
/// let plan = JigsawPlan::new(basis, 2);
/// assert_eq!(plan.subsets().len(), 3);
/// assert_eq!(plan.circuits_per_execution(), 4); // 1 global + 3 subsets
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct JigsawPlan {
    basis: PauliString,
    window: usize,
    subsets: Vec<PauliString>,
}

impl JigsawPlan {
    /// Plans JigSaw for a measurement basis with the given subset window
    /// size (the paper and our Appendix-A reproduction both find 2
    /// optimal).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(basis: PauliString, window: usize) -> Self {
        let subsets = sliding_windows(&basis, window);
        JigsawPlan {
            basis,
            window,
            subsets,
        }
    }

    /// The measurement basis of the target circuit.
    pub fn basis(&self) -> &PauliString {
        &self.basis
    }

    /// The subset window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The subset descriptors: each is the basis restricted to one window;
    /// its support is the qubits that subset circuit measures.
    pub fn subsets(&self) -> &[PauliString] {
        &self.subsets
    }

    /// Total circuits per execution of this plan: the global plus every
    /// subset.
    pub fn circuits_per_execution(&self) -> usize {
        1 + self.subsets.len()
    }

    /// Reconstructs the mitigated Output-PMF from executed counts.
    ///
    /// `global` must measure exactly the basis support; `locals[i]` must
    /// measure exactly the support of `subsets()[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the measured-qubit sets do not match the plan.
    pub fn mitigate(
        &self,
        global: &Counts,
        locals: &[Counts],
        config: ReconstructionConfig,
    ) -> Pmf {
        assert_eq!(
            global.qubits(),
            &self.basis.support()[..],
            "global counts do not measure the basis support"
        );
        assert_eq!(
            locals.len(),
            self.subsets.len(),
            "{} local counts for {} subsets",
            locals.len(),
            self.subsets.len()
        );
        let local_pmfs: Vec<Pmf> = self
            .subsets
            .iter()
            .zip(locals)
            .map(|(s, c)| {
                assert_eq!(
                    c.qubits(),
                    &s.support()[..],
                    "local counts do not measure subset {s}"
                );
                c.to_pmf()
            })
            .collect();
        reconstruct(&global.to_pmf(), &local_pmfs, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn plan_counts_circuits() {
        let plan = JigsawPlan::new(ps("ZZZZZ"), 2);
        assert_eq!(plan.subsets().len(), 4);
        assert_eq!(plan.circuits_per_execution(), 5);
    }

    #[test]
    fn sparse_basis_planning() {
        let plan = JigsawPlan::new(ps("ZIIZ"), 2);
        assert_eq!(plan.subsets().len(), 2);
    }

    #[test]
    fn mitigate_against_synthetic_ghz() {
        // GHZ over a 3-qubit all-Z basis; global corrupted by readout
        // noise; locals clean. Mitigation should beat the raw global.
        let plan = JigsawPlan::new(ps("ZZZ"), 2);
        let ideal = Pmf::new(vec![0, 1, 2], {
            let mut v = vec![0.0; 8];
            v[0] = 0.5;
            v[7] = 0.5;
            v
        });
        let mut noisy = ideal.probs().to_vec();
        qnoise::apply_readout_errors(&mut noisy, &[qnoise::ReadoutError::symmetric(0.12); 3]);
        let global = Counts::new(
            vec![0, 1, 2],
            noisy
                .iter()
                .map(|p| (p * 100_000.0).round() as u64)
                .collect(),
        );
        let locals: Vec<Counts> = plan
            .subsets()
            .iter()
            .map(|s| {
                let sub = s.support();
                let m = ideal.marginal(&sub);
                Counts::new(
                    sub,
                    m.probs()
                        .iter()
                        .map(|p| (p * 100_000.0).round() as u64)
                        .collect(),
                )
            })
            .collect();
        let out = plan.mitigate(&global, &locals, ReconstructionConfig::default());
        assert!(out.tvd(&ideal) < global.to_pmf().tvd(&ideal) * 0.6);
    }

    #[test]
    #[should_panic(expected = "do not measure the basis support")]
    fn mismatched_global_panics() {
        let plan = JigsawPlan::new(ps("ZZ"), 2);
        let wrong = Counts::new(vec![0], vec![1, 1]);
        plan.mitigate(&wrong, &[], ReconstructionConfig::default());
    }

    #[test]
    #[should_panic(expected = "local counts for")]
    fn wrong_local_count_panics() {
        let plan = JigsawPlan::new(ps("ZZZ"), 2);
        let global = Counts::new(vec![0, 1, 2], vec![1; 8]);
        plan.mitigate(&global, &[], ReconstructionConfig::default());
    }
}
