//! Property test: the `Reconstructor` engine is bit-identical to a
//! textbook sequential Bayesian reconstruction — serial, key-cached, and
//! threaded (mirroring `qsim/tests/parallel_equiv.rs`).
//!
//! The engine's chunk grid is a pure function of the problem shape, so
//! worker count can only change *which thread* computes a partial, never
//! the arithmetic: serial and threaded sweeps must match **exactly**
//! (`==` on `f64`, not within a tolerance) for every input, qubit count
//! 2–10, window size, round count, and thread count 1–8. Up to 12 qubits
//! a global fits in a single chunk, where the kernel additionally matches
//! the naive sequential reference bit for bit; the 13-qubit multi-chunk
//! case re-associates the marginal reduction and is compared within
//! floating-point tolerance instead.

use mitigation::{reconstruct, Parallelism, Pmf, ReconstructionConfig, Reconstructor};
use proptest::prelude::*;

/// Textbook sequential reconstruction with the documented semantics:
/// per-outcome marginal accumulation, Bayes conditioned on the prior's
/// support (unsupported window outcomes keep their mass exactly), skip of
/// fully incompatible updates, and `Pmf::normalize`-style normalization.
fn naive_reconstruct(global: &Pmf, locals: &[Pmf], config: ReconstructionConfig) -> Pmf {
    let mut out = global.clone();
    for _ in 0..config.rounds {
        for local in locals {
            let positions = out.projection_positions(local.qubits());
            let key = |x: usize| -> usize {
                positions
                    .iter()
                    .enumerate()
                    .map(|(j, &pos)| ((x >> pos) & 1) << j)
                    .sum()
            };
            let k = local.probs().len();
            let mut marg = vec![0.0; k];
            for (x, &p) in out.probs().iter().enumerate() {
                marg[key(x)] += p;
            }
            let mut unsupported = 0.0;
            let mut supported_evidence = 0.0;
            for j in 0..k {
                if marg[j] > config.epsilon {
                    supported_evidence += local.prob(j);
                } else {
                    unsupported += marg[j];
                }
            }
            if supported_evidence <= 0.0 {
                continue;
            }
            let scale = (1.0 - unsupported) / supported_evidence;
            let ratio: Vec<f64> = (0..k)
                .map(|j| {
                    if marg[j] > config.epsilon {
                        local.prob(j) * scale / marg[j]
                    } else {
                        1.0
                    }
                })
                .collect();
            let probs = out.probs_mut();
            let mut total = 0.0;
            for (x, p) in probs.iter_mut().enumerate() {
                *p *= ratio[key(x)];
                total += *p;
            }
            if (total - 1.0).abs() > 1e-15 {
                for p in probs.iter_mut() {
                    *p /= total;
                }
            }
        }
    }
    out
}

/// Weights in `[0, 1)` with a sprinkling of exact zeros (from the mask),
/// so the support guard is exercised; at least one cell stays positive.
fn arb_weights(n: usize) -> impl Strategy<Value = Vec<f64>> {
    (
        prop::collection::vec(0.0..1.0f64, n),
        prop::collection::vec(0.0..1.0f64, n),
    )
        .prop_map(|(mut w, mask)| {
            for (x, m) in mask.into_iter().enumerate() {
                if m < 0.5 {
                    w[x] = 0.0;
                }
            }
            if w.iter().sum::<f64>() <= 0.0 {
                w[0] = 0.5;
            }
            w
        })
}

/// The sliding window subsets `[s, s+window)` of `0..n`.
fn window_subsets(n: usize, window: usize) -> Vec<Vec<usize>> {
    let m = window.min(n);
    (0..=n - m).map(|s| (s..s + m).collect()).collect()
}

proptest! {
    /// Serial `Reconstructor` output reproduces the naive reference bit
    /// for bit, and threaded/prekeyed runs reproduce the serial run bit
    /// for bit, across qubit counts 2–10, window sizes 1–3, round counts
    /// 0–3, and thread counts 1–8.
    #[test]
    fn reconstructor_is_bit_identical(
        n in 2usize..=10,
        window in 1usize..=3,
        rounds in 0usize..=3,
        threads in 1usize..=8,
        global_seed in prop::collection::vec(0.01..1.0f64, 1 << 10),
        local_seed in prop::collection::vec(0.01..1.0f64, 1 << 3),
    ) {
        let dim = 1usize << n;
        let global = Pmf::new((0..n).collect(), global_seed[..dim].to_vec());
        let m = window.min(n);
        let locals: Vec<Pmf> = window_subsets(n, window)
            .into_iter()
            .enumerate()
            .map(|(i, sub)| {
                let k = 1usize << m;
                // Rotate the seed so windows carry distinct evidence.
                let probs: Vec<f64> = (0..k).map(|j| local_seed[(i + j) % 8]).collect();
                Pmf::new(sub, probs)
            })
            .collect();
        let config = ReconstructionConfig { epsilon: 1e-9, rounds };

        let reference = naive_reconstruct(&global, &locals, config);
        let mut engine = Reconstructor::new().with_parallelism(Parallelism::Serial);
        let serial = engine.reconstruct(&global, &locals, config);
        prop_assert_eq!(reference.probs(), serial.probs(), "naive vs serial");

        // Prekeyed: the second run hits the key cache.
        let prekeyed = engine.reconstruct(&global, &locals, config);
        prop_assert_eq!(serial.probs(), prekeyed.probs(), "serial vs prekeyed");

        let threaded = Reconstructor::new()
            .with_parallelism(Parallelism::Threads(threads))
            .reconstruct(&global, &locals, config);
        prop_assert_eq!(serial.probs(), threaded.probs(), "{} threads", threads);
    }

    /// The support guard (zeroed prior cells) keeps all paths in exact
    /// agreement too.
    #[test]
    fn bit_identical_with_zeroed_prior_cells(
        weights in arb_weights(1 << 6),
        rounds in 1usize..=3,
        threads in 2usize..=8,
    ) {
        let n = 6;
        let global = Pmf::new((0..n).collect(), weights);
        let locals: Vec<Pmf> = window_subsets(n, 2)
            .into_iter()
            .map(|sub| Pmf::new(sub, vec![0.4, 0.3, 0.2, 0.1]))
            .collect();
        let config = ReconstructionConfig { epsilon: 1e-9, rounds };
        let reference = naive_reconstruct(&global, &locals, config);
        let serial = Reconstructor::new()
            .with_parallelism(Parallelism::Serial)
            .reconstruct(&global, &locals, config);
        let threaded = Reconstructor::new()
            .with_parallelism(Parallelism::Threads(threads))
            .reconstruct(&global, &locals, config);
        prop_assert_eq!(reference.probs(), serial.probs());
        prop_assert_eq!(serial.probs(), threaded.probs());
    }

    /// The compatibility wrapper `reconstruct()` is the one-shot engine.
    #[test]
    fn wrapper_matches_engine(
        global_seed in prop::collection::vec(0.01..1.0f64, 1 << 4),
        rounds in 0usize..=2,
    ) {
        let global = Pmf::new(vec![0, 1, 2, 3], global_seed);
        let locals = vec![global.marginal(&[0, 1]), Pmf::new(vec![2, 3], vec![0.1, 0.2, 0.3, 0.4])];
        let config = ReconstructionConfig { epsilon: 1e-9, rounds };
        let wrapped = reconstruct(&global, &locals, config);
        let engine = Reconstructor::new().reconstruct(&global, &locals, config);
        prop_assert_eq!(wrapped.probs(), engine.probs());
    }
}

/// Consecutive locals with *different* chunk grids (a 13-qubit window
/// caps its grid at 2 chunks while a 2-qubit window gets 4) shift worker
/// boundaries in outcome space between updates — the regime where a
/// missing inter-update barrier would let a worker read another worker's
/// un-normalized chunk. Serial and threaded must still agree bit for bit
/// at every thread count, including ones that divide neither grid.
#[test]
fn mixed_window_chunk_grids_are_bit_identical() {
    let n = 14;
    let dim = 1usize << n;
    let probs: Vec<f64> = (0..dim)
        .map(|x| ((x.wrapping_mul(2654435761)) % 997 + 1) as f64)
        .collect();
    let global = Pmf::new((0..n).collect(), probs);
    let wide: Vec<usize> = (0..13).collect();
    let wide_probs: Vec<f64> = (0..1usize << 13).map(|j| ((j % 31) + 1) as f64).collect();
    let locals = vec![
        Pmf::new(wide, wide_probs),
        Pmf::new(vec![0, 1], vec![0.4, 0.1, 0.2, 0.3]),
        Pmf::new(vec![12, 13], vec![0.3, 0.3, 0.2, 0.2]),
    ];
    let config = ReconstructionConfig {
        epsilon: 1e-9,
        rounds: 2,
    };
    let serial = Reconstructor::new()
        .with_parallelism(Parallelism::Serial)
        .reconstruct(&global, &locals, config);
    for threads in [2usize, 3, 4, 7] {
        let threaded = Reconstructor::new()
            .with_parallelism(Parallelism::Threads(threads))
            .reconstruct(&global, &locals, config);
        assert_eq!(serial.probs(), threaded.probs(), "{threads} threads");
    }
}

/// 13 qubits splits into two chunks: serial and threaded sweeps must stay
/// bit-identical for every thread count (the grid is worker-independent),
/// while the naive sequential reference — whose marginal sums are not
/// chunk-associated — agrees within floating-point tolerance.
#[test]
fn multi_chunk_sweeps_are_thread_count_independent() {
    let n = 13;
    let dim = 1usize << n;
    let probs: Vec<f64> = (0..dim)
        .map(|x| ((x * 2654435761) % 1000 + 1) as f64)
        .collect();
    let global = Pmf::new((0..n).collect(), probs);
    let locals: Vec<Pmf> = (0..n - 1)
        .map(|s| {
            let probs = vec![0.4, 0.1, 0.2, 0.3];
            Pmf::new(vec![s, s + 1], probs)
        })
        .collect();
    let config = ReconstructionConfig {
        epsilon: 1e-9,
        rounds: 2,
    };
    let serial = Reconstructor::new()
        .with_parallelism(Parallelism::Serial)
        .reconstruct(&global, &locals, config);
    for threads in [1usize, 2, 3, 5, 8] {
        let threaded = Reconstructor::new()
            .with_parallelism(Parallelism::Threads(threads))
            .reconstruct(&global, &locals, config);
        assert_eq!(serial.probs(), threaded.probs(), "{threads} threads");
    }
    let auto = Reconstructor::new()
        .with_parallelism(Parallelism::Auto)
        .reconstruct(&global, &locals, config);
    assert_eq!(serial.probs(), auto.probs(), "auto dispatch");
    let reference = naive_reconstruct(&global, &locals, config);
    assert!(
        reference.tvd(&serial) < 1e-12,
        "multi-chunk reduction drifted: tvd {}",
        reference.tvd(&serial)
    );
}
