//! Property-based tests for the mitigation substrate.

use mitigation::{
    bayesian_update, mbm_correct, reconstruct, sliding_windows, Pmf, ReconstructionConfig,
};
use pauli::{Pauli, PauliString};
use proptest::prelude::*;
use qnoise::{apply_readout_errors, ReadoutError};

fn arb_pmf(qubits: Vec<usize>) -> impl Strategy<Value = Pmf> {
    let n = 1usize << qubits.len();
    prop::collection::vec(0.01..1.0f64, n).prop_map(move |w| Pmf::new(qubits.clone(), w))
}

fn arb_string(n: usize) -> impl Strategy<Value = PauliString> {
    prop::collection::vec(
        prop::sample::select(vec![Pauli::I, Pauli::X, Pauli::Y, Pauli::Z]),
        n,
    )
    .prop_map(PauliString::new)
}

proptest! {
    /// Bayesian updates keep PMFs valid and exactly impose the local
    /// marginal when the prior has full support.
    #[test]
    fn bayes_imposes_local_marginal(global in arb_pmf(vec![0, 1, 2]), local in arb_pmf(vec![1])) {
        let mut out = global.clone();
        bayesian_update(&mut out, &local, 1e-12);
        prop_assert!((out.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let m = out.marginal(&[1]);
        prop_assert!((m.prob(0) - local.prob(0)).abs() < 1e-6);
    }

    /// Reconstruction with locals equal to the global's own marginals is a
    /// fixpoint.
    #[test]
    fn reconstruction_fixpoint(global in arb_pmf(vec![0, 1, 2])) {
        let locals = vec![global.marginal(&[0, 1]), global.marginal(&[1, 2])];
        let out = reconstruct(&global, &locals, ReconstructionConfig::default());
        prop_assert!(out.tvd(&global) < 1e-6);
    }

    /// Reconstruction output is always a valid PMF over the same qubits.
    #[test]
    fn reconstruction_output_is_valid(
        global in arb_pmf(vec![0, 1, 2]),
        l0 in arb_pmf(vec![0, 1]),
        l1 in arb_pmf(vec![1, 2]),
    ) {
        let out = reconstruct(&global, &[l0, l1], ReconstructionConfig::default());
        prop_assert_eq!(out.qubits(), global.qubits());
        prop_assert!((out.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(out.probs().iter().all(|&p| p >= -1e-12));
    }

    /// MBM inverts the modelled channel exactly (up to numerical noise)
    /// when the distribution really went through it.
    #[test]
    fn mbm_inverts_modelled_channel(
        ideal in arb_pmf(vec![0, 1]),
        p10a in 0.0..0.3f64, p01a in 0.0..0.3f64,
        p10b in 0.0..0.3f64, p01b in 0.0..0.3f64,
    ) {
        let errors = [ReadoutError::new(p10a, p01a), ReadoutError::new(p10b, p01b)];
        let mut noisy = ideal.probs().to_vec();
        apply_readout_errors(&mut noisy, &errors);
        let corrected = mbm_correct(&Pmf::new(vec![0, 1], noisy), &errors);
        prop_assert!(corrected.tvd(&ideal) < 1e-7);
    }

    /// MBM output is always a valid PMF, even on inconsistent inputs.
    #[test]
    fn mbm_output_is_valid(pmf in arb_pmf(vec![0, 1]), p10 in 0.0..0.4f64, p01 in 0.0..0.4f64) {
        let out = mbm_correct(&pmf, &[ReadoutError::new(p10, p01), ReadoutError::new(p01, p10)]);
        prop_assert!((out.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(out.probs().iter().all(|&p| p >= 0.0));
    }

    /// Every sliding-window subset is covered by its basis, has support
    /// within one window, and the subset count is at most n − m + 1.
    #[test]
    fn windows_are_covered_restrictions(basis in arb_string(6), m in 1usize..5) {
        let subsets = sliding_windows(&basis, m);
        prop_assert!(subsets.len() <= 6 - m + 1);
        for s in &subsets {
            prop_assert!(basis.covers(s));
            prop_assert!(!s.is_identity());
            let sup = s.support();
            if let (Some(&lo), Some(&hi)) = (sup.first(), sup.last()) {
                prop_assert!(hi - lo < m);
            }
        }
    }

    /// Marginalization commutes with the readout channel when the channel
    /// acts independently per qubit (sanity link between qnoise and Pmf).
    #[test]
    fn marginal_commutes_with_channel(ideal in arb_pmf(vec![0, 1]), p in 0.0..0.3f64) {
        let e = ReadoutError::symmetric(p);
        // Channel then marginal.
        let mut noisy = ideal.probs().to_vec();
        apply_readout_errors(&mut noisy, &[e, e]);
        let m1 = Pmf::new(vec![0, 1], noisy).marginal(&[0]);
        // Marginal then channel.
        let marg = ideal.marginal(&[0]);
        let mut probs = marg.probs().to_vec();
        apply_readout_errors(&mut probs, &[e]);
        let m2 = Pmf::new(vec![0], probs);
        prop_assert!(m1.tvd(&m2) < 1e-9);
    }
}
