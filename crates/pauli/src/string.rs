//! Multi-qubit Pauli strings.

use crate::pauli::Pauli;
use qsim::{Statevector, C64};
use std::fmt;
use std::str::FromStr;

/// A tensor product of single-qubit Paulis over a fixed number of qubits.
///
/// Index `i` is the Pauli acting on qubit `i`; the display convention puts
/// qubit 0 on the **left**, matching the paper's figures (e.g. `"ZZIZ"` acts
/// with Z on qubits 0, 1, 3).
///
/// # Examples
///
/// ```
/// use pauli::PauliString;
///
/// let s: PauliString = "ZZIZ".parse().unwrap();
/// assert_eq!(s.weight(), 3);
/// assert_eq!(s.support(), vec![0, 1, 3]);
/// let covered: PauliString = "ZZII".parse().unwrap();
/// assert!(s.covers(&covered));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PauliString {
    paulis: Vec<Pauli>,
}

/// Error returned when parsing a [`PauliString`] from text fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePauliStringError {
    offending: char,
}

impl fmt::Display for ParsePauliStringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid Pauli character {:?} (expected I, X, Y, Z or -)",
            self.offending
        )
    }
}

impl std::error::Error for ParsePauliStringError {}

impl PauliString {
    /// The all-identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            paulis: vec![Pauli::I; n],
        }
    }

    /// Builds a string from its per-qubit Paulis.
    pub fn new(paulis: Vec<Pauli>) -> Self {
        PauliString { paulis }
    }

    /// A string that is `p` on qubit `q` of `n`, identity elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `q >= n`.
    pub fn single(n: usize, q: usize, p: Pauli) -> Self {
        assert!(q < n, "qubit {q} out of range for {n} qubits");
        let mut s = Self::identity(n);
        s.paulis[q] = p;
        s
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.paulis.len()
    }

    /// The per-qubit Paulis (index = qubit).
    pub fn paulis(&self) -> &[Pauli] {
        &self.paulis
    }

    /// The Pauli on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn pauli_at(&self, q: usize) -> Pauli {
        self.paulis[q]
    }

    /// Replaces the Pauli on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn set(&mut self, q: usize, p: Pauli) {
        self.paulis[q] = p;
    }

    /// Whether every position is the identity.
    pub fn is_identity(&self) -> bool {
        self.paulis.iter().all(|p| p.is_identity())
    }

    /// The number of non-identity positions.
    pub fn weight(&self) -> usize {
        self.paulis.iter().filter(|p| !p.is_identity()).count()
    }

    /// The qubits with non-identity Paulis, in increasing order.
    pub fn support(&self) -> Vec<usize> {
        self.paulis
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_identity())
            .map(|(q, _)| q)
            .collect()
    }

    /// Qubit-wise compatibility: at every position the two strings are
    /// equal or at least one is identity. Compatible strings can be measured
    /// by a single circuit whose basis is their union.
    ///
    /// # Panics
    ///
    /// Panics if the strings have different lengths.
    pub fn qubitwise_compatible(&self, other: &PauliString) -> bool {
        assert_eq!(
            self.num_qubits(),
            other.num_qubits(),
            "qubit count mismatch"
        );
        self.paulis
            .iter()
            .zip(&other.paulis)
            .all(|(a, b)| a.qubitwise_compatible(*b))
    }

    /// Whether measuring in basis `self` also yields `other`: at every
    /// non-identity position of `other`, `self` holds the same Pauli.
    ///
    /// This is the paper's "trivial commutation" relation (Fig.7's arrows
    /// point from covered Paulis to their covering parents).
    ///
    /// # Panics
    ///
    /// Panics if the strings have different lengths.
    pub fn covers(&self, other: &PauliString) -> bool {
        assert_eq!(
            self.num_qubits(),
            other.num_qubits(),
            "qubit count mismatch"
        );
        self.paulis
            .iter()
            .zip(&other.paulis)
            .all(|(a, b)| b.is_identity() || a == b)
    }

    /// The union basis of two qubit-wise compatible strings, or `None` if
    /// they clash at some position.
    pub fn try_union(&self, other: &PauliString) -> Option<PauliString> {
        if !self.qubitwise_compatible(other) {
            return None;
        }
        Some(PauliString::new(
            self.paulis
                .iter()
                .zip(&other.paulis)
                .map(|(a, b)| if a.is_identity() { *b } else { *a })
                .collect(),
        ))
    }

    /// The restriction of the string to a window of qubits: identity outside
    /// `start..start + len`.
    ///
    /// This is JigSaw's "Circuit with Partial Measurement" descriptor: the
    /// returned string's non-identity positions are exactly the qubits the
    /// subset circuit measures, in their bases.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the string.
    ///
    /// ```
    /// use pauli::PauliString;
    /// let s: PauliString = "ZZIZ".parse().unwrap();
    /// assert_eq!(s.window(1, 2).to_string(), "IZII");
    /// ```
    pub fn window(&self, start: usize, len: usize) -> PauliString {
        assert!(
            start + len <= self.num_qubits(),
            "window {start}+{len} exceeds {} qubits",
            self.num_qubits()
        );
        let mut out = Self::identity(self.num_qubits());
        out.paulis[start..start + len].copy_from_slice(&self.paulis[start..start + len]);
        out
    }

    /// The expectation value `⟨ψ|P|ψ⟩` on a pure state (exact; no sampling).
    ///
    /// # Panics
    ///
    /// Panics if the state has fewer qubits than the string.
    pub fn expectation(&self, state: &Statevector) -> f64 {
        assert!(
            state.num_qubits() >= self.num_qubits(),
            "state has {} qubits but string needs {}",
            state.num_qubits(),
            self.num_qubits()
        );
        let (flip, phase_mask, ny) = self.masks();
        let amps = state.amplitudes();
        let mut acc = C64::ZERO;
        for (x, a) in amps.iter().enumerate() {
            if a.norm_sqr() == 0.0 {
                continue;
            }
            let sign = if ((x & phase_mask).count_ones()) % 2 == 0 {
                1.0
            } else {
                -1.0
            };
            acc += amps[x ^ flip].conj() * a.scale(sign);
        }
        let iphase = i_power(ny);
        (acc * iphase).re
    }

    /// Accumulates `y += coeff · P|x⟩` for the statevector amplitudes `x`.
    ///
    /// Used by the Hamiltonian's matrix-free [`qsim::HermitianOp`]
    /// implementation.
    pub(crate) fn apply_accumulate(&self, coeff: f64, x: &[C64], y: &mut [C64]) {
        let (flip, phase_mask, ny) = self.masks();
        let iphase = i_power(ny).scale(coeff);
        for (idx, a) in x.iter().enumerate() {
            let sign = if ((idx & phase_mask).count_ones()) % 2 == 0 {
                1.0
            } else {
                -1.0
            };
            y[idx ^ flip] += *a * iphase.scale(sign);
        }
    }

    /// Returns `(flip_mask, phase_mask, n_y)`: bits flipped by X/Y, bits
    /// contributing a (-1) phase (Y/Z), and the Y count (global iⁿ phase).
    fn masks(&self) -> (usize, usize, u32) {
        let mut flip = 0usize;
        let mut phase = 0usize;
        let mut ny = 0u32;
        for (q, p) in self.paulis.iter().enumerate() {
            match p {
                Pauli::I => {}
                Pauli::X => flip |= 1 << q,
                Pauli::Y => {
                    flip |= 1 << q;
                    phase |= 1 << q;
                    ny += 1;
                }
                Pauli::Z => phase |= 1 << q,
            }
        }
        (flip, phase, ny)
    }
}

/// `i^n` as a complex number.
fn i_power(n: u32) -> C64 {
    match n % 4 {
        0 => C64::ONE,
        1 => C64::I,
        2 => -C64::ONE,
        _ => -C64::I,
    }
}

impl FromStr for PauliString {
    type Err = ParsePauliStringError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let paulis = s
            .chars()
            .map(|c| Pauli::from_char(c).ok_or(ParsePauliStringError { offending: c }))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PauliString { paulis })
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.paulis {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::Circuit;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["IXYZ", "ZZZZ", "IIII", "XY"] {
            assert_eq!(ps(s).to_string(), s);
        }
        // Dashes parse as identity.
        assert_eq!(ps("ZZ--"), ps("ZZII"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("ZQ".parse::<PauliString>().is_err());
        let err = "A".parse::<PauliString>().unwrap_err();
        assert!(err.to_string().contains("'A'"));
    }

    #[test]
    fn weight_support_identity() {
        let s = ps("IXIZ");
        assert_eq!(s.weight(), 2);
        assert_eq!(s.support(), vec![1, 3]);
        assert!(!s.is_identity());
        assert!(PauliString::identity(5).is_identity());
    }

    #[test]
    fn covers_examples_from_fig6() {
        // Red terms of Eq.1 are covered by black terms.
        assert!(ps("ZZIZ").covers(&ps("ZZII")));
        assert!(ps("ZIZX").covers(&ps("IIZX")));
        assert!(ps("ZXXZ").covers(&ps("ZXIZ")));
        // Covering is not symmetric.
        assert!(!ps("ZZII").covers(&ps("ZZIZ")));
        // A clash prevents covering.
        assert!(!ps("ZZIZ").covers(&ps("XZII")));
    }

    #[test]
    fn compatibility_vs_cover() {
        let a = ps("ZIIZ");
        let b = ps("IZZI");
        assert!(a.qubitwise_compatible(&b));
        assert!(!a.covers(&b));
        assert_eq!(a.try_union(&b).unwrap(), ps("ZZZZ"));
        assert_eq!(ps("XIII").try_union(&ps("ZIII")), None);
    }

    #[test]
    fn window_restricts() {
        let s = ps("ZXYZ");
        assert_eq!(s.window(0, 2), ps("ZXII"));
        assert_eq!(s.window(1, 2), ps("IXYI"));
        assert_eq!(s.window(2, 2), ps("IIYZ"));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn window_out_of_range_panics() {
        ps("ZZ").window(1, 2);
    }

    #[test]
    fn expectation_on_zero_state() {
        let s0 = Statevector::zero(2);
        assert_eq!(ps("ZI").expectation(&s0), 1.0);
        assert_eq!(ps("ZZ").expectation(&s0), 1.0);
        assert_eq!(ps("XI").expectation(&s0), 0.0);
        assert_eq!(ps("II").expectation(&s0), 1.0);
    }

    #[test]
    fn expectation_on_excited_state() {
        let mut st = Statevector::zero(2);
        let mut c = Circuit::new(2);
        c.x(0);
        st.apply_circuit(&c);
        assert_eq!(ps("ZI").expectation(&st), -1.0);
        assert_eq!(ps("IZ").expectation(&st), 1.0);
        assert_eq!(ps("ZZ").expectation(&st), -1.0);
    }

    #[test]
    fn expectation_on_plus_state() {
        let mut st = Statevector::zero(1);
        let mut c = Circuit::new(1);
        c.h(0);
        st.apply_circuit(&c);
        assert!((ps("X").expectation(&st) - 1.0).abs() < 1e-12);
        assert!(ps("Z").expectation(&st).abs() < 1e-12);
    }

    #[test]
    fn expectation_of_y_on_circular_state() {
        // S H |0⟩ = (|0⟩ + i|1⟩)/√2 is the +1 eigenstate of Y.
        let mut st = Statevector::zero(1);
        let mut c = Circuit::new(1);
        c.h(0).s(0);
        st.apply_circuit(&c);
        assert!((ps("Y").expectation(&st) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_of_bell_correlations() {
        let mut st = Statevector::zero(2);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        st.apply_circuit(&c);
        assert!((ps("ZZ").expectation(&st) - 1.0).abs() < 1e-12);
        assert!((ps("XX").expectation(&st) - 1.0).abs() < 1e-12);
        assert!((ps("YY").expectation(&st) + 1.0).abs() < 1e-12);
        assert!(ps("ZI").expectation(&st).abs() < 1e-12);
    }

    #[test]
    fn fig7_cover_parent_counts() {
        // Fig.7: among the 27 three-qubit strings over {I, X, Z}, the number
        // of *other* strings that cover a given string is:
        //   III → 26, IIZ → 8, IZZ → 2, ZZZ → 0.
        let alphabet = [Pauli::I, Pauli::X, Pauli::Z];
        let mut all = Vec::new();
        for a in alphabet {
            for b in alphabet {
                for c in alphabet {
                    all.push(PauliString::new(vec![a, b, c]));
                }
            }
        }
        assert_eq!(all.len(), 27);
        let parents = |target: &PauliString| {
            all.iter()
                .filter(|s| *s != target && s.covers(target))
                .count()
        };
        assert_eq!(parents(&ps("III")), 26);
        assert_eq!(parents(&ps("IIZ")), 8);
        assert_eq!(parents(&ps("IZZ")), 2);
        assert_eq!(parents(&ps("ZZZ")), 0);
    }
}
