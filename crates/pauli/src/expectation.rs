//! Pauli expectation values from measured outcome distributions.

use crate::string::PauliString;

/// Computes the expectation value of a Pauli string from an outcome
/// distribution over a measured-qubit subset.
///
/// `probs` is a distribution over `2^measured.len()` outcomes where bit `j`
/// of the index is the outcome of qubit `measured[j]` (the compact layout
/// produced by [`qsim::Statevector::marginal_probabilities`] and by the
/// mitigation PMF types). The string must be *covered* by the measurement:
/// every qubit in its support must appear in `measured`. Identity positions
/// contribute nothing; the value is
/// `Σ_x p(x) · (-1)^(parity of x over the support)`.
///
/// # Panics
///
/// Panics if `probs.len() != 2^measured.len()` or if some support qubit of
/// `string` was not measured.
///
/// # Examples
///
/// ```
/// use pauli::{expectation_from_probs, PauliString};
///
/// // Distribution over qubits [0, 2]: outcome 0b01 (qubit0=1, qubit2=0)
/// // with probability 1.
/// let probs = [0.0, 1.0, 0.0, 0.0];
/// let z0: PauliString = "ZII".parse().unwrap();
/// let z2: PauliString = "IIZ".parse().unwrap();
/// assert_eq!(expectation_from_probs(&z0, &probs, &[0, 2]), -1.0);
/// assert_eq!(expectation_from_probs(&z2, &probs, &[0, 2]), 1.0);
/// ```
pub fn expectation_from_probs(string: &PauliString, probs: &[f64], measured: &[usize]) -> f64 {
    assert_eq!(
        probs.len(),
        1usize << measured.len(),
        "distribution size {} does not match {} measured qubits",
        probs.len(),
        measured.len()
    );
    let mut parity_mask = 0usize;
    for q in string.support() {
        let j = measured
            .iter()
            .position(|&m| m == q)
            .unwrap_or_else(|| panic!("support qubit {q} of {string} was not measured"));
        parity_mask |= 1 << j;
    }
    let mut acc = 0.0;
    for (x, &p) in probs.iter().enumerate() {
        if (x & parity_mask).count_ones() % 2 == 0 {
            acc += p;
        } else {
            acc -= p;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn deterministic_outcomes() {
        // qubits [1, 3] measured; outcome (q1=1, q3=1) certain.
        let probs = [0.0, 0.0, 0.0, 1.0];
        assert_eq!(expectation_from_probs(&ps("IZII"), &probs, &[1, 3]), -1.0);
        assert_eq!(expectation_from_probs(&ps("IZIZ"), &probs, &[1, 3]), 1.0);
    }

    #[test]
    fn uniform_distribution_gives_zero() {
        let probs = [0.25; 4];
        assert_eq!(expectation_from_probs(&ps("ZI"), &probs, &[0, 1]), 0.0);
        assert_eq!(expectation_from_probs(&ps("ZZ"), &probs, &[0, 1]), 0.0);
    }

    #[test]
    fn identity_string_has_expectation_one() {
        let probs = [0.3, 0.7];
        assert_eq!(expectation_from_probs(&ps("II"), &probs, &[1]), 1.0);
    }

    #[test]
    fn basis_positions_are_ignored_beyond_support() {
        // The string's Paulis may be X or Y — only support parity matters,
        // because the measurement circuit already rotated those bases to Z.
        let probs = [0.0, 1.0];
        assert_eq!(expectation_from_probs(&ps("XI"), &probs, &[0]), -1.0);
        assert_eq!(expectation_from_probs(&ps("YI"), &probs, &[0]), -1.0);
    }

    #[test]
    #[should_panic(expected = "was not measured")]
    fn missing_support_qubit_panics() {
        expectation_from_probs(&ps("ZZ"), &[1.0, 0.0], &[0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn size_mismatch_panics() {
        expectation_from_probs(&ps("ZI"), &[1.0, 0.0, 0.0], &[0]);
    }

    #[test]
    fn mixed_distribution() {
        // qubit 0 measured: p(0) = 0.8, p(1) = 0.2 → <Z> = 0.6.
        let probs = [0.8, 0.2];
        assert!((expectation_from_probs(&ps("Z"), &probs, &[0]) - 0.6).abs() < 1e-12);
    }
}
