//! Weighted Pauli terms.

use crate::string::PauliString;
use std::fmt;

/// A Pauli string with a real coefficient — one term of a Hamiltonian.
///
/// Coefficients are real because VQE Hamiltonians are Hermitian sums of
/// Hermitian Pauli strings.
///
/// # Examples
///
/// ```
/// use pauli::PauliTerm;
///
/// let t = PauliTerm::parse(-0.5, "ZZIZ").unwrap();
/// assert_eq!(t.coeff(), -0.5);
/// assert_eq!(t.string().weight(), 3);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PauliTerm {
    coeff: f64,
    string: PauliString,
}

impl PauliTerm {
    /// Creates a term from a coefficient and string.
    pub fn new(coeff: f64, string: PauliString) -> Self {
        PauliTerm { coeff, string }
    }

    /// Creates a term by parsing the string representation.
    ///
    /// # Errors
    ///
    /// Returns the parse error if `s` contains characters other than
    /// `I`, `X`, `Y`, `Z` or `-`.
    pub fn parse(coeff: f64, s: &str) -> Result<Self, crate::ParsePauliStringError> {
        Ok(PauliTerm {
            coeff,
            string: s.parse()?,
        })
    }

    /// The coefficient.
    pub fn coeff(&self) -> f64 {
        self.coeff
    }

    /// The Pauli string.
    pub fn string(&self) -> &PauliString {
        &self.string
    }

    /// Consumes the term and returns its parts.
    pub fn into_parts(self) -> (f64, PauliString) {
        (self.coeff, self.string)
    }
}

impl fmt::Display for PauliTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.6} {}", self.coeff, self.string)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_builds_term() {
        let t = PauliTerm::parse(1.25, "XIZ").unwrap();
        assert_eq!(t.coeff(), 1.25);
        assert_eq!(t.string().to_string(), "XIZ");
    }

    #[test]
    fn parse_propagates_errors() {
        assert!(PauliTerm::parse(1.0, "XQ").is_err());
    }

    #[test]
    fn display_includes_sign() {
        let t = PauliTerm::parse(-0.5, "ZZ").unwrap();
        assert_eq!(t.to_string(), "-0.500000 ZZ");
    }

    #[test]
    fn into_parts_round_trips() {
        let t = PauliTerm::parse(2.0, "XY").unwrap();
        let (c, s) = t.into_parts();
        assert_eq!(c, 2.0);
        assert_eq!(s.to_string(), "XY");
    }
}
