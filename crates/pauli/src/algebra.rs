//! Pauli group algebra: products, phases and full commutation.
//!
//! The paper restricts its pipeline to *qubit-wise* commutation
//! (never-deeper circuits), but notes that general commuting families
//! (Gokhale et al.) can reduce terms further at extra circuit cost. This
//! module supplies the algebra needed to reason about that: the group
//! product `P·Q` with its phase, and the symplectic full-commutation test.

use crate::pauli::Pauli;
use crate::string::PauliString;
use std::fmt;

/// A fourth root of unity — the phase of a Pauli product.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Phase {
    /// `+1`
    #[default]
    PlusOne,
    /// `+i`
    PlusI,
    /// `−1`
    MinusOne,
    /// `−i`
    MinusI,
}

impl Phase {
    /// The phase as an exponent of `i` (0..=3).
    pub fn exponent(self) -> u8 {
        match self {
            Phase::PlusOne => 0,
            Phase::PlusI => 1,
            Phase::MinusOne => 2,
            Phase::MinusI => 3,
        }
    }

    /// Builds a phase from an exponent of `i` (taken mod 4).
    pub fn from_exponent(e: u8) -> Self {
        match e % 4 {
            0 => Phase::PlusOne,
            1 => Phase::PlusI,
            2 => Phase::MinusOne,
            _ => Phase::MinusI,
        }
    }

    /// Multiplies two phases.
    pub fn times(self, other: Phase) -> Phase {
        Phase::from_exponent(self.exponent() + other.exponent())
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::PlusOne => "+1",
            Phase::PlusI => "+i",
            Phase::MinusOne => "-1",
            Phase::MinusI => "-i",
        };
        write!(f, "{s}")
    }
}

/// Single-qubit product `a·b = phase · c`.
fn mul_single(a: Pauli, b: Pauli) -> (Phase, Pauli) {
    use Pauli::*;
    match (a, b) {
        (I, p) | (p, I) => (Phase::PlusOne, p),
        (X, X) | (Y, Y) | (Z, Z) => (Phase::PlusOne, I),
        (X, Y) => (Phase::PlusI, Z),
        (Y, X) => (Phase::MinusI, Z),
        (Y, Z) => (Phase::PlusI, X),
        (Z, Y) => (Phase::MinusI, X),
        (Z, X) => (Phase::PlusI, Y),
        (X, Z) => (Phase::MinusI, Y),
    }
}

/// The Pauli group product `a·b`, returning the overall phase and the
/// resulting string.
///
/// # Panics
///
/// Panics if the strings have different lengths.
///
/// # Examples
///
/// ```
/// use pauli::{pauli_product, PauliString, Phase};
///
/// let x: PauliString = "XI".parse().unwrap();
/// let y: PauliString = "YI".parse().unwrap();
/// let (phase, prod) = pauli_product(&x, &y);
/// assert_eq!(phase, Phase::PlusI);
/// assert_eq!(prod.to_string(), "ZI");
/// ```
pub fn pauli_product(a: &PauliString, b: &PauliString) -> (Phase, PauliString) {
    assert_eq!(a.num_qubits(), b.num_qubits(), "qubit count mismatch");
    let mut phase = Phase::PlusOne;
    let paulis = a
        .paulis()
        .iter()
        .zip(b.paulis())
        .map(|(&pa, &pb)| {
            let (ph, p) = mul_single(pa, pb);
            phase = phase.times(ph);
            p
        })
        .collect();
    (phase, PauliString::new(paulis))
}

/// Full (symplectic) commutation: two Pauli strings commute as operators
/// iff they anticommute on an even number of positions.
///
/// This is strictly weaker than qubit-wise compatibility — e.g. `XX` and
/// `YY` fully commute but are not qubit-wise compatible — and measuring a
/// general commuting family needs entangling basis changes, which is why
/// the paper sticks to the qubit-wise relation (Section 3.1).
///
/// # Panics
///
/// Panics if the strings have different lengths.
///
/// # Examples
///
/// ```
/// use pauli::{fully_commute, PauliString};
///
/// let xx: PauliString = "XX".parse().unwrap();
/// let yy: PauliString = "YY".parse().unwrap();
/// let zi: PauliString = "ZI".parse().unwrap();
/// assert!(fully_commute(&xx, &yy));       // not qubit-wise, but commuting
/// assert!(!fully_commute(&xx, &zi));
/// ```
pub fn fully_commute(a: &PauliString, b: &PauliString) -> bool {
    assert_eq!(a.num_qubits(), b.num_qubits(), "qubit count mismatch");
    let anticommuting_positions = a
        .paulis()
        .iter()
        .zip(b.paulis())
        .filter(|(&pa, &pb)| !pa.is_identity() && !pb.is_identity() && pa != pb)
        .count();
    anticommuting_positions % 2 == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn single_qubit_products_follow_the_algebra() {
        // XY = iZ, YX = −iZ, ZZ = I.
        assert_eq!(mul_single(Pauli::X, Pauli::Y), (Phase::PlusI, Pauli::Z));
        assert_eq!(mul_single(Pauli::Y, Pauli::X), (Phase::MinusI, Pauli::Z));
        assert_eq!(mul_single(Pauli::Z, Pauli::Z), (Phase::PlusOne, Pauli::I));
    }

    #[test]
    fn phases_form_a_cyclic_group() {
        assert_eq!(Phase::PlusI.times(Phase::PlusI), Phase::MinusOne);
        assert_eq!(Phase::MinusI.times(Phase::PlusI), Phase::PlusOne);
        assert_eq!(Phase::MinusOne.times(Phase::MinusOne), Phase::PlusOne);
        for e in 0..8u8 {
            assert_eq!(Phase::from_exponent(e).exponent(), e % 4);
        }
    }

    #[test]
    fn product_of_string_with_itself_is_identity() {
        for s in ["XYZ", "ZZZZ", "IXIY"] {
            let (phase, prod) = pauli_product(&ps(s), &ps(s));
            assert_eq!(phase, Phase::PlusOne);
            assert!(prod.is_identity());
        }
    }

    #[test]
    fn multi_qubit_product_accumulates_phase() {
        // (X⊗X)·(Y⊗Y) = (iZ)⊗(iZ) = −(Z⊗Z).
        let (phase, prod) = pauli_product(&ps("XX"), &ps("YY"));
        assert_eq!(phase, Phase::MinusOne);
        assert_eq!(prod, ps("ZZ"));
    }

    #[test]
    fn commutation_examples() {
        assert!(fully_commute(&ps("XX"), &ps("YY")));
        assert!(fully_commute(&ps("XX"), &ps("ZZ")));
        assert!(!fully_commute(&ps("XI"), &ps("ZI")));
        assert!(fully_commute(&ps("XI"), &ps("IZ")));
        assert!(fully_commute(&ps("XYZ"), &ps("XYZ")));
    }

    #[test]
    fn qubitwise_compatible_implies_fully_commuting() {
        let samples = ["XIZ", "IXZ", "ZZZ", "XXI", "IYI", "YYZ"];
        for a in samples {
            for b in samples {
                let (a, b) = (ps(a), ps(b));
                if a.qubitwise_compatible(&b) {
                    assert!(fully_commute(&a, &b), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn commutation_matches_product_order() {
        // a and b commute iff ab and ba have the same phase.
        let samples = ["XY", "YZ", "ZI", "XX", "YY", "IZ"];
        for a in samples {
            for b in samples {
                let (a, b) = (ps(a), ps(b));
                let (pab, _) = pauli_product(&a, &b);
                let (pba, _) = pauli_product(&b, &a);
                assert_eq!(fully_commute(&a, &b), pab == pba, "{a} vs {b}");
            }
        }
    }
}
