//! Pauli algebra for the VarSaw reproduction.
//!
//! Stands in for Qiskit's `SparsePauliOp` and the commutation machinery of
//! OpenFermion/PyQuil that the paper relies on (Section 4.1). Provides:
//!
//! - [`Pauli`] / [`PauliString`] / [`PauliTerm`]: operators and terms,
//! - [`Hamiltonian`]: sparse Pauli sums with exact expectations, matrix-free
//!   [`qsim::HermitianOp`] application and Lanczos ground energies,
//! - [`group_by_cover`]: the paper's "trivial qubit commutation" reduction
//!   (Fig.6 Eq.1→Eq.2 and Eq.3→Eq.4),
//! - [`expectation_from_probs`]: Pauli expectations from measured outcome
//!   distributions.
//!
//! # Example
//!
//! ```
//! use pauli::{group_by_cover, Hamiltonian};
//!
//! let h = Hamiltonian::from_pairs(2, &[(0.5, "ZZ"), (0.25, "ZI"), (-1.0, "XI")]);
//! let strings: Vec<_> = h.iter().map(|t| t.string().clone()).collect();
//! let groups = group_by_cover(&strings);
//! assert_eq!(groups.len(), 2); // {ZZ, ZI} measured together, {XI} alone
//! ```

mod algebra;
mod expectation;
mod grouping;
mod hamiltonian;
mod pauli;
mod string;
mod term;

pub use algebra::{fully_commute, pauli_product, Phase};
pub use expectation::expectation_from_probs;
pub use grouping::{group_by_cover, group_by_union, MeasurementGroup};
pub use hamiltonian::Hamiltonian;
pub use pauli::Pauli;
pub use string::{ParsePauliStringError, PauliString};
pub use term::PauliTerm;
