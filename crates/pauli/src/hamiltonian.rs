//! Hamiltonians as sparse sums of Pauli terms.

use crate::string::PauliString;
use crate::term::PauliTerm;
use qsim::{HermitianOp, Statevector, C64};
use std::collections::HashMap;
use std::fmt;

/// A Hermitian operator expressed as a real-weighted sum of Pauli strings —
/// the problem representation of a VQA (Section 3.1 of the paper).
///
/// # Examples
///
/// Build a 2-qubit transverse-field Ising Hamiltonian and evaluate its
/// exact expectation on |00⟩:
///
/// ```
/// use pauli::{Hamiltonian, PauliTerm};
/// use qsim::Statevector;
///
/// let mut h = Hamiltonian::new(2);
/// h.push(PauliTerm::parse(-1.0, "ZZ").unwrap());
/// h.push(PauliTerm::parse(-0.5, "XI").unwrap());
/// h.push(PauliTerm::parse(-0.5, "IX").unwrap());
/// let zero = Statevector::zero(2);
/// assert_eq!(h.expectation(&zero), -1.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Hamiltonian {
    num_qubits: usize,
    terms: Vec<PauliTerm>,
}

impl Hamiltonian {
    /// An empty Hamiltonian on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Hamiltonian {
            num_qubits,
            terms: Vec::new(),
        }
    }

    /// Builds a Hamiltonian from `(coefficient, string)` text pairs.
    ///
    /// # Panics
    ///
    /// Panics if any string fails to parse or has the wrong length. Intended
    /// for literals in tests and examples; use [`Hamiltonian::push`] for
    /// fallible construction.
    pub fn from_pairs(num_qubits: usize, pairs: &[(f64, &str)]) -> Self {
        let mut h = Hamiltonian::new(num_qubits);
        for &(c, s) in pairs {
            h.push(PauliTerm::parse(c, s).expect("valid Pauli literal"));
        }
        h
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The number of terms (including any identity term).
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The terms, in insertion order.
    pub fn terms(&self) -> &[PauliTerm] {
        &self.terms
    }

    /// Iterates over the terms.
    pub fn iter(&self) -> std::slice::Iter<'_, PauliTerm> {
        self.terms.iter()
    }

    /// Appends a term.
    ///
    /// # Panics
    ///
    /// Panics if the term's qubit count differs from the Hamiltonian's.
    pub fn push(&mut self, term: PauliTerm) -> &mut Self {
        assert_eq!(
            term.string().num_qubits(),
            self.num_qubits,
            "term {} has wrong qubit count",
            term
        );
        self.terms.push(term);
        self
    }

    /// Sum of coefficients of all-identity terms (the constant energy
    /// offset, which needs no measurement).
    pub fn identity_offset(&self) -> f64 {
        self.terms
            .iter()
            .filter(|t| t.string().is_identity())
            .map(|t| t.coeff())
            .sum()
    }

    /// The non-identity terms (the ones requiring measurement).
    pub fn measurable_terms(&self) -> Vec<&PauliTerm> {
        self.terms
            .iter()
            .filter(|t| !t.string().is_identity())
            .collect()
    }

    /// Combines duplicate strings, dropping terms whose combined
    /// coefficient is below `tol` in magnitude. Keeps first-occurrence
    /// order.
    pub fn simplify(&self, tol: f64) -> Hamiltonian {
        let mut index: HashMap<&PauliString, usize> = HashMap::new();
        let mut combined: Vec<(f64, &PauliString)> = Vec::new();
        for t in &self.terms {
            match index.get(t.string()) {
                Some(&i) => combined[i].0 += t.coeff(),
                None => {
                    index.insert(t.string(), combined.len());
                    combined.push((t.coeff(), t.string()));
                }
            }
        }
        let mut out = Hamiltonian::new(self.num_qubits);
        for (c, s) in combined {
            if c.abs() > tol {
                out.push(PauliTerm::new(c, s.clone()));
            }
        }
        out
    }

    /// The 1-norm of the coefficients, an upper bound on the spectral
    /// radius. Useful for sanity checks and optimizer scaling.
    pub fn coeff_norm(&self) -> f64 {
        self.terms.iter().map(|t| t.coeff().abs()).sum()
    }

    /// Exact expectation value `⟨ψ|H|ψ⟩` (no sampling, no noise).
    ///
    /// # Panics
    ///
    /// Panics if the state has a different qubit count.
    pub fn expectation(&self, state: &Statevector) -> f64 {
        assert_eq!(state.num_qubits(), self.num_qubits, "qubit count mismatch");
        self.terms
            .iter()
            .map(|t| t.coeff() * t.string().expectation(state))
            .sum()
    }

    /// Exact lowest eigenvalue via matrix-free Lanczos — the reproduction's
    /// "Ref. Energy".
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 30`.
    pub fn ground_energy(&self, seed: u64) -> f64 {
        qsim::lowest_eigenvalue(self, 300, 1e-10, seed).eigenvalue
    }
}

impl HermitianOp for Hamiltonian {
    fn dim(&self) -> usize {
        1usize << self.num_qubits
    }

    fn apply(&self, x: &[C64], y: &mut [C64]) {
        for t in &self.terms {
            t.string().apply_accumulate(t.coeff(), x, y);
        }
    }
}

impl fmt::Display for Hamiltonian {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "hamiltonian({} qubits, {} terms):",
            self.num_qubits,
            self.terms.len()
        )?;
        for t in &self.terms {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

impl Extend<PauliTerm> for Hamiltonian {
    fn extend<T: IntoIterator<Item = PauliTerm>>(&mut self, iter: T) {
        for t in iter {
            self.push(t);
        }
    }
}

impl<'a> IntoIterator for &'a Hamiltonian {
    type Item = &'a PauliTerm;
    type IntoIter = std::slice::Iter<'a, PauliTerm>;
    fn into_iter(self) -> Self::IntoIter {
        self.terms.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::Circuit;

    fn tfim2() -> Hamiltonian {
        Hamiltonian::from_pairs(2, &[(-1.0, "ZZ"), (-0.5, "XI"), (-0.5, "IX")])
    }

    #[test]
    fn expectation_on_product_states() {
        let h = tfim2();
        assert_eq!(h.expectation(&Statevector::zero(2)), -1.0);
        let mut plus = Statevector::zero(2);
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        plus.apply_circuit(&c);
        // ⟨++|ZZ|++⟩ = 0, ⟨++|X|++⟩ = 1 each.
        assert!((h.expectation(&plus) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn ground_energy_of_single_qubit_z() {
        let h = Hamiltonian::from_pairs(1, &[(1.0, "Z")]);
        assert!((h.ground_energy(3) + 1.0).abs() < 1e-8);
    }

    #[test]
    fn ground_energy_of_tfim_matches_exact_formula() {
        // 2-qubit TFIM: H = -ZZ - 0.5(XI + IX) has ground energy
        // -sqrt(1 + h²) - ... compute by brute force instead: eigenvalues of
        // the 4x4 matrix. Known: E0 = -sqrt(1 + 1) for h=1... use h=0.5:
        // Exact diagonalization gives E0 = -(1 + 2*0.25)^(1/2)... simpler to
        // verify against the variational bound: E0 <= -1 and E0 >= -coeff_norm.
        let h = tfim2();
        let e0 = h.ground_energy(7);
        assert!(e0 <= -1.0 - 1e-9, "ground below |00⟩ energy, got {e0}");
        assert!(e0 >= -h.coeff_norm() - 1e-9);
        // The exact value for H = -ZZ - h(XI+IX) with h=0.5 is
        // -sqrt(1+4h²)... derive numerically in the 2x2 even-parity block:
        // basis {|00⟩, |11⟩, |01⟩, |10⟩}: even block [[-1, 2h*...]] — assert
        // instead a tight numeric value computed independently: -1.41421356.
        assert!((e0 - (-(2.0f64).sqrt())).abs() < 1e-6, "got {e0}");
    }

    #[test]
    fn identity_offset_and_measurable_terms() {
        let h = Hamiltonian::from_pairs(2, &[(3.5, "II"), (1.0, "ZZ"), (-1.5, "II")]);
        assert_eq!(h.identity_offset(), 2.0);
        assert_eq!(h.measurable_terms().len(), 1);
    }

    #[test]
    fn simplify_combines_duplicates() {
        let h = Hamiltonian::from_pairs(2, &[(1.0, "ZZ"), (0.5, "ZZ"), (1.0, "XI"), (-1.0, "XI")]);
        let s = h.simplify(1e-12);
        assert_eq!(s.num_terms(), 1);
        assert_eq!(s.terms()[0].coeff(), 1.5);
    }

    #[test]
    #[should_panic(expected = "wrong qubit count")]
    fn push_checks_length() {
        Hamiltonian::new(2).push(PauliTerm::parse(1.0, "ZZZ").unwrap());
    }

    #[test]
    fn hermitian_op_matches_expectation() {
        // ⟨ψ|H|ψ⟩ via apply() must equal expectation().
        let h = tfim2();
        let mut st = Statevector::zero(2);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rz(1, 0.7);
        st.apply_circuit(&c);
        let x = st.amplitudes();
        let mut y = vec![C64::ZERO; 4];
        h.apply(x, &mut y);
        let via_apply: f64 = x.iter().zip(&y).map(|(a, b)| (a.conj() * *b).re).sum();
        assert!((via_apply - h.expectation(&st)).abs() < 1e-12);
    }
}
