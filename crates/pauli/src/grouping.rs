//! Commutativity-based measurement grouping.
//!
//! The paper restricts itself to "trivial qubit commutation" (Section 3.1):
//! a Pauli string can be read off a measurement circuit whose basis *covers*
//! it — i.e. matches it at every non-identity position. Grouping terms under
//! this relation never increases circuit depth, unlike general commuting
//! partitions.
//!
//! [`group_by_cover`] implements the reduction used both for the VQA
//! baseline (Fig.6, Eq.1 → Eq.2: 10 terms → 7 circuits) and for VarSaw's
//! spatial subset reduction (Eq.3 → Eq.4: 21 subsets → 9 circuits): terms are
//! visited in decreasing weight and either absorbed by an existing group
//! whose basis covers them or made the seed of a new group.

use crate::string::PauliString;

/// A set of Pauli strings measurable by a single circuit.
///
/// `basis` is the measurement basis of the circuit (one basis-rotation per
/// non-identity position followed by measurement of those qubits); every
/// member is covered by it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MeasurementGroup {
    /// The measurement basis (the seed term of the group).
    pub basis: PauliString,
    /// Indices into the input slice of the strings this group measures.
    pub members: Vec<usize>,
}

impl MeasurementGroup {
    /// The qubits this group's circuit measures.
    pub fn measured_qubits(&self) -> Vec<usize> {
        self.basis.support()
    }
}

/// Groups `strings` into cover-based measurement groups.
///
/// Deterministic: strings are visited in decreasing weight (ties broken by
/// input order), and each is assigned to the first existing group whose
/// basis covers it, else seeds a new group. All-identity strings are
/// assigned to the first group (or a dedicated identity group if they are
/// the only input) since any circuit "measures" them trivially.
///
/// The returned groups partition the input indices.
///
/// # Panics
///
/// Panics if the strings have differing lengths.
///
/// # Examples
///
/// The paper's Fig.6 baseline reduction (10 terms → 7 circuits):
///
/// ```
/// use pauli::{group_by_cover, PauliString};
///
/// let terms: Vec<PauliString> = [
///     "ZZIZ", "ZIZX", "ZZII", "IIZX", "ZXXZ",
///     "XZIZ", "ZXIZ", "IXZZ", "XIZZ", "XXIX",
/// ].iter().map(|s| s.parse().unwrap()).collect();
/// let groups = group_by_cover(&terms);
/// assert_eq!(groups.len(), 7);
/// ```
pub fn group_by_cover(strings: &[PauliString]) -> Vec<MeasurementGroup> {
    if strings.is_empty() {
        return Vec::new();
    }
    let n = strings[0].num_qubits();
    for s in strings {
        assert_eq!(s.num_qubits(), n, "mixed qubit counts in grouping input");
    }

    let mut order: Vec<usize> = (0..strings.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(strings[i].weight()));

    let mut groups: Vec<MeasurementGroup> = Vec::new();
    let mut identity_members: Vec<usize> = Vec::new();

    for &i in &order {
        let s = &strings[i];
        if s.is_identity() {
            identity_members.push(i);
            continue;
        }
        match groups.iter_mut().find(|g| g.basis.covers(s)) {
            Some(g) => g.members.push(i),
            None => groups.push(MeasurementGroup {
                basis: s.clone(),
                members: vec![i],
            }),
        }
    }

    if !identity_members.is_empty() {
        match groups.first_mut() {
            Some(g) => g.members.extend(identity_members),
            None => groups.push(MeasurementGroup {
                basis: PauliString::identity(n),
                members: identity_members,
            }),
        }
    }
    groups
}

/// Groups strings allowing basis *unions*: a string joins a group when it is
/// qubit-wise compatible with the group basis, and the basis grows to the
/// union. More aggressive than [`group_by_cover`] (never more groups), at
/// the cost of measurement bases that are not themselves Hamiltonian terms.
///
/// Provided for comparison and ablation; the paper's pipeline uses
/// [`group_by_cover`].
///
/// # Panics
///
/// Panics if the strings have differing lengths.
pub fn group_by_union(strings: &[PauliString]) -> Vec<MeasurementGroup> {
    if strings.is_empty() {
        return Vec::new();
    }
    let n = strings[0].num_qubits();
    for s in strings {
        assert_eq!(s.num_qubits(), n, "mixed qubit counts in grouping input");
    }
    let mut order: Vec<usize> = (0..strings.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(strings[i].weight()));

    let mut groups: Vec<MeasurementGroup> = Vec::new();
    for &i in &order {
        let s = &strings[i];
        let slot = groups
            .iter_mut()
            .find_map(|g| g.basis.try_union(s).map(|u| (g, u)));
        match slot {
            Some((g, union)) => {
                g.basis = union;
                g.members.push(i);
            }
            None => groups.push(MeasurementGroup {
                basis: s.clone(),
                members: vec![i],
            }),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(strs: &[&str]) -> Vec<PauliString> {
        strs.iter().map(|s| s.parse().unwrap()).collect()
    }

    /// The Fig.6 Hamiltonian (Eq.1).
    fn fig6_terms() -> Vec<PauliString> {
        parse_all(&[
            "ZZIZ", "ZIZX", "ZZII", "IIZX", "ZXXZ", "XZIZ", "ZXIZ", "IXZZ", "XIZZ", "XXIX",
        ])
    }

    #[test]
    fn fig6_baseline_reduction_is_7_circuits() {
        let groups = group_by_cover(&fig6_terms());
        assert_eq!(groups.len(), 7);
        // Exactly the seven black terms of Eq.2.
        let mut bases: Vec<String> = groups.iter().map(|g| g.basis.to_string()).collect();
        bases.sort();
        let mut expected = vec!["ZZIZ", "ZIZX", "ZXXZ", "XZIZ", "IXZZ", "XIZZ", "XXIX"];
        expected.sort();
        assert_eq!(bases, expected);
    }

    #[test]
    fn groups_partition_the_input() {
        let terms = fig6_terms();
        let groups = group_by_cover(&terms);
        let mut seen = vec![false; terms.len()];
        for g in &groups {
            for &m in &g.members {
                assert!(!seen[m], "index {m} assigned twice");
                seen[m] = true;
                assert!(g.basis.covers(&terms[m]));
            }
        }
        assert!(seen.iter().all(|&b| b), "some term unassigned");
    }

    #[test]
    fn identity_terms_ride_along() {
        let terms = parse_all(&["II", "ZZ"]);
        let groups = group_by_cover(&terms);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members.len(), 2);
    }

    #[test]
    fn identity_only_input_yields_identity_group() {
        let terms = parse_all(&["II"]);
        let groups = group_by_cover(&terms);
        assert_eq!(groups.len(), 1);
        assert!(groups[0].basis.is_identity());
    }

    #[test]
    fn empty_input_yields_no_groups() {
        assert!(group_by_cover(&[]).is_empty());
        assert!(group_by_union(&[]).is_empty());
    }

    #[test]
    fn union_grouping_is_never_coarser() {
        let terms = fig6_terms();
        let cover = group_by_cover(&terms);
        let union = group_by_union(&terms);
        assert!(union.len() <= cover.len());
        // Union grouping can merge XZIZ and XIZZ into XZZZ.
        assert!(union.len() <= 6);
    }

    #[test]
    fn union_groups_cover_their_members() {
        let terms = fig6_terms();
        for g in group_by_union(&terms) {
            for &m in &g.members {
                assert!(g.basis.covers(&terms[m]));
            }
        }
    }

    #[test]
    fn measured_qubits_match_basis_support() {
        let groups = group_by_cover(&parse_all(&["ZIZI"]));
        assert_eq!(groups[0].measured_qubits(), vec![0, 2]);
    }

    #[test]
    fn deterministic_across_calls() {
        let terms = fig6_terms();
        assert_eq!(group_by_cover(&terms), group_by_cover(&terms));
    }
}
