//! The single-qubit Pauli operators.

use std::fmt;

/// A single-qubit Pauli operator.
///
/// # Examples
///
/// ```
/// use pauli::Pauli;
///
/// assert!(Pauli::I.qubitwise_compatible(Pauli::X));
/// assert!(Pauli::Z.qubitwise_compatible(Pauli::Z));
/// assert!(!Pauli::Z.qubitwise_compatible(Pauli::X));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pauli {
    /// Identity.
    #[default]
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

impl Pauli {
    /// All four Paulis, in `I, X, Y, Z` order.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// Whether this is the identity.
    #[inline]
    pub fn is_identity(self) -> bool {
        self == Pauli::I
    }

    /// Qubit-wise compatibility: two single-qubit Paulis can be measured by
    /// the same basis if they are equal or either is the identity.
    ///
    /// This is the "trivial qubit commutation" the paper restricts itself to
    /// (Section 3.1): it never increases circuit depth.
    #[inline]
    pub fn qubitwise_compatible(self, other: Pauli) -> bool {
        self == other || self.is_identity() || other.is_identity()
    }

    /// Parses a single character (`I`/`X`/`Y`/`Z`, case-insensitive, or `-`
    /// which the paper uses for "outside the measurement window" and which
    /// maps to identity).
    pub fn from_char(c: char) -> Option<Pauli> {
        match c.to_ascii_uppercase() {
            'I' | '-' => Some(Pauli::I),
            'X' => Some(Pauli::X),
            'Y' => Some(Pauli::Y),
            'Z' => Some(Pauli::Z),
            _ => None,
        }
    }

    /// The display character.
    pub fn to_char(self) -> char {
        match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_is_symmetric() {
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                assert_eq!(a.qubitwise_compatible(b), b.qubitwise_compatible(a));
            }
        }
    }

    #[test]
    fn identity_is_compatible_with_everything() {
        for p in Pauli::ALL {
            assert!(Pauli::I.qubitwise_compatible(p));
        }
    }

    #[test]
    fn distinct_non_identity_paulis_clash() {
        assert!(!Pauli::X.qubitwise_compatible(Pauli::Y));
        assert!(!Pauli::X.qubitwise_compatible(Pauli::Z));
        assert!(!Pauli::Y.qubitwise_compatible(Pauli::Z));
    }

    #[test]
    fn char_round_trip() {
        for p in Pauli::ALL {
            assert_eq!(Pauli::from_char(p.to_char()), Some(p));
        }
        assert_eq!(Pauli::from_char('-'), Some(Pauli::I));
        assert_eq!(Pauli::from_char('x'), Some(Pauli::X));
        assert_eq!(Pauli::from_char('q'), None);
    }
}
