//! Property-based tests for Pauli algebra invariants.

use pauli::{expectation_from_probs, group_by_cover, group_by_union, Pauli, PauliString};
use proptest::prelude::*;

fn arb_pauli() -> impl Strategy<Value = Pauli> {
    prop::sample::select(vec![Pauli::I, Pauli::X, Pauli::Y, Pauli::Z])
}

fn arb_string(n: usize) -> impl Strategy<Value = PauliString> {
    prop::collection::vec(arb_pauli(), n).prop_map(PauliString::new)
}

proptest! {
    /// Covering implies qubit-wise compatibility.
    #[test]
    fn cover_implies_compatible(a in arb_string(5), b in arb_string(5)) {
        if a.covers(&b) {
            prop_assert!(a.qubitwise_compatible(&b));
        }
    }

    /// Covering is reflexive and antisymmetric up to equality.
    #[test]
    fn cover_is_reflexive(a in arb_string(5)) {
        prop_assert!(a.covers(&a));
    }

    #[test]
    fn mutual_cover_implies_equality(a in arb_string(4), b in arb_string(4)) {
        if a.covers(&b) && b.covers(&a) {
            prop_assert_eq!(a, b);
        }
    }

    /// The union of compatible strings covers both inputs.
    #[test]
    fn union_covers_both(a in arb_string(5), b in arb_string(5)) {
        if let Some(u) = a.try_union(&b) {
            prop_assert!(u.covers(&a));
            prop_assert!(u.covers(&b));
            prop_assert_eq!(a.try_union(&b), b.try_union(&a));
        }
    }

    /// Window restriction is covered by the original string and has support
    /// inside the window.
    #[test]
    fn window_is_covered_restriction(a in arb_string(6), start in 0usize..5) {
        let len = 2.min(6 - start);
        let w = a.window(start, len);
        prop_assert!(a.covers(&w));
        for q in w.support() {
            prop_assert!((start..start + len).contains(&q));
        }
    }

    /// Cover-grouping partitions the input and every member is covered by
    /// its group basis; union grouping never produces more groups.
    #[test]
    fn grouping_invariants(strings in prop::collection::vec(arb_string(4), 1..25)) {
        let cover = group_by_cover(&strings);
        let mut assigned = vec![0usize; strings.len()];
        for g in &cover {
            for &m in &g.members {
                assigned[m] += 1;
                prop_assert!(g.basis.covers(&strings[m]));
            }
        }
        prop_assert!(assigned.iter().all(|&c| c == 1));
        let union = group_by_union(&strings);
        prop_assert!(union.len() <= cover.len());
    }

    /// Group count never exceeds the number of distinct non-identity strings
    /// (dedup is implied by cover-grouping).
    #[test]
    fn grouping_never_exceeds_distinct_strings(strings in prop::collection::vec(arb_string(4), 1..25)) {
        use std::collections::HashSet;
        let distinct: HashSet<_> = strings.iter().filter(|s| !s.is_identity()).collect();
        let groups = group_by_cover(&strings);
        prop_assert!(groups.len() <= distinct.len().max(1));
    }

    /// Expectations from distributions stay within [-1, 1] and the identity
    /// string always evaluates to the distribution's total mass.
    #[test]
    fn expectation_is_bounded(weights in prop::collection::vec(0.0f64..1.0, 4), s in arb_string(2)) {
        let total: f64 = weights.iter().sum();
        prop_assume!(total > 0.0);
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let e = expectation_from_probs(&s, &probs, &[0, 1]);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&e));
        let id = PauliString::identity(2);
        let ei = expectation_from_probs(&id, &probs, &[0, 1]);
        prop_assert!((ei - 1.0).abs() < 1e-9);
    }

    /// Exact statevector expectations of Pauli strings lie in [-1, 1].
    #[test]
    fn statevector_expectation_bounded(s in arb_string(3), seed in 0u64..500) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = qsim::Circuit::new(3);
        for q in 0..3 {
            c.ry(q, rng.random::<f64>() * 6.0);
            c.rz(q, rng.random::<f64>() * 6.0);
        }
        c.cx(0, 1).cx(1, 2);
        let mut st = qsim::Statevector::zero(3);
        st.apply_circuit(&c);
        let e = s.expectation(&st);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&e));
    }
}
