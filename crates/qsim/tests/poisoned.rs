//! Poisoned-state contract: once a transport session fails, every
//! fallible `ShardedState` entry point returns
//! [`TransportError::Poisoned`] — never a panic, never stale
//! amplitudes — and the infallible convenience wrappers panic with a
//! message that names the poisoning, on **both** transports. The
//! `sched` supervisor's quarantine-and-rebuild step leans on exactly
//! this: a poisoned state must be inert, not booby-trapped.

use qsim::plan::ShardPlan;
use qsim::{
    Circuit, CircuitPlan, FaultInjection, FaultSchedule, ShardedState, TransportError,
    TransportMode,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

const TRANSPORTS: [TransportMode; 2] = [TransportMode::Local, TransportMode::Channel];

/// A 5-qubit circuit that moves amplitudes through every shard: global
/// qubits (3, 4 under 4 shards) get H and entangling gates, so every
/// rank participates and any killed rank is hit.
fn stirring_circuit() -> Circuit {
    let mut c = Circuit::new(5);
    for q in 0..5 {
        c.h(q);
    }
    for q in 0..4 {
        c.cx(q, q + 1);
    }
    c.swap(0, 4);
    c
}

/// Builds a state, kills `rank`, applies the stirring circuit, and
/// returns the poisoned wreck plus the typed error that poisoned it.
fn poisoned_state(transport: TransportMode, rank: usize) -> (ShardedState, TransportError) {
    let mut st = ShardedState::zero(5, 4)
        .with_transport(transport)
        .with_fault(FaultInjection::kill_rank(rank));
    let err = st
        .try_apply_plan(&CircuitPlan::compile(&stirring_circuit()))
        .expect_err("a killed rank must fail the session");
    assert!(st.is_poisoned());
    (st, err)
}

#[test]
fn first_failure_is_typed_not_poisoned() {
    // The session that dies reports *what* died; only subsequent calls
    // see `Poisoned`.
    for transport in TRANSPORTS {
        for rank in 0..4 {
            let (_, err) = poisoned_state(transport, rank);
            match err {
                TransportError::Disconnected { rank: r, .. } => {
                    assert_eq!(r, rank, "{}", transport.name())
                }
                other => panic!("{}: expected Disconnected, got {other}", transport.name()),
            }
        }
    }
}

#[test]
fn every_fallible_entry_point_returns_poisoned() {
    for transport in TRANSPORTS {
        let (mut st, _) = poisoned_state(transport, 1);
        let plan = CircuitPlan::compile(&stirring_circuit());
        let name = transport.name();
        assert_eq!(
            st.try_apply_plan(&plan),
            Err(TransportError::Poisoned),
            "{name}"
        );
        let sp = ShardPlan::analyze(&plan, 4);
        assert_eq!(
            st.try_apply_shard_plan(&sp),
            Err(TransportError::Poisoned),
            "{name}"
        );
        assert_eq!(
            st.try_to_statevector().unwrap_err(),
            TransportError::Poisoned,
            "{name}"
        );
        assert_eq!(
            st.try_probabilities().unwrap_err(),
            TransportError::Poisoned,
            "{name}"
        );
        // Still poisoned after all that prodding — the flag is sticky.
        assert!(st.is_poisoned(), "{name}");
    }
}

#[test]
fn infallible_reads_panic_naming_the_poisoning() {
    for transport in TRANSPORTS {
        let (st, _) = poisoned_state(transport, 0);
        for (what, result) in [
            (
                "to_statevector",
                catch_unwind(AssertUnwindSafe(|| {
                    st.to_statevector();
                })),
            ),
            (
                "probabilities",
                catch_unwind(AssertUnwindSafe(|| {
                    st.probabilities();
                })),
            ),
            (
                "norm_sqr",
                catch_unwind(AssertUnwindSafe(|| {
                    st.norm_sqr();
                })),
            ),
        ] {
            let payload = result.expect_err("poisoned read must not succeed");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default();
            assert!(
                msg.contains("poisoned"),
                "{}: {what} panic message must name the poisoning, got {msg:?}",
                transport.name()
            );
        }
    }
}

#[test]
fn metadata_accessors_stay_safe_on_a_poisoned_state() {
    // Quarantine code inspects the wreck before discarding it; the
    // cheap accessors must not add panics of their own.
    for transport in TRANSPORTS {
        let (st, _) = poisoned_state(transport, 2);
        assert_eq!(st.num_qubits(), 5);
        assert_eq!(st.shard_len(), 8);
        assert_eq!(st.layout().len(), 5);
        assert_eq!(st.transport(), transport);
        let _ = st.shard_stats();
    }
}

#[test]
fn schedule_driven_poisoning_matches_explicit_injection() {
    // The seed-deterministic schedule path poisons exactly like the
    // explicit hook: typed first failure, `Poisoned` ever after.
    for transport in TRANSPORTS {
        let mut st = ShardedState::zero(5, 4)
            .with_transport(transport)
            .with_fault_schedule(FaultSchedule::new(3, 1000, 0), 77);
        let plan = CircuitPlan::compile(&stirring_circuit());
        let err = st.try_apply_plan(&plan).unwrap_err();
        assert!(
            matches!(err, TransportError::Disconnected { .. }),
            "{}: {err}",
            transport.name()
        );
        assert!(st.is_poisoned());
        assert_eq!(st.try_apply_plan(&plan), Err(TransportError::Poisoned));
    }
}

#[test]
fn fresh_state_after_quarantine_is_unaffected() {
    // Rebuilding — what the supervisor actually does — yields a state
    // with no memory of the failure: bit-identical to a never-faulted run.
    for transport in TRANSPORTS {
        let (_wreck, _) = poisoned_state(transport, 3);
        let plan = CircuitPlan::compile(&stirring_circuit());
        let mut rebuilt = ShardedState::zero(5, 4).with_transport(transport);
        rebuilt.try_apply_plan(&plan).unwrap();
        let mut reference = ShardedState::zero(5, 4);
        reference.try_apply_plan(&plan).unwrap();
        assert_eq!(
            rebuilt.to_statevector().amplitudes(),
            reference.to_statevector().amplitudes(),
            "{}",
            transport.name()
        );
    }
}
