//! Telemetry transparency oracle for the statevector engine.
//!
//! Spans are observations, never participants: with a recorder installed
//! and recording active, the fused serial, fused threaded, and unfused
//! reference paths must produce exactly the bits they produce with
//! telemetry compiled out. These are the same equivalence assertions the
//! fusion oracle makes — re-run here under instrumentation so a timing
//! regression can never hide a numerics regression (and vice versa).

use qsim::{Circuit, CircuitPlan, Parallelism, PlanCache, Statevector};

/// A layered ansatz-shaped circuit: rotation layers interleaved with CX
/// chains, deep enough to exercise run fusion and entangler blocking.
fn layered(n: usize, depth: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for d in 0..depth {
        for q in 0..n {
            c.ry(q, 0.1 + 0.37 * (d * n + q) as f64);
            c.rz(q, -0.2 + 0.11 * (d + q) as f64);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
    }
    c
}

#[test]
fn spans_do_not_perturb_fused_execution() {
    telemetry::set_active(true);
    let recorder = telemetry::Recorder::new();
    let _guard = recorder.install();

    let c = layered(8, 4);
    let fused = CircuitPlan::compile(&c);
    let unfused = CircuitPlan::compile_unfused(&c);

    let mut serial = Statevector::zero(8);
    serial.apply_plan(&fused);
    let mut threaded = Statevector::zero(8);
    threaded.apply_plan_with(&fused, Parallelism::Threads(4));
    let mut reference = Statevector::zero(8);
    reference.apply_plan(&unfused);

    // Serial vs threaded: bit-identical by contract, spans installed.
    assert_eq!(serial.amplitudes(), threaded.amplitudes());
    // Fused vs unfused: same tolerance the fusion oracle grants.
    for (a, b) in serial.amplitudes().iter().zip(reference.amplitudes()) {
        assert!((*a - *b).abs() < 1e-12);
    }
    // And the read-out paths stay bit-identical under instrumentation.
    assert_eq!(
        serial.probabilities_with(Parallelism::Serial),
        threaded.probabilities_with(Parallelism::Threads(4)),
    );

    // With the feature compiled in, the recorder must actually have seen
    // the stages the paths above pass through.
    #[cfg(feature = "telemetry")]
    {
        let snap = recorder.snapshot();
        assert!(snap.stat(telemetry::Stage::PlanCompile).count >= 2);
        assert!(snap.stat(telemetry::Stage::SweepSerial).count >= 2);
        assert!(snap.stat(telemetry::Stage::SweepThreaded).count >= 1);
    }
}

#[test]
fn spans_do_not_perturb_plan_cache_rebinds() {
    telemetry::set_active(true);
    let recorder = telemetry::Recorder::new();
    let _guard = recorder.install();

    let mut cache = PlanCache::new();
    let a = cache.plan(&layered(6, 3));
    let b = cache.plan(&layered(6, 3));
    // A rebind of the identical circuit is the identical plan.
    let mut sa = Statevector::zero(6);
    sa.apply_plan(&a);
    let mut sb = Statevector::zero(6);
    sb.apply_plan(&b);
    assert_eq!(sa.amplitudes(), sb.amplitudes());
    assert_eq!((cache.hits(), cache.misses()), (1, 1));

    #[cfg(feature = "telemetry")]
    {
        let snap = recorder.snapshot();
        assert_eq!(snap.stat(telemetry::Stage::PlanCompile).count, 1);
        // Every plan() binds: one rebind per call.
        assert_eq!(snap.stat(telemetry::Stage::PlanRebind).count, 2);
    }
}
