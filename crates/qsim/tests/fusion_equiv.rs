//! Property tests for the circuit compiler (`qsim::plan`).
//!
//! Three guarantees, over random circuits spanning qubit counts 1–12 and
//! thread counts 1–8:
//!
//! 1. **Fused serial ≡ fused threaded, bitwise.** Both paths consume the
//!    same compiled plan and perform identical arithmetic, so amplitudes
//!    must match with `==` on `f64`, never a tolerance.
//! 2. **Fused ≈ unfused, 1e-12.** Fusion replaces `k` rounded sweeps with
//!    one rounded matrix product — mathematically the same unitary, so
//!    every amplitude agrees to tight tolerance but *not* bitwise.
//! 3. **Rebind ≡ fresh compile, bitwise.** A cached structure rebound
//!    with new rotation angles multiplies exactly the matrices a fresh
//!    compile would, so the resulting states are bit-identical.
//! 4. **Entangler blocks preserve the state.** Ansatz-shaped circuits
//!    (rotation sandwiches around full / linear / circular entangler
//!    maps) always lower to at least one `Block4`, the blocked plan
//!    matches gate-by-gate execution to 1e-12, and rebinding a cached
//!    blocked structure reproduces a fresh compile bit for bit.

use proptest::prelude::*;
use qsim::{Circuit, CircuitPlan, Parallelism, PlanCache, Statevector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random circuit over `n` qubits drawn from a seeded stream: rotations,
/// Cliffords, and (for n >= 2) CX/CZ/SWAP on distinct qubit pairs. Biased
/// toward rotations so single-qubit runs long enough to fuse are common.
fn random_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        let q = rng.random_range(0..n);
        let kind = rng.random_range(0..12u8);
        match kind {
            0 => c.h(q),
            1 => c.x(q),
            2 => c.s(q),
            3 => c.sdg(q),
            4 => c.rx(q, rng.random_range(-3.2..3.2)),
            5 | 6 => c.ry(q, rng.random_range(-3.2..3.2)),
            7 | 8 => c.rz(q, rng.random_range(-3.2..3.2)),
            _ if n < 2 => c.h(q),
            _ => {
                let mut p = rng.random_range(0..n);
                while p == q {
                    p = rng.random_range(0..n);
                }
                match kind {
                    9 => c.cx(q, p),
                    10 => c.cz(q, p),
                    _ => c.swap(q, p),
                }
            }
        };
    }
    c
}

/// The same circuit structure with freshly drawn rotation angles.
fn reangled(circuit: &Circuit, seed: u64) -> Circuit {
    use qsim::Gate;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(circuit.num_qubits());
    for &g in circuit.gates() {
        let g = match g {
            Gate::Rx(q, _) => Gate::Rx(q, rng.random_range(-3.2..3.2)),
            Gate::Ry(q, _) => Gate::Ry(q, rng.random_range(-3.2..3.2)),
            Gate::Rz(q, _) => Gate::Rz(q, rng.random_range(-3.2..3.2)),
            g => g,
        };
        c.push(g);
    }
    c
}

/// The qubit pairs of an EfficientSU2-style entangler layer. Built
/// inline: these tests cannot depend on the `vqe` crate (it depends on
/// `qsim`), so the ansatz shapes are reproduced here.
fn entangler_pairs(n: usize, map: u8) -> Vec<(usize, usize)> {
    match map {
        // Full: every ordered pair (i, j) with i < j.
        0 => (0..n)
            .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
            .collect(),
        // Linear: nearest neighbours.
        1 => (0..n - 1).map(|i| (i, i + 1)).collect(),
        // Circular: nearest neighbours plus the wrap-around link.
        _ => (0..n).map(|i| (i, (i + 1) % n)).collect(),
    }
}

/// An EfficientSU2-shaped circuit: `reps` repetitions of per-qubit Ry·Rz
/// sandwiches followed by a CX entangler layer, plus a final rotation
/// layer, with angles drawn from a seeded stream. The shape block fusion
/// is built for: every entangler layer opens pair blocks that absorb the
/// sandwiches around them.
fn su2_ansatz(n: usize, reps: usize, map: u8, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..reps {
        for q in 0..n {
            c.ry(q, rng.random_range(-3.2..3.2));
        }
        for q in 0..n {
            c.rz(q, rng.random_range(-3.2..3.2));
        }
        for (a, b) in entangler_pairs(n, map) {
            c.cx(a, b);
        }
    }
    for q in 0..n {
        c.ry(q, rng.random_range(-3.2..3.2));
        c.rz(q, rng.random_range(-3.2..3.2));
    }
    c
}

proptest! {
    /// Serial and threaded execution of one compiled plan agree bit for
    /// bit, for every thread count the engine accepts.
    #[test]
    fn fused_serial_and_threaded_are_bit_identical(
        n in 1usize..=12,
        threads in 1usize..=8,
        gates in 1usize..=32,
        seed in 0u64..100_000,
    ) {
        let circuit = random_circuit(n, gates, seed);
        let plan = CircuitPlan::compile(&circuit);
        let mut serial = Statevector::zero(n);
        serial.apply_plan(&plan);
        let mut threaded = Statevector::zero(n);
        threaded.apply_plan_with(&plan, Parallelism::Threads(threads));
        prop_assert_eq!(
            serial.amplitudes(),
            threaded.amplitudes(),
            "divergence: {} qubits, {} threads, {} gates, seed {}",
            n, threads, gates, seed
        );
    }

    /// The fused plan prepares the same state as gate-by-gate execution
    /// to 1e-12 per amplitude (fusion re-rounds, so not bitwise).
    #[test]
    fn fused_matches_unfused_to_1e12(
        n in 1usize..=10,
        gates in 1usize..=32,
        seed in 0u64..100_000,
    ) {
        let circuit = random_circuit(n, gates, seed);
        let mut fused = Statevector::zero(n);
        fused.apply_circuit_serial(&circuit);
        let mut unfused = Statevector::zero(n);
        unfused.apply_circuit_unfused(&circuit);
        for (i, (a, b)) in fused
            .amplitudes()
            .iter()
            .zip(unfused.amplitudes())
            .enumerate()
        {
            prop_assert!(
                (*a - *b).abs() < 1e-12,
                "amplitude {} differs by {:e} ({} qubits, {} gates, seed {})",
                i, (*a - *b).abs(), n, gates, seed
            );
        }
    }

    /// A cached structure rebound with new rotation angles produces the
    /// exact amplitudes of a from-scratch compile of the new circuit.
    #[test]
    fn cached_plan_rebind_matches_fresh_compile(
        n in 1usize..=8,
        gates in 1usize..=24,
        seed in 0u64..100_000,
    ) {
        let first = random_circuit(n, gates, seed);
        let second = reangled(&first, seed ^ 0x9e37_79b9);

        let mut cache = PlanCache::new();
        cache.plan(&first);
        let rebound = cache.plan(&second); // structure hit, parameters rebound
        prop_assert_eq!(cache.hits(), 1);

        let fresh = CircuitPlan::compile(&second);
        let mut a = Statevector::zero(n);
        a.apply_plan(&rebound);
        let mut b = Statevector::zero(n);
        b.apply_plan(&fresh);
        prop_assert_eq!(a.amplitudes(), b.amplitudes());
    }

    /// Ansatz-shaped circuits always lower to entangler blocks, and the
    /// blocked plan prepares the gate-by-gate state to 1e-12 for every
    /// entanglement map.
    #[test]
    fn ansatz_blocks_match_unfused_to_1e12(
        n in 2usize..=12,
        reps in 1usize..=3,
        map in 0u8..3,
        seed in 0u64..100_000,
    ) {
        let circuit = su2_ansatz(n, reps, map, seed);
        let plan = CircuitPlan::compile(&circuit);
        prop_assert!(
            plan.block_count() > 0,
            "no blocks: {} qubits, {} reps, map {}, seed {}",
            n, reps, map, seed
        );
        let mut blocked = Statevector::zero(n);
        blocked.apply_plan(&plan);
        let mut unfused = Statevector::zero(n);
        unfused.apply_circuit_unfused(&circuit);
        for (i, (a, b)) in blocked
            .amplitudes()
            .iter()
            .zip(unfused.amplitudes())
            .enumerate()
        {
            prop_assert!(
                (*a - *b).abs() < 1e-12,
                "amplitude {} differs by {:e} ({} qubits, {} reps, map {}, seed {})",
                i, (*a - *b).abs(), n, reps, map, seed
            );
        }
    }

    /// A cached ansatz structure rebound with fresh angles rebinds its
    /// block matrices too: bit-identical to a fresh compile of the
    /// reangled circuit.
    #[test]
    fn block4_rebind_matches_fresh_compile(
        n in 2usize..=10,
        map in 0u8..3,
        seed in 0u64..100_000,
    ) {
        let first = su2_ansatz(n, 2, map, seed);
        let second = reangled(&first, seed ^ 0x51f1_57a7);

        let mut cache = PlanCache::new();
        cache.plan(&first);
        let rebound = cache.plan(&second); // structure hit, blocks rebound
        prop_assert_eq!(cache.hits(), 1);
        prop_assert!(rebound.block_count() > 0);

        let fresh = CircuitPlan::compile(&second);
        let mut a = Statevector::zero(n);
        a.apply_plan(&rebound);
        let mut b = Statevector::zero(n);
        b.apply_plan(&fresh);
        prop_assert_eq!(a.amplitudes(), b.amplitudes());
    }
}
