//! Property test: sharded amplitude-plane execution is bit-identical to
//! the single-plane serial path.
//!
//! The sharded executor partitions amplitudes across shards, batches
//! local ops per shard, exchanges across shard pairs for global-qubit
//! ops, and may remap qubits through a layout — but every logical
//! amplitude goes through the exact same floating-point operations as
//! the serial kernels, so the gathered state must match **exactly**
//! (`==` on `f64`, no tolerance) for every circuit, qubit count 2–14,
//! shard count 1–8, and thread count 1–4 — and for **both** shard
//! transports: the zero-copy in-process backend and the
//! message-passing rank-thread backend (which serializes every moved
//! amplitude to `u64` words and back).

use proptest::prelude::*;
use qsim::plan::ShardPlan;
use qsim::{Circuit, CircuitPlan, Parallelism, ShardedState, Statevector, TransportMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every assertion below is checked per transport backend.
const TRANSPORTS: [TransportMode; 2] = [TransportMode::Local, TransportMode::Channel];

/// A random circuit over `n` qubits drawn from a seeded stream:
/// rotations, Cliffords, and (for n >= 2) CX/CZ/SWAP on distinct qubit
/// pairs. Qubit choice is uniform, so high (global under sharding)
/// qubits appear in every role.
fn random_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        let q = rng.random_range(0..n);
        let kind = rng.random_range(0..10u8);
        match kind {
            0 => c.h(q),
            1 => c.x(q),
            2 => c.s(q),
            3 => c.sdg(q),
            4 => c.rx(q, rng.random_range(-3.2..3.2)),
            5 => c.ry(q, rng.random_range(-3.2..3.2)),
            6 => c.rz(q, rng.random_range(-3.2..3.2)),
            _ if n < 2 => c.h(q),
            _ => {
                let mut p = rng.random_range(0..n);
                while p == q {
                    p = rng.random_range(0..n);
                }
                match kind {
                    7 => c.cx(q, p),
                    8 => c.cz(q, p),
                    _ => c.swap(q, p),
                }
            }
        };
    }
    c
}

fn serial_reference(circuit: &Circuit) -> Statevector {
    let mut serial = Statevector::zero(circuit.num_qubits());
    serial.apply_plan(&CircuitPlan::compile(circuit));
    serial
}

proptest! {
    /// Sharded execution (with the exchange-minimizing layout remap)
    /// reproduces the serial amplitudes bit for bit across qubit counts
    /// 2–14, shard counts 1–8, and thread counts 1–4.
    #[test]
    fn sharded_execution_is_bit_identical(
        n in 2usize..=14,
        shard_log in 0u32..=3,
        threads in 1usize..=4,
        gates in 1usize..=30,
        seed in 0u64..100_000,
    ) {
        let shards = (1usize << shard_log).min(1 << n);
        let circuit = random_circuit(n, gates, seed);
        let serial = serial_reference(&circuit);
        for transport in TRANSPORTS {
            let mut sharded = ShardedState::zero(n, shards)
                .with_parallelism(Parallelism::Threads(threads))
                .with_transport(transport);
            sharded.apply_plan(&CircuitPlan::compile(&circuit));
            prop_assert_eq!(
                serial.amplitudes(),
                sharded.to_statevector().amplitudes(),
                "divergence: {} qubits, {} shards, {} threads, {} gates, seed {}, {:?} transport",
                n, shards, threads, gates, seed, transport
            );
        }
    }

    /// The identity layout (no remap) exercises the exchange and
    /// plane-swap kernels hard: every circuit here works the top two
    /// qubits, which stay global when the layout is pinned.
    #[test]
    fn global_qubit_exchanges_are_bit_identical(
        shards_log in 1u32..=3,
        threads in 1usize..=4,
        seed in 0u64..100_000,
    ) {
        let n = 8;
        let shards = 1usize << shards_log;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(n);
        for _ in 0..14 {
            match rng.random_range(0..7u8) {
                0 => c.ry(n - 1, rng.random_range(-3.2..3.2)),
                1 => c.h(n - 2),
                2 => c.cx(rng.random_range(0..n - 2), n - 1),
                3 => c.cx(n - 1, n - 2),
                4 => c.cz(n - 1, rng.random_range(0..n - 1)),
                5 => c.swap(n - 1, rng.random_range(0..n - 1)),
                _ => c.swap(n - 1, n - 2),
            };
        }
        let plan = CircuitPlan::compile(&c);
        let serial = serial_reference(&c);
        let layout: Vec<usize> = (0..n).collect();
        let sp = ShardPlan::with_layout(&plan, shards, &layout);
        for transport in TRANSPORTS {
            let mut sharded = ShardedState::zero(n, shards)
                .with_parallelism(Parallelism::Threads(threads))
                .with_transport(transport);
            sharded.apply_shard_plan(&sp);
            prop_assert_eq!(
                serial.amplitudes(),
                sharded.to_statevector().amplitudes(),
                "divergence: {} shards, {} threads, seed {} ({} exchanges, {} plane swaps, {:?})",
                shards, threads, seed, sp.exchange_count(), sp.plane_swap_count(), transport
            );
        }
    }

    /// Sequential plans on one sharded state (the second pins the layout
    /// the first adopted) still match running both plans serially.
    #[test]
    fn chained_plans_are_bit_identical(
        n in 3usize..=10,
        shards_log in 0u32..=2,
        seed in 0u64..100_000,
    ) {
        let shards = (1usize << shards_log).min(1 << n);
        let a = random_circuit(n, 12, seed);
        let b = random_circuit(n, 12, seed.wrapping_add(1));
        let mut serial = Statevector::zero(n);
        serial.apply_plan(&CircuitPlan::compile(&a));
        serial.apply_plan(&CircuitPlan::compile(&b));
        for transport in TRANSPORTS {
            let mut sharded = ShardedState::zero(n, shards).with_transport(transport);
            sharded.apply_plan(&CircuitPlan::compile(&a));
            sharded.apply_plan(&CircuitPlan::compile(&b));
            prop_assert_eq!(
                serial.amplitudes(),
                sharded.to_statevector().amplitudes(),
                "divergence under {:?} transport",
                transport
            );
        }
    }

    /// Entangler blocks in every placement the shard planner
    /// distinguishes — both pair bits local, low bit local / high bit
    /// global, and both bits global — execute bit-identically under a
    /// pinned identity layout.
    #[test]
    fn block4_placements_are_bit_identical(
        shards_log in 1u32..=3,
        threads in 1usize..=4,
        seed in 0u64..100_000,
    ) {
        let n = 8;
        let shards = 1usize << shards_log;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(n);
        // Three same-pair entangler runs with rotation sandwiches: pair
        // (0,1) stays local at every shard count here, (1,n-1) splits,
        // and (n-2,n-1) is fully global once shards >= 4.
        for &(a, b) in &[(0usize, 1usize), (1, n - 1), (n - 2, n - 1)] {
            c.ry(a, rng.random_range(-3.2..3.2));
            c.ry(b, rng.random_range(-3.2..3.2));
            c.cx(a, b);
            c.cz(a, b);
            c.rz(a, rng.random_range(-3.2..3.2));
            c.ry(b, rng.random_range(-3.2..3.2));
            c.cx(b, a);
        }
        let plan = CircuitPlan::compile(&c);
        prop_assert!(plan.block_count() >= 3, "want all three placements blocked");
        let serial = serial_reference(&c);
        let layout: Vec<usize> = (0..n).collect();
        let sp = ShardPlan::with_layout(&plan, shards, &layout);
        for transport in TRANSPORTS {
            let mut sharded = ShardedState::zero(n, shards)
                .with_parallelism(Parallelism::Threads(threads))
                .with_transport(transport);
            sharded.apply_shard_plan(&sp);
            prop_assert_eq!(
                serial.amplitudes(),
                sharded.to_statevector().amplitudes(),
                "divergence: {} shards, {} threads, seed {}, {:?} transport",
                shards, threads, seed, transport
            );
        }
    }
}

/// The block-path assertions above are non-vacuous: executing a
/// deliberately transposed block matrix through the sharded engine must
/// visibly disturb the state relative to the serial reference.
#[test]
fn transposed_block_is_caught_by_the_shard_oracle() {
    let n = 6;
    let mut c = Circuit::new(n);
    for &(a, b) in &[(0usize, 1usize), (n - 2, n - 1)] {
        c.ry(a, 0.3)
            .ry(b, 0.7)
            .cx(a, b)
            .cz(a, b)
            .rz(a, 0.9)
            .cx(a, b);
    }
    let plan = CircuitPlan::compile(&c);
    assert!(plan.block_count() >= 2);
    let serial = serial_reference(&c);
    let layout: Vec<usize> = (0..n).collect();
    let mutated = ShardPlan::with_layout(&plan.transpose_blocks_for_tests(), 4, &layout);
    let mut sharded = ShardedState::zero(n, 4);
    sharded.apply_shard_plan(&mutated);
    let drift: f64 = serial
        .amplitudes()
        .iter()
        .zip(sharded.to_statevector().amplitudes())
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0, f64::max);
    assert!(
        drift > 1e-6,
        "transposed blocks must be detectable, drift {drift:e}"
    );
}

/// Regression (caught by the 256-case deep tier): a layout remap that
/// *flips* a block's pair order conjugates its matrix with
/// `swap_qubits4`, relabeling the pair basis by the permutation
/// `(0)(3)(1 2)`. A left-to-right quad accumulation diverged from the
/// serial reference by one rounding under that relabeling; the
/// `(0,3)+(1,2)` pairing in `exec::quad_update` keeps it exact. Pins
/// the seed that first exposed the divergence.
#[test]
fn pair_flipping_remap_is_bit_identical() {
    let circuit = random_circuit(4, 18, 1806);
    let serial = serial_reference(&circuit);
    for transport in TRANSPORTS {
        let mut sharded = ShardedState::zero(4, 2)
            .with_parallelism(Parallelism::Threads(4))
            .with_transport(transport);
        sharded.apply_plan(&CircuitPlan::compile(&circuit));
        assert_eq!(serial.amplitudes(), sharded.to_statevector().amplitudes());
    }
}
