//! Property test: threaded circuit execution is bit-identical to serial.
//!
//! The threaded engine partitions each gate's amplitude pairs across
//! workers but performs the exact same floating-point operations as the
//! serial kernels, so the amplitudes must match **exactly** (`==` on
//! `f64`, not within a tolerance) for every circuit, qubit count 1–12,
//! and thread count 1–8 — including counts the engine rounds down or
//! rejects in favor of the serial path.

use proptest::prelude::*;
use qsim::{Circuit, CircuitPlan, Parallelism, Statevector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random circuit over `n` qubits drawn from a seeded stream: rotations,
/// Cliffords, and (for n >= 2) CX/CZ/SWAP on distinct qubit pairs.
fn random_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        let q = rng.random_range(0..n);
        let kind = rng.random_range(0..10u8);
        match kind {
            0 => c.h(q),
            1 => c.x(q),
            2 => c.s(q),
            3 => c.sdg(q),
            4 => c.rx(q, rng.random_range(-3.2..3.2)),
            5 => c.ry(q, rng.random_range(-3.2..3.2)),
            6 => c.rz(q, rng.random_range(-3.2..3.2)),
            _ if n < 2 => c.h(q),
            _ => {
                let mut p = rng.random_range(0..n);
                while p == q {
                    p = rng.random_range(0..n);
                }
                match kind {
                    7 => c.cx(q, p),
                    8 => c.cz(q, p),
                    _ => c.swap(q, p),
                }
            }
        };
    }
    c
}

proptest! {
    /// Threaded `apply_circuit_with` reproduces the serial amplitudes bit
    /// for bit across qubit counts 1–12 and thread counts 1–8.
    #[test]
    fn threaded_apply_circuit_is_bit_identical(
        n in 1usize..=12,
        threads in 1usize..=8,
        gates in 1usize..=28,
        seed in 0u64..100_000,
    ) {
        let circuit = random_circuit(n, gates, seed);
        let mut serial = Statevector::zero(n);
        serial.apply_circuit_serial(&circuit);
        let mut threaded = Statevector::zero(n);
        threaded.apply_circuit_with(&circuit, Parallelism::Threads(threads));
        prop_assert_eq!(
            serial.amplitudes(),
            threaded.amplitudes(),
            "divergence: {} qubits, {} threads, {} gates, seed {}",
            n, threads, gates, seed
        );
    }

    /// The Auto dispatch (what `apply_circuit` uses) also matches serial
    /// exactly, whichever path it picks — exercised at the 11–12 qubit
    /// sizes where Auto can go threaded.
    #[test]
    fn auto_apply_circuit_is_bit_identical(
        n in 10usize..=12,
        gates in 8usize..=24,
        seed in 0u64..100_000,
    ) {
        let circuit = random_circuit(n, gates, seed);
        let mut serial = Statevector::zero(n);
        serial.apply_circuit_serial(&circuit);
        let mut auto = Statevector::zero(n);
        auto.apply_circuit(&circuit);
        prop_assert_eq!(serial.amplitudes(), auto.amplitudes());
    }

    /// High-qubit gates exercise the cross-chunk kernels specifically:
    /// every gate touches the top two qubits, so with 4+ workers nothing
    /// is chunk-local.
    #[test]
    fn cross_chunk_kernels_are_bit_identical(
        threads in 2usize..=8,
        seed in 0u64..100_000,
    ) {
        let n = 8;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(n);
        for _ in 0..12 {
            match rng.random_range(0..5u8) {
                0 => c.ry(n - 1, rng.random_range(-3.2..3.2)),
                1 => c.h(n - 2),
                2 => c.cx(rng.random_range(0..n - 2), n - 1),
                3 => c.cz(n - 1, rng.random_range(0..n - 1)),
                _ => c.swap(n - 1, rng.random_range(0..n - 1)),
            };
        }
        let mut serial = Statevector::zero(n);
        serial.apply_circuit_serial(&c);
        let mut threaded = Statevector::zero(n);
        threaded.apply_circuit_with(&c, Parallelism::Threads(threads));
        prop_assert_eq!(serial.amplitudes(), threaded.amplitudes());
    }

    /// Entangler blocks on a low pair (worker-local quads) and on the top
    /// pair (cross-chunk quads) both thread bit-identically.
    #[test]
    fn block4_kernels_are_bit_identical(
        threads in 1usize..=8,
        seed in 0u64..100_000,
    ) {
        let n = 8;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(n);
        for &(a, b) in &[(0usize, 1usize), (n - 2, n - 1)] {
            c.ry(a, rng.random_range(-3.2..3.2));
            c.ry(b, rng.random_range(-3.2..3.2));
            c.cx(a, b);
            c.cz(a, b);
            c.rz(a, rng.random_range(-3.2..3.2));
            c.cx(b, a);
        }
        let plan = CircuitPlan::compile(&c);
        prop_assert!(plan.block_count() >= 2);
        let mut serial = Statevector::zero(n);
        serial.apply_plan(&plan);
        let mut threaded = Statevector::zero(n);
        threaded.apply_plan_with(&plan, Parallelism::Threads(threads));
        prop_assert_eq!(
            serial.amplitudes(),
            threaded.amplitudes(),
            "divergence: {} threads, seed {}",
            threads, seed
        );
    }
}

/// The block assertions above are non-vacuous: a deliberately transposed
/// block matrix run through the threaded engine must visibly disturb the
/// state relative to the serial reference.
#[test]
fn transposed_block_is_caught_by_the_threaded_oracle() {
    let n = 6;
    let mut c = Circuit::new(n);
    c.ry(n - 2, 0.3).ry(n - 1, 0.7);
    c.cx(n - 2, n - 1)
        .cz(n - 2, n - 1)
        .rz(n - 1, 0.9)
        .cx(n - 2, n - 1);
    let plan = CircuitPlan::compile(&c);
    assert!(plan.block_count() > 0);
    let mut serial = Statevector::zero(n);
    serial.apply_plan(&plan);
    let mut mutant = Statevector::zero(n);
    mutant.apply_plan_with(&plan.transpose_blocks_for_tests(), Parallelism::Threads(4));
    let drift: f64 = serial
        .amplitudes()
        .iter()
        .zip(mutant.amplitudes())
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0, f64::max);
    assert!(
        drift > 1e-6,
        "transposed blocks must be detectable, drift {drift:e}"
    );
}
