//! Integration coverage of the shard-transport seam: sub-split alignment
//! edge cases on the in-process backend, counter semantics of both
//! backends, fault injection through the message-passing backend (the
//! oracle must catch a single corrupted wire word; a dead rank must
//! surface a typed error, not a deadlock), and thread hygiene of the
//! rank-thread backend.

use qsim::plan::ShardPlan;
use qsim::{
    Circuit, CircuitPlan, FaultInjection, Parallelism, ShardedState, Statevector, TransportError,
    TransportMode,
};

fn serial_reference(circuit: &Circuit) -> Statevector {
    let mut serial = Statevector::zero(circuit.num_qubits());
    serial.apply_plan(&CircuitPlan::compile(circuit));
    serial
}

/// Runs `circuit` sharded under a pinned identity layout (so the chosen
/// global-qubit ops really exchange) and asserts bit-identity with the
/// serial reference.
fn assert_bit_identical(
    circuit: &Circuit,
    shards: usize,
    threads: usize,
    transport: TransportMode,
    context: &str,
) {
    let n = circuit.num_qubits();
    let plan = CircuitPlan::compile(circuit);
    let layout: Vec<usize> = (0..n).collect();
    let sp = ShardPlan::with_layout(&plan, shards, &layout);
    let serial = serial_reference(circuit);
    let mut sharded = ShardedState::zero(n, shards)
        .with_parallelism(Parallelism::Threads(threads))
        .with_transport(transport);
    sharded
        .try_apply_shard_plan(&sp)
        .unwrap_or_else(|e| panic!("{context}: transport failed: {e}"));
    assert_eq!(
        serial.amplitudes(),
        sharded.to_statevector().amplitudes(),
        "{context}: {shards} shards, {threads} threads, {transport:?}"
    );
}

/// Exchange sub-splitting must respect every kernel's alignment floor:
/// a one-qubit exchange may slice down to single amplitudes, but a CX
/// with a local control must keep `1 << (control+1)`-sized blocks
/// together, a SWAP with a local low bit `1 << (lo+1)`, and a fused
/// entangler block with a local low pair bit likewise. Non-power-of-two
/// worker counts round the split up to a power of two, and worker
/// counts past the alignment-limited maximum must clamp, not slice
/// through a condition block. Every combination stays bit-identical.
#[test]
fn sub_split_respects_alignment_at_every_worker_count() {
    let n = 7;
    // One circuit per exchange kind, each working the top (global under
    // 4+ shards) qubit so the pinned layout forces real exchanges.
    let mut one_q = Circuit::new(n);
    one_q.h(0).ry(n - 1, 0.83).h(n - 1);

    // Local control low, global target high: CxLocalControl alignment.
    // Control n-3 gives the largest local condition mask (1 << (n-2))
    // relative to a shard, squeezing max_splits down to 1 at 4 shards.
    let mut cx_edge = Circuit::new(n);
    cx_edge.h(0).h(n - 3).cx(n - 3, n - 1).cx(0, n - 1);

    let mut swap_edge = Circuit::new(n);
    swap_edge.h(0).ry(1, 0.4).swap(1, n - 1).swap(n - 3, n - 1);

    // A same-pair entangler run with a rotation sandwich fuses into a
    // 4x4 block on (lo local, hi global): Block4Lo alignment.
    let mut block_edge = Circuit::new(n);
    block_edge
        .ry(1, 0.3)
        .ry(n - 1, 0.7)
        .cx(1, n - 1)
        .cz(1, n - 1)
        .rz(1, 0.9)
        .cx(1, n - 1);

    for (name, circuit) in [
        ("one_q", &one_q),
        ("cx_edge", &cx_edge),
        ("swap_edge", &swap_edge),
        ("block_edge", &block_edge),
    ] {
        for shards in [2usize, 4, 8] {
            // Odd, prime, and oversubscribed worker counts: the split
            // factor rounds up to a power of two and clamps at the
            // kernel's alignment-limited maximum.
            for threads in [1usize, 3, 5, 6, 7, 16, 64] {
                assert_bit_identical(circuit, shards, threads, TransportMode::Local, name);
            }
        }
    }
}

/// Worker counts exceeding the pair count do split exchanges: the
/// in-process backend reports the extra slices it created, and the
/// split work remains bit-identical (covered above).
#[test]
fn oversubscribed_exchanges_report_sub_splits() {
    let n = 8;
    let mut c = Circuit::new(n);
    c.h(0).ry(n - 1, 0.6);
    let plan = CircuitPlan::compile(&c);
    let layout: Vec<usize> = (0..n).collect();
    let sp = ShardPlan::with_layout(&plan, 2, &layout);
    // 2 shards = 1 exchange pair; 8 workers want 8 slices of it.
    // Sub-splitting is the in-process backend's parallelization detail,
    // so pin the transport against the environment default.
    let mut st = ShardedState::zero(n, 2)
        .with_parallelism(Parallelism::Threads(8))
        .with_transport(TransportMode::Local);
    st.try_apply_shard_plan(&sp).unwrap();
    let stats = st.shard_stats();
    assert!(stats.exchanges >= 1, "expected an exchange, got {stats:?}");
    assert!(
        stats.sub_splits >= 1,
        "8 workers over 1 pair must sub-split, got {stats:?}"
    );
    assert_eq!(stats.messages, 0, "in-process transport moves no messages");
    assert_eq!(stats.bytes_moved, 0);
}

/// The message-passing backend meters its wire honestly: every exchange
/// moves amplitude payloads, every command and reply counts as a
/// message, and counters accumulate across chained plans on one state.
#[test]
fn channel_counters_accumulate_across_chained_plans() {
    let n = 6;
    let mut c = Circuit::new(n);
    c.h(0).ry(n - 1, 0.5);
    let mut st = ShardedState::zero(n, 4).with_transport(TransportMode::Channel);
    st.try_apply_plan(&CircuitPlan::compile(&c)).unwrap();
    let after_one = st.shard_stats();
    assert!(after_one.messages > 0, "channel transport must message");
    st.try_apply_plan(&CircuitPlan::compile(&c)).unwrap();
    let after_two = st.shard_stats();
    assert!(after_two.messages > after_one.messages);
    assert!(after_two.bytes_moved >= after_one.bytes_moved);
    // The wire volume is an exact multiple of the 16-byte amplitude.
    assert_eq!(after_two.bytes_moved % 16, 0);
}

/// Mutation check: corrupting one transported `u64` word must be caught
/// by the bit-identity oracle. The injected flip XORs the exponent
/// field, so no transported value survives it unchanged — if this test
/// ever fails, the cross-backend equivalence suite has lost its teeth.
#[test]
fn corrupting_one_wire_word_is_caught_by_the_oracle() {
    let n = 6;
    // A spread state (H wall) so every transported word is nonzero,
    // then a global-qubit rotation to force an exchange.
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    c.ry(n - 1, 0.77);
    let mut clean = ShardedState::zero(n, 4).with_transport(TransportMode::Channel);
    clean.try_apply_plan(&CircuitPlan::compile(&c)).unwrap();
    assert!((clean.norm_sqr() - 1.0).abs() < 1e-12, "control run clean");
    let mut corrupted = ShardedState::zero(n, 4)
        .with_transport(TransportMode::Channel)
        .with_fault(FaultInjection::corrupt_word(0));
    corrupted.try_apply_plan(&CircuitPlan::compile(&c)).unwrap();
    // The exponent flip changes the first transported amplitude's
    // magnitude by at least 2x, so even the coarsest invariant — the
    // state norm — visibly breaks. (`to_statevector` would assert on
    // the denormalized state, so the check reads the shards directly.)
    let drift = (corrupted.norm_sqr() - 1.0).abs();
    assert!(
        drift > 1e-6,
        "a corrupted wire word must be detectable, norm drift {drift:e}"
    );
}

/// A rank that dies before processing commands surfaces as a typed
/// error value — never a panic, never a deadlock — and poisons the
/// state so later applies fail fast instead of touching stale shards.
#[test]
fn dead_rank_fails_typed_and_poisons_the_state() {
    let n = 5;
    let mut c = Circuit::new(n);
    c.h(0).ry(n - 1, 0.9);
    let mut st = ShardedState::zero(n, 4)
        .with_transport(TransportMode::Channel)
        .with_fault(FaultInjection::kill_rank(2));
    let err = st
        .try_apply_plan(&CircuitPlan::compile(&c))
        .expect_err("a dead rank must fail the apply");
    assert!(
        matches!(
            err,
            TransportError::Disconnected { rank: 2, .. } | TransportError::Timeout { .. }
        ),
        "unexpected error: {err:?}"
    );
    // The error is a value with a readable rendering.
    assert!(!err.to_string().is_empty());
    // Subsequent applies fail fast on the poisoned state.
    let again = st
        .try_apply_plan(&CircuitPlan::compile(&c))
        .expect_err("poisoned state must refuse further plans");
    assert_eq!(again, TransportError::Poisoned);
}

/// The rank-thread backend leaks no threads: after states are dropped —
/// whether their plans succeeded or a rank was killed mid-plan — the
/// process thread count returns to its baseline. (Thread counts come
/// from /proc, so this check runs on Linux only; the join-on-drop path
/// it observes is platform-independent.)
#[test]
#[cfg(target_os = "linux")]
fn rank_threads_are_joined_not_leaked() {
    fn thread_count() -> usize {
        let status = std::fs::read_to_string("/proc/self/status").unwrap();
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .unwrap()
    }
    let n = 5;
    let mut ok_plan = Circuit::new(n);
    ok_plan.h(0).ry(n - 1, 0.4);
    let plan = CircuitPlan::compile(&ok_plan);
    let before = thread_count();
    for round in 0..8 {
        let fault = if round % 2 == 0 {
            FaultInjection::none()
        } else {
            FaultInjection::kill_rank(1)
        };
        let mut st = ShardedState::zero(n, 4)
            .with_transport(TransportMode::Channel)
            .with_fault(fault);
        let _ = st.try_apply_plan(&plan);
    }
    // All sessions are finished or dropped: every rank thread joined.
    let after = thread_count();
    assert!(
        after <= before,
        "rank threads leaked: {before} threads before, {after} after"
    );
}
