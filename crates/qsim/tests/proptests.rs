//! Property-based tests for the state-vector simulator.

use proptest::prelude::*;
use qsim::{Circuit, Gate, Statevector};

/// Strategy producing an arbitrary gate on a circuit of `n` qubits.
fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let theta = -6.3..6.3f64;
    prop_oneof![
        q.clone().prop_map(Gate::H),
        q.clone().prop_map(Gate::X),
        q.clone().prop_map(Gate::Y),
        q.clone().prop_map(Gate::Z),
        q.clone().prop_map(Gate::S),
        q.clone().prop_map(Gate::Sdg),
        q.clone().prop_map(Gate::T),
        q.clone().prop_map(Gate::Tdg),
        (q.clone(), theta.clone()).prop_map(|(q, t)| Gate::Rx(q, t)),
        (q.clone(), theta.clone()).prop_map(|(q, t)| Gate::Ry(q, t)),
        (q.clone(), theta).prop_map(|(q, t)| Gate::Rz(q, t)),
        (0..n, 0..n).prop_filter_map("distinct qubits", |(a, b)| (a != b)
            .then_some(Gate::Cx(a, b))),
        (0..n, 0..n).prop_filter_map("distinct qubits", |(a, b)| (a != b)
            .then_some(Gate::Cz(a, b))),
        (0..n, 0..n).prop_filter_map("distinct qubits", |(a, b)| (a != b)
            .then_some(Gate::Swap(a, b))),
    ]
}

fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(n), 0..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        c.extend(gates);
        c
    })
}

proptest! {
    /// Unitary evolution preserves the norm of the state.
    #[test]
    fn circuits_preserve_norm(c in arb_circuit(4, 40)) {
        let mut s = Statevector::zero(4);
        s.apply_circuit(&c);
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// Applying a circuit followed by its inverse returns to |0…0⟩.
    #[test]
    fn inverse_undoes_circuit(c in arb_circuit(3, 30)) {
        let mut s = Statevector::zero(3);
        s.apply_circuit(&c);
        s.apply_circuit(&c.inverse());
        prop_assert!((s.probabilities()[0] - 1.0).abs() < 1e-9);
    }

    /// Probabilities are a valid distribution: nonnegative, summing to one.
    #[test]
    fn probabilities_form_distribution(c in arb_circuit(4, 40)) {
        let mut s = Statevector::zero(4);
        s.apply_circuit(&c);
        let p = s.probabilities();
        prop_assert!(p.iter().all(|&x| x >= -1e-12));
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// A marginal over all qubits in identity order equals the full
    /// distribution, and any marginal sums to one.
    #[test]
    fn marginals_are_consistent(c in arb_circuit(4, 30), qubits in proptest::sample::subsequence(vec![0usize, 1, 2, 3], 1..=4)) {
        let mut s = Statevector::zero(4);
        s.apply_circuit(&c);
        let m = s.marginal_probabilities(&qubits);
        prop_assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let full = s.marginal_probabilities(&[0, 1, 2, 3]);
        let direct = s.probabilities();
        for (a, b) in full.iter().zip(&direct) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// Fidelity is symmetric and bounded by [0, 1].
    #[test]
    fn fidelity_is_symmetric(a in arb_circuit(3, 20), b in arb_circuit(3, 20)) {
        let mut sa = Statevector::zero(3);
        sa.apply_circuit(&a);
        let mut sb = Statevector::zero(3);
        sb.apply_circuit(&b);
        let f_ab = sa.fidelity(&sb);
        let f_ba = sb.fidelity(&sa);
        prop_assert!((f_ab - f_ba).abs() < 1e-9);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&f_ab));
    }

    /// Sampling from an exact distribution yields counts totalling `shots`
    /// and supported only where the distribution is nonzero.
    #[test]
    fn sampling_respects_support(c in arb_circuit(3, 20), seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut s = Statevector::zero(3);
        s.apply_circuit(&c);
        let p = s.probabilities();
        let mut rng = StdRng::seed_from_u64(seed);
        let counts = qsim::sample_counts(&p, 256, &mut rng);
        prop_assert_eq!(counts.iter().sum::<u64>(), 256);
        for (i, &cnt) in counts.iter().enumerate() {
            if cnt > 0 {
                prop_assert!(p[i] > 0.0, "sampled outcome {} has zero probability", i);
            }
        }
    }
}
