//! Matrix-free extremal eigenvalue computation.
//!
//! Reference ground-state energies (the paper's "Ref. Energy" column and the
//! "Ideal" curves) are the lowest eigenvalues of Hamiltonians that act on
//! 2ⁿ-dimensional spaces. A dense eigensolver would cap us at a handful of
//! qubits, so this module implements the Lanczos algorithm over an abstract
//! [`HermitianOp`]: the operator is only ever needed through matrix-vector
//! products, which a Pauli-sum Hamiltonian provides in `O(terms · 2ⁿ)` time.

use crate::complex::C64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Hermitian linear operator on a complex vector space, exposed through
/// matrix-vector products only.
///
/// Implementors must guarantee Hermiticity; the Lanczos iteration silently
/// produces garbage for non-Hermitian operators.
pub trait HermitianOp {
    /// The dimension of the space the operator acts on.
    fn dim(&self) -> usize;

    /// Computes `y = A·x`.
    ///
    /// `y` is zero-initialized by the caller; implementations should
    /// accumulate into it.
    fn apply(&self, x: &[C64], y: &mut [C64]);
}

/// Result of a Lanczos run.
#[derive(Clone, Debug, PartialEq)]
pub struct LanczosResult {
    /// The converged lowest eigenvalue estimate.
    pub eigenvalue: f64,
    /// Number of Lanczos iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met (as opposed to hitting the iteration
    /// cap or exhausting the space).
    pub converged: bool,
}

/// Computes the lowest eigenvalue of `op` with the Lanczos algorithm.
///
/// Uses full reorthogonalization (the Krylov dimensions involved here are
/// small — a few hundred at most), a seeded random start vector, and stops
/// once the eigenvalue estimate changes by less than `tol` between
/// iterations, the Krylov space is exhausted, or `max_iter` steps elapse.
///
/// # Panics
///
/// Panics if `op.dim() == 0`.
///
/// # Examples
///
/// ```
/// use qsim::{lowest_eigenvalue, C64, HermitianOp};
///
/// /// Diagonal operator diag(3, -1, 4, 1).
/// struct Diag(Vec<f64>);
/// impl HermitianOp for Diag {
///     fn dim(&self) -> usize { self.0.len() }
///     fn apply(&self, x: &[C64], y: &mut [C64]) {
///         for i in 0..x.len() { y[i] = x[i].scale(self.0[i]); }
///     }
/// }
///
/// let r = lowest_eigenvalue(&Diag(vec![3.0, -1.0, 4.0, 1.0]), 50, 1e-10, 7);
/// assert!((r.eigenvalue + 1.0).abs() < 1e-8);
/// ```
pub fn lowest_eigenvalue<O: HermitianOp>(
    op: &O,
    max_iter: usize,
    tol: f64,
    seed: u64,
) -> LanczosResult {
    let dim = op.dim();
    assert!(dim > 0, "operator dimension must be positive");
    let steps = max_iter.min(dim).max(1);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = random_unit(dim, &mut rng);

    let mut basis: Vec<Vec<C64>> = Vec::with_capacity(steps);
    let mut alphas: Vec<f64> = Vec::with_capacity(steps);
    let mut betas: Vec<f64> = Vec::with_capacity(steps);

    let mut prev_eig = f64::INFINITY;
    let mut w = vec![C64::ZERO; dim];

    for k in 0..steps {
        basis.push(v.clone());
        w.iter_mut().for_each(|x| *x = C64::ZERO);
        op.apply(&v, &mut w);

        // alpha_k = <v, w>  (real for Hermitian op)
        let alpha: f64 = v.iter().zip(&w).map(|(a, b)| (a.conj() * *b).re).sum();
        alphas.push(alpha);

        // w -= alpha*v + beta_{k-1}*v_{k-1}
        for (wi, vi) in w.iter_mut().zip(&v) {
            *wi -= vi.scale(alpha);
        }
        if k > 0 {
            let beta_prev = betas[k - 1];
            for (wi, ui) in w.iter_mut().zip(&basis[k - 1]) {
                *wi -= ui.scale(beta_prev);
            }
        }

        // Full reorthogonalization against the accumulated basis (twice is
        // enough in double precision).
        for _ in 0..2 {
            for u in &basis {
                let proj: C64 = u.iter().zip(&w).map(|(a, b)| a.conj() * *b).sum();
                for (wi, ui) in w.iter_mut().zip(u) {
                    *wi -= *ui * proj;
                }
            }
        }

        let eig = smallest_tridiagonal_eigenvalue(&alphas, &betas);
        let beta: f64 = w.iter().map(|x| x.norm_sqr()).sum::<f64>().sqrt();

        if (prev_eig - eig).abs() < tol || beta < 1e-12 {
            return LanczosResult {
                eigenvalue: eig,
                iterations: k + 1,
                converged: true,
            };
        }
        prev_eig = eig;
        betas.push(beta);
        for (vi, wi) in v.iter_mut().zip(&w) {
            *vi = wi.scale(1.0 / beta);
        }
    }

    LanczosResult {
        eigenvalue: smallest_tridiagonal_eigenvalue(&alphas, &betas),
        iterations: steps,
        converged: false,
    }
}

fn random_unit(dim: usize, rng: &mut StdRng) -> Vec<C64> {
    let mut v: Vec<C64> = (0..dim)
        .map(|_| C64::new(rng.random::<f64>() - 0.5, rng.random::<f64>() - 0.5))
        .collect();
    let norm: f64 = v.iter().map(|x| x.norm_sqr()).sum::<f64>().sqrt();
    v.iter_mut().for_each(|x| *x = x.scale(1.0 / norm));
    v
}

/// Smallest eigenvalue of the symmetric tridiagonal matrix with diagonal
/// `alphas` and off-diagonal `betas` (`betas.len() >= alphas.len() - 1`;
/// extra entries are ignored), found by bisection on the Sturm sequence.
pub fn smallest_tridiagonal_eigenvalue(alphas: &[f64], betas: &[f64]) -> f64 {
    let n = alphas.len();
    assert!(n > 0, "empty tridiagonal matrix");
    if n == 1 {
        return alphas[0];
    }
    // Gershgorin bounds.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let mut r = 0.0;
        if i > 0 {
            r += betas[i - 1].abs();
        }
        if i < n - 1 {
            r += betas[i].abs();
        }
        lo = lo.min(alphas[i] - r);
        hi = hi.max(alphas[i] + r);
    }
    // Bisection: count_below(x) = number of eigenvalues < x.
    let count_below = |x: f64| -> usize {
        let mut count = 0;
        let mut d = alphas[0] - x;
        if d < 0.0 {
            count += 1;
        }
        for i in 1..n {
            let b2 = betas[i - 1] * betas[i - 1];
            let denom = if d.abs() < 1e-300 {
                1e-300_f64.copysign(d + 1e-300)
            } else {
                d
            };
            d = alphas[i] - x - b2 / denom;
            if d < 0.0 {
                count += 1;
            }
        }
        count
    };
    let (mut lo, mut hi) = (lo - 1e-8, hi + 1e-8);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if count_below(mid) >= 1 {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 1e-13 * (1.0 + hi.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dense {
        n: usize,
        m: Vec<C64>, // row-major n×n
    }

    impl HermitianOp for Dense {
        fn dim(&self) -> usize {
            self.n
        }
        fn apply(&self, x: &[C64], y: &mut [C64]) {
            for i in 0..self.n {
                for j in 0..self.n {
                    y[i] += self.m[i * self.n + j] * x[j];
                }
            }
        }
    }

    fn real_dense(n: usize, entries: &[f64]) -> Dense {
        Dense {
            n,
            m: entries.iter().map(|&x| C64::real(x)).collect(),
        }
    }

    #[test]
    fn tridiagonal_eigenvalue_of_1x1() {
        assert_eq!(smallest_tridiagonal_eigenvalue(&[4.2], &[]), 4.2);
    }

    #[test]
    fn tridiagonal_eigenvalue_of_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let e = smallest_tridiagonal_eigenvalue(&[2.0, 2.0], &[1.0]);
        assert!((e - 1.0).abs() < 1e-10);
    }

    #[test]
    fn lanczos_on_symmetric_2x2() {
        let op = real_dense(2, &[2.0, 1.0, 1.0, 2.0]);
        let r = lowest_eigenvalue(&op, 50, 1e-12, 3);
        assert!((r.eigenvalue - 1.0).abs() < 1e-9, "{}", r.eigenvalue);
    }

    #[test]
    fn lanczos_on_complex_hermitian() {
        // [[1, i], [-i, 1]] has eigenvalues 0 and 2.
        let op = Dense {
            n: 2,
            m: vec![C64::ONE, C64::I, -C64::I, C64::ONE],
        };
        let r = lowest_eigenvalue(&op, 50, 1e-12, 5);
        assert!(r.eigenvalue.abs() < 1e-9, "{}", r.eigenvalue);
    }

    #[test]
    fn lanczos_on_diagonal_operator() {
        struct Diag(Vec<f64>);
        impl HermitianOp for Diag {
            fn dim(&self) -> usize {
                self.0.len()
            }
            fn apply(&self, x: &[C64], y: &mut [C64]) {
                for i in 0..x.len() {
                    y[i] = x[i].scale(self.0[i]);
                }
            }
        }
        let diag: Vec<f64> = (0..64).map(|i| (i as f64) * 0.37 - 7.5).collect();
        let op = Diag(diag.clone());
        let want = diag.iter().cloned().fold(f64::INFINITY, f64::min);
        let r = lowest_eigenvalue(&op, 200, 1e-12, 11);
        assert!(
            (r.eigenvalue - want).abs() < 1e-8,
            "{} vs {}",
            r.eigenvalue,
            want
        );
    }

    #[test]
    fn lanczos_is_seed_stable() {
        let op = real_dense(3, &[1.0, 0.2, 0.0, 0.2, -2.0, 0.5, 0.0, 0.5, 0.7]);
        let a = lowest_eigenvalue(&op, 100, 1e-12, 42);
        let b = lowest_eigenvalue(&op, 100, 1e-12, 42);
        assert_eq!(a, b);
        let c = lowest_eigenvalue(&op, 100, 1e-12, 43);
        assert!((a.eigenvalue - c.eigenvalue).abs() < 1e-8);
    }
}
