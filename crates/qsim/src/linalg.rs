//! Matrix-free extremal eigenvalue computation.
//!
//! Reference ground-state energies (the paper's "Ref. Energy" column and the
//! "Ideal" curves) are the lowest eigenvalues of Hamiltonians that act on
//! 2ⁿ-dimensional spaces. A dense eigensolver would cap us at a handful of
//! qubits, so this module implements the Lanczos algorithm over an abstract
//! [`HermitianOp`]: the operator is only ever needed through matrix-vector
//! products, which a Pauli-sum Hamiltonian provides in `O(terms · 2ⁿ)` time.

use crate::complex::C64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Hermitian linear operator on a complex vector space, exposed through
/// matrix-vector products only.
///
/// Implementors must guarantee Hermiticity; the Lanczos iteration silently
/// produces garbage for non-Hermitian operators.
pub trait HermitianOp {
    /// The dimension of the space the operator acts on.
    fn dim(&self) -> usize;

    /// Computes `y = A·x`.
    ///
    /// `y` is zero-initialized by the caller; implementations should
    /// accumulate into it.
    fn apply(&self, x: &[C64], y: &mut [C64]);
}

/// Result of a Lanczos run.
#[derive(Clone, Debug, PartialEq)]
pub struct LanczosResult {
    /// The converged lowest eigenvalue estimate.
    pub eigenvalue: f64,
    /// Number of Lanczos iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met (as opposed to hitting the iteration
    /// cap or exhausting the space).
    pub converged: bool,
}

/// Computes the lowest eigenvalue of `op` with the Lanczos algorithm.
///
/// Uses full reorthogonalization (the Krylov dimensions involved here are
/// small — a few hundred at most), a seeded random start vector, and stops
/// once the eigenvalue estimate changes by less than `tol` between
/// iterations, the Krylov space is exhausted, or `max_iter` steps elapse.
///
/// # Panics
///
/// Panics if `op.dim() == 0`.
///
/// # Examples
///
/// ```
/// use qsim::{lowest_eigenvalue, C64, HermitianOp};
///
/// /// Diagonal operator diag(3, -1, 4, 1).
/// struct Diag(Vec<f64>);
/// impl HermitianOp for Diag {
///     fn dim(&self) -> usize { self.0.len() }
///     fn apply(&self, x: &[C64], y: &mut [C64]) {
///         for i in 0..x.len() { y[i] = x[i].scale(self.0[i]); }
///     }
/// }
///
/// let r = lowest_eigenvalue(&Diag(vec![3.0, -1.0, 4.0, 1.0]), 50, 1e-10, 7);
/// assert!((r.eigenvalue + 1.0).abs() < 1e-8);
/// ```
pub fn lowest_eigenvalue<O: HermitianOp>(
    op: &O,
    max_iter: usize,
    tol: f64,
    seed: u64,
) -> LanczosResult {
    let dim = op.dim();
    assert!(dim > 0, "operator dimension must be positive");
    let steps = max_iter.min(dim).max(1);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = random_unit(dim, &mut rng);

    let mut basis: Vec<Vec<C64>> = Vec::with_capacity(steps);
    let mut alphas: Vec<f64> = Vec::with_capacity(steps);
    let mut betas: Vec<f64> = Vec::with_capacity(steps);

    let mut prev_eig = f64::INFINITY;
    let mut w = vec![C64::ZERO; dim];

    for k in 0..steps {
        basis.push(v.clone());
        w.iter_mut().for_each(|x| *x = C64::ZERO);
        op.apply(&v, &mut w);

        // alpha_k = <v, w>  (real for Hermitian op)
        let alpha: f64 = v.iter().zip(&w).map(|(a, b)| (a.conj() * *b).re).sum();
        alphas.push(alpha);

        // w -= alpha*v + beta_{k-1}*v_{k-1}
        for (wi, vi) in w.iter_mut().zip(&v) {
            *wi -= vi.scale(alpha);
        }
        if k > 0 {
            let beta_prev = betas[k - 1];
            for (wi, ui) in w.iter_mut().zip(&basis[k - 1]) {
                *wi -= ui.scale(beta_prev);
            }
        }

        // Full reorthogonalization against the accumulated basis (twice is
        // enough in double precision).
        for _ in 0..2 {
            for u in &basis {
                let proj: C64 = u.iter().zip(&w).map(|(a, b)| a.conj() * *b).sum();
                for (wi, ui) in w.iter_mut().zip(u) {
                    *wi -= *ui * proj;
                }
            }
        }

        let eig = smallest_tridiagonal_eigenvalue(&alphas, &betas);
        let beta: f64 = w.iter().map(|x| x.norm_sqr()).sum::<f64>().sqrt();

        if (prev_eig - eig).abs() < tol || beta < 1e-12 {
            return LanczosResult {
                eigenvalue: eig,
                iterations: k + 1,
                converged: true,
            };
        }
        prev_eig = eig;
        betas.push(beta);
        for (vi, wi) in v.iter_mut().zip(&w) {
            *vi = wi.scale(1.0 / beta);
        }
    }

    LanczosResult {
        eigenvalue: smallest_tridiagonal_eigenvalue(&alphas, &betas),
        iterations: steps,
        converged: false,
    }
}

fn random_unit(dim: usize, rng: &mut StdRng) -> Vec<C64> {
    let mut v: Vec<C64> = (0..dim)
        .map(|_| C64::new(rng.random::<f64>() - 0.5, rng.random::<f64>() - 0.5))
        .collect();
    let norm: f64 = v.iter().map(|x| x.norm_sqr()).sum::<f64>().sqrt();
    v.iter_mut().for_each(|x| *x = x.scale(1.0 / norm));
    v
}

/// Smallest eigenvalue of the symmetric tridiagonal matrix with diagonal
/// `alphas` and off-diagonal `betas` (`betas.len() >= alphas.len() - 1`;
/// extra entries are ignored), found by bisection on the Sturm sequence.
pub fn smallest_tridiagonal_eigenvalue(alphas: &[f64], betas: &[f64]) -> f64 {
    let n = alphas.len();
    assert!(n > 0, "empty tridiagonal matrix");
    if n == 1 {
        return alphas[0];
    }
    // Gershgorin bounds.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let mut r = 0.0;
        if i > 0 {
            r += betas[i - 1].abs();
        }
        if i < n - 1 {
            r += betas[i].abs();
        }
        lo = lo.min(alphas[i] - r);
        hi = hi.max(alphas[i] + r);
    }
    // Bisection: count_below(x) = number of eigenvalues < x.
    let count_below = |x: f64| -> usize {
        let mut count = 0;
        let mut d = alphas[0] - x;
        if d < 0.0 {
            count += 1;
        }
        for i in 1..n {
            let b2 = betas[i - 1] * betas[i - 1];
            let denom = if d.abs() < 1e-300 {
                1e-300_f64.copysign(d + 1e-300)
            } else {
                d
            };
            d = alphas[i] - x - b2 / denom;
            if d < 0.0 {
                count += 1;
            }
        }
        count
    };
    let (mut lo, mut hi) = (lo - 1e-8, hi + 1e-8);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if count_below(mid) >= 1 {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 1e-13 * (1.0 + hi.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

// --- 4×4 block-matrix helpers -------------------------------------------
//
// The entangler-block fusion pass (`crate::plan`) lowers adjacent
// two-qubit ops on one qubit pair — plus the single-qubit rotation
// sandwiches around them — into a single 4×4 unitary. The basis
// convention everywhere is `s = 2·bit(hi) + bit(lo)` for the (sorted)
// qubit pair `lo < hi`, matching [`kron2`]'s operand order
// `kron2(on_hi, on_lo)`.

/// 4×4 complex matrix product `a · b`, accumulated left to right
/// (`((a·b)₀ + …)`), so every caller produces bit-identical entries.
pub(crate) fn matmul4(a: &[[C64; 4]; 4], b: &[[C64; 4]; 4]) -> [[C64; 4]; 4] {
    let mut out = [[C64::ZERO; 4]; 4];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell =
                ((a[i][0] * b[0][j] + a[i][1] * b[1][j]) + a[i][2] * b[2][j]) + a[i][3] * b[3][j];
        }
    }
    out
}

/// Kronecker product of two single-qubit matrices: `kron2(a, b)[2i+k][2j+l]
/// = a[i][j] · b[k][l]` — `a` acts on the *high* bit of the pair basis,
/// `b` on the *low* bit.
pub(crate) fn kron2(a: &[[C64; 2]; 2], b: &[[C64; 2]; 2]) -> [[C64; 4]; 4] {
    let mut out = [[C64::ZERO; 4]; 4];
    for i in 0..2 {
        for j in 0..2 {
            for k in 0..2 {
                for l in 0..2 {
                    out[2 * i + k][2 * j + l] = a[i][j] * b[k][l];
                }
            }
        }
    }
    out
}

/// The 2×2 identity, for [`kron2`] embeddings of one-qubit runs.
pub(crate) fn identity2() -> [[C64; 2]; 2] {
    [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]]
}

/// Conjugates a 4×4 pair matrix by the qubit swap: the result expresses
/// the same unitary with the roles of the low and high bit exchanged
/// (basis indices 1 and 2 swap in both rows and columns). A pure entry
/// permutation — no arithmetic — so remapping a block through a qubit
/// layout never re-rounds its matrix.
pub(crate) fn swap_qubits4(m: &[[C64; 4]; 4]) -> [[C64; 4]; 4] {
    const P: [usize; 4] = [0, 2, 1, 3];
    let mut out = [[C64::ZERO; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            out[i][j] = m[P[i]][P[j]];
        }
    }
    out
}

/// Transposes a 4×4 matrix. Only used by the equivalence-suite mutation
/// checks (a transposed block must be caught by the oracles).
pub(crate) fn transpose4(m: &[[C64; 4]; 4]) -> [[C64; 4]; 4] {
    let mut out = [[C64::ZERO; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            out[i][j] = m[j][i];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dense {
        n: usize,
        m: Vec<C64>, // row-major n×n
    }

    impl HermitianOp for Dense {
        fn dim(&self) -> usize {
            self.n
        }
        fn apply(&self, x: &[C64], y: &mut [C64]) {
            for i in 0..self.n {
                for j in 0..self.n {
                    y[i] += self.m[i * self.n + j] * x[j];
                }
            }
        }
    }

    fn real_dense(n: usize, entries: &[f64]) -> Dense {
        Dense {
            n,
            m: entries.iter().map(|&x| C64::real(x)).collect(),
        }
    }

    #[test]
    fn tridiagonal_eigenvalue_of_1x1() {
        assert_eq!(smallest_tridiagonal_eigenvalue(&[4.2], &[]), 4.2);
    }

    #[test]
    fn tridiagonal_eigenvalue_of_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let e = smallest_tridiagonal_eigenvalue(&[2.0, 2.0], &[1.0]);
        assert!((e - 1.0).abs() < 1e-10);
    }

    #[test]
    fn lanczos_on_symmetric_2x2() {
        let op = real_dense(2, &[2.0, 1.0, 1.0, 2.0]);
        let r = lowest_eigenvalue(&op, 50, 1e-12, 3);
        assert!((r.eigenvalue - 1.0).abs() < 1e-9, "{}", r.eigenvalue);
    }

    #[test]
    fn lanczos_on_complex_hermitian() {
        // [[1, i], [-i, 1]] has eigenvalues 0 and 2.
        let op = Dense {
            n: 2,
            m: vec![C64::ONE, C64::I, -C64::I, C64::ONE],
        };
        let r = lowest_eigenvalue(&op, 50, 1e-12, 5);
        assert!(r.eigenvalue.abs() < 1e-9, "{}", r.eigenvalue);
    }

    #[test]
    fn lanczos_on_diagonal_operator() {
        struct Diag(Vec<f64>);
        impl HermitianOp for Diag {
            fn dim(&self) -> usize {
                self.0.len()
            }
            fn apply(&self, x: &[C64], y: &mut [C64]) {
                for i in 0..x.len() {
                    y[i] = x[i].scale(self.0[i]);
                }
            }
        }
        let diag: Vec<f64> = (0..64).map(|i| (i as f64) * 0.37 - 7.5).collect();
        let op = Diag(diag.clone());
        let want = diag.iter().cloned().fold(f64::INFINITY, f64::min);
        let r = lowest_eigenvalue(&op, 200, 1e-12, 11);
        assert!(
            (r.eigenvalue - want).abs() < 1e-8,
            "{} vs {}",
            r.eigenvalue,
            want
        );
    }

    #[test]
    fn lanczos_is_seed_stable() {
        let op = real_dense(3, &[1.0, 0.2, 0.0, 0.2, -2.0, 0.5, 0.0, 0.5, 0.7]);
        let a = lowest_eigenvalue(&op, 100, 1e-12, 42);
        let b = lowest_eigenvalue(&op, 100, 1e-12, 42);
        assert_eq!(a, b);
        let c = lowest_eigenvalue(&op, 100, 1e-12, 43);
        assert!((a.eigenvalue - c.eigenvalue).abs() < 1e-8);
    }

    // --- 4×4 block-matrix helpers ---

    fn c(re: f64, im: f64) -> C64 {
        C64::new(re, im)
    }

    fn cz4() -> [[C64; 4]; 4] {
        let mut m = [[C64::ZERO; 4]; 4];
        for (s, row) in m.iter_mut().enumerate() {
            row[s] = if s == 3 { -C64::ONE } else { C64::ONE };
        }
        m
    }

    /// CX with control on the low bit, target on the high bit:
    /// s = 2·bit(hi) + bit(lo), so basis states 1 (01) and 3 (11) swap.
    fn cx4_control_lo() -> [[C64; 4]; 4] {
        let mut m = [[C64::ZERO; 4]; 4];
        m[0][0] = C64::ONE;
        m[2][2] = C64::ONE;
        m[1][3] = C64::ONE;
        m[3][1] = C64::ONE;
        m
    }

    fn ry2(theta: f64) -> [[C64; 2]; 2] {
        let (s, co) = (theta / 2.0).sin_cos();
        [
            [C64::real(co), C64::real(-s)],
            [C64::real(s), C64::real(co)],
        ]
    }

    fn rz2(theta: f64) -> [[C64; 2]; 2] {
        let (s, co) = (theta / 2.0).sin_cos();
        [[c(co, -s), C64::ZERO], [C64::ZERO, c(co, s)]]
    }

    fn dagger4(m: &[[C64; 4]; 4]) -> [[C64; 4]; 4] {
        let mut out = [[C64::ZERO; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                out[i][j] = m[j][i].conj();
            }
        }
        out
    }

    fn assert_close4(a: &[[C64; 4]; 4], b: &[[C64; 4]; 4], tol: f64) {
        for i in 0..4 {
            for j in 0..4 {
                let d = a[i][j] - b[i][j];
                assert!(
                    d.re.abs() <= tol && d.im.abs() <= tol,
                    "entry ({i},{j}): {:?} vs {:?}",
                    a[i][j],
                    b[i][j]
                );
            }
        }
    }

    fn identity4() -> [[C64; 4]; 4] {
        kron2(&identity2(), &identity2())
    }

    #[test]
    fn kron_of_identities_is_identity() {
        let id = identity4();
        for i in 0..4 {
            for j in 0..4 {
                let want = if i == j { C64::ONE } else { C64::ZERO };
                assert_eq!(id[i][j], want);
            }
        }
    }

    #[test]
    fn cz_is_diagonal_and_cx_squares_to_identity() {
        let cz = cz4();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert_eq!(cz[i][j], C64::ZERO);
                }
            }
        }
        // CZ² = I and CX·CX = I.
        assert_close4(&matmul4(&cz, &cz), &identity4(), 0.0);
        let cx = cx4_control_lo();
        assert_close4(&matmul4(&cx, &cx), &identity4(), 0.0);
    }

    #[test]
    fn matmul_products_of_unitaries_stay_unitary() {
        // A rotation sandwich around an entangler: U = (Rz⊗Ry)·CX·(Ry⊗Rz).
        let pre = kron2(&ry2(0.37), &rz2(-1.2));
        let post = kron2(&rz2(2.1), &ry2(0.55));
        let u = matmul4(&post, &matmul4(&cx4_control_lo(), &pre));
        assert_close4(&matmul4(&dagger4(&u), &u), &identity4(), 1e-12);
    }

    #[test]
    fn sandwich_association_orders_agree() {
        // (post·cx)·pre == post·(cx·pre) to numerical tolerance — the bind
        // pass may accumulate in either grouping without changing physics.
        let pre = kron2(&rz2(0.9), &ry2(-0.4));
        let post = kron2(&ry2(1.7), &rz2(0.2));
        let cz = cz4();
        let a = matmul4(&matmul4(&post, &cz), &pre);
        let b = matmul4(&post, &matmul4(&cz, &pre));
        assert_close4(&a, &b, 1e-14);
    }

    #[test]
    fn kron_against_known_gate_identity() {
        // Rz⊗Rz is diagonal, and matches the product of the two
        // single-qubit diagonals entry by entry.
        let a = rz2(0.8);
        let b = rz2(-0.3);
        let k = kron2(&a, &b);
        for i in 0..2 {
            for kbit in 0..2 {
                let s = 2 * i + kbit;
                assert_eq!(k[s][s], a[i][i] * b[kbit][kbit]);
                for t in 0..4 {
                    if t != s {
                        assert_eq!(k[s][t], C64::ZERO);
                    }
                }
            }
        }
    }

    #[test]
    fn swap_qubits4_exchanges_kron_operands() {
        let a = ry2(0.6);
        let b = rz2(1.1);
        let k = kron2(&a, &b);
        assert_close4(&swap_qubits4(&k), &kron2(&b, &a), 0.0);
        // Involution: swapping twice restores the original bitwise.
        assert_close4(&swap_qubits4(&swap_qubits4(&k)), &k, 0.0);
    }

    #[test]
    fn transpose4_flips_cx_direction() {
        // CX is symmetric, so transpose is a no-op on it; a non-symmetric
        // sandwich is not fixed by transposition (the mutation the
        // equivalence suites rely on being visible).
        let cx = cx4_control_lo();
        assert_close4(&transpose4(&cx), &cx, 0.0);
        let u = matmul4(&kron2(&ry2(0.5), &identity2()), &cx);
        let t = transpose4(&u);
        // Ry's off-diagonal is antisymmetric: (0,2) flips sign under ᵀ.
        assert!(u[0][2] != t[0][2]);
    }
}
