//! Sharded amplitude-plane execution.
//!
//! # Why shards
//!
//! The dense statevector tops out around 20 qubits on one node: every
//! gate sweeps the full `2ⁿ` plane, and beyond the cache sizes each sweep
//! is a fresh trip through memory. [`ShardedState`] splits the plane into
//! `2ᵏ` contiguous **shards** of `2^(n−k)` amplitudes, keyed by the top
//! `k` bits of the basis index, and executes a compiled
//! [`CircuitPlan`] shard by shard:
//!
//! - **Local ops** — ops whose amplitude pairs stay inside one shard —
//!   run with no communication at all. Consecutive local ops are batched
//!   per shard ([`crate::plan::ShardPlan`] coalesces them), so a run of
//!   `r` local ops makes **one** pass over each shard instead of `r`
//!   passes over the whole plane: on states past the cache sizes this is
//!   a bandwidth win even single-threaded, and across threads each shard
//!   run is embarrassingly parallel.
//! - **Exchange ops** — single-qubit ops on a global (top-`k`) qubit, CX
//!   with a global target, SWAP with one global qubit, an entangler block
//!   ([`crate::plan`]'s `Block4`) with its high qubit global — pair
//!   shards along one shard-index bit and update amplitudes elementwise
//!   across each pair: the explicit communication step a distributed
//!   backend would send messages for. A block with *both* qubits global
//!   generalizes the pairing to shard **quads** along two shard-index
//!   bits.
//! - **Plane swaps** — CX with control *and* target global, SWAP of two
//!   global qubits — only relabel shards and execute as O(1) shard-handle
//!   swaps: no amplitude data moves. (A dense block never qualifies: its
//!   4×4 mixes the pair states, so it always moves amplitude data.)
//!
//! The plan-analysis pass additionally **remaps hot qubits into the
//! local range** (see [`ShardPlan::analyze`]): the `k` least pair-touched
//! qubits take the global bit positions, which typically turns almost
//! every exchange in an ansatz-shaped circuit into a local op. The state
//! records the adopted layout and un-permutes when read back.
//!
//! # Bit-identical results
//!
//! Sharded execution performs the exact same floating-point operations
//! per logical amplitude as the serial and threaded planes — the kernels
//! share `pair_update`, the two-qubit ops are exact swaps/negations, and
//! the layout only changes *where* an amplitude is stored, never its
//! arithmetic — so [`ShardedState::to_statevector`] equals the serial
//! result **bit for bit** (property-tested across shard × thread grids in
//! `tests/shard_equiv.rs`).
//!
//! # Examples
//!
//! ```
//! use qsim::{Circuit, CircuitPlan, ShardedState, Statevector};
//!
//! let mut c = Circuit::new(4);
//! c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).ry(3, 0.7);
//! let plan = CircuitPlan::compile(&c);
//!
//! let mut serial = Statevector::zero(4);
//! serial.apply_plan(&plan);
//!
//! let mut sharded = ShardedState::zero(4, 4);
//! sharded.apply_plan(&plan);
//! assert_eq!(sharded.to_statevector().amplitudes(), serial.amplitudes());
//! ```

use crate::circuit::CircuitStats;
use crate::complex::C64;
use crate::exec::{self, Parallelism};
use crate::plan::{check_shards, CircuitPlan, PlanOp, ShardPlan, ShardStep};
use crate::state::{CapacityError, Statevector};

/// How an executor decomposes statevector simulation across amplitude
/// shards (the `qsim`-level twin of [`Parallelism`]: shards decide the
/// memory partition, parallelism decides the threads that walk it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sharding {
    /// Always simulate on the single dense plane.
    Off,
    /// Shard automatically when the register is large enough:
    /// [`auto_shard_count`] consults the circuit's
    /// [`state_bytes`](CircuitStats::state_bytes) estimate and the
    /// `VARSAW_NUM_SHARDS` override ([`parallel::num_shards`]).
    Auto,
    /// Request an explicit shard count (a power of two).
    Shards(usize),
}

/// Ceiling on one shard's amplitude storage under [`Sharding::Auto`]:
/// 4 MiB (2¹⁸ amplitudes) — small enough that a run of local ops on one
/// shard stays in cache, large enough that exchange steps stay rare.
pub(crate) const AUTO_SHARD_BYTES: u128 = 4 << 20;

/// Cap on the automatically chosen shard count.
const AUTO_MAX_SHARDS: usize = 64;

/// The shard count [`Sharding::Auto`] selects for a circuit with the
/// given [`Circuit::stats`](crate::Circuit::stats): the `VARSAW_NUM_SHARDS`
/// override when set (clamped to the register), otherwise the smallest
/// power of two keeping each shard at or under the 4 MiB auto-shard
/// ceiling (so ≤ 18-qubit states stay on one plane).
///
/// ```
/// use qsim::{shard::auto_shard_count, Circuit};
/// assert_eq!(auto_shard_count(&Circuit::new(12).stats()), 1);
/// assert_eq!(auto_shard_count(&Circuit::new(20).stats()), 4);
/// ```
pub fn auto_shard_count(stats: &CircuitStats) -> usize {
    let max = 1usize << stats.num_qubits.min(30);
    if let Some(s) = parallel::num_shards() {
        return s.min(max);
    }
    let mut shards = 1usize;
    while shards < AUTO_MAX_SHARDS && stats.state_bytes() / (shards as u128) > AUTO_SHARD_BYTES {
        shards *= 2;
    }
    shards.min(max)
}

/// A pure `n`-qubit state stored as `2ᵏ` contiguous amplitude shards —
/// see the [module docs](self) for the execution model.
///
/// The state tracks the qubit **layout** its first applied
/// [`ShardPlan`] adopted (`layout()[q]` = physical bit position of
/// logical qubit `q`); reads ([`ShardedState::to_statevector`],
/// [`ShardedState::probabilities`]) un-permute, so callers only ever see
/// logical basis ordering.
#[derive(Clone, Debug)]
pub struct ShardedState {
    num_qubits: usize,
    local_bits: usize,
    shards: Vec<Vec<C64>>,
    layout: Vec<usize>,
    /// Whether a plan has been applied: the zero state is invariant under
    /// any qubit permutation, so an unapplied state may still adopt a new
    /// plan's layout.
    dirty: bool,
    parallelism: Parallelism,
}

impl ShardedState {
    /// The all-zeros state `|0…0⟩` over `num_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is not a power of two, exceeds the
    /// amplitude count, or the plane cannot be allocated (see
    /// [`ShardedState::try_zero`] for the fallible variant).
    pub fn zero(num_qubits: usize, num_shards: usize) -> Self {
        Self::try_zero(num_qubits, num_shards).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The all-zeros state, or a [`CapacityError`] when the register
    /// exceeds the 30-qubit dense limit or the allocator refuses a
    /// shard's reservation. Each shard is reserved fallibly
    /// ([`Vec::try_reserve_exact`]), so an oversized request reports
    /// instead of aborting — the seam a capacity-probing scheduler
    /// retries with more shards or a smaller register.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is not a power of two or exceeds the
    /// amplitude count (caller bugs, not capacity conditions).
    ///
    /// ```
    /// use qsim::ShardedState;
    /// assert!(ShardedState::try_zero(10, 4).is_ok());
    /// assert_eq!(ShardedState::try_zero(31, 4).unwrap_err().num_qubits(), 31);
    /// ```
    pub fn try_zero(num_qubits: usize, num_shards: usize) -> Result<Self, CapacityError> {
        let local_bits = check_shards(num_qubits, num_shards);
        if num_qubits > 30 {
            return Err(CapacityError::new(num_qubits));
        }
        let shard_len = 1usize << local_bits;
        let mut shards = Vec::new();
        if shards.try_reserve_exact(num_shards).is_err() {
            return Err(CapacityError::new(num_qubits));
        }
        for _ in 0..num_shards {
            let mut shard: Vec<C64> = Vec::new();
            if shard.try_reserve_exact(shard_len).is_err() {
                return Err(CapacityError::new(num_qubits));
            }
            shard.resize(shard_len, C64::ZERO);
            shards.push(shard);
        }
        shards[0][0] = C64::ONE;
        Ok(ShardedState {
            num_qubits,
            local_bits,
            shards,
            layout: (0..num_qubits).collect(),
            dirty: false,
            parallelism: Parallelism::Auto,
        })
    }

    /// Scatters a dense state into `num_shards` shards (identity layout).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is invalid for the state's register.
    pub fn from_statevector(state: &Statevector, num_shards: usize) -> Self {
        let local_bits = check_shards(state.num_qubits(), num_shards);
        let shard_len = 1usize << local_bits;
        let shards = state
            .amplitudes()
            .chunks(shard_len)
            .map(|c| c.to_vec())
            .collect();
        ShardedState {
            num_qubits: state.num_qubits(),
            local_bits,
            shards,
            layout: (0..state.num_qubits()).collect(),
            dirty: true,
            parallelism: Parallelism::Auto,
        }
    }

    /// Sets how execution spreads shard work across threads (default
    /// [`Parallelism::Auto`]). Like the dense engines, the choice never
    /// changes results — all paths are bit-identical.
    pub fn with_parallelism(mut self, mode: Parallelism) -> Self {
        self.parallelism = mode;
        self
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Amplitudes per shard (`2^local_bits`).
    pub fn shard_len(&self) -> usize {
        1 << self.local_bits
    }

    /// The adopted qubit layout (`layout()[q]` = physical bit position of
    /// logical qubit `q`); identity until a plan with a remap is applied.
    pub fn layout(&self) -> &[usize] {
        &self.layout
    }

    /// Analyzes `plan` for this state's shard count and executes it. A
    /// fresh (`|0…0⟩`) state adopts the analysis' exchange-minimizing
    /// layout; a state that already evolved pins its adopted layout so
    /// amplitudes never need physical re-permutation. Callers executing
    /// one structure many times should analyze once and use
    /// [`ShardedState::apply_shard_plan`].
    ///
    /// # Panics
    ///
    /// Panics if the plan's qubit count differs from the state's.
    pub fn apply_plan(&mut self, plan: &CircuitPlan) {
        let sp = if self.dirty {
            ShardPlan::with_layout(plan, self.num_shards(), &self.layout)
        } else {
            ShardPlan::analyze(plan, self.num_shards())
        };
        self.apply_shard_plan(&sp);
    }

    /// Executes a precomputed [`ShardPlan`].
    ///
    /// # Panics
    ///
    /// Panics if the analysis' qubit count or shard count differ from the
    /// state's, or if the state has already evolved under a different
    /// layout than the analysis assumes.
    pub fn apply_shard_plan(&mut self, sp: &ShardPlan) {
        assert_eq!(
            sp.num_qubits(),
            self.num_qubits,
            "shard plan acts on {} qubits but state has {}",
            sp.num_qubits(),
            self.num_qubits
        );
        assert_eq!(
            sp.num_shards(),
            self.shards.len(),
            "shard plan targets {} shards but state has {}",
            sp.num_shards(),
            self.shards.len()
        );
        if self.dirty {
            assert_eq!(
                sp.layout(),
                &self.layout[..],
                "shard plan layout differs from the state's adopted layout"
            );
        } else {
            self.layout.copy_from_slice(sp.layout());
            self.dirty = true;
        }
        let workers = self.workers();
        for step in sp.steps() {
            match step {
                ShardStep::Local(ops) => self.run_local(ops, workers),
                ShardStep::Exchange(op) => self.run_exchange(op, workers),
                ShardStep::PlaneSwap(op) => self.run_plane_swap(op),
            }
        }
    }

    /// The worker count the parallelism mode yields for this state.
    fn workers(&self) -> usize {
        match self.parallelism {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => {
                assert!(n > 0, "Parallelism::Threads needs at least one thread");
                n
            }
            Parallelism::Auto => {
                let dim = self.shards.len() << self.local_bits;
                if exec::state_bytes_for(dim) < exec::AUTO_MIN_STATE_BYTES {
                    1
                } else {
                    parallel::num_threads()
                }
            }
        }
    }

    /// Runs a batch of shard-local ops: each shard executes the whole run
    /// independently (one fan-out for the entire batch).
    fn run_local(&mut self, ops: &[PlanOp], workers: usize) {
        let local_bits = self.local_bits;
        let nshards = self.shards.len();
        let w = workers.min(nshards).max(1);
        parallel::for_each_chunk_mut(&mut self.shards, w, |wi, chunk| {
            let first = parallel::worker_range(nshards, w, wi).start;
            for (i, shard) in chunk.iter_mut().enumerate() {
                let base = (first + i) << local_bits;
                for op in ops {
                    apply_local_op(shard, base, local_bits, op);
                }
            }
        });
    }

    /// Runs one exchange op: shards pair along the op's global bit and
    /// update elementwise across each pair. Pairs (sub-split when there
    /// are fewer pairs than workers) are partitioned across threads.
    fn run_exchange(&mut self, op: &PlanOp, workers: usize) {
        let local_bits = self.local_bits;
        let shard_len = 1usize << local_bits;

        /// What to do with each paired (low-half, high-half) element run.
        enum Kind {
            OneQ { m: [[C64; 2]; 2] },
            CxLocalControl { cmask: usize },
            SwapLocalLo { lomask: usize },
            Block4Lo { lomask: usize, k: exec::QuadKernel },
        }
        // `min_block`: sub-splits must align so an element's low
        // (condition/pair) bits are preserved within each sub-slice.
        let (gq, kind, min_block) = match *op {
            PlanOp::OneQ { q, m } => (q, Kind::OneQ { m }, 1),
            PlanOp::Cx { control, target } => (
                target,
                Kind::CxLocalControl {
                    cmask: 1 << control,
                },
                1usize << (control + 1),
            ),
            PlanOp::Swap { lo, hi } => (
                hi,
                Kind::SwapLocalLo { lomask: 1 << lo },
                1usize << (lo + 1),
            ),
            PlanOp::Block4 { lo, hi, m } => {
                if lo >= local_bits {
                    // Both pair bits are shard-index bits: shards group
                    // into quads instead of pairs.
                    self.run_block4_plane_quad(lo, hi, &m, workers);
                    return;
                }
                (
                    hi,
                    Kind::Block4Lo {
                        lomask: 1 << lo,
                        k: exec::QuadKernel::of(&m),
                    },
                    1usize << (lo + 1),
                )
            }
            PlanOp::Cz { .. } => unreachable!("CZ is diagonal and never exchanges"),
        };
        debug_assert!(gq >= local_bits);
        let sbit = 1usize << (gq - local_bits);

        // Sub-split each shard pair so small shard counts still saturate
        // the workers; power-of-two split counts keep slices aligned.
        let npairs = self.shards.len() / 2;
        let max_splits = shard_len / min_block;
        let splits = workers
            .div_ceil(npairs.max(1))
            .next_power_of_two()
            .clamp(1, max_splits.max(1));
        let sub = shard_len / splits;

        let mut tasks: Vec<(&mut [C64], &mut [C64])> = Vec::with_capacity(npairs * splits);
        for block in self.shards.chunks_mut(2 * sbit) {
            let (lo_half, hi_half) = block.split_at_mut(sbit);
            for (a, b) in lo_half.iter_mut().zip(hi_half.iter_mut()) {
                for (sa, sb) in a.chunks_mut(sub).zip(b.chunks_mut(sub)) {
                    tasks.push((sa, sb));
                }
            }
        }
        let w = workers.min(tasks.len()).max(1);
        parallel::for_each_chunk_mut(&mut tasks, w, |_, chunk| {
            for (sa, sb) in chunk.iter_mut() {
                match kind {
                    Kind::OneQ { m } => {
                        for (a, b) in sa.iter_mut().zip(sb.iter_mut()) {
                            let (b0, b1) = exec::pair_update(&m, *a, *b);
                            *a = b0;
                            *b = b1;
                        }
                    }
                    Kind::CxLocalControl { cmask } => {
                        // Swap pairs whose (local) index has the control
                        // bit set; alignment guarantees `j & cmask` only
                        // depends on the in-slice offset.
                        for j in 0..sa.len() {
                            if j & cmask != 0 {
                                std::mem::swap(&mut sa[j], &mut sb[j]);
                            }
                        }
                    }
                    Kind::SwapLocalLo { lomask } => {
                        // Pair (i0 | lomask) on the low half with i0 on
                        // the high half, i0 running over lo-clear offsets.
                        let lo_bit = lomask.trailing_zeros() as usize;
                        for p in 0..sa.len() / 2 {
                            let i0 = exec::insert_zero_bit(p, lo_bit);
                            std::mem::swap(&mut sa[i0 | lomask], &mut sb[i0]);
                        }
                    }
                    Kind::Block4Lo { lomask, k } => {
                        // The high pair bit selects the half (sa = clear,
                        // sb = set); the low bit is in-slice. Quads load
                        // in pair-basis order s = 2·bit(hi) + bit(lo).
                        let lo_bit = lomask.trailing_zeros() as usize;
                        for p in 0..sa.len() / 2 {
                            let i0 = exec::insert_zero_bit(p, lo_bit);
                            let out = k.apply([sa[i0], sa[i0 | lomask], sb[i0], sb[i0 | lomask]]);
                            sa[i0] = out[0];
                            sa[i0 | lomask] = out[1];
                            sb[i0] = out[2];
                            sb[i0 | lomask] = out[3];
                        }
                    }
                }
            }
        });
    }

    /// Runs an entangler block whose pair bits are *both* global: shards
    /// group into quads along the two shard-index bits and update
    /// elementwise across each quad (the four shard slices hold the four
    /// pair-basis amplitude planes). Quads are sub-split across workers
    /// exactly like exchange pairs.
    fn run_block4_plane_quad(&mut self, lo: usize, hi: usize, m: &[[C64; 4]; 4], workers: usize) {
        let local_bits = self.local_bits;
        let shard_len = 1usize << local_bits;
        debug_assert!(lo >= local_bits && hi > lo);
        let (bl, bh) = (1usize << (lo - local_bits), 1usize << (hi - local_bits));

        let k = exec::QuadKernel::of(m);
        let nquads = self.shards.len() / 4;
        let splits = workers
            .div_ceil(nquads.max(1))
            .next_power_of_two()
            .clamp(1, shard_len);
        let sub = shard_len / splits;

        // Pull the four member shards of each quad out of `self.shards`
        // without overlapping borrows: each slot is taken exactly once.
        let mut slots: Vec<Option<&mut [C64]>> = self
            .shards
            .iter_mut()
            .map(|s| Some(s.as_mut_slice()))
            .collect();
        let mut tasks: Vec<[&mut [C64]; 4]> = Vec::with_capacity(nquads * splits);
        for s in 0..slots.len() {
            if s & bl != 0 || s & bh != 0 {
                continue;
            }
            let s0 = slots[s].take().expect("quad base taken once");
            let s1 = slots[s | bl].take().expect("quad lo taken once");
            let s2 = slots[s | bh].take().expect("quad hi taken once");
            let s3 = slots[s | bl | bh].take().expect("quad both taken once");
            for (((c0, c1), c2), c3) in s0
                .chunks_mut(sub)
                .zip(s1.chunks_mut(sub))
                .zip(s2.chunks_mut(sub))
                .zip(s3.chunks_mut(sub))
            {
                tasks.push([c0, c1, c2, c3]);
            }
        }
        let w = workers.min(tasks.len()).max(1);
        parallel::for_each_chunk_mut(&mut tasks, w, |_, chunk| {
            for [s0, s1, s2, s3] in chunk.iter_mut() {
                for (((a0, a1), a2), a3) in s0
                    .iter_mut()
                    .zip(s1.iter_mut())
                    .zip(s2.iter_mut())
                    .zip(s3.iter_mut())
                {
                    let out = k.apply([*a0, *a1, *a2, *a3]);
                    *a0 = out[0];
                    *a1 = out[1];
                    *a2 = out[2];
                    *a3 = out[3];
                }
            }
        });
    }

    /// Runs one plane-swap op: O(1) shard-handle swaps, no data movement.
    fn run_plane_swap(&mut self, op: &PlanOp) {
        let local_bits = self.local_bits;
        match *op {
            PlanOp::Cx { control, target } => {
                let (cbit, tbit) = (
                    1usize << (control - local_bits),
                    1usize << (target - local_bits),
                );
                for s in 0..self.shards.len() {
                    if s & cbit != 0 && s & tbit == 0 {
                        self.shards.swap(s, s | tbit);
                    }
                }
            }
            PlanOp::Swap { lo, hi } => {
                let (lbit, hbit) = (1usize << (lo - local_bits), 1usize << (hi - local_bits));
                for s in 0..self.shards.len() {
                    if s & lbit != 0 && s & hbit == 0 {
                        self.shards.swap(s, s ^ lbit ^ hbit);
                    }
                }
            }
            _ => unreachable!("only CX and SWAP relabel whole shards"),
        }
    }

    /// Gathers the shards back into a dense [`Statevector`] in logical
    /// basis ordering (un-permuting the adopted layout).
    pub fn to_statevector(&self) -> Statevector {
        let dim = self.shards.len() << self.local_bits;
        let moved: Vec<(usize, usize)> = self
            .layout
            .iter()
            .enumerate()
            .filter(|&(q, &p)| p != q)
            .map(|(q, &p)| (p, q))
            .collect();
        let mut amps = vec![C64::ZERO; dim];
        if moved.is_empty() {
            for (s, shard) in self.shards.iter().enumerate() {
                let base = s << self.local_bits;
                amps[base..base + shard.len()].copy_from_slice(shard);
            }
        } else {
            let mut fixed_mask = dim - 1;
            for &(p, _) in &moved {
                fixed_mask &= !(1usize << p);
            }
            for (s, shard) in self.shards.iter().enumerate() {
                let base = s << self.local_bits;
                for (j, &a) in shard.iter().enumerate() {
                    let p = base | j;
                    let mut x = p & fixed_mask;
                    for &(pb, lb) in &moved {
                        x |= ((p >> pb) & 1) << lb;
                    }
                    amps[x] = a;
                }
            }
        }
        Statevector::from_amplitudes(amps)
    }

    /// The full outcome distribution in logical basis ordering.
    pub fn probabilities(&self) -> Vec<f64> {
        self.to_statevector().probabilities()
    }

    /// The squared norm (1 for a valid state; useful in tests).
    pub fn norm_sqr(&self) -> f64 {
        self.shards.iter().flatten().map(|a| a.norm_sqr()).sum()
    }
}

/// Applies one shard-local op to a single shard whose global index bits
/// are `base` (already shifted into amplitude-index position). Qubits at
/// or above `local_bits` only appear as control/phase conditions, which
/// select whole shards via `base`.
fn apply_local_op(shard: &mut [C64], base: usize, local_bits: usize, op: &PlanOp) {
    match *op {
        PlanOp::OneQ { q, m } => {
            debug_assert!(q < local_bits);
            exec::apply_1q_local(shard, q, &m);
        }
        PlanOp::Cx { control, target } => {
            debug_assert!(target < local_bits);
            if control < local_bits {
                exec::apply_cx_local(shard, control, target);
            } else if base & (1usize << control) != 0 {
                // Global control: this whole shard sits in the controlled
                // subspace; apply X on the target within it.
                exec::apply_x_local(shard, target);
            }
        }
        PlanOp::Cz { lo, hi } => match (lo < local_bits, hi < local_bits) {
            (true, true) => exec::apply_cz_local(shard, lo, hi),
            (true, false) => {
                if base & (1usize << hi) != 0 {
                    exec::negate_bit_set(shard, lo);
                }
            }
            (false, false) => {
                if base & (1usize << lo) != 0 && base & (1usize << hi) != 0 {
                    for a in shard.iter_mut() {
                        *a = -*a;
                    }
                }
            }
            (false, true) => unreachable!("CZ stores sorted qubits"),
        },
        PlanOp::Swap { lo, hi } => {
            debug_assert!(hi < local_bits);
            exec::apply_swap_local(shard, lo, hi);
        }
        PlanOp::Block4 { lo, hi, ref m } => {
            debug_assert!(hi < local_bits, "local blocks have both pair bits local");
            exec::apply_block4_local(shard, lo, hi, m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    fn apply_both(c: &Circuit, shards: usize) -> (Statevector, Statevector) {
        let plan = CircuitPlan::compile(c);
        let mut serial = Statevector::zero(c.num_qubits());
        serial.apply_plan(&plan);
        let mut sharded = ShardedState::zero(c.num_qubits(), shards);
        sharded.apply_plan(&plan);
        (serial, sharded.to_statevector())
    }

    #[test]
    fn ghz_matches_across_shard_counts() {
        let n = 5;
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        for shards in [1usize, 2, 4, 8] {
            let (serial, sharded) = apply_both(&c, shards);
            assert_eq!(serial.amplitudes(), sharded.amplitudes(), "{shards} shards");
        }
    }

    #[test]
    fn global_qubit_kernels_match() {
        // Every op touches the top qubits, forcing exchanges and plane
        // swaps under a pinned identity layout.
        let n = 4;
        let mut c = Circuit::new(n);
        c.h(3)
            .cx(3, 2)
            .cx(2, 3)
            .cz(3, 0)
            .swap(3, 0)
            .swap(3, 2)
            .ry(3, 0.7)
            .cx(0, 3);
        let plan = CircuitPlan::compile(&c);
        let mut serial = Statevector::zero(n);
        serial.apply_plan(&plan);
        let layout: Vec<usize> = (0..n).collect();
        for shards in [2usize, 4] {
            let sp = ShardPlan::with_layout(&plan, shards, &layout);
            assert!(sp.exchange_count() + sp.plane_swap_count() > 0);
            let mut sharded = ShardedState::zero(n, shards);
            sharded.apply_shard_plan(&sp);
            assert_eq!(
                serial.amplitudes(),
                sharded.to_statevector().amplitudes(),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn remap_reduces_exchanges_and_stays_exact() {
        // Rotations hammer the top qubit; the analysis moves it local.
        let n = 6;
        let mut c = Circuit::new(n);
        for i in 0..6 {
            c.ry(n - 1, 0.1 * (i + 1) as f64).cx(n - 1, i % (n - 1));
        }
        let plan = CircuitPlan::compile(&c);
        let remapped = ShardPlan::analyze(&plan, 4);
        let identity = ShardPlan::with_layout(&plan, 4, &(0..n).collect::<Vec<_>>());
        assert!(
            remapped.exchange_count() < identity.exchange_count(),
            "remap {} vs identity {}",
            remapped.exchange_count(),
            identity.exchange_count()
        );
        let mut serial = Statevector::zero(n);
        serial.apply_plan(&plan);
        let mut sharded = ShardedState::zero(n, 4);
        sharded.apply_shard_plan(&remapped);
        assert_eq!(serial.amplitudes(), sharded.to_statevector().amplitudes());
    }

    #[test]
    fn threads_never_change_results() {
        let n = 7;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.ry(q, 0.2 + q as f64).rz(q, -0.4 * q as f64);
        }
        c.cx(0, 6).cz(5, 6).swap(1, 6).cx(6, 2).h(5);
        let plan = CircuitPlan::compile(&c);
        let mut serial = Statevector::zero(n);
        serial.apply_plan(&plan);
        for threads in [1usize, 2, 3, 8] {
            let mut sharded =
                ShardedState::zero(n, 4).with_parallelism(Parallelism::Threads(threads));
            sharded.apply_plan(&plan);
            assert_eq!(
                serial.amplitudes(),
                sharded.to_statevector().amplitudes(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn second_plan_pins_the_adopted_layout() {
        let n = 4;
        let mut a = Circuit::new(n);
        a.ry(3, 0.3).ry(3, 0.4);
        let mut b = Circuit::new(n);
        b.cx(3, 0).h(1);
        let mut serial = Statevector::zero(n);
        serial.apply_plan(&CircuitPlan::compile(&a));
        serial.apply_plan(&CircuitPlan::compile(&b));
        let mut sharded = ShardedState::zero(n, 2);
        sharded.apply_plan(&CircuitPlan::compile(&a));
        let adopted = sharded.layout().to_vec();
        sharded.apply_plan(&CircuitPlan::compile(&b));
        assert_eq!(sharded.layout(), &adopted[..], "layout stays pinned");
        assert_eq!(serial.amplitudes(), sharded.to_statevector().amplitudes());
    }

    #[test]
    fn from_statevector_round_trips() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(2, 0.9);
        let mut st = Statevector::zero(3);
        st.apply_circuit(&c);
        let sharded = ShardedState::from_statevector(&st, 4);
        assert_eq!(sharded.to_statevector().amplitudes(), st.amplitudes());
        assert!((sharded.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn try_zero_reports_capacity() {
        let err = ShardedState::try_zero(31, 4).unwrap_err();
        assert_eq!(err.num_qubits(), 31);
        assert!(ShardedState::try_zero(8, 8).is_ok());
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn non_power_of_two_shards_rejected() {
        ShardedState::zero(4, 3);
    }

    #[test]
    fn auto_shard_count_scales_with_state_bytes() {
        assert_eq!(auto_shard_count(&Circuit::new(4).stats()), 1);
        assert_eq!(auto_shard_count(&Circuit::new(18).stats()), 1);
        assert_eq!(auto_shard_count(&Circuit::new(19).stats()), 2);
        assert_eq!(auto_shard_count(&Circuit::new(20).stats()), 4);
        // Never more shards than amplitudes.
        assert!(auto_shard_count(&Circuit::new(1).stats()) <= 2);
    }

    #[test]
    fn plane_swap_is_handle_relabeling() {
        // A SWAP of two global qubits must cost no amplitude traffic and
        // still relocate the excitation.
        let n = 4;
        let mut c = Circuit::new(n);
        c.x(2).swap(2, 3).cx(2, 3);
        // Unblocked: block fusion would collapse the swap+cx pair into a
        // dense Block4, which always moves data and never plane-swaps.
        let plan = CircuitPlan::compile_unblocked(&c);
        let sp = ShardPlan::with_layout(&plan, 4, &[0, 1, 2, 3]);
        assert_eq!(sp.plane_swap_count(), 2);
        let mut serial = Statevector::zero(n);
        serial.apply_plan(&plan);
        let mut sharded = ShardedState::zero(n, 4);
        sharded.apply_shard_plan(&sp);
        assert_eq!(serial.amplitudes(), sharded.to_statevector().amplitudes());
    }
}
