//! Sharded amplitude-plane execution.
//!
//! # Why shards
//!
//! The dense statevector tops out around 20 qubits on one node: every
//! gate sweeps the full `2ⁿ` plane, and beyond the cache sizes each sweep
//! is a fresh trip through memory. [`ShardedState`] splits the plane into
//! `2ᵏ` contiguous **shards** of `2^(n−k)` amplitudes, keyed by the top
//! `k` bits of the basis index, and executes a compiled
//! [`CircuitPlan`] shard by shard:
//!
//! - **Local ops** — ops whose amplitude pairs stay inside one shard —
//!   run with no communication at all. Consecutive local ops are batched
//!   per shard ([`crate::plan::ShardPlan`] coalesces them), so a run of
//!   `r` local ops makes **one** pass over each shard instead of `r`
//!   passes over the whole plane: on states past the cache sizes this is
//!   a bandwidth win even single-threaded, and across threads each shard
//!   run is embarrassingly parallel.
//! - **Exchange ops** — single-qubit ops on a global (top-`k`) qubit, CX
//!   with a global target, SWAP with one global qubit, an entangler block
//!   ([`crate::plan`]'s `Block4`) with its high qubit global — pair
//!   shards along one shard-index bit and update amplitudes elementwise
//!   across each pair: the explicit communication step a distributed
//!   backend would send messages for. A block with *both* qubits global
//!   generalizes the pairing to shard **quads** along two shard-index
//!   bits.
//! - **Plane swaps** — CX with control *and* target global, SWAP of two
//!   global qubits — only relabel shards and execute as O(1) shard-handle
//!   swaps: no amplitude data moves. (A dense block never qualifies: its
//!   4×4 mixes the pair states, so it always moves amplitude data.)
//!
//! The plan-analysis pass additionally **remaps hot qubits into the
//! local range** (see [`ShardPlan::analyze`]): the `k` least pair-touched
//! qubits take the global bit positions, which typically turns almost
//! every exchange in an ansatz-shaped circuit into a local op. The state
//! records the adopted layout and un-permutes when read back.
//!
//! # The transport seam
//!
//! This module is pure **orchestration**: it classifies each plan step
//! and dispatches the resulting movement onto a
//! [`crate::transport::ShardTransport`] session. Where amplitudes live
//! and how they cross shard boundaries is the backend's business —
//! [`crate::transport::LocalSwap`] keeps today's zero-copy shared-memory
//! walk, [`crate::transport::ChannelRanks`] runs one rank thread per
//! shard with serialized message passing — selected per state via
//! [`ShardedState::with_transport`] or process-wide via the
//! `VARSAW_SHARD_TRANSPORT` environment variable. Movement tallies
//! accumulate in [`ShardedState::shard_stats`].
//!
//! # Bit-identical results
//!
//! Sharded execution performs the exact same floating-point operations
//! per logical amplitude as the serial and threaded planes — the kernels
//! share `pair_update`, the two-qubit ops are exact swaps/negations, and
//! the layout only changes *where* an amplitude is stored, never its
//! arithmetic — so [`ShardedState::to_statevector`] equals the serial
//! result **bit for bit** (property-tested across shard × thread grids in
//! `tests/shard_equiv.rs`).
//!
//! # Examples
//!
//! ```
//! use qsim::{Circuit, CircuitPlan, ShardedState, Statevector};
//!
//! let mut c = Circuit::new(4);
//! c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).ry(3, 0.7);
//! let plan = CircuitPlan::compile(&c);
//!
//! let mut serial = Statevector::zero(4);
//! serial.apply_plan(&plan);
//!
//! let mut sharded = ShardedState::zero(4, 4);
//! sharded.apply_plan(&plan);
//! assert_eq!(sharded.to_statevector().amplitudes(), serial.amplitudes());
//! ```

use crate::circuit::CircuitStats;
use crate::complex::C64;
use crate::exec::{self, Parallelism};
use crate::plan::{check_shards, CircuitPlan, PlanOp, ShardPlan, ShardStep};
use crate::state::{CapacityError, Statevector};
use crate::transport::{
    classify_exchange, ExchangeStep, FaultInjection, FaultSchedule, LocalOps, ShardTransport,
    TransportCounters, TransportError, TransportMode,
};

/// How an executor decomposes statevector simulation across amplitude
/// shards (the `qsim`-level twin of [`Parallelism`]: shards decide the
/// memory partition, parallelism decides the threads that walk it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sharding {
    /// Always simulate on the single dense plane.
    Off,
    /// Shard automatically when the register is large enough:
    /// [`auto_shard_count`] consults the circuit's
    /// [`state_bytes`](CircuitStats::state_bytes) estimate and the
    /// `VARSAW_NUM_SHARDS` override ([`parallel::num_shards`]).
    Auto,
    /// Request an explicit shard count (a power of two).
    Shards(usize),
}

/// Ceiling on one shard's amplitude storage under [`Sharding::Auto`]:
/// 4 MiB (2¹⁸ amplitudes) — small enough that a run of local ops on one
/// shard stays in cache, large enough that exchange steps stay rare.
pub(crate) const AUTO_SHARD_BYTES: u128 = 4 << 20;

/// Cap on the automatically chosen shard count.
const AUTO_MAX_SHARDS: usize = 64;

/// The shard count [`Sharding::Auto`] selects for a circuit with the
/// given [`Circuit::stats`](crate::Circuit::stats): the `VARSAW_NUM_SHARDS`
/// override when set (clamped to the register), otherwise the smallest
/// power of two keeping each shard at or under the 4 MiB auto-shard
/// ceiling (so ≤ 18-qubit states stay on one plane).
///
/// ```
/// use qsim::{shard::auto_shard_count, Circuit};
/// assert_eq!(auto_shard_count(&Circuit::new(12).stats()), 1);
/// assert_eq!(auto_shard_count(&Circuit::new(20).stats()), 4);
/// ```
pub fn auto_shard_count(stats: &CircuitStats) -> usize {
    let max = 1usize << stats.num_qubits.min(30);
    if let Some(s) = parallel::num_shards() {
        return s.min(max);
    }
    let mut shards = 1usize;
    while shards < AUTO_MAX_SHARDS && stats.state_bytes() / (shards as u128) > AUTO_SHARD_BYTES {
        shards *= 2;
    }
    shards.min(max)
}

/// A pure `n`-qubit state stored as `2ᵏ` contiguous amplitude shards —
/// see the [module docs](self) for the execution model.
///
/// The state tracks the qubit **layout** its first applied
/// [`ShardPlan`] adopted (`layout()[q]` = physical bit position of
/// logical qubit `q`); reads ([`ShardedState::to_statevector`],
/// [`ShardedState::probabilities`]) un-permute, so callers only ever see
/// logical basis ordering.
#[derive(Clone, Debug)]
pub struct ShardedState {
    num_qubits: usize,
    local_bits: usize,
    shards: Vec<Vec<C64>>,
    layout: Vec<usize>,
    /// Whether a plan has been applied: the zero state is invariant under
    /// any qubit permutation, so an unapplied state may still adopt a new
    /// plan's layout.
    dirty: bool,
    parallelism: Parallelism,
    transport: TransportMode,
    fault: FaultInjection,
    /// Per-session fault draws: when no explicit [`FaultInjection`] is
    /// installed, each transport session draws its injection from this
    /// schedule at coordinate `(stream, session)`.
    schedule: FaultSchedule,
    /// The schedule stream this state draws from (supervisors vary it
    /// per attempt so retries get independent draws).
    stream: u64,
    /// Transport sessions opened so far — the schedule's session index.
    session: u64,
    counters: TransportCounters,
    /// Set when a transport session failed mid-plan: the shard contents
    /// are no longer a coherent state, so further use is refused.
    poisoned: bool,
}

impl ShardedState {
    /// The all-zeros state `|0…0⟩` over `num_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is not a power of two, exceeds the
    /// amplitude count, or the plane cannot be allocated (see
    /// [`ShardedState::try_zero`] for the fallible variant).
    pub fn zero(num_qubits: usize, num_shards: usize) -> Self {
        Self::try_zero(num_qubits, num_shards).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The all-zeros state, or a [`CapacityError`] when the register
    /// exceeds the 30-qubit dense limit or the allocator refuses a
    /// shard's reservation. Each shard is reserved fallibly
    /// ([`Vec::try_reserve_exact`]), so an oversized request reports
    /// instead of aborting — the seam a capacity-probing scheduler
    /// retries with more shards or a smaller register.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is not a power of two or exceeds the
    /// amplitude count (caller bugs, not capacity conditions).
    ///
    /// ```
    /// use qsim::ShardedState;
    /// assert!(ShardedState::try_zero(10, 4).is_ok());
    /// assert_eq!(ShardedState::try_zero(31, 4).unwrap_err().num_qubits(), 31);
    /// ```
    pub fn try_zero(num_qubits: usize, num_shards: usize) -> Result<Self, CapacityError> {
        let local_bits = check_shards(num_qubits, num_shards);
        if num_qubits > 30 {
            return Err(CapacityError::new(num_qubits));
        }
        let shard_len = 1usize << local_bits;
        let mut shards = Vec::new();
        if shards.try_reserve_exact(num_shards).is_err() {
            return Err(CapacityError::new(num_qubits));
        }
        for _ in 0..num_shards {
            let mut shard: Vec<C64> = Vec::new();
            if shard.try_reserve_exact(shard_len).is_err() {
                return Err(CapacityError::new(num_qubits));
            }
            shard.resize(shard_len, C64::ZERO);
            shards.push(shard);
        }
        shards[0][0] = C64::ONE;
        Ok(ShardedState {
            num_qubits,
            local_bits,
            shards,
            layout: (0..num_qubits).collect(),
            dirty: false,
            parallelism: Parallelism::Auto,
            transport: TransportMode::from_env(),
            fault: FaultInjection::none(),
            schedule: FaultSchedule::none(),
            stream: 0,
            session: 0,
            counters: TransportCounters::default(),
            poisoned: false,
        })
    }

    /// Scatters a dense state into `num_shards` shards (identity layout).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is invalid for the state's register.
    pub fn from_statevector(state: &Statevector, num_shards: usize) -> Self {
        let local_bits = check_shards(state.num_qubits(), num_shards);
        let shard_len = 1usize << local_bits;
        let shards = state
            .amplitudes()
            .chunks(shard_len)
            .map(|c| c.to_vec())
            .collect();
        ShardedState {
            num_qubits: state.num_qubits(),
            local_bits,
            shards,
            layout: (0..state.num_qubits()).collect(),
            dirty: true,
            parallelism: Parallelism::Auto,
            transport: TransportMode::from_env(),
            fault: FaultInjection::none(),
            schedule: FaultSchedule::none(),
            stream: 0,
            session: 0,
            counters: TransportCounters::default(),
            poisoned: false,
        }
    }

    /// Sets how execution spreads shard work across threads (default
    /// [`Parallelism::Auto`]). Like the dense engines, the choice never
    /// changes results — all paths are bit-identical.
    pub fn with_parallelism(mut self, mode: Parallelism) -> Self {
        self.parallelism = mode;
        self
    }

    /// Sets which transport backend moves amplitudes between shards
    /// (default: the validated `VARSAW_SHARD_TRANSPORT` value, falling
    /// back to [`TransportMode::Local`]). Like parallelism, the choice
    /// never changes results — both backends are bit-identical.
    pub fn with_transport(mut self, mode: TransportMode) -> Self {
        self.transport = mode;
        self
    }

    /// Installs chaos-testing fault injection for subsequent transport
    /// sessions (see [`FaultInjection`]; testing hook). An explicit
    /// injection overrides any installed [`FaultSchedule`].
    pub fn with_fault(mut self, fault: FaultInjection) -> Self {
        self.fault = fault;
        self
    }

    /// Installs a seed-deterministic [`FaultSchedule`]: each subsequent
    /// transport session draws its [`FaultInjection`] at schedule
    /// coordinate `(stream, session index)`, where the session index
    /// counts sessions this state has opened. Supervisors give every
    /// retry attempt a distinct `stream` so attempts draw independently
    /// while staying exactly reproducible.
    pub fn with_fault_schedule(mut self, schedule: FaultSchedule, stream: u64) -> Self {
        self.schedule = schedule;
        self.stream = stream;
        self
    }

    /// Whether a transport session failed mid-plan, leaving the shard
    /// contents incoherent. Every fallible entry point on a poisoned
    /// state returns [`TransportError::Poisoned`]; the infallible reads
    /// panic. Supervisors quarantine and rebuild instead of reusing.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The transport backend this state moves amplitudes with.
    pub fn transport(&self) -> TransportMode {
        self.transport
    }

    /// Movement tallies accumulated across every plan applied so far:
    /// exchange/plane-swap/sub-split counts for any backend, plus
    /// message and wire-byte volume for message-passing backends (zero
    /// under [`TransportMode::Local`], which moves no messages).
    pub fn shard_stats(&self) -> TransportCounters {
        self.counters
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Amplitudes per shard (`2^local_bits`).
    pub fn shard_len(&self) -> usize {
        1 << self.local_bits
    }

    /// The adopted qubit layout (`layout()[q]` = physical bit position of
    /// logical qubit `q`); identity until a plan with a remap is applied.
    pub fn layout(&self) -> &[usize] {
        &self.layout
    }

    /// Analyzes `plan` for this state's shard count and executes it. A
    /// fresh (`|0…0⟩`) state adopts the analysis' exchange-minimizing
    /// layout; a state that already evolved pins its adopted layout so
    /// amplitudes never need physical re-permutation. Callers executing
    /// one structure many times should analyze once and use
    /// [`ShardedState::apply_shard_plan`].
    ///
    /// # Panics
    ///
    /// Panics if the plan's qubit count differs from the state's, or on
    /// a transport failure (see [`ShardedState::try_apply_plan`] for the
    /// fallible variant).
    pub fn apply_plan(&mut self, plan: &CircuitPlan) {
        self.try_apply_plan(plan).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Like [`ShardedState::apply_plan`], but surfaces transport
    /// failures (a disconnected or stalled rank under a message-passing
    /// backend) as typed [`TransportError`] values. After an error the
    /// state is poisoned — the amplitudes are no longer coherent — and
    /// every further apply returns [`TransportError::Poisoned`].
    pub fn try_apply_plan(&mut self, plan: &CircuitPlan) -> Result<(), TransportError> {
        // Fail fast before plan analysis: a poisoned state gave its
        // shard buffers to a failed session and no longer has a shard
        // count to analyze against.
        if self.poisoned {
            return Err(TransportError::Poisoned);
        }
        let sp = if self.dirty {
            ShardPlan::with_layout(plan, self.num_shards(), &self.layout)
        } else {
            ShardPlan::analyze(plan, self.num_shards())
        };
        self.try_apply_shard_plan(&sp)
    }

    /// Executes a precomputed [`ShardPlan`].
    ///
    /// # Panics
    ///
    /// Panics if the analysis' qubit count or shard count differ from the
    /// state's, if the state has already evolved under a different layout
    /// than the analysis assumes, or on a transport failure (see
    /// [`ShardedState::try_apply_shard_plan`]).
    pub fn apply_shard_plan(&mut self, sp: &ShardPlan) {
        self.try_apply_shard_plan(sp)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Like [`ShardedState::apply_shard_plan`], but surfaces transport
    /// failures as typed [`TransportError`] values instead of panicking.
    ///
    /// Opens one transport session per call: the shard buffers move into
    /// the backend, every plan step dispatches as transport calls, and
    /// the buffers move back on success. On failure the state is
    /// poisoned (see [`ShardedState::try_apply_plan`]).
    ///
    /// # Panics
    ///
    /// Panics on the caller bugs [`ShardedState::apply_shard_plan`]
    /// documents (mismatched qubit/shard counts or layout).
    pub fn try_apply_shard_plan(&mut self, sp: &ShardPlan) -> Result<(), TransportError> {
        if self.poisoned {
            return Err(TransportError::Poisoned);
        }
        assert_eq!(
            sp.num_qubits(),
            self.num_qubits,
            "shard plan acts on {} qubits but state has {}",
            sp.num_qubits(),
            self.num_qubits
        );
        assert_eq!(
            sp.num_shards(),
            self.shards.len(),
            "shard plan targets {} shards but state has {}",
            sp.num_shards(),
            self.shards.len()
        );
        if self.dirty {
            assert_eq!(
                sp.layout(),
                &self.layout[..],
                "shard plan layout differs from the state's adopted layout"
            );
        } else {
            self.layout.copy_from_slice(sp.layout());
            self.dirty = true;
        }
        let workers = self.workers();
        let local_bits = self.local_bits;
        let nshards = self.shards.len();
        let fault = if self.fault.is_none() {
            self.schedule.injection(self.stream, self.session, nshards)
        } else {
            self.fault
        };
        self.session += 1;
        let shards = std::mem::take(&mut self.shards);
        // Session open/close are transport cost too: under a rank
        // backend they spawn and join the rank threads, which dominates
        // small plans. Attributed to the exchange stage (the generic
        // cross-shard-movement bucket), disjoint from the per-verb
        // spans inside `run_steps`.
        let mut session = {
            let _span = telemetry::span(telemetry::Stage::TransportExchange);
            self.transport.connect(shards, local_bits, &fault)?
        };
        let run = run_steps(session.as_mut(), sp, local_bits, nshards, workers);
        self.counters.merge(&session.counters());
        let result = run.and_then(|()| {
            let _span = telemetry::span(telemetry::Stage::TransportExchange);
            session.finish()
        });
        match result {
            Ok(shards) => {
                self.shards = shards;
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// The worker count the parallelism mode yields for this state.
    fn workers(&self) -> usize {
        match self.parallelism {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => {
                assert!(n > 0, "Parallelism::Threads needs at least one thread");
                n
            }
            Parallelism::Auto => {
                let dim = self.shards.len() << self.local_bits;
                if exec::state_bytes_for(dim) < exec::AUTO_MIN_STATE_BYTES {
                    1
                } else {
                    parallel::num_threads()
                }
            }
        }
    }

    /// Gathers the shards back into a dense [`Statevector`] in logical
    /// basis ordering (un-permuting the adopted layout).
    ///
    /// # Panics
    ///
    /// Panics if the state is poisoned (see
    /// [`ShardedState::try_to_statevector`] for the fallible variant).
    pub fn to_statevector(&self) -> Statevector {
        self.try_to_statevector().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`ShardedState::to_statevector`], but returns
    /// [`TransportError::Poisoned`] instead of panicking when a failed
    /// transport session left the shard contents incoherent.
    pub fn try_to_statevector(&self) -> Result<Statevector, TransportError> {
        if self.poisoned {
            return Err(TransportError::Poisoned);
        }
        let _span = telemetry::span(telemetry::Stage::SweepSharded);
        let dim = self.shards.len() << self.local_bits;
        let moved: Vec<(usize, usize)> = self
            .layout
            .iter()
            .enumerate()
            .filter(|&(q, &p)| p != q)
            .map(|(q, &p)| (p, q))
            .collect();
        let mut amps = vec![C64::ZERO; dim];
        if moved.is_empty() {
            for (s, shard) in self.shards.iter().enumerate() {
                let base = s << self.local_bits;
                amps[base..base + shard.len()].copy_from_slice(shard);
            }
        } else {
            let mut fixed_mask = dim - 1;
            for &(p, _) in &moved {
                fixed_mask &= !(1usize << p);
            }
            for (s, shard) in self.shards.iter().enumerate() {
                let base = s << self.local_bits;
                for (j, &a) in shard.iter().enumerate() {
                    let p = base | j;
                    let mut x = p & fixed_mask;
                    for &(pb, lb) in &moved {
                        x |= ((p >> pb) & 1) << lb;
                    }
                    amps[x] = a;
                }
            }
        }
        Ok(Statevector::from_amplitudes(amps))
    }

    /// The full outcome distribution in logical basis ordering.
    ///
    /// # Panics
    ///
    /// Panics if the state is poisoned (see
    /// [`ShardedState::try_probabilities`]).
    pub fn probabilities(&self) -> Vec<f64> {
        self.to_statevector().probabilities()
    }

    /// Like [`ShardedState::probabilities`], but returns
    /// [`TransportError::Poisoned`] instead of panicking.
    pub fn try_probabilities(&self) -> Result<Vec<f64>, TransportError> {
        Ok(self.try_to_statevector()?.probabilities())
    }

    /// The squared norm (1 for a valid state; useful in tests).
    ///
    /// # Panics
    ///
    /// Panics if the state is poisoned: a failed session kept the shard
    /// buffers, so there is no norm to report.
    pub fn norm_sqr(&self) -> f64 {
        assert!(
            !self.poisoned,
            "shard transport: session poisoned by an earlier failure"
        );
        self.shards.iter().flatten().map(|a| a.norm_sqr()).sum()
    }
}

/// Dispatches every step of a shard plan onto a transport session: the
/// whole orchestration layer, backend-agnostic by construction.
fn run_steps(
    session: &mut dyn ShardTransport,
    sp: &ShardPlan,
    local_bits: usize,
    nshards: usize,
    workers: usize,
) -> Result<(), TransportError> {
    for step in sp.steps() {
        match step {
            ShardStep::Local(ops) => {
                let _span = telemetry::span(telemetry::Stage::SweepSharded);
                session.run_local(&LocalOps::new(ops, local_bits), workers)?
            }
            ShardStep::Exchange(op) => {
                let _span = telemetry::span(telemetry::Stage::TransportExchange);
                match classify_exchange(op, local_bits) {
                    ExchangeStep::Pair { sbit, kernel } => {
                        session.exchange_pairs(sbit, &kernel, workers)?
                    }
                    ExchangeStep::Quad { bl, bh, kernel } => {
                        session.exchange_quads(bl, bh, &kernel, workers)?
                    }
                }
            }
            ShardStep::PlaneSwap(op) => {
                let _span = telemetry::span(telemetry::Stage::TransportPlaneSwap);
                session.plane_swap(&plane_swap_pairs(op, local_bits, nshards))?
            }
        }
    }
    Ok(())
}

/// The disjoint shard-index pairs a plane-swap op trades: CX with both
/// qubits global swaps the target bit within the control-set planes,
/// SWAP of two global qubits trades the mixed-bit planes. Pure index
/// arithmetic — the transport decides whether a pair is a handle swap or
/// a relabeling message.
fn plane_swap_pairs(op: &PlanOp, local_bits: usize, nshards: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    match *op {
        PlanOp::Cx { control, target } => {
            let (cbit, tbit) = (
                1usize << (control - local_bits),
                1usize << (target - local_bits),
            );
            for s in 0..nshards {
                if s & cbit != 0 && s & tbit == 0 {
                    pairs.push((s, s | tbit));
                }
            }
        }
        PlanOp::Swap { lo, hi } => {
            let (lbit, hbit) = (1usize << (lo - local_bits), 1usize << (hi - local_bits));
            for s in 0..nshards {
                if s & lbit != 0 && s & hbit == 0 {
                    pairs.push((s, s ^ lbit ^ hbit));
                }
            }
        }
        _ => unreachable!("only CX and SWAP relabel whole shards"),
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    fn apply_both(c: &Circuit, shards: usize) -> (Statevector, Statevector) {
        let plan = CircuitPlan::compile(c);
        let mut serial = Statevector::zero(c.num_qubits());
        serial.apply_plan(&plan);
        let mut sharded = ShardedState::zero(c.num_qubits(), shards);
        sharded.apply_plan(&plan);
        (serial, sharded.to_statevector())
    }

    #[test]
    fn ghz_matches_across_shard_counts() {
        let n = 5;
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        for shards in [1usize, 2, 4, 8] {
            let (serial, sharded) = apply_both(&c, shards);
            assert_eq!(serial.amplitudes(), sharded.amplitudes(), "{shards} shards");
        }
    }

    #[test]
    fn global_qubit_kernels_match() {
        // Every op touches the top qubits, forcing exchanges and plane
        // swaps under a pinned identity layout.
        let n = 4;
        let mut c = Circuit::new(n);
        c.h(3)
            .cx(3, 2)
            .cx(2, 3)
            .cz(3, 0)
            .swap(3, 0)
            .swap(3, 2)
            .ry(3, 0.7)
            .cx(0, 3);
        let plan = CircuitPlan::compile(&c);
        let mut serial = Statevector::zero(n);
        serial.apply_plan(&plan);
        let layout: Vec<usize> = (0..n).collect();
        for shards in [2usize, 4] {
            let sp = ShardPlan::with_layout(&plan, shards, &layout);
            assert!(sp.exchange_count() + sp.plane_swap_count() > 0);
            let mut sharded = ShardedState::zero(n, shards);
            sharded.apply_shard_plan(&sp);
            assert_eq!(
                serial.amplitudes(),
                sharded.to_statevector().amplitudes(),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn remap_reduces_exchanges_and_stays_exact() {
        // Rotations hammer the top qubit; the analysis moves it local.
        let n = 6;
        let mut c = Circuit::new(n);
        for i in 0..6 {
            c.ry(n - 1, 0.1 * (i + 1) as f64).cx(n - 1, i % (n - 1));
        }
        let plan = CircuitPlan::compile(&c);
        let remapped = ShardPlan::analyze(&plan, 4);
        let identity = ShardPlan::with_layout(&plan, 4, &(0..n).collect::<Vec<_>>());
        assert!(
            remapped.exchange_count() < identity.exchange_count(),
            "remap {} vs identity {}",
            remapped.exchange_count(),
            identity.exchange_count()
        );
        let mut serial = Statevector::zero(n);
        serial.apply_plan(&plan);
        let mut sharded = ShardedState::zero(n, 4);
        sharded.apply_shard_plan(&remapped);
        assert_eq!(serial.amplitudes(), sharded.to_statevector().amplitudes());
    }

    #[test]
    fn threads_never_change_results() {
        let n = 7;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.ry(q, 0.2 + q as f64).rz(q, -0.4 * q as f64);
        }
        c.cx(0, 6).cz(5, 6).swap(1, 6).cx(6, 2).h(5);
        let plan = CircuitPlan::compile(&c);
        let mut serial = Statevector::zero(n);
        serial.apply_plan(&plan);
        for threads in [1usize, 2, 3, 8] {
            let mut sharded =
                ShardedState::zero(n, 4).with_parallelism(Parallelism::Threads(threads));
            sharded.apply_plan(&plan);
            assert_eq!(
                serial.amplitudes(),
                sharded.to_statevector().amplitudes(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn second_plan_pins_the_adopted_layout() {
        let n = 4;
        let mut a = Circuit::new(n);
        a.ry(3, 0.3).ry(3, 0.4);
        let mut b = Circuit::new(n);
        b.cx(3, 0).h(1);
        let mut serial = Statevector::zero(n);
        serial.apply_plan(&CircuitPlan::compile(&a));
        serial.apply_plan(&CircuitPlan::compile(&b));
        let mut sharded = ShardedState::zero(n, 2);
        sharded.apply_plan(&CircuitPlan::compile(&a));
        let adopted = sharded.layout().to_vec();
        sharded.apply_plan(&CircuitPlan::compile(&b));
        assert_eq!(sharded.layout(), &adopted[..], "layout stays pinned");
        assert_eq!(serial.amplitudes(), sharded.to_statevector().amplitudes());
    }

    #[test]
    fn from_statevector_round_trips() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(2, 0.9);
        let mut st = Statevector::zero(3);
        st.apply_circuit(&c);
        let sharded = ShardedState::from_statevector(&st, 4);
        assert_eq!(sharded.to_statevector().amplitudes(), st.amplitudes());
        assert!((sharded.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn try_zero_reports_capacity() {
        let err = ShardedState::try_zero(31, 4).unwrap_err();
        assert_eq!(err.num_qubits(), 31);
        assert!(ShardedState::try_zero(8, 8).is_ok());
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn non_power_of_two_shards_rejected() {
        ShardedState::zero(4, 3);
    }

    #[test]
    fn auto_shard_count_scales_with_state_bytes() {
        assert_eq!(auto_shard_count(&Circuit::new(4).stats()), 1);
        assert_eq!(auto_shard_count(&Circuit::new(18).stats()), 1);
        assert_eq!(auto_shard_count(&Circuit::new(19).stats()), 2);
        assert_eq!(auto_shard_count(&Circuit::new(20).stats()), 4);
        // Never more shards than amplitudes.
        assert!(auto_shard_count(&Circuit::new(1).stats()) <= 2);
    }

    #[test]
    fn fault_schedule_kills_typed_and_poisons_reads() {
        let mut c = Circuit::new(4);
        c.h(3).cx(3, 0);
        let plan = CircuitPlan::compile(&c);
        // Certain-kill schedule: the first session draws a dead rank.
        let mut sharded =
            ShardedState::zero(4, 4).with_fault_schedule(FaultSchedule::new(7, 1000, 0), 0);
        let err = sharded.try_apply_plan(&plan).unwrap_err();
        assert!(
            matches!(err, TransportError::Disconnected { .. }),
            "got {err:?}"
        );
        assert!(sharded.is_poisoned());
        assert_eq!(
            sharded.try_to_statevector().unwrap_err(),
            TransportError::Poisoned
        );
        assert_eq!(
            sharded.try_probabilities().unwrap_err(),
            TransportError::Poisoned
        );
        assert_eq!(
            sharded.try_apply_plan(&plan).unwrap_err(),
            TransportError::Poisoned
        );
    }

    #[test]
    fn empty_fault_schedule_stays_bit_identical() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).ry(3, 0.7).cx(2, 3);
        let plan = CircuitPlan::compile(&c);
        let mut serial = Statevector::zero(4);
        serial.apply_plan(&plan);
        let mut sharded =
            ShardedState::zero(4, 4).with_fault_schedule(FaultSchedule::new(7, 0, 0), 3);
        sharded.apply_plan(&plan);
        assert!(!sharded.is_poisoned());
        assert_eq!(serial.amplitudes(), sharded.to_statevector().amplitudes());
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn poisoned_norm_panics_with_a_clear_message() {
        let mut c = Circuit::new(4);
        c.h(3);
        let mut sharded = ShardedState::zero(4, 4).with_fault(FaultInjection::kill_rank(0));
        let _ = sharded.try_apply_plan(&CircuitPlan::compile(&c));
        sharded.norm_sqr();
    }

    #[test]
    fn plane_swap_is_handle_relabeling() {
        // A SWAP of two global qubits must cost no amplitude traffic and
        // still relocate the excitation.
        let n = 4;
        let mut c = Circuit::new(n);
        c.x(2).swap(2, 3).cx(2, 3);
        // Unblocked: block fusion would collapse the swap+cx pair into a
        // dense Block4, which always moves data and never plane-swaps.
        let plan = CircuitPlan::compile_unblocked(&c);
        let sp = ShardPlan::with_layout(&plan, 4, &[0, 1, 2, 3]);
        assert_eq!(sp.plane_swap_count(), 2);
        let mut serial = Statevector::zero(n);
        serial.apply_plan(&plan);
        let mut sharded = ShardedState::zero(n, 4);
        sharded.apply_shard_plan(&sp);
        assert_eq!(serial.amplitudes(), sharded.to_statevector().amplitudes());
    }
}
