//! Dense state-vector simulation.

use crate::circuit::Circuit;
use crate::complex::C64;
use crate::exec::{self, Parallelism};
use crate::gate::Gate;
use crate::plan::{CircuitPlan, PlanOp};
use std::fmt;

/// Smallest amplitude count for which [`Statevector::probabilities`]
/// parallelizes. The per-element work is tiny, so only very large states
/// amortize the thread spawns.
const PROBS_PARALLEL_MIN_AMPS: usize = 1 << 16;

/// A dense amplitude plane cannot be allocated: the register is beyond
/// the representation limit, or the allocator refused the reservation.
/// Returned by [`Statevector::try_zero`] (and the sharded allocator,
/// `qsim::shard::ShardedState::try_zero`) so capacity-probing callers can
/// fall back — e.g. to more shards or a smaller register — instead of
/// aborting the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapacityError {
    num_qubits: usize,
    bytes: u128,
}

impl CapacityError {
    pub(crate) fn new(num_qubits: usize) -> Self {
        CapacityError {
            num_qubits,
            bytes: exec::state_bytes_for_qubits(num_qubits),
        }
    }

    /// The register size that could not be allocated.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The bytes the dense amplitude plane would have occupied
    /// (saturating for absurd register sizes).
    pub fn bytes(&self) -> u128 {
        self.bytes
    }
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot allocate a dense {}-qubit statevector ({} bytes)",
            self.num_qubits, self.bytes
        )
    }
}

impl std::error::Error for CapacityError {}

/// Amplitude-word buffer views: exact `u64` encodings of amplitude
/// slices for transports that move state between address spaces
/// (`qsim::transport`'s channel backend). IEEE-754 bit transport
/// round-trips every `f64` exactly — including signed zeros — so a
/// serialized exchange stays bit-identical to the in-process path.
pub(crate) mod words {
    use crate::complex::C64;

    /// Bytes one amplitude occupies on the wire (two `u64` bit words).
    pub(crate) const BYTES_PER_AMP: u64 = 16;

    /// Encodes `amps` into `out` as interleaved `(re, im)` bit words
    /// (clearing `out` first): `2 * amps.len()` words.
    pub(crate) fn encode(amps: &[C64], out: &mut Vec<u64>) {
        out.clear();
        out.reserve(amps.len() * 2);
        for a in amps {
            out.push(a.re.to_bits());
            out.push(a.im.to_bits());
        }
    }

    /// Decodes words produced by [`encode`] over an existing buffer of
    /// exactly `words.len() / 2` amplitudes (a rank writing a replacement
    /// shard back without reallocating).
    ///
    /// # Panics
    ///
    /// Panics if the word count does not match the buffer (a malformed
    /// message).
    pub(crate) fn decode_into(words: &[u64], out: &mut [C64]) {
        assert_eq!(
            words.len(),
            out.len() * 2,
            "amplitude messages carry (re, im) word pairs"
        );
        for (a, pair) in out.iter_mut().zip(words.chunks_exact(2)) {
            *a = C64::new(f64::from_bits(pair[0]), f64::from_bits(pair[1]));
        }
    }
}

/// A pure quantum state over `n` qubits, stored as 2ⁿ complex amplitudes.
///
/// Basis-state index bit `q` is the outcome of qubit `q` (little-endian:
/// qubit 0 is the least-significant bit).
///
/// # Examples
///
/// ```
/// use qsim::{Circuit, Statevector};
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let mut psi = Statevector::zero(2);
/// psi.apply_circuit(&bell);
/// let p = psi.probabilities();
/// assert!((p[0b00] - 0.5).abs() < 1e-12);
/// assert!((p[0b11] - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Statevector {
    num_qubits: usize,
    amps: Vec<C64>,
}

impl Statevector {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 30` (the dense representation would not
    /// fit). For a fallible variant that also survives allocator
    /// refusals, see [`Statevector::try_zero`].
    pub fn zero(num_qubits: usize) -> Self {
        Self::try_zero(num_qubits).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The all-zeros state `|0…0⟩`, or a [`CapacityError`] when the dense
    /// plane cannot exist: the register exceeds the 30-qubit
    /// representation limit, or the allocator refuses the reservation
    /// (`2ⁿ⁺⁴` bytes — checked with [`Vec::try_reserve_exact`] instead of
    /// aborting the process). Capacity-probing callers — the sharded
    /// allocator, batch schedulers sizing how many planes fit — branch on
    /// the error instead of crashing.
    ///
    /// ```
    /// use qsim::Statevector;
    /// assert_eq!(Statevector::try_zero(3).unwrap().num_qubits(), 3);
    /// let err = Statevector::try_zero(31).unwrap_err();
    /// assert_eq!(err.num_qubits(), 31);
    /// assert_eq!(err.bytes(), 16 << 31);
    /// ```
    pub fn try_zero(num_qubits: usize) -> Result<Self, CapacityError> {
        if num_qubits > 30 {
            return Err(CapacityError::new(num_qubits));
        }
        let dim = 1usize << num_qubits;
        let mut amps: Vec<C64> = Vec::new();
        if amps.try_reserve_exact(dim).is_err() {
            return Err(CapacityError::new(num_qubits));
        }
        amps.resize(dim, C64::ZERO);
        amps[0] = C64::ONE;
        Ok(Statevector { num_qubits, amps })
    }

    /// Builds a state from raw amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or the state is not
    /// normalized to within `1e-6`.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        let n = amps.len();
        assert!(
            n.is_power_of_two(),
            "amplitude count must be a power of two"
        );
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!(
            (norm - 1.0).abs() < 1e-6,
            "state not normalized (norm² = {norm})"
        );
        Statevector {
            num_qubits: n.trailing_zeros() as usize,
            amps,
        }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The raw amplitudes (little-endian basis ordering).
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Mutable access to the raw amplitudes.
    ///
    /// The caller is responsible for keeping the state normalized.
    pub fn amplitudes_mut(&mut self) -> &mut [C64] {
        &mut self.amps
    }

    /// `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the states have different qubit counts.
    pub fn inner(&self, other: &Statevector) -> C64 {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// State fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &Statevector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// The squared norm (1 for a valid state; useful in tests).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Applies one gate in place.
    pub fn apply_gate(&mut self, gate: Gate) {
        match gate {
            Gate::Cx(c, t) => self.apply_cx(c, t),
            Gate::Cz(a, b) => self.apply_cz(a, b),
            Gate::Swap(a, b) => self.apply_swap(a, b),
            g => {
                let q = g.qubits()[0];
                let m = g.matrix().expect("single-qubit gates always have a matrix");
                self.apply_1q(q, m);
            }
        }
    }

    /// Applies `circuit` through a freshly compiled
    /// [`CircuitPlan`] (gate fusion — see [`crate::plan`]), choosing
    /// serial or multi-threaded execution automatically
    /// ([`Parallelism::Auto`]) — see [`Statevector::apply_circuit_with`].
    ///
    /// Both execution paths consume the same plan and produce
    /// **bit-identical** amplitudes, so the choice never changes results,
    /// only wall-clock time.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        self.apply_circuit_with(circuit, Parallelism::Auto);
    }

    /// Compiles `circuit` into a fused [`CircuitPlan`] and executes it on
    /// the calling thread, regardless of state size or thread settings.
    /// This is the reference path the threaded engine is tested against —
    /// both execute the *same* plan, so they agree bit for bit.
    ///
    /// For the unfused gate-by-gate reference (different bit patterns, the
    /// same state to `1e-12`), see [`Statevector::apply_circuit_unfused`].
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state.
    ///
    /// ```
    /// use qsim::{Circuit, Statevector};
    /// let mut c = Circuit::new(2);
    /// c.h(0).cx(0, 1);
    /// let mut psi = Statevector::zero(2);
    /// psi.apply_circuit_serial(&c);
    /// assert!((psi.probabilities()[0b11] - 0.5).abs() < 1e-12);
    /// ```
    pub fn apply_circuit_serial(&mut self, circuit: &Circuit) {
        self.apply_plan(&CircuitPlan::compile(circuit));
    }

    /// Applies every gate of `circuit` one at a time, with no fusion and
    /// no plan compilation — the legacy execution the fused paths are
    /// equivalence-tested against (and the "unfused" side of the
    /// `statevector_fusion` benchmark).
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state.
    pub fn apply_circuit_unfused(&mut self, circuit: &Circuit) {
        self.check_circuit(circuit);
        for &g in circuit.gates() {
            self.apply_gate(g);
        }
    }

    /// Applies `circuit` with an explicit [`Parallelism`] choice, through
    /// a freshly compiled [`CircuitPlan`].
    ///
    /// [`Parallelism::Threads`] requests are rounded down to a power of
    /// two and capped so every worker owns at least one amplitude pair; a
    /// resulting worker count of one runs the serial path. Serial and
    /// threaded execution consume the same plan and produce bit-identical
    /// amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state, or if
    /// `Parallelism::Threads(0)` is requested.
    ///
    /// ```
    /// use qsim::{Circuit, Parallelism, Statevector};
    /// let mut c = Circuit::new(3);
    /// c.h(0).cx(0, 1).cx(1, 2);
    /// let mut a = Statevector::zero(3);
    /// a.apply_circuit_with(&c, Parallelism::Threads(2));
    /// let mut b = Statevector::zero(3);
    /// b.apply_circuit_with(&c, Parallelism::Serial);
    /// assert_eq!(a.amplitudes(), b.amplitudes());
    /// ```
    pub fn apply_circuit_with(&mut self, circuit: &Circuit, mode: Parallelism) {
        self.check_circuit(circuit);
        self.apply_plan_with(&CircuitPlan::compile(circuit), mode);
    }

    /// Executes a compiled plan on the calling thread. Callers that run
    /// one circuit structure many times should compile (or cache — see
    /// [`crate::PlanCache`]) the plan once and use this.
    ///
    /// # Panics
    ///
    /// Panics if the plan has more qubits than the state.
    pub fn apply_plan(&mut self, plan: &CircuitPlan) {
        self.check_plan(plan);
        let _span = telemetry::span(telemetry::Stage::SweepSerial);
        for op in plan.ops() {
            self.apply_plan_op(op);
        }
    }

    /// Executes a compiled plan with an explicit [`Parallelism`] choice.
    /// The serial and threaded paths consume the same op list and produce
    /// bit-identical amplitudes; [`Parallelism::Auto`] weighs the plan's
    /// post-fusion op count, not the source gate count.
    ///
    /// # Panics
    ///
    /// Panics if the plan has more qubits than the state, or if
    /// `Parallelism::Threads(0)` is requested.
    ///
    /// ```
    /// use qsim::{Circuit, CircuitPlan, Parallelism, Statevector};
    /// let mut c = Circuit::new(3);
    /// c.ry(0, 0.3).rz(0, 0.4).cx(0, 1).cx(1, 2);
    /// let plan = CircuitPlan::compile(&c);
    /// let mut a = Statevector::zero(3);
    /// a.apply_plan_with(&plan, Parallelism::Threads(2));
    /// let mut b = Statevector::zero(3);
    /// b.apply_plan(&plan);
    /// assert_eq!(a.amplitudes(), b.amplitudes());
    /// ```
    pub fn apply_plan_with(&mut self, plan: &CircuitPlan, mode: Parallelism) {
        self.check_plan(plan);
        let workers = match mode {
            Parallelism::Serial => 1,
            Parallelism::Auto => exec::auto_workers(self.amps.len(), plan.op_count()),
            Parallelism::Threads(n) => {
                assert!(n > 0, "Parallelism::Threads needs at least one thread");
                exec::clamp_workers(self.amps.len(), n)
            }
        };
        if workers < 2 {
            let _span = telemetry::span(telemetry::Stage::SweepSerial);
            for op in plan.ops() {
                self.apply_plan_op(op);
            }
        } else {
            let _span = telemetry::span(telemetry::Stage::SweepThreaded);
            exec::run_threaded(&mut self.amps, plan.ops(), workers);
        }
    }

    /// One plan op, serially. Single-qubit and block sweeps share
    /// `pair_update`/`quad_update` with the threaded engine (identical
    /// arithmetic, so identical bits); the sparse two-qubit kernels are
    /// pure swaps/negations — exact in floating point — so any
    /// enumeration order yields the same bits as the threaded
    /// partitioning. All kernels go through the hybrid sweeps in
    /// [`crate::exec`]: contiguous stride-1 lanes (branch-free,
    /// autovectorizable) when the pair's low bit allows long runs,
    /// index-spread enumeration below `exec::LANE_MIN_BIT`.
    fn apply_plan_op(&mut self, op: &PlanOp) {
        match *op {
            PlanOp::OneQ { q, m } => self.apply_1q(q, m),
            PlanOp::Cx { control, target } => {
                exec::apply_cx_local(&mut self.amps, control, target);
            }
            PlanOp::Cz { lo, hi } => exec::apply_cz_local(&mut self.amps, lo, hi),
            PlanOp::Swap { lo, hi } => exec::apply_swap_local(&mut self.amps, lo, hi),
            PlanOp::Block4 { lo, hi, ref m } => {
                exec::apply_block4_local(&mut self.amps, lo, hi, m);
            }
        }
    }

    fn check_circuit(&self, circuit: &Circuit) {
        assert!(
            circuit.num_qubits() <= self.num_qubits,
            "circuit acts on {} qubits but state has {}",
            circuit.num_qubits(),
            self.num_qubits
        );
    }

    fn check_plan(&self, plan: &CircuitPlan) {
        assert!(
            plan.num_qubits() <= self.num_qubits,
            "plan acts on {} qubits but state has {}",
            plan.num_qubits(),
            self.num_qubits
        );
    }

    fn apply_1q(&mut self, q: usize, m: [[C64; 2]; 2]) {
        debug_assert!(q < self.num_qubits);
        // Same arithmetic as the threaded kernel (`exec::pair_update`),
        // so results are bit-identical.
        exec::apply_1q_local(&mut self.amps, q, &m);
    }

    fn apply_cx(&mut self, control: usize, target: usize) {
        debug_assert!(control < self.num_qubits && target < self.num_qubits);
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        for i in 0..self.amps.len() {
            if i & cmask != 0 && i & tmask == 0 {
                self.amps.swap(i, i | tmask);
            }
        }
    }

    fn apply_cz(&mut self, a: usize, b: usize) {
        let mask = (1usize << a) | (1usize << b);
        for i in 0..self.amps.len() {
            if i & mask == mask {
                self.amps[i] = -self.amps[i];
            }
        }
    }

    fn apply_swap(&mut self, a: usize, b: usize) {
        let amask = 1usize << a;
        let bmask = 1usize << b;
        for i in 0..self.amps.len() {
            let has_a = i & amask != 0;
            let has_b = i & bmask != 0;
            if has_a && !has_b {
                self.amps.swap(i, (i ^ amask) | bmask);
            }
        }
    }

    /// The full outcome distribution: `p[x] = |⟨x|ψ⟩|²` over all 2ⁿ
    /// bitstrings.
    ///
    /// Large states (≥ 2¹⁶ amplitudes) compute the elementwise squares on
    /// [`parallel::num_threads`] scoped threads; being elementwise, the
    /// parallel path is bit-identical to the serial one.
    pub fn probabilities(&self) -> Vec<f64> {
        self.probabilities_with(Parallelism::Auto)
    }

    /// [`Statevector::probabilities`] with an explicit [`Parallelism`]
    /// choice. Being elementwise, every path is bit-identical; the knob
    /// exists so callers already running inside a thread fan-out (e.g. a
    /// batched dispatch) can pin the serial path instead of nesting
    /// worker scopes.
    ///
    /// # Panics
    ///
    /// Panics if `Parallelism::Threads(0)` is requested.
    pub fn probabilities_with(&self, mode: Parallelism) -> Vec<f64> {
        let workers = match mode {
            Parallelism::Serial => 1,
            Parallelism::Auto => {
                if self.amps.len() >= PROBS_PARALLEL_MIN_AMPS {
                    parallel::num_threads().min(exec::MAX_WORKERS)
                } else {
                    1
                }
            }
            Parallelism::Threads(n) => {
                assert!(n > 0, "Parallelism::Threads needs at least one thread");
                n.min(exec::MAX_WORKERS)
            }
        };
        self.probabilities_workers(workers)
    }

    fn probabilities_workers(&self, workers: usize) -> Vec<f64> {
        if workers < 2 {
            let _span = telemetry::span(telemetry::Stage::SweepSerial);
            return self.amps.iter().map(|a| a.norm_sqr()).collect();
        }
        let _span = telemetry::span(telemetry::Stage::SweepThreaded);
        let mut out = vec![0.0f64; self.amps.len()];
        let amps = &self.amps;
        parallel::for_each_chunk_mut(&mut out, workers, |w, chunk| {
            let start = parallel::worker_range(amps.len(), workers, w).start;
            for (k, o) in chunk.iter_mut().enumerate() {
                *o = amps[start + k].norm_sqr();
            }
        });
        out
    }

    /// The marginal outcome distribution over `qubits`, indexed compactly:
    /// bit `j` of the result index is the outcome of `qubits[j]`.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range or repeated.
    ///
    /// ```
    /// use qsim::{Circuit, Statevector};
    /// let mut c = Circuit::new(2);
    /// c.x(1);
    /// let mut s = Statevector::zero(2);
    /// s.apply_circuit(&c);
    /// assert_eq!(s.marginal_probabilities(&[1]), vec![0.0, 1.0]);
    /// ```
    pub fn marginal_probabilities(&self, qubits: &[usize]) -> Vec<f64> {
        for (i, &q) in qubits.iter().enumerate() {
            assert!(q < self.num_qubits, "qubit {q} out of range");
            assert!(!qubits[..i].contains(&q), "qubit {q} repeated in marginal");
        }
        let _span = telemetry::span(telemetry::Stage::SweepSerial);
        let mut out = vec![0.0; 1usize << qubits.len()];
        for (x, a) in self.amps.iter().enumerate() {
            let mut key = 0usize;
            for (j, &q) in qubits.iter().enumerate() {
                key |= ((x >> q) & 1) << j;
            }
            out[key] += a.norm_sqr();
        }
        out
    }
}

impl fmt::Display for Statevector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "statevector({} qubits):", self.num_qubits)?;
        for (x, a) in self.amps.iter().enumerate() {
            if a.norm_sqr() > 1e-12 {
                writeln!(f, "  |{x:0width$b}⟩: {a}", width = self.num_qubits)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(n: usize) -> Statevector {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        let mut s = Statevector::zero(n);
        s.apply_circuit(&c);
        s
    }

    #[test]
    fn zero_state_is_deterministic() {
        let s = Statevector::zero(3);
        let p = s.probabilities();
        assert_eq!(p[0], 1.0);
        assert_eq!(p[1..].iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn amplitude_words_round_trip_bit_exactly() {
        // Signed zeros, subnormals, and ordinary amplitudes all survive
        // the wire encoding with their exact bit patterns.
        let amps = [
            C64::new(0.0, -0.0),
            C64::new(1.0, -1.0),
            C64::new(f64::MIN_POSITIVE / 4.0, 0.125),
            C64::new(-0.3, 0.7),
        ];
        let mut buf = Vec::new();
        words::encode(&amps, &mut buf);
        assert_eq!(buf.len(), amps.len() * 2);
        assert_eq!(
            buf.len() as u64 * 8,
            amps.len() as u64 * words::BYTES_PER_AMP
        );
        let mut back = [C64::ZERO; 4];
        words::decode_into(&buf, &mut back);
        for (a, b) in amps.iter().zip(&back) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn ghz_state_has_two_outcomes() {
        let s = ghz(4);
        let p = s.probabilities();
        assert!((p[0b0000] - 0.5).abs() < 1e-12);
        assert!((p[0b1111] - 0.5).abs() < 1e-12);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cx_truth_table() {
        // |10⟩ (qubit 0 = control = 0? careful: X on qubit 0 sets control)
        for (input, expected) in [(0b00, 0b00), (0b01, 0b11), (0b10, 0b10), (0b11, 0b01)] {
            let mut s = Statevector::zero(2);
            if input & 1 != 0 {
                s.apply_gate(Gate::X(0));
            }
            if input & 2 != 0 {
                s.apply_gate(Gate::X(1));
            }
            s.apply_gate(Gate::Cx(0, 1));
            let p = s.probabilities();
            assert!(
                (p[expected] - 1.0).abs() < 1e-12,
                "CX|{input:02b}⟩ ≠ |{expected:02b}⟩"
            );
        }
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut s = Statevector::zero(2);
        s.apply_gate(Gate::X(0));
        s.apply_gate(Gate::Swap(0, 1));
        assert_eq!(s.probabilities()[0b10], 1.0);
    }

    #[test]
    fn cz_phases_only_11() {
        let mut s = ghz(2);
        s.apply_gate(Gate::Cz(0, 1));
        // amplitudes: (|00⟩ - |11⟩)/√2
        assert!((s.amplitudes()[0b00].re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((s.amplitudes()[0b11].re + std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn hadamard_is_self_inverse() {
        let mut s = Statevector::zero(1);
        s.apply_gate(Gate::H(0));
        s.apply_gate(Gate::H(0));
        assert!((s.probabilities()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn marginal_of_ghz() {
        let s = ghz(3);
        let m = s.marginal_probabilities(&[2]);
        assert!((m[0] - 0.5).abs() < 1e-12);
        assert!((m[1] - 0.5).abs() < 1e-12);
        // Two-qubit marginal is perfectly correlated.
        let m2 = s.marginal_probabilities(&[0, 2]);
        assert!((m2[0b00] - 0.5).abs() < 1e-12);
        assert!((m2[0b11] - 0.5).abs() < 1e-12);
        assert!(m2[0b01].abs() < 1e-12);
    }

    #[test]
    fn marginal_order_matters() {
        let mut s = Statevector::zero(2);
        s.apply_gate(Gate::X(0));
        assert_eq!(s.marginal_probabilities(&[0, 1]), vec![0.0, 1.0, 0.0, 0.0]);
        assert_eq!(s.marginal_probabilities(&[1, 0]), vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let a = ghz(3);
        let b = ghz(3);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = Statevector::zero(1);
        let mut b = Statevector::zero(1);
        b.apply_gate(Gate::X(0));
        assert!(a.fidelity(&b).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not normalized")]
    fn from_amplitudes_checks_norm() {
        Statevector::from_amplitudes(vec![C64::ONE, C64::ONE]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn from_amplitudes_checks_length() {
        Statevector::from_amplitudes(vec![C64::ONE, C64::ZERO, C64::ZERO]);
    }

    #[test]
    fn chunked_probabilities_match_serial() {
        let s = ghz(6);
        for workers in [2usize, 3, 8] {
            assert_eq!(s.probabilities_workers(workers), s.probabilities_workers(1));
        }
    }

    #[test]
    fn explicit_thread_modes_agree_with_serial() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).ry(2, 0.4).cx(1, 3).cz(0, 3).swap(1, 2);
        c.rz(3, -1.1).cx(3, 0);
        let mut serial = Statevector::zero(4);
        serial.apply_circuit_with(&c, Parallelism::Serial);
        for t in 1..=8 {
            let mut par = Statevector::zero(4);
            par.apply_circuit_with(&c, Parallelism::Threads(t));
            assert_eq!(serial.amplitudes(), par.amplitudes(), "{t} threads");
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let mut s = Statevector::zero(2);
        s.apply_circuit_with(&Circuit::new(2), Parallelism::Threads(0));
    }
}
