//! Circuit compilation: gate fusion and structure-cached execution plans.
//!
//! # Why a compilation layer
//!
//! A VQE run executes the *same* ansatz circuit thousands of times — SPSA
//! perturbation pairs, subset evaluations, MBM circuits — with identical
//! structure and only rotated parameters. Executing the raw gate list
//! walks the full amplitude array once per gate; EfficientSU2's adjacent
//! Ry·Rz rotation layers alone double the number of full-state sweeps
//! (and, in the threaded engine, per-gate worker barriers).
//!
//! [`CircuitPlan::compile`] scans a [`Circuit`] once and lowers it to a
//! flat op list:
//!
//! - **Adjacent-run fusion.** A maximal run of single-qubit gates on one
//!   qubit becomes a single one-qubit op whose 2×2 matrix is the
//!   product of the run's [`Gate::matrix`] values — one state sweep (and
//!   one barrier region) instead of `k`.
//! - **Diagonal folding.** A pending run whose product is diagonal
//!   (Rz/Z/S/S†/T/T†) commutes with CZ on either qubit and with the
//!   *control* side of CX, so it is folded through the entangler and keeps
//!   accumulating into the next rotation run instead of flushing.
//! - **Entangler-block fusion.** Adjacent two-qubit ops on one qubit
//!   pair — and the single-qubit rotation sandwiches around them — lower
//!   into a single `PlanOp::Block4`: one dense 4×4 sweep in the pair
//!   basis `s = 2·bit(hi) + bit(lo)` instead of one sweep per gate. Lone
//!   entanglers keep their sparse kernels ([`CircuitPlan::block_count`]
//!   reports how many blocks formed; [`CircuitPlan::compile_unblocked`]
//!   skips the pass).
//!
//! Fusing changes amplitude *bit patterns* (one rounded matrix product
//! instead of two rounded sweeps), so serial and threaded execution must
//! consume the **same plan** — both do, and are bit-identical to each
//! other (see `tests/fusion_equiv.rs`); fused-vs-unfused agreement is a
//! `1e-12`-tolerance property, not bitwise.
//!
//! # Plan caching
//!
//! Fusion analysis depends only on the circuit's *structure* — gate kinds
//! and qubit wiring, never rotation angles. [`PlanCache`] memoizes the
//! analysis ([`PlanStructure`]) under a parameter-free key, so a VQE
//! iteration rebinding new angles into a known ansatz shape pays only the
//! matrix products ([`CircuitPlan::rebind`]), not a re-scan. The cache is
//! routed through `vqe::SimExecutor` (and thus the `varsaw` evaluators'
//! mitigation pipeline), so SPSA, subset, and MBM circuits all hit it.
//!
//! # Examples
//!
//! ```
//! use qsim::{Circuit, CircuitPlan, Statevector};
//!
//! let mut c = Circuit::new(2);
//! c.ry(0, 0.3).rz(0, -0.7).ry(1, 0.1).rz(1, 0.2).cx(0, 1);
//! let plan = CircuitPlan::compile(&c);
//! // Both rotation runs and the CX collapse into one 4×4 block sweep.
//! assert_eq!((plan.op_count(), plan.block_count()), (1, 1));
//!
//! let mut st = Statevector::zero(2);
//! st.apply_plan(&plan);
//! assert!((st.norm_sqr() - 1.0).abs() < 1e-12);
//! ```

use crate::circuit::Circuit;
use crate::complex::C64;
use crate::gate::Gate;
use crate::linalg::{identity2, kron2, matmul4, swap_qubits4, transpose4};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One lowered operation of a compiled plan. Two-qubit symmetric gates
/// store sorted qubits so the execution kernels never re-sort.
#[derive(Clone, Copy, Debug)]
pub(crate) enum PlanOp {
    /// A fused run of single-qubit gates: one 2×2 matrix sweep.
    OneQ { q: usize, m: [[C64; 2]; 2] },
    /// Controlled-X.
    Cx { control: usize, target: usize },
    /// Controlled-Z, qubits sorted (`lo < hi`).
    Cz { lo: usize, hi: usize },
    /// SWAP, qubits sorted (`lo < hi`).
    Swap { lo: usize, hi: usize },
    /// A fused entangler block on a sorted qubit pair: one dense 4×4
    /// sweep over the pair basis `s = 2·bit(hi) + bit(lo)`.
    Block4 {
        lo: usize,
        hi: usize,
        m: [[C64; 4]; 4],
    },
}

/// One slot of a [`PlanStructure`]: the parameter-free shape of a lowered
/// op. `Run` records *which* source gates fuse, not their matrices, so the
/// structure can be rebound to any circuit with the same key.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Slot {
    /// Indices into the source gate list, in application order.
    Run {
        q: usize,
        gates: Vec<u32>,
    },
    Cx {
        control: usize,
        target: usize,
    },
    Cz {
        lo: usize,
        hi: usize,
    },
    Swap {
        lo: usize,
        hi: usize,
    },
    /// An entangler block: the parts — in application order — whose 4×4
    /// matrices multiply into one [`PlanOp::Block4`] at bind time.
    Block4 {
        lo: usize,
        hi: usize,
        parts: Vec<BlockPart>,
    },
}

/// One constituent of a [`Slot::Block4`], expressed relative to the
/// block's sorted pair so binding needs no qubit lookups: runs embed via
/// `kron2` on the side they act on, entanglers are constant matrices in
/// the `s = 2·bit(hi) + bit(lo)` basis.
#[derive(Clone, Debug, PartialEq, Eq)]
enum BlockPart {
    /// A single-qubit run on the pair's low qubit (source gate indices).
    RunLo(Vec<u32>),
    /// A single-qubit run on the pair's high qubit.
    RunHi(Vec<u32>),
    /// CX with the control on the low qubit.
    CxLoControl,
    /// CX with the control on the high qubit.
    CxHiControl,
    Cz,
    Swap,
}

/// The parameter-free compilation of a circuit: fusion segmentation plus
/// the structure key it was derived from. Shared (via [`Arc`]) between a
/// [`PlanCache`] and every plan rebound from it.
#[derive(Debug)]
pub struct PlanStructure {
    num_qubits: usize,
    source_gates: usize,
    slots: Vec<Slot>,
    key: Vec<u64>,
}

/// A run of single-qubit gates pending fusion on one qubit.
struct Pending {
    gates: Vec<u32>,
    /// Whether every gate in the run is diagonal — the condition for
    /// folding the run through CZ and CX controls.
    diagonal: bool,
}

/// Encodes a gate's kind and wiring (never its angle) as one key word.
/// Qubit indices fit in 24 bits (dense states cap at 30 qubits). The
/// symmetric gates (CZ, SWAP) encode sorted qubits, so `cz(0, 1)` and
/// `cz(1, 0)` — the same gate — share one cache entry.
fn structure_code(g: Gate) -> u64 {
    let (tag, a, b): (u64, usize, usize) = match g {
        Gate::H(q) => (1, q, 0),
        Gate::X(q) => (2, q, 0),
        Gate::Y(q) => (3, q, 0),
        Gate::Z(q) => (4, q, 0),
        Gate::S(q) => (5, q, 0),
        Gate::Sdg(q) => (6, q, 0),
        Gate::T(q) => (7, q, 0),
        Gate::Tdg(q) => (8, q, 0),
        Gate::Rx(q, _) => (9, q, 0),
        Gate::Ry(q, _) => (10, q, 0),
        Gate::Rz(q, _) => (11, q, 0),
        Gate::Cx(c, t) => (12, c, t),
        Gate::Cz(x, y) => (13, x.min(y), x.max(y)),
        Gate::Swap(x, y) => (14, x.min(y), x.max(y)),
    };
    (tag << 48) | ((a as u64) << 24) | b as u64
}

/// The cache key of a circuit: qubit count followed by one
/// [`structure_code`] per gate. Equal keys imply identical fusion
/// segmentation, so a cached [`PlanStructure`] can be rebound.
fn structure_key(circuit: &Circuit) -> Vec<u64> {
    let mut key = Vec::with_capacity(circuit.gate_count() + 1);
    key.push(circuit.num_qubits() as u64);
    key.extend(circuit.gates().iter().map(|&g| structure_code(g)));
    key
}

/// An in-progress entangler block during [`coalesce_blocks`]: the sorted
/// qubit pair and the original slots absorbed so far.
struct OpenBlock {
    lo: usize,
    hi: usize,
    slots: Vec<Slot>,
}

/// The sorted qubit pair of a two-qubit slot, `None` for runs.
fn slot_pair(slot: &Slot) -> Option<(usize, usize)> {
    match *slot {
        Slot::Run { .. } => None,
        Slot::Cx { control, target } => Some((control.min(target), control.max(target))),
        Slot::Cz { lo, hi } | Slot::Swap { lo, hi } => Some((lo, hi)),
        Slot::Block4 { .. } => unreachable!("blocks are only built by this pass"),
    }
}

/// Emits a finished block: groups of two or more slots lower to one
/// [`Slot::Block4`]; a lone entangler keeps its original slot (its sparse
/// kernel beats a dense 4×4 sweep).
fn close_block(block: OpenBlock, out: &mut Vec<Slot>) {
    if block.slots.len() < 2 {
        out.extend(block.slots);
        return;
    }
    let parts = block
        .slots
        .into_iter()
        .map(|slot| match slot {
            Slot::Run { q, gates } => {
                if q == block.lo {
                    BlockPart::RunLo(gates)
                } else {
                    BlockPart::RunHi(gates)
                }
            }
            Slot::Cx { control, .. } => {
                if control == block.lo {
                    BlockPart::CxLoControl
                } else {
                    BlockPart::CxHiControl
                }
            }
            Slot::Cz { .. } => BlockPart::Cz,
            Slot::Swap { .. } => BlockPart::Swap,
            Slot::Block4 { .. } => unreachable!("blocks never nest"),
        })
        .collect();
    out.push(Slot::Block4 {
        lo: block.lo,
        hi: block.hi,
        parts,
    });
}

/// The entangler-block coalescing pass. Each two-qubit slot opens a block
/// on its sorted pair; the block absorbs the held (not yet emitted)
/// single-qubit runs on those qubits, every later run landing on the
/// pair, and every later two-qubit slot on the *same* pair, and closes
/// when a two-qubit slot touches exactly one of its qubits. Deferred
/// slots only ever move past slots on disjoint qubits — an exact
/// commutation, so blocked and unblocked plans compute the same unitary.
///
/// Lone entanglers and unattached runs come out unchanged; only groups
/// of two or more slots pay for a dense 4×4 sweep.
fn coalesce_blocks(slots: Vec<Slot>, num_qubits: usize) -> Vec<Slot> {
    let mut out = Vec::with_capacity(slots.len());
    // Invariants: at most one held run per qubit; open pairs are mutually
    // disjoint; a held run's qubit never sits in an open pair.
    let mut held: Vec<Option<Slot>> = (0..num_qubits).map(|_| None).collect();
    let mut open: Vec<OpenBlock> = Vec::new();

    for slot in slots {
        match slot_pair(&slot) {
            None => {
                let Slot::Run { q, .. } = slot else {
                    unreachable!()
                };
                if let Some(block) = open.iter_mut().find(|b| b.lo == q || b.hi == q) {
                    block.slots.push(slot);
                } else if let Some(prev) = held[q].replace(slot) {
                    // Analysis never leaves two unattached runs on one
                    // qubit, but emitting the older one first keeps the
                    // order exact if it ever did.
                    out.push(prev);
                }
            }
            Some((lo, hi)) => {
                if let Some(block) = open.iter_mut().find(|b| (b.lo, b.hi) == (lo, hi)) {
                    block.slots.push(slot);
                    continue;
                }
                // A pair overlapping an open block on one qubit closes it.
                let mut i = 0;
                while i < open.len() {
                    let b = &open[i];
                    if [b.lo, b.hi].iter().any(|&q| q == lo || q == hi) {
                        close_block(open.remove(i), &mut out);
                    } else {
                        i += 1;
                    }
                }
                let mut absorbed = Vec::new();
                absorbed.extend(held[lo].take());
                absorbed.extend(held[hi].take());
                absorbed.push(slot);
                open.push(OpenBlock {
                    lo,
                    hi,
                    slots: absorbed,
                });
            }
        }
    }
    // Leftovers are mutually disjoint (see the invariants), so emission
    // order among them is free; qubit order keeps it deterministic.
    out.extend(held.into_iter().flatten());
    for block in open {
        close_block(block, &mut out);
    }
    out
}

impl PlanStructure {
    /// Runs the fusion analysis on `circuit`'s gate kinds and wiring,
    /// then lowers entangler groups into 4×4 blocks.
    fn analyze(circuit: &Circuit) -> PlanStructure {
        let mut s = Self::analyze_unblocked(circuit);
        s.slots = coalesce_blocks(std::mem::take(&mut s.slots), s.num_qubits);
        s
    }

    /// Run fusion and diagonal folding only — the structure behind
    /// [`CircuitPlan::compile_unblocked`], and the input the block
    /// coalescing pass operates on.
    fn analyze_unblocked(circuit: &Circuit) -> PlanStructure {
        // One slot per gate is the upper bound (no fusion at all).
        let mut slots: Vec<Slot> = Vec::with_capacity(circuit.gate_count());
        let mut pending: Vec<Option<Pending>> = Vec::new();
        pending.resize_with(circuit.num_qubits(), || None);

        // Emits qubit `q`'s pending run (runs on distinct qubits commute,
        // so callers flushing several qubits may pick any fixed order).
        let flush = |q: usize, pending: &mut [Option<Pending>], slots: &mut Vec<Slot>| {
            if let Some(run) = pending[q].take() {
                slots.push(Slot::Run {
                    q,
                    gates: run.gates,
                });
            }
        };
        // Flushes `q` only if its pending run cannot commute through a
        // diagonal two-qubit interaction.
        let flush_non_diagonal =
            |q: usize, pending: &mut [Option<Pending>], slots: &mut Vec<Slot>| {
                if pending[q].as_ref().is_some_and(|run| !run.diagonal) {
                    flush(q, pending, slots);
                }
            };

        for (i, &g) in circuit.gates().iter().enumerate() {
            match g {
                Gate::Cx(control, target) => {
                    // A diagonal run on the control commutes with CX; the
                    // target side mixes |0⟩/|1⟩, so its run always flushes.
                    flush_non_diagonal(control, &mut pending, &mut slots);
                    flush(target, &mut pending, &mut slots);
                    slots.push(Slot::Cx { control, target });
                }
                Gate::Cz(a, b) => {
                    // CZ is diagonal: diagonal runs on either qubit fold
                    // straight through it.
                    flush_non_diagonal(a.min(b), &mut pending, &mut slots);
                    flush_non_diagonal(a.max(b), &mut pending, &mut slots);
                    slots.push(Slot::Cz {
                        lo: a.min(b),
                        hi: a.max(b),
                    });
                }
                Gate::Swap(a, b) => {
                    flush(a.min(b), &mut pending, &mut slots);
                    flush(a.max(b), &mut pending, &mut slots);
                    slots.push(Slot::Swap {
                        lo: a.min(b),
                        hi: a.max(b),
                    });
                }
                g => {
                    let q = g.qubits()[0];
                    let run = pending[q].get_or_insert_with(|| Pending {
                        gates: Vec::new(),
                        diagonal: true,
                    });
                    run.gates.push(i as u32);
                    run.diagonal &= g.is_diagonal();
                }
            }
        }
        for q in 0..circuit.num_qubits() {
            flush(q, &mut pending, &mut slots);
        }

        PlanStructure {
            num_qubits: circuit.num_qubits(),
            source_gates: circuit.gate_count(),
            slots,
            key: structure_key(circuit),
        }
    }

    /// One slot per gate, no fusion, no reordering — the structure behind
    /// [`CircuitPlan::compile_unfused`].
    fn verbatim(circuit: &Circuit) -> PlanStructure {
        let slots = circuit
            .gates()
            .iter()
            .enumerate()
            .map(|(i, &g)| match g {
                Gate::Cx(control, target) => Slot::Cx { control, target },
                Gate::Cz(a, b) => Slot::Cz {
                    lo: a.min(b),
                    hi: a.max(b),
                },
                Gate::Swap(a, b) => Slot::Swap {
                    lo: a.min(b),
                    hi: a.max(b),
                },
                g => Slot::Run {
                    q: g.qubits()[0],
                    gates: vec![i as u32],
                },
            })
            .collect();
        PlanStructure {
            num_qubits: circuit.num_qubits(),
            source_gates: circuit.gate_count(),
            slots,
            key: structure_key(circuit),
        }
    }

    /// Binds `circuit`'s concrete gate matrices into this structure's
    /// slots. Caller guarantees the structure keys match.
    fn bind(self: &Arc<Self>, circuit: &Circuit) -> CircuitPlan {
        let gates = circuit.gates();
        let ops = self
            .slots
            .iter()
            .map(|slot| match *slot {
                Slot::Run { q, gates: ref idxs } => PlanOp::OneQ {
                    q,
                    m: run_matrix(idxs, gates),
                },
                Slot::Cx { control, target } => PlanOp::Cx { control, target },
                Slot::Cz { lo, hi } => PlanOp::Cz { lo, hi },
                Slot::Swap { lo, hi } => PlanOp::Swap { lo, hi },
                Slot::Block4 { lo, hi, ref parts } => {
                    // Parts multiply left-to-right in application order
                    // (later part on the left), mirroring run binding.
                    let mut m = part_matrix(&parts[0], gates);
                    for part in &parts[1..] {
                        m = matmul4(&part_matrix(part, gates), &m);
                    }
                    PlanOp::Block4 { lo, hi, m }
                }
            })
            .collect();
        CircuitPlan {
            structure: Arc::clone(self),
            ops,
        }
    }
}

fn matrix_of(g: Gate) -> [[C64; 2]; 2] {
    g.matrix().expect("run slots hold single-qubit gates only")
}

/// Binds a run's 2×2 matrix. A single-gate run uses the gate matrix
/// verbatim, so unfusible circuits keep their exact legacy amplitudes;
/// longer runs multiply left-to-right in application order (later gate
/// on the left).
fn run_matrix(idxs: &[u32], gates: &[Gate]) -> [[C64; 2]; 2] {
    let mut m = matrix_of(gates[idxs[0] as usize]);
    for &i in &idxs[1..] {
        m = matmul2(&matrix_of(gates[i as usize]), &m);
    }
    m
}

/// CX with the control on the pair's low bit: in the block basis
/// `s = 2·bit(hi) + bit(lo)`, states 1 and 3 swap.
const CX_LO_CONTROL: [[C64; 4]; 4] = [
    [C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO],
    [C64::ZERO, C64::ZERO, C64::ZERO, C64::ONE],
    [C64::ZERO, C64::ZERO, C64::ONE, C64::ZERO],
    [C64::ZERO, C64::ONE, C64::ZERO, C64::ZERO],
];

/// CX with the control on the pair's high bit: states 2 and 3 swap.
const CX_HI_CONTROL: [[C64; 4]; 4] = [
    [C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO],
    [C64::ZERO, C64::ONE, C64::ZERO, C64::ZERO],
    [C64::ZERO, C64::ZERO, C64::ZERO, C64::ONE],
    [C64::ZERO, C64::ZERO, C64::ONE, C64::ZERO],
];

/// CZ: `diag(1, 1, 1, −1)`.
const CZ4: [[C64; 4]; 4] = [
    [C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO],
    [C64::ZERO, C64::ONE, C64::ZERO, C64::ZERO],
    [C64::ZERO, C64::ZERO, C64::ONE, C64::ZERO],
    [C64::ZERO, C64::ZERO, C64::ZERO, C64::new(-1.0, 0.0)],
];

/// SWAP: states 1 and 2 swap.
const SWAP4: [[C64; 4]; 4] = [
    [C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO],
    [C64::ZERO, C64::ZERO, C64::ONE, C64::ZERO],
    [C64::ZERO, C64::ONE, C64::ZERO, C64::ZERO],
    [C64::ZERO, C64::ZERO, C64::ZERO, C64::ONE],
];

/// The 4×4 matrix of one block part in the pair basis
/// `s = 2·bit(hi) + bit(lo)`.
fn part_matrix(part: &BlockPart, gates: &[Gate]) -> [[C64; 4]; 4] {
    match part {
        BlockPart::RunLo(idxs) => kron2(&identity2(), &run_matrix(idxs, gates)),
        BlockPart::RunHi(idxs) => kron2(&run_matrix(idxs, gates), &identity2()),
        BlockPart::CxLoControl => CX_LO_CONTROL,
        BlockPart::CxHiControl => CX_HI_CONTROL,
        BlockPart::Cz => CZ4,
        BlockPart::Swap => SWAP4,
    }
}

/// 2×2 complex matrix product `a · b`.
fn matmul2(a: &[[C64; 2]; 2], b: &[[C64; 2]; 2]) -> [[C64; 2]; 2] {
    let mut out = [[C64::ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    out
}

/// A compiled, parameter-bound execution plan: the flat op list both the
/// serial path ([`crate::Statevector::apply_plan`]) and the threaded
/// engine execute. See the [module docs](self) for what compilation does.
#[derive(Clone, Debug)]
pub struct CircuitPlan {
    structure: Arc<PlanStructure>,
    ops: Vec<PlanOp>,
}

impl CircuitPlan {
    /// Compiles `circuit` with fusion and diagonal folding.
    pub fn compile(circuit: &Circuit) -> CircuitPlan {
        let _span = telemetry::span(telemetry::Stage::PlanCompile);
        Arc::new(PlanStructure::analyze(circuit)).bind(circuit)
    }

    /// Lowers `circuit` one-op-per-gate with no fusion or reordering —
    /// the reference the fused path is equivalence-tested against, and
    /// the "unfused" side of the `statevector_fusion` benchmark pair.
    pub fn compile_unfused(circuit: &Circuit) -> CircuitPlan {
        let _span = telemetry::span(telemetry::Stage::PlanCompile);
        Arc::new(PlanStructure::verbatim(circuit)).bind(circuit)
    }

    /// Compiles with run fusion and diagonal folding but **without** the
    /// entangler-block pass — the per-gate 2q sweep baseline the blocked
    /// plan is benchmarked (and mutation-tested) against.
    pub fn compile_unblocked(circuit: &Circuit) -> CircuitPlan {
        let _span = telemetry::span(telemetry::Stage::PlanCompile);
        Arc::new(PlanStructure::analyze_unblocked(circuit)).bind(circuit)
    }

    /// Rebinds this plan's cached structure to a circuit with **the same
    /// structure** (gate kinds and wiring) but possibly different rotation
    /// angles — the per-iteration fast path of a [`PlanCache`] hit.
    ///
    /// # Panics
    ///
    /// Panics if `circuit`'s structure key differs from the plan's.
    ///
    /// ```
    /// use qsim::{Circuit, CircuitPlan};
    /// let mut a = Circuit::new(1);
    /// a.ry(0, 0.1).rz(0, 0.2);
    /// let mut b = Circuit::new(1);
    /// b.ry(0, -1.3).rz(0, 0.9);
    /// let rebound = CircuitPlan::compile(&a).rebind(&b);
    /// assert_eq!(rebound.op_count(), 1);
    /// ```
    pub fn rebind(&self, circuit: &Circuit) -> CircuitPlan {
        assert_eq!(
            self.structure.key,
            structure_key(circuit),
            "rebind requires an identical circuit structure"
        );
        self.structure.bind(circuit)
    }

    /// The number of qubits the plan acts on.
    pub fn num_qubits(&self) -> usize {
        self.structure.num_qubits
    }

    /// The number of lowered ops — the full-state sweeps (and threaded
    /// barrier regions) one execution costs. The parallel dispatch
    /// heuristics weigh this, not the raw gate count.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// The number of gates in the source circuit.
    pub fn source_gate_count(&self) -> usize {
        self.structure.source_gates
    }

    /// The number of entangler blocks the coalescing pass formed — zero
    /// for [`CircuitPlan::compile_unfused`] / [`compile_unblocked`]
    /// plans.
    ///
    /// [`compile_unblocked`]: CircuitPlan::compile_unblocked
    pub fn block_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, PlanOp::Block4 { .. }))
            .count()
    }

    /// Returns a copy of this plan with every block matrix transposed —
    /// a deliberately wrong plan the equivalence suites use to prove
    /// their block-path assertions are non-vacuous. Not part of the
    /// public API surface.
    #[doc(hidden)]
    pub fn transpose_blocks_for_tests(&self) -> CircuitPlan {
        let ops = self
            .ops
            .iter()
            .map(|op| match *op {
                PlanOp::Block4 { lo, hi, ref m } => PlanOp::Block4 {
                    lo,
                    hi,
                    m: transpose4(m),
                },
                op => op,
            })
            .collect();
        CircuitPlan {
            structure: Arc::clone(&self.structure),
            ops,
        }
    }

    /// The lowered ops, for the execution kernels.
    pub(crate) fn ops(&self) -> &[PlanOp] {
        &self.ops
    }
}

/// How a [`PlanOp`]'s amplitude pairs relate to a contiguous power-of-two
/// partition of the amplitude plane into blocks of `2^bits` amplitudes —
/// the shard decomposition of `qsim::shard`, and equally the worker
/// chunks of the threaded engine. Controlled gates are classified by
/// where their *pairs* reach, not their controls: a CX with a high
/// control but low target only swaps within blocks whose base index has
/// the control bit set, and CZ is diagonal, pairing nothing at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum OpLocality {
    /// Every pair falls inside one block (possibly conditioned on the
    /// block's high index bits): no cross-block traffic.
    Local,
    /// Pairs reach across blocks elementwise: executing the op moves
    /// amplitude data between exactly-paired blocks.
    Exchange,
    /// Pairs relabel whole blocks (CX with control *and* target high;
    /// SWAP of two high qubits): executable as O(1) block-handle swaps,
    /// no amplitude data moves at all.
    PlaneSwap,
}

/// Classifies `op` against blocks of `2^bits` amplitudes.
pub(crate) fn op_locality(op: &PlanOp, bits: usize) -> OpLocality {
    match *op {
        PlanOp::OneQ { q, .. } => {
            if q < bits {
                OpLocality::Local
            } else {
                OpLocality::Exchange
            }
        }
        PlanOp::Cx { control, target } => {
            if target < bits {
                OpLocality::Local
            } else if control < bits {
                OpLocality::Exchange
            } else {
                OpLocality::PlaneSwap
            }
        }
        PlanOp::Cz { .. } => OpLocality::Local,
        PlanOp::Swap { lo, hi } => {
            if hi < bits {
                OpLocality::Local
            } else if lo < bits {
                OpLocality::Exchange
            } else {
                OpLocality::PlaneSwap
            }
        }
        // A dense 4×4 mixes all four pair states, so unlike CX/SWAP a
        // both-high block still moves amplitude data: never a plane swap.
        PlanOp::Block4 { hi, .. } => {
            if hi < bits {
                OpLocality::Local
            } else {
                OpLocality::Exchange
            }
        }
    }
}

/// One execution step of a [`ShardPlan`]: plan ops grouped by how they
/// interact with the shard decomposition.
#[derive(Clone, Debug)]
pub(crate) enum ShardStep {
    /// A maximal run of shard-local ops: every shard executes the whole
    /// run independently — one parallel fan-out, no communication.
    Local(Vec<PlanOp>),
    /// One op whose pairs cross shards elementwise: executed as an
    /// explicit pairwise shard exchange.
    Exchange(PlanOp),
    /// One op that only relabels shards: executed as O(1) shard-handle
    /// swaps.
    PlaneSwap(PlanOp),
}

/// The sharded-execution compilation of a [`CircuitPlan`]: a qubit
/// *layout* that remaps exchange-heavy qubits into the shard-local bit
/// range, plus the (remapped) ops classified into shard-local runs,
/// pairwise exchanges, and plane swaps. Executed by
/// [`crate::ShardedState::apply_shard_plan`]; see the `qsim::shard`
/// module docs for the execution model.
///
/// The analysis is structural — it never reads rotation angles — so a
/// `ShardPlan` computed for one parameter binding is valid for any
/// rebind of the same [`PlanCache`] structure. Like compilation itself,
/// analysis is cheap (one scan of the op list) next to executing a
/// single op over a large state.
///
/// # Examples
///
/// A circuit hammering the *top* qubit would naively exchange on every
/// rotation; the layout analysis remaps it into the local range, leaving
/// zero exchanges:
///
/// ```
/// use qsim::{Circuit, CircuitPlan};
/// use qsim::plan::ShardPlan;
///
/// let mut c = Circuit::new(4);
/// c.ry(3, 0.1).cx(3, 0).ry(3, 0.2).cx(3, 1).ry(3, 0.3);
/// let plan = CircuitPlan::compile(&c);
/// let sharded = ShardPlan::analyze(&plan, 2);
/// assert_eq!(sharded.exchange_count(), 0);
/// assert!(sharded.layout()[3] < 3, "hot qubit 3 remapped into the local range");
///
/// // Pinning the identity layout shows what the remap saved: both
/// // entangler blocks on qubit 3 would cross shards.
/// let identity = ShardPlan::with_layout(&plan, 2, &[0, 1, 2, 3]);
/// assert_eq!(identity.exchange_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ShardPlan {
    analysis: Arc<ShardAnalysis>,
    steps: Vec<ShardStep>,
}

/// One slot of a [`ShardAnalysis`]: an execution step recorded as
/// *indices into the source plan's op list* instead of bound ops, so one
/// analysis can be rebound to any plan with the same op structure
/// (same kinds and wiring, different rotation matrices).
#[derive(Clone, Debug)]
enum ShardSlot {
    /// A maximal run of shard-local ops.
    Local(Vec<u32>),
    /// One pairwise-exchange op.
    Exchange(u32),
    /// One plane-swap op.
    PlaneSwap(u32),
}

/// The parameter-free half of a [`ShardPlan`]: the qubit layout, the
/// step segmentation (as op indices) and the step counts. Depends only
/// on the plan's op *structure* — kinds and qubit wiring, never rotation
/// matrices — so a [`PlanCache`] memoizes it per (structure, shard
/// count) and rebinding new angles skips the whole analysis
/// ([`PlanCache::shard_plan`]).
#[derive(Debug)]
pub(crate) struct ShardAnalysis {
    num_qubits: usize,
    shards: usize,
    local_bits: usize,
    layout: Vec<usize>,
    slots: Vec<ShardSlot>,
    local_ops: usize,
    exchange_ops: usize,
    plane_swaps: usize,
}

impl ShardAnalysis {
    /// Runs the layout analysis on `plan`'s op structure — see
    /// [`ShardPlan::analyze`] for the policy.
    fn analyze(plan: &CircuitPlan, shards: usize) -> ShardAnalysis {
        let local_bits = check_shards(plan.num_qubits(), shards);
        let n = plan.num_qubits();
        // Pair-reaching touches per qubit: the ops that would become
        // exchanges (or plane swaps) if this qubit sat in the global
        // range. CZ is diagonal and never reaches; CX controls and
        // high-conditioned phases select, but move nothing.
        let mut cost = vec![0u64; n];
        for op in plan.ops() {
            match *op {
                PlanOp::OneQ { q, .. } => cost[q] += 1,
                PlanOp::Cx { target, .. } => cost[target] += 1,
                PlanOp::Swap { lo, hi } | PlanOp::Block4 { lo, hi, .. } => {
                    cost[lo] += 1;
                    cost[hi] += 1;
                }
                PlanOp::Cz { .. } => {}
            }
        }
        let mut order: Vec<usize> = (0..n).collect();
        // Cheapest first; ties resolved toward high qubit indices so an
        // even tally reproduces the identity layout.
        order.sort_by_key(|&q| (cost[q], std::cmp::Reverse(q)));
        let k = n - local_bits;
        let mut globals = order[..k].to_vec();
        let mut locals = order[k..].to_vec();
        globals.sort_unstable();
        locals.sort_unstable();
        let mut layout = vec![0usize; n];
        for (slot, &q) in locals.iter().enumerate() {
            layout[q] = slot;
        }
        for (slot, &q) in globals.iter().enumerate() {
            layout[q] = local_bits + slot;
        }
        Self::segment(plan, shards, local_bits, layout)
    }

    /// Classifies every (layout-remapped) op and coalesces local runs,
    /// recording op indices rather than bound ops.
    fn segment(
        plan: &CircuitPlan,
        shards: usize,
        local_bits: usize,
        layout: Vec<usize>,
    ) -> ShardAnalysis {
        let mut slots: Vec<ShardSlot> = Vec::new();
        let (mut local_ops, mut exchange_ops, mut plane_swaps) = (0, 0, 0);
        for (i, op) in plan.ops().iter().enumerate() {
            let op = remap_op(op, &layout);
            let i = i as u32;
            match op_locality(&op, local_bits) {
                OpLocality::Local => {
                    local_ops += 1;
                    if let Some(ShardSlot::Local(run)) = slots.last_mut() {
                        run.push(i);
                    } else {
                        slots.push(ShardSlot::Local(vec![i]));
                    }
                }
                OpLocality::Exchange => {
                    exchange_ops += 1;
                    slots.push(ShardSlot::Exchange(i));
                }
                OpLocality::PlaneSwap => {
                    plane_swaps += 1;
                    slots.push(ShardSlot::PlaneSwap(i));
                }
            }
        }
        ShardAnalysis {
            num_qubits: plan.num_qubits(),
            shards,
            local_bits,
            layout,
            slots,
            local_ops,
            exchange_ops,
            plane_swaps,
        }
    }

    /// Binds `plan`'s concrete ops into this analysis' slots. Caller
    /// guarantees the op structures match ([`shard_key`] equality).
    fn bind(self: &Arc<Self>, plan: &CircuitPlan) -> ShardPlan {
        let ops = plan.ops();
        let remap = |i: u32| remap_op(&ops[i as usize], &self.layout);
        let steps = self
            .slots
            .iter()
            .map(|slot| match slot {
                ShardSlot::Local(run) => ShardStep::Local(run.iter().map(|&i| remap(i)).collect()),
                ShardSlot::Exchange(i) => ShardStep::Exchange(remap(*i)),
                ShardSlot::PlaneSwap(i) => ShardStep::PlaneSwap(remap(*i)),
            })
            .collect();
        ShardPlan {
            analysis: Arc::clone(self),
            steps,
        }
    }
}

/// The memoization key of a [`ShardAnalysis`]: the plan's qubit count
/// followed by one kind+wiring word per *lowered op*. Keyed on the op
/// list rather than the source circuit so fused and unfused plans of one
/// circuit — same circuit structure, different op segmentation — never
/// share an entry.
fn shard_key(plan: &CircuitPlan) -> Vec<u64> {
    let mut key = Vec::with_capacity(plan.op_count() + 1);
    key.push(plan.num_qubits() as u64);
    key.extend(plan.ops().iter().map(|op| {
        let (tag, a, b): (u64, usize, usize) = match *op {
            PlanOp::OneQ { q, .. } => (1, q, 0),
            PlanOp::Cx { control, target } => (2, control, target),
            PlanOp::Cz { lo, hi } => (3, lo, hi),
            PlanOp::Swap { lo, hi } => (4, lo, hi),
            PlanOp::Block4 { lo, hi, .. } => (5, lo, hi),
        };
        (tag << 48) | ((a as u64) << 24) | b as u64
    }));
    key
}

impl ShardPlan {
    /// Analyzes `plan` for execution on `shards` shards, choosing the
    /// qubit layout that minimizes exchange steps: each qubit's
    /// pair-reaching op count is tallied, and the qubits touched least
    /// take the global (top) bit positions. Ties prefer the identity
    /// layout.
    ///
    /// The analysis half (layout + step segmentation) is parameter-free;
    /// executors re-running one ansatz shape should route through
    /// [`PlanCache::shard_plan`], which memoizes it and only rebinds the
    /// op matrices per call.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is not a power of two or exceeds the plan's
    /// amplitude count.
    pub fn analyze(plan: &CircuitPlan, shards: usize) -> ShardPlan {
        Arc::new(ShardAnalysis::analyze(plan, shards)).bind(plan)
    }

    /// Analyzes `plan` under a caller-pinned qubit layout
    /// (`layout[logical] = physical bit position`) — how a state that
    /// already adopted a layout executes further plans.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is invalid (see [`ShardPlan::analyze`]) or
    /// `layout` is not a permutation of the plan's qubits.
    pub fn with_layout(plan: &CircuitPlan, shards: usize, layout: &[usize]) -> ShardPlan {
        let local_bits = check_shards(plan.num_qubits(), shards);
        check_layout(plan.num_qubits(), layout);
        Arc::new(ShardAnalysis::segment(
            plan,
            shards,
            local_bits,
            layout.to_vec(),
        ))
        .bind(plan)
    }

    /// The number of qubits the plan acts on.
    pub fn num_qubits(&self) -> usize {
        self.analysis.num_qubits
    }

    /// The shard count the analysis targets.
    pub fn num_shards(&self) -> usize {
        self.analysis.shards
    }

    /// The number of amplitude-index bits local to one shard
    /// (`num_qubits − log2(num_shards)`).
    pub fn local_bits(&self) -> usize {
        self.analysis.local_bits
    }

    /// The qubit layout: `layout()[q]` is the physical bit position
    /// logical qubit `q` occupies during sharded execution. Positions
    /// `>= local_bits()` select the shard index.
    pub fn layout(&self) -> &[usize] {
        &self.analysis.layout
    }

    /// Ops executed shard-locally with no communication.
    pub fn local_count(&self) -> usize {
        self.analysis.local_ops
    }

    /// Ops executed as elementwise pairwise shard exchanges — the
    /// communication cost the layout remap minimizes.
    pub fn exchange_count(&self) -> usize {
        self.analysis.exchange_ops
    }

    /// Ops executed as O(1) shard-handle swaps (no amplitude traffic).
    pub fn plane_swap_count(&self) -> usize {
        self.analysis.plane_swaps
    }

    /// The execution steps, for the sharded kernels.
    pub(crate) fn steps(&self) -> &[ShardStep] {
        &self.steps
    }
}

/// Validates a shard count against a register size; returns the
/// per-shard local bit count. Shared with `qsim::shard`'s constructors
/// so plan analysis and state allocation reject the same requests with
/// the same messages.
pub(crate) fn check_shards(num_qubits: usize, shards: usize) -> usize {
    assert!(
        shards.is_power_of_two(),
        "shard count {shards} is not a power of two"
    );
    let shard_bits = shards.trailing_zeros() as usize;
    assert!(
        shard_bits <= num_qubits,
        "{shards} shards need more than the 2^{num_qubits} amplitudes available"
    );
    num_qubits - shard_bits
}

/// Validates that `layout` is a permutation of `0..num_qubits`.
fn check_layout(num_qubits: usize, layout: &[usize]) {
    assert_eq!(
        layout.len(),
        num_qubits,
        "layout length {} for a {num_qubits}-qubit plan",
        layout.len()
    );
    let mut seen = vec![false; num_qubits];
    for &p in layout {
        assert!(
            p < num_qubits && !seen[p],
            "layout {layout:?} is not a permutation of 0..{num_qubits}"
        );
        seen[p] = true;
    }
}

/// Rewrites an op's qubits through `layout`, preserving the sorted-qubit
/// invariants of the symmetric ops.
fn remap_op(op: &PlanOp, layout: &[usize]) -> PlanOp {
    match *op {
        PlanOp::OneQ { q, m } => PlanOp::OneQ { q: layout[q], m },
        PlanOp::Cx { control, target } => PlanOp::Cx {
            control: layout[control],
            target: layout[target],
        },
        PlanOp::Cz { lo, hi } => {
            let (a, b) = (layout[lo], layout[hi]);
            PlanOp::Cz {
                lo: a.min(b),
                hi: a.max(b),
            }
        }
        PlanOp::Swap { lo, hi } => {
            let (a, b) = (layout[lo], layout[hi]);
            PlanOp::Swap {
                lo: a.min(b),
                hi: a.max(b),
            }
        }
        PlanOp::Block4 { lo, hi, m } => {
            let (a, b) = (layout[lo], layout[hi]);
            if a < b {
                PlanOp::Block4 { lo: a, hi: b, m }
            } else {
                // Re-sorting the pair permutes the basis — a pure entry
                // shuffle, so remapping never re-rounds the matrix, and
                // `exec::quad_update`'s (0,3)+(1,2) accumulation pairing
                // is invariant under exactly this relabeling, so the
                // remapped block executes bit-identically too.
                PlanOp::Block4 {
                    lo: b,
                    hi: a,
                    m: swap_qubits4(&m),
                }
            }
        }
    }
}

/// Memoizes fusion analysis by circuit structure (gate kinds + wiring,
/// parameters excluded), so repeated executions of one ansatz shape pay
/// only matrix rebinding. Cheap to clone state-wise: structures are
/// [`Arc`]-shared.
///
/// ```
/// use qsim::{Circuit, PlanCache};
///
/// let mut cache = PlanCache::new();
/// let make = |theta: f64| {
///     let mut c = Circuit::new(2);
///     c.ry(0, theta).rz(0, 2.0 * theta).cx(0, 1);
///     c
/// };
/// cache.plan(&make(0.1));
/// cache.plan(&make(0.7)); // same structure, new angles
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// assert_eq!(cache.len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PlanCache {
    structures: HashMap<Vec<u64>, Arc<PlanStructure>>,
    hits: u64,
    misses: u64,
    /// Sharded-execution analyses, keyed by (op structure, shard count) —
    /// see [`PlanCache::shard_plan`].
    shard_analyses: HashMap<(Vec<u64>, usize), Arc<ShardAnalysis>>,
    shard_hits: u64,
    shard_misses: u64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The plan for `circuit`, rebinding a cached structure when one
    /// matches and compiling (and caching) otherwise.
    pub fn plan(&mut self, circuit: &Circuit) -> CircuitPlan {
        let key = structure_key(circuit);
        if let Some(structure) = self.structures.get(&key) {
            self.hits += 1;
            let _span = telemetry::span(telemetry::Stage::PlanRebind);
            return structure.bind(circuit);
        }
        self.misses += 1;
        let structure = {
            let _span = telemetry::span(telemetry::Stage::PlanCompile);
            Arc::new(PlanStructure::analyze(circuit))
        };
        let plan = {
            let _span = telemetry::span(telemetry::Stage::PlanRebind);
            structure.bind(circuit)
        };
        self.structures.insert(key, structure);
        plan
    }

    /// The [`ShardPlan`] for executing `plan` on `shards` shards,
    /// rebinding a memoized shard analysis when one matches and
    /// analyzing (and caching) otherwise. Bit-identical to
    /// [`ShardPlan::analyze`] — the analysis depends only on op kinds
    /// and wiring, so a rebound plan of the same shape reuses the layout
    /// and step segmentation verbatim.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ShardPlan::analyze`].
    ///
    /// ```
    /// use qsim::{Circuit, PlanCache};
    ///
    /// let mut cache = PlanCache::new();
    /// let make = |t: f64| {
    ///     let mut c = Circuit::new(4);
    ///     c.ry(0, t).cx(0, 1).cx(1, 2).cx(2, 3);
    ///     c
    /// };
    /// let a = cache.plan(&make(0.1));
    /// let b = cache.plan(&make(0.9));
    /// cache.shard_plan(&a, 2);
    /// cache.shard_plan(&b, 2); // same shape: analysis reused
    /// assert_eq!(cache.shard_stats(), (1, 1));
    /// ```
    pub fn shard_plan(&mut self, plan: &CircuitPlan, shards: usize) -> ShardPlan {
        let key = (shard_key(plan), shards);
        if let Some(analysis) = self.shard_analyses.get(&key) {
            self.shard_hits += 1;
            let _span = telemetry::span(telemetry::Stage::PlanRebind);
            return analysis.bind(plan);
        }
        self.shard_misses += 1;
        let analysis = {
            let _span = telemetry::span(telemetry::Stage::PlanCompile);
            Arc::new(ShardAnalysis::analyze(plan, shards))
        };
        let sp = {
            let _span = telemetry::span(telemetry::Stage::PlanRebind);
            analysis.bind(plan)
        };
        self.shard_analyses.insert(key, analysis);
        sp
    }

    /// The number of distinct circuit structures cached.
    pub fn len(&self) -> usize {
        self.structures.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.structures.is_empty()
    }

    /// Structure-cache hits so far (rebinds that skipped analysis).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Structure-cache misses so far (full compilations).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Shard-analysis cache counters `(hits, misses)` — how often
    /// [`PlanCache::shard_plan`] rebound a memoized layout instead of
    /// re-analyzing.
    pub fn shard_stats(&self) -> (u64, u64) {
        (self.shard_hits, self.shard_misses)
    }
}

/// A [`PlanCache`] behind `Arc<Mutex<…>>`: the compiled-plan sharing seam
/// for concurrent executors. Tenants of a job scheduler running the same
/// ansatz family hit each other's structures — the second tenant's
/// submission rebinds the first one's analysis instead of compiling.
///
/// Cloning is cheap and shares the underlying cache. The lock is held
/// only for the cache lookup/insert; matrix binding happens outside it.
///
/// ```
/// use qsim::{Circuit, SharedPlanCache};
///
/// let shared = SharedPlanCache::new();
/// let elsewhere = shared.clone(); // same cache
/// let mut c = Circuit::new(2);
/// c.ry(0, 0.4).cx(0, 1);
/// shared.plan(&c);
/// let mut c2 = Circuit::new(2);
/// c2.ry(0, -1.3).cx(0, 1);
/// elsewhere.plan(&c2); // same structure: a hit through the other handle
/// let (structures, hits, misses) = shared.stats();
/// assert_eq!((structures, hits, misses), (1, 1, 1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SharedPlanCache {
    inner: Arc<Mutex<PlanCache>>,
}

impl SharedPlanCache {
    /// An empty shared cache.
    pub fn new() -> Self {
        SharedPlanCache::default()
    }

    /// Locks the cache, recovering from a poisoned lock: the cache holds
    /// only memoized analyses, which stay valid even if a panicking
    /// thread abandoned the lock mid-insert.
    fn lock(&self) -> std::sync::MutexGuard<'_, PlanCache> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The plan for `circuit` — [`PlanCache::plan`] under the lock, with
    /// the matrix binding done outside it.
    pub fn plan(&self, circuit: &Circuit) -> CircuitPlan {
        let structure = {
            let mut cache = self.lock();
            let key = structure_key(circuit);
            if let Some(structure) = cache.structures.get(&key).map(Arc::clone) {
                cache.hits += 1;
                structure
            } else {
                cache.misses += 1;
                let _span = telemetry::span(telemetry::Stage::PlanCompile);
                let structure = Arc::new(PlanStructure::analyze(circuit));
                cache.structures.insert(key, Arc::clone(&structure));
                structure
            }
        };
        let _span = telemetry::span(telemetry::Stage::PlanRebind);
        structure.bind(circuit)
    }

    /// The sharded-execution plan for `plan` — [`PlanCache::shard_plan`]
    /// under the lock, with the op binding done outside it.
    pub fn shard_plan(&self, plan: &CircuitPlan, shards: usize) -> ShardPlan {
        let analysis = {
            let mut cache = self.lock();
            let key = (shard_key(plan), shards);
            if let Some(analysis) = cache.shard_analyses.get(&key).map(Arc::clone) {
                cache.shard_hits += 1;
                analysis
            } else {
                cache.shard_misses += 1;
                let _span = telemetry::span(telemetry::Stage::PlanCompile);
                let analysis = Arc::new(ShardAnalysis::analyze(plan, shards));
                cache.shard_analyses.insert(key, Arc::clone(&analysis));
                analysis
            }
        };
        let _span = telemetry::span(telemetry::Stage::PlanRebind);
        analysis.bind(plan)
    }

    /// Cache statistics `(structures, hits, misses)`, mirroring the
    /// executor-level `plan_cache_stats`.
    pub fn stats(&self) -> (usize, u64, u64) {
        let cache = self.lock();
        (cache.len(), cache.hits(), cache.misses())
    }

    /// Shard-analysis counters `(hits, misses)` — see
    /// [`PlanCache::shard_stats`].
    pub fn shard_stats(&self) -> (u64, u64) {
        self.lock().shard_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[[C64; 2]; 2], b: &[[C64; 2]; 2]) -> bool {
        a.iter()
            .flatten()
            .zip(b.iter().flatten())
            .all(|(x, y)| (*x - *y).abs() < 1e-12)
    }

    #[test]
    fn adjacent_same_qubit_rotations_fuse() {
        let mut c = Circuit::new(1);
        c.ry(0, 0.3).rz(0, -0.8).rx(0, 1.1);
        let plan = CircuitPlan::compile(&c);
        assert_eq!(plan.op_count(), 1);
        let PlanOp::OneQ { q, m } = plan.ops()[0] else {
            panic!("expected a fused one-qubit op");
        };
        assert_eq!(q, 0);
        // Application order: Rx · Rz · Ry.
        let expect = matmul2(
            &Gate::Rx(0, 1.1).matrix().unwrap(),
            &matmul2(
                &Gate::Rz(0, -0.8).matrix().unwrap(),
                &Gate::Ry(0, 0.3).matrix().unwrap(),
            ),
        );
        assert!(close(&m, &expect));
    }

    #[test]
    fn runs_on_different_qubits_do_not_fuse() {
        let mut c = Circuit::new(2);
        c.ry(0, 0.1).ry(1, 0.2);
        assert_eq!(CircuitPlan::compile(&c).op_count(), 2);
    }

    #[test]
    fn single_gate_runs_keep_the_exact_gate_matrix() {
        let mut c = Circuit::new(1);
        c.ry(0, 0.77);
        let PlanOp::OneQ { m, .. } = CircuitPlan::compile(&c).ops()[0] else {
            panic!("expected a one-qubit op");
        };
        // Bitwise equality: no identity multiplication is applied.
        assert_eq!(m, Gate::Ry(0, 0.77).matrix().unwrap());
    }

    #[test]
    fn two_qubit_gates_break_runs() {
        let mut c = Circuit::new(2);
        c.ry(0, 0.1).cx(1, 0).ry(0, 0.2);
        // Ry | CX | Ry — the target-side run cannot cross CX, so the
        // unblocked plan keeps three sweeps; the block pass then fuses
        // the whole sandwich into one 4×4.
        assert_eq!(CircuitPlan::compile_unblocked(&c).op_count(), 3);
        let plan = CircuitPlan::compile(&c);
        assert_eq!((plan.op_count(), plan.block_count()), (1, 1));
    }

    #[test]
    fn diagonal_run_folds_through_cz() {
        let mut c = Circuit::new(2);
        c.rz(0, 0.4).cz(0, 1).ry(0, 0.9);
        let plan = CircuitPlan::compile_unblocked(&c);
        // CZ first, then the fused Rz·Ry run.
        assert_eq!(plan.op_count(), 2);
        assert!(matches!(plan.ops()[0], PlanOp::Cz { lo: 0, hi: 1 }));
        assert!(matches!(plan.ops()[1], PlanOp::OneQ { q: 0, .. }));
        // Blocked: the CZ and the folded run make one 4×4 sweep.
        assert_eq!(CircuitPlan::compile(&c).op_count(), 1);
    }

    #[test]
    fn diagonal_run_folds_through_cx_control_but_not_target() {
        let mut c = Circuit::new(2);
        c.rz(0, 0.4).rz(1, 0.5).cx(0, 1).ry(0, 0.9).ry(1, 1.0);
        let plan = CircuitPlan::compile_unblocked(&c);
        // Control-side Rz folds through and fuses with its Ry; the
        // target-side Rz must flush before CX.
        assert_eq!(plan.op_count(), 4);
        assert!(matches!(plan.ops()[0], PlanOp::OneQ { q: 1, .. }));
        assert!(matches!(
            plan.ops()[1],
            PlanOp::Cx {
                control: 0,
                target: 1
            }
        ));
        // All four sweeps live on the (0,1) pair: one block.
        let blocked = CircuitPlan::compile(&c);
        assert_eq!((blocked.op_count(), blocked.block_count()), (1, 1));
    }

    #[test]
    fn non_diagonal_run_flushes_at_cz() {
        let mut c = Circuit::new(2);
        c.ry(0, 0.4).cz(0, 1).ry(0, 0.9);
        assert_eq!(CircuitPlan::compile_unblocked(&c).op_count(), 3);
        assert_eq!(CircuitPlan::compile(&c).op_count(), 1);
    }

    #[test]
    fn swap_flushes_both_runs() {
        let mut c = Circuit::new(2);
        c.rz(0, 0.4).rz(1, 0.5).swap(0, 1);
        assert_eq!(CircuitPlan::compile_unblocked(&c).op_count(), 3);
        assert_eq!(CircuitPlan::compile(&c).op_count(), 1);
    }

    #[test]
    fn efficient_su2_shape_halves_rotation_sweeps() {
        // Two Ry·Rz layers around a linear entangler, as EfficientSU2
        // builds them: every per-qubit pair fuses.
        let n = 4;
        let mut c = Circuit::new(n);
        for layer in 0..2 {
            for q in 0..n {
                c.ry(q, 0.1 * (layer * n + q) as f64);
            }
            for q in 0..n {
                c.rz(q, 0.2 * (layer * n + q) as f64);
            }
            if layer == 0 {
                for q in 0..n - 1 {
                    c.cx(q, q + 1);
                }
            }
        }
        let unblocked = CircuitPlan::compile_unblocked(&c);
        let stats = c.stats();
        assert_eq!(stats.gate_count, 2 * 2 * n + (n - 1));
        // Each per-qubit Ry·Rz pair fuses into one sweep (the mixed run is
        // non-diagonal, so nothing folds through the CX entangler here).
        assert_eq!(unblocked.op_count(), 2 * n + (n - 1));
        assert_eq!(unblocked.op_count(), stats.fused_ops());
        // The block pass then absorbs every entangler's sandwich: the
        // linear chain lowers to n−1 blocks plus the two runs (qubits 0
        // and 1) that no second-layer entangler touches.
        let blocked = CircuitPlan::compile(&c);
        assert_eq!(blocked.block_count(), n - 1);
        assert_eq!(blocked.op_count(), (n - 1) + 2);
        // The stats mirror sees only lone entanglers here (a linear chain
        // never repeats a pair), so `blocked_ops` degenerates to
        // `fused_ops` — the documented drift: absorbed rotation
        // sandwiches save sweeps the pair count cannot anticipate.
        assert_eq!(stats.fusible_pairs, 0);
        assert_eq!(stats.blocked_ops(), stats.fused_ops());
        assert!(blocked.op_count() < stats.blocked_ops());
    }

    #[test]
    fn pure_rz_layer_folds_through_a_cz_entangler() {
        // An Rz-only layer before CZ entanglers defers entirely: each
        // qubit's Rz joins its next rotation run on the far side.
        let n = 3;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.rz(q, 0.1 + q as f64);
        }
        for q in 0..n - 1 {
            c.cz(q, q + 1);
        }
        for q in 0..n {
            c.ry(q, 0.2 + q as f64);
        }
        let plan = CircuitPlan::compile_unblocked(&c);
        // n fused Rz·Ry sweeps + (n-1) CZs, against 2n + (n-1) unfused
        // and stats' fold-blind estimate of 2n + (n-1) as well.
        assert_eq!(plan.op_count(), n + (n - 1));
        assert!(plan.op_count() < c.stats().fused_ops());
        // Blocked: CZ(1,2) absorbs the runs on 1 and 2; CZ(0,1) stays a
        // lone entangler and qubit 0's run stays a 2×2 sweep.
        let blocked = CircuitPlan::compile(&c);
        assert_eq!((blocked.op_count(), blocked.block_count()), (3, 1));
    }

    #[test]
    fn unfused_plan_is_one_op_per_gate() {
        let mut c = Circuit::new(2);
        c.ry(0, 0.3).rz(0, -0.8).cx(0, 1).cz(1, 0).swap(0, 1);
        let plan = CircuitPlan::compile_unfused(&c);
        assert_eq!(plan.op_count(), c.gate_count());
        assert!(matches!(plan.ops()[3], PlanOp::Cz { lo: 0, hi: 1 }));
    }

    #[test]
    fn cache_hits_on_rebound_parameters_only() {
        let make = |t: f64, wiring: bool| {
            let mut c = Circuit::new(2);
            c.ry(0, t).rz(0, 2.0 * t);
            if wiring {
                c.cx(0, 1);
            } else {
                c.cx(1, 0);
            }
            c
        };
        let mut cache = PlanCache::new();
        cache.plan(&make(0.1, true));
        cache.plan(&make(0.9, true)); // parameters differ: hit
        cache.plan(&make(0.1, false)); // wiring differs: miss
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn rebind_matches_fresh_compile() {
        let make = |a: f64, b: f64| {
            let mut c = Circuit::new(3);
            c.ry(0, a).rz(0, b).cx(0, 1).ry(1, a - b).ry(2, a + b);
            c
        };
        let plan = CircuitPlan::compile(&make(0.3, 0.7));
        let rebound = plan.rebind(&make(-1.1, 0.2));
        let fresh = CircuitPlan::compile(&make(-1.1, 0.2));
        assert_eq!(rebound.op_count(), fresh.op_count());
        assert!(fresh.block_count() > 0, "the sandwich must block");
        let mut blocks = 0;
        for (r, f) in rebound.ops().iter().zip(fresh.ops()) {
            match (r, f) {
                (PlanOp::OneQ { m: mr, .. }, PlanOp::OneQ { m: mf, .. }) => {
                    assert_eq!(mr, mf, "rebound matrices must be bit-identical");
                }
                (PlanOp::Block4 { m: mr, .. }, PlanOp::Block4 { m: mf, .. }) => {
                    blocks += 1;
                    assert_eq!(mr, mf, "rebound block matrices must be bit-identical");
                }
                _ => {}
            }
        }
        assert_eq!(blocks, fresh.block_count());
    }

    #[test]
    #[should_panic(expected = "identical circuit structure")]
    fn rebind_rejects_different_structure() {
        let mut a = Circuit::new(1);
        a.ry(0, 0.1);
        let mut b = Circuit::new(1);
        b.rz(0, 0.1);
        CircuitPlan::compile(&a).rebind(&b);
    }

    #[test]
    fn structure_code_distinguishes_kind_and_wiring_not_angle() {
        assert_eq!(
            structure_code(Gate::Ry(3, 0.1)),
            structure_code(Gate::Ry(3, -2.9))
        );
        assert_ne!(
            structure_code(Gate::Ry(3, 0.1)),
            structure_code(Gate::Rz(3, 0.1))
        );
        assert_ne!(
            structure_code(Gate::Cx(0, 1)),
            structure_code(Gate::Cx(1, 0))
        );
        // CZ and SWAP are symmetric: argument order must not split the
        // cache (the compiler sorts their slots anyway).
        assert_eq!(
            structure_code(Gate::Cz(0, 1)),
            structure_code(Gate::Cz(1, 0))
        );
        assert_eq!(
            structure_code(Gate::Swap(2, 5)),
            structure_code(Gate::Swap(5, 2))
        );
    }

    /// The satellite regression for shard-analysis memoization: a cached
    /// analysis rebound to new angles must equal a fresh
    /// [`ShardPlan::analyze`] in layout, step segmentation, counts, and
    /// the executed amplitudes (bit for bit).
    #[test]
    fn cached_shard_plan_rebind_equals_fresh_analysis() {
        let make = |t: f64| {
            let mut c = Circuit::new(5);
            c.ry(4, t)
                .cx(4, 0)
                .rz(4, 2.0 * t)
                .cx(4, 1)
                .ry(0, -t)
                .swap(1, 2);
            c
        };
        let mut cache = PlanCache::new();
        let first = cache.plan(&make(0.3));
        cache.shard_plan(&first, 4); // populate the analysis cache
        let rebound_plan = cache.plan(&make(-1.7));
        let cached = cache.shard_plan(&rebound_plan, 4);
        let fresh = ShardPlan::analyze(&rebound_plan, 4);
        assert_eq!(cache.shard_stats(), (1, 1));
        assert_eq!(cached.layout(), fresh.layout());
        assert_eq!(cached.local_count(), fresh.local_count());
        assert_eq!(cached.exchange_count(), fresh.exchange_count());
        assert_eq!(cached.plane_swap_count(), fresh.plane_swap_count());
        let run = |sp: &ShardPlan| {
            let mut st = crate::ShardedState::zero(5, 4);
            st.apply_shard_plan(sp);
            st.to_statevector()
        };
        assert_eq!(
            run(&cached).amplitudes(),
            run(&fresh).amplitudes(),
            "rebound analysis must execute bit-identically to a fresh one"
        );
    }

    #[test]
    fn shard_plan_cache_distinguishes_shard_counts_and_fusion() {
        let mut c = Circuit::new(4);
        c.rz(0, 0.4).cz(0, 1).ry(0, 0.9).cx(1, 2).ry(3, 0.2);
        let fused = CircuitPlan::compile(&c);
        let unfused = CircuitPlan::compile_unfused(&c);
        let mut cache = PlanCache::new();
        cache.shard_plan(&fused, 2);
        cache.shard_plan(&fused, 4); // different shard count: miss
                                     // Same circuit, different op segmentation: must not share the
                                     // fused entry (the slot indices would be wrong).
        cache.shard_plan(&unfused, 2);
        assert_eq!(cache.shard_stats(), (0, 3));
    }

    #[test]
    fn shared_plan_cache_is_shared_across_clones_and_threads() {
        let shared = SharedPlanCache::new();
        let make = |t: f64| {
            let mut c = Circuit::new(3);
            c.ry(0, t).cx(0, 1).cx(1, 2);
            c
        };
        let plan = shared.plan(&make(0.25));
        let sp = shared.shard_plan(&plan, 2);
        std::thread::scope(|scope| {
            for w in 0..4 {
                let shared = shared.clone();
                let make = &make;
                scope.spawn(move || {
                    let p = shared.plan(&make(0.1 * (w + 1) as f64));
                    shared.shard_plan(&p, 2);
                });
            }
        });
        let (structures, hits, misses) = shared.stats();
        assert_eq!((structures, misses), (1, 1), "one compile total");
        assert_eq!(hits, 4);
        assert_eq!(shared.shard_stats(), (4, 1));
        // The shared rebind executes identically to a fresh analysis.
        let fresh = ShardPlan::analyze(&plan, 2);
        assert_eq!(sp.layout(), fresh.layout());
    }

    #[test]
    fn symmetric_gate_argument_order_hits_the_cache() {
        let make = |flip: bool| {
            let mut c = Circuit::new(2);
            c.ry(0, 0.3);
            if flip {
                c.cz(1, 0);
            } else {
                c.cz(0, 1);
            }
            c
        };
        let mut cache = PlanCache::new();
        cache.plan(&make(false));
        let plan = cache.plan(&make(true));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // The Ry run and the CZ block together.
        assert_eq!(plan.op_count(), 1);
    }

    #[test]
    fn lone_entanglers_never_block() {
        // A bare CX chain has no sandwiches: a dense 4×4 per gate would
        // only slow it down, so the pass leaves every op sparse.
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(1, 2).cx(2, 3);
        let plan = CircuitPlan::compile(&c);
        assert_eq!((plan.op_count(), plan.block_count()), (3, 0));
    }

    #[test]
    fn adjacent_two_qubit_ops_on_one_pair_collapse() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cz(0, 1).cx(1, 0).swap(0, 1);
        let plan = CircuitPlan::compile(&c);
        assert_eq!((plan.op_count(), plan.block_count()), (1, 1));
        let PlanOp::Block4 { lo: 0, hi: 1, m } = plan.ops()[0] else {
            panic!("expected one block");
        };
        // CX·CZ·CX_rev·SWAP is a ±1 permutation-with-phase matrix: every
        // row holds exactly one unit entry.
        for row in &m {
            let ones = row.iter().filter(|e| e.abs() > 0.5).count();
            assert_eq!(ones, 1);
        }
    }

    #[test]
    fn block_pass_is_an_exact_reordering() {
        // Deferred runs and blocks only move past disjoint-support slots,
        // so blocked and unblocked plans agree to rounding (1e-12), and
        // the transposed-blocks mutant visibly does not.
        let mut c = Circuit::new(3);
        c.ry(0, 0.3)
            .ry(2, -0.8)
            .cz(1, 2)
            .rz(2, 0.5)
            .cx(0, 1)
            .ry(1, 1.1)
            .swap(1, 2);
        let blocked = CircuitPlan::compile(&c);
        assert!(blocked.block_count() > 0);
        let run = |plan: &CircuitPlan| {
            let mut st = crate::Statevector::zero(3);
            st.apply_plan(plan);
            st
        };
        let a = run(&blocked);
        let b = run(&CircuitPlan::compile_unblocked(&c));
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!((*x - *y).abs() < 1e-12);
        }
        let mutant = run(&blocked.transpose_blocks_for_tests());
        let drift: f64 = mutant
            .amplitudes()
            .iter()
            .zip(b.amplitudes())
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max);
        assert!(drift > 1e-6, "transposed blocks must be detectable");
    }
}
