//! The simulator's gate set.
//!
//! The gate set is the minimal one needed by the VarSaw reproduction:
//! the Clifford generators used by hardware-efficient ansatz entanglers and
//! measurement-basis changes, plus parameterized single-qubit rotations.

use crate::complex::C64;
use std::f64::consts::FRAC_1_SQRT_2;
use std::fmt;

/// A quantum gate acting on one or two qubits of a circuit.
///
/// Qubit indices are validated when the gate is added to a
/// [`Circuit`](crate::Circuit), not at construction.
///
/// # Examples
///
/// ```
/// use qsim::Gate;
///
/// let g = Gate::Cx(0, 1);
/// assert_eq!(g.qubits(), vec![0, 1]);
/// assert!(g.is_two_qubit());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Gate {
    /// Hadamard gate.
    H(usize),
    /// Pauli-X (NOT) gate.
    X(usize),
    /// Pauli-Y gate.
    Y(usize),
    /// Pauli-Z gate.
    Z(usize),
    /// Phase gate S = diag(1, i).
    S(usize),
    /// Inverse phase gate S† = diag(1, -i).
    Sdg(usize),
    /// T gate = diag(1, e^{iπ/4}).
    T(usize),
    /// Inverse T gate.
    Tdg(usize),
    /// Rotation about X by the given angle (radians).
    Rx(usize, f64),
    /// Rotation about Y by the given angle (radians).
    Ry(usize, f64),
    /// Rotation about Z by the given angle (radians).
    Rz(usize, f64),
    /// Controlled-X with (control, target).
    Cx(usize, usize),
    /// Controlled-Z (symmetric in its qubits).
    Cz(usize, usize),
    /// Swaps two qubits.
    Swap(usize, usize),
}

impl Gate {
    /// The qubits this gate acts on, control first for [`Gate::Cx`].
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::H(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::Rx(q, _)
            | Gate::Ry(q, _)
            | Gate::Rz(q, _) => vec![q],
            Gate::Cx(a, b) | Gate::Cz(a, b) | Gate::Swap(a, b) => vec![a, b],
        }
    }

    /// Whether the gate acts on two qubits.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Cx(..) | Gate::Cz(..) | Gate::Swap(..))
    }

    /// Whether the gate's matrix is diagonal in the computational basis.
    ///
    /// Diagonal single-qubit gates commute with CZ (on either qubit) and
    /// with the *control* side of CX, which is what lets the circuit
    /// compiler ([`crate::CircuitPlan`]) fold them through entanglers into
    /// the next rotation run.
    ///
    /// ```
    /// use qsim::Gate;
    /// assert!(Gate::Rz(0, 0.3).is_diagonal());
    /// assert!(Gate::Cz(0, 1).is_diagonal());
    /// assert!(!Gate::Ry(0, 0.3).is_diagonal());
    /// ```
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::Z(_)
                | Gate::S(_)
                | Gate::Sdg(_)
                | Gate::T(_)
                | Gate::Tdg(_)
                | Gate::Rz(..)
                | Gate::Cz(..)
        )
    }

    /// The 2×2 unitary matrix of a single-qubit gate in row-major order
    /// `[[m00, m01], [m10, m11]]`, or `None` for two-qubit gates.
    ///
    /// ```
    /// use qsim::Gate;
    /// let m = Gate::X(0).matrix().unwrap();
    /// assert_eq!(m[0][1].re, 1.0);
    /// assert!(Gate::Cx(0, 1).matrix().is_none());
    /// ```
    pub fn matrix(&self) -> Option<[[C64; 2]; 2]> {
        let r = |x: f64| C64::real(x);
        let m = match *self {
            Gate::H(_) => [
                [r(FRAC_1_SQRT_2), r(FRAC_1_SQRT_2)],
                [r(FRAC_1_SQRT_2), r(-FRAC_1_SQRT_2)],
            ],
            Gate::X(_) => [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]],
            Gate::Y(_) => [[C64::ZERO, -C64::I], [C64::I, C64::ZERO]],
            Gate::Z(_) => [[C64::ONE, C64::ZERO], [C64::ZERO, -C64::ONE]],
            Gate::S(_) => [[C64::ONE, C64::ZERO], [C64::ZERO, C64::I]],
            Gate::Sdg(_) => [[C64::ONE, C64::ZERO], [C64::ZERO, -C64::I]],
            Gate::T(_) => [
                [C64::ONE, C64::ZERO],
                [C64::ZERO, C64::expi(std::f64::consts::FRAC_PI_4)],
            ],
            Gate::Tdg(_) => [
                [C64::ONE, C64::ZERO],
                [C64::ZERO, C64::expi(-std::f64::consts::FRAC_PI_4)],
            ],
            Gate::Rx(_, t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                [[r(c), C64::new(0.0, -s)], [C64::new(0.0, -s), r(c)]]
            }
            Gate::Ry(_, t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                [[r(c), r(-s)], [r(s), r(c)]]
            }
            Gate::Rz(_, t) => [
                [C64::expi(-t / 2.0), C64::ZERO],
                [C64::ZERO, C64::expi(t / 2.0)],
            ],
            Gate::Cx(..) | Gate::Cz(..) | Gate::Swap(..) => return None,
        };
        Some(m)
    }

    /// The inverse (adjoint) of the gate.
    ///
    /// ```
    /// use qsim::Gate;
    /// assert_eq!(Gate::S(2).inverse(), Gate::Sdg(2));
    /// assert_eq!(Gate::Rx(0, 0.3).inverse(), Gate::Rx(0, -0.3));
    /// ```
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S(q) => Gate::Sdg(q),
            Gate::Sdg(q) => Gate::S(q),
            Gate::T(q) => Gate::Tdg(q),
            Gate::Tdg(q) => Gate::T(q),
            Gate::Rx(q, t) => Gate::Rx(q, -t),
            Gate::Ry(q, t) => Gate::Ry(q, -t),
            Gate::Rz(q, t) => Gate::Rz(q, -t),
            g => g, // H, X, Y, Z, CX, CZ, SWAP are involutions
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::H(q) => write!(f, "h q{q}"),
            Gate::X(q) => write!(f, "x q{q}"),
            Gate::Y(q) => write!(f, "y q{q}"),
            Gate::Z(q) => write!(f, "z q{q}"),
            Gate::S(q) => write!(f, "s q{q}"),
            Gate::Sdg(q) => write!(f, "sdg q{q}"),
            Gate::T(q) => write!(f, "t q{q}"),
            Gate::Tdg(q) => write!(f, "tdg q{q}"),
            Gate::Rx(q, t) => write!(f, "rx({t:.6}) q{q}"),
            Gate::Ry(q, t) => write!(f, "ry({t:.6}) q{q}"),
            Gate::Rz(q, t) => write!(f, "rz({t:.6}) q{q}"),
            Gate::Cx(a, b) => write!(f, "cx q{a}, q{b}"),
            Gate::Cz(a, b) => write!(f, "cz q{a}, q{b}"),
            Gate::Swap(a, b) => write!(f, "swap q{a}, q{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_unitary(m: [[C64; 2]; 2]) -> bool {
        // m† m == I
        let mut prod = [[C64::ZERO; 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..2 {
                    prod[i][j] += m[k][i].conj() * m[k][j];
                }
            }
        }
        (prod[0][0] - C64::ONE).abs() < 1e-12
            && (prod[1][1] - C64::ONE).abs() < 1e-12
            && prod[0][1].abs() < 1e-12
            && prod[1][0].abs() < 1e-12
    }

    #[test]
    fn all_single_qubit_matrices_are_unitary() {
        let gates = [
            Gate::H(0),
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::T(0),
            Gate::Tdg(0),
            Gate::Rx(0, 0.7),
            Gate::Ry(0, -1.3),
            Gate::Rz(0, 2.9),
        ];
        for g in gates {
            assert!(is_unitary(g.matrix().unwrap()), "{g} is not unitary");
        }
    }

    #[test]
    fn two_qubit_gates_have_no_matrix() {
        assert!(Gate::Cx(0, 1).matrix().is_none());
        assert!(Gate::Cz(0, 1).matrix().is_none());
        assert!(Gate::Swap(0, 1).matrix().is_none());
    }

    #[test]
    fn inverse_of_rotation_negates_angle() {
        assert_eq!(Gate::Ry(1, 0.25).inverse(), Gate::Ry(1, -0.25));
        assert_eq!(Gate::H(3).inverse(), Gate::H(3));
    }

    #[test]
    fn inverse_matrix_is_adjoint() {
        for g in [Gate::S(0), Gate::T(0), Gate::Rz(0, 1.1)] {
            let m = g.matrix().unwrap();
            let minv = g.inverse().matrix().unwrap();
            // minv == m† elementwise
            for i in 0..2 {
                for j in 0..2 {
                    assert!((minv[i][j] - m[j][i].conj()).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn qubits_reported_in_order() {
        assert_eq!(Gate::Cx(3, 1).qubits(), vec![3, 1]);
        assert_eq!(Gate::Rz(2, 0.1).qubits(), vec![2]);
    }
}
