//! Quantum circuit representation.

use crate::gate::Gate;
use std::fmt;

/// An ordered sequence of gates on a fixed number of qubits.
///
/// `Circuit` is a plain gate list: parameter binding is the caller's concern
/// (the `vqe` crate builds a fresh concrete circuit per parameter vector,
/// which keeps this type simple and cheap to simulate).
///
/// # Examples
///
/// Build a Bell pair preparation circuit:
///
/// ```
/// use qsim::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// assert_eq!(c.gate_count(), 2);
/// assert_eq!(c.depth(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// The number of qubits the circuit acts on.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The gates of the circuit, in application order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The number of gates in the circuit.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// The number of two-qubit gates in the circuit.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate addresses a qubit `>= num_qubits`, or if a
    /// two-qubit gate addresses the same qubit twice.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        let qs = gate.qubits();
        for &q in &qs {
            assert!(
                q < self.num_qubits,
                "gate {gate} addresses qubit {q} but circuit has {} qubits",
                self.num_qubits
            );
        }
        if qs.len() == 2 {
            assert!(
                qs[0] != qs[1],
                "two-qubit gate {gate} repeats qubit {}",
                qs[0]
            );
        }
        self.gates.push(gate);
        self
    }

    /// Appends all gates of `other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` acts on more qubits than this circuit.
    pub fn append(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot append a {}-qubit circuit to a {}-qubit circuit",
            other.num_qubits,
            self.num_qubits
        );
        self.gates.extend_from_slice(&other.gates);
        self
    }

    /// The inverse circuit: reversed gate order, each gate inverted.
    ///
    /// ```
    /// use qsim::{Circuit, Statevector};
    /// let mut c = Circuit::new(2);
    /// c.h(0).cx(0, 1).rz(1, 0.4);
    /// let mut s = Statevector::zero(2);
    /// s.apply_circuit(&c);
    /// s.apply_circuit(&c.inverse());
    /// assert!((s.probabilities()[0] - 1.0).abs() < 1e-12);
    /// ```
    pub fn inverse(&self) -> Circuit {
        Circuit {
            num_qubits: self.num_qubits,
            gates: self.gates.iter().rev().map(Gate::inverse).collect(),
        }
    }

    /// Circuit depth: the number of layers when gates are greedily packed
    /// into layers of disjoint qubits. Computed by the one-pass
    /// [`Circuit::stats`] scan.
    pub fn depth(&self) -> usize {
        self.stats().depth
    }

    /// Structural statistics in one pass: gate and depth counts plus the
    /// per-qubit single-qubit *run lengths* underlying the gate-fusion
    /// model (a run is a maximal stretch of adjacent single-qubit gates
    /// on one qubit, uninterrupted by a two-qubit gate touching it) —
    /// how to size a circuit's execution cost without compiling it.
    ///
    /// `fusible_gates` counts conservatively: diagonal runs that the plan
    /// compiler additionally folds through CZ / CX controls are not
    /// anticipated here, so [`CircuitStats::fused_ops`] is an upper bound
    /// on the sweeps a compiled [`crate::CircuitPlan`] executes.
    ///
    /// `fusible_pairs` mirrors the entangler-block coalescer greedily:
    /// two-qubit gates that repeat the pair of an *open* block — one not
    /// yet closed by an overlapping two-qubit gate on another pair —
    /// each count once (single-qubit gates never close a block; the
    /// compiler holds them for absorption).
    ///
    /// ```
    /// use qsim::Circuit;
    /// let mut c = Circuit::new(2);
    /// c.ry(0, 0.1).rz(0, 0.2).ry(1, 0.3).rz(1, 0.4).cx(0, 1);
    /// let s = c.stats();
    /// assert_eq!(s.gate_count, 5);
    /// assert_eq!(s.max_run, 2);
    /// assert_eq!(s.fusible_gates, 2);
    /// assert_eq!(s.fused_ops(), 3);
    /// assert_eq!(s.fusible_pairs, 0);
    /// ```
    pub fn stats(&self) -> CircuitStats {
        let mut level = vec![0usize; self.num_qubits];
        let mut run = vec![0usize; self.num_qubits];
        let mut run_lengths = vec![0usize; self.num_qubits];
        // Per-qubit pair of the open entangler block the qubit belongs to.
        let mut open_pair: Vec<Option<(usize, usize)>> = vec![None; self.num_qubits];
        let mut stats = CircuitStats {
            num_qubits: self.num_qubits,
            gate_count: self.gates.len(),
            two_qubit_gates: 0,
            depth: 0,
            max_run: 0,
            fusible_gates: 0,
            fusible_pairs: 0,
            run_lengths: Vec::new(),
        };
        let close_run = |q: usize, run: &mut [usize], stats: &mut CircuitStats| {
            if run[q] > 1 {
                stats.fusible_gates += run[q] - 1;
            }
            run[q] = 0;
        };
        for g in &self.gates {
            let qs = g.qubits();
            let l = qs.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for &q in &qs {
                level[q] = l;
            }
            stats.depth = stats.depth.max(l);
            if g.is_two_qubit() {
                stats.two_qubit_gates += 1;
                for &q in &qs {
                    close_run(q, &mut run, &mut stats);
                }
                let pair = (qs[0].min(qs[1]), qs[0].max(qs[1]));
                if open_pair[pair.0] == Some(pair) && open_pair[pair.1] == Some(pair) {
                    stats.fusible_pairs += 1;
                } else {
                    for &q in &qs {
                        if let Some((a, b)) = open_pair[q].take() {
                            open_pair[a] = None;
                            open_pair[b] = None;
                        }
                    }
                    open_pair[pair.0] = Some(pair);
                    open_pair[pair.1] = Some(pair);
                }
            } else {
                let q = qs[0];
                run[q] += 1;
                run_lengths[q] = run_lengths[q].max(run[q]);
                stats.max_run = stats.max_run.max(run[q]);
            }
        }
        for q in 0..self.num_qubits {
            close_run(q, &mut run, &mut stats);
        }
        stats.run_lengths = run_lengths;
        stats
    }

    // --- fluent builder helpers -------------------------------------------

    /// Appends a Hadamard gate on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H(q))
    }
    /// Appends a Pauli-X gate on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X(q))
    }
    /// Appends a Pauli-Y gate on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Y(q))
    }
    /// Appends a Pauli-Z gate on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Z(q))
    }
    /// Appends an S gate on `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push(Gate::S(q))
    }
    /// Appends an S† gate on `q`.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Sdg(q))
    }
    /// Appends an X rotation on `q` by `theta` radians.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rx(q, theta))
    }
    /// Appends a Y rotation on `q` by `theta` radians.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Ry(q, theta))
    }
    /// Appends a Z rotation on `q` by `theta` radians.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rz(q, theta))
    }
    /// Appends a CX with control `c` and target `t`.
    pub fn cx(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Gate::Cx(c, t))
    }
    /// Appends a CZ on `a` and `b`.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Cz(a, b))
    }
    /// Appends a SWAP of `a` and `b`.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Swap(a, b))
    }
}

/// One-pass structural statistics of a [`Circuit`] — see
/// [`Circuit::stats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CircuitStats {
    /// The number of qubits of the circuit's register (sizes
    /// [`CircuitStats::state_bytes`]).
    pub num_qubits: usize,
    /// Total gates.
    pub gate_count: usize,
    /// Gates acting on two qubits.
    pub two_qubit_gates: usize,
    /// Greedy layer depth (same as [`Circuit::depth`]).
    pub depth: usize,
    /// The longest single-qubit run on any qubit.
    pub max_run: usize,
    /// Single-qubit gates that adjacent-run fusion eliminates (each run of
    /// length `k` collapses to one sweep, removing `k − 1`).
    pub fusible_gates: usize,
    /// Two-qubit gates that entangler-block fusion absorbs into an
    /// already-open block on the same qubit pair (each block of `k`
    /// two-qubit gates contributes `k − 1`). A greedy mirror of the plan
    /// compiler's coalescing pass — see [`CircuitStats::blocked_ops`]
    /// for why it is an estimate.
    pub fusible_pairs: usize,
    /// The longest single-qubit run per qubit (index = qubit).
    pub run_lengths: Vec<usize>,
}

impl CircuitStats {
    /// The number of state sweeps after adjacent-run fusion — a static
    /// upper bound on a compiled plan's op count (diagonal folding
    /// through entanglers can fuse further). The parallel dispatch
    /// heuristics weigh the compiled plan's exact
    /// [`op_count`](crate::CircuitPlan::op_count) — the quantity this
    /// estimates without compiling — rather than the raw gate count.
    pub fn fused_ops(&self) -> usize {
        self.gate_count - self.fusible_gates
    }

    /// The sweeps left after entangler-block fusion additionally collapses
    /// same-pair two-qubit gates — an **estimate**, not a bound, of a
    /// compiled plan's [`op_count`](crate::CircuitPlan::op_count).
    ///
    /// It drifts from the compiled count in both directions: rotation
    /// sandwiches absorbed *into* blocks remove more sweeps than
    /// `fusible_pairs` anticipates, while diagonal folding can reshape
    /// the slot sequence so pairs this mirror counts never become
    /// adjacent (e.g. `rz(0)`, `cz(0,1)`, `cx(1,2)`: the plan folds the
    /// RZ through the CZ diagonal, leaving two lone entanglers).
    ///
    /// ```
    /// use qsim::Circuit;
    /// let mut c = Circuit::new(2);
    /// c.cx(0, 1).cz(0, 1).ry(0, 0.3);
    /// let s = c.stats();
    /// assert_eq!(s.fusible_pairs, 1);
    /// assert_eq!(s.blocked_ops(), 2);
    /// ```
    pub fn blocked_ops(&self) -> usize {
        self.fused_ops().saturating_sub(self.fusible_pairs)
    }

    /// The bytes a dense statevector over this circuit's register
    /// occupies (`16 · 2ⁿ`: one [`crate::C64`] per amplitude) — the
    /// estimate the shard-count heuristic
    /// (`qsim::shard::auto_shard_count`) and the `Parallelism::Auto`
    /// dispatch threshold consult before allocating anything.
    ///
    /// Returned as `u128` so the estimate stays exact for register sizes
    /// far beyond what [`crate::Statevector::try_zero`] can allocate.
    ///
    /// ```
    /// use qsim::Circuit;
    /// assert_eq!(Circuit::new(12).stats().state_bytes(), 16 << 12);
    /// ```
    pub fn state_bytes(&self) -> u128 {
        crate::exec::state_bytes_for_qubits(self.num_qubits)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit({} qubits, {} gates):",
            self.num_qubits,
            self.gates.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        assert_eq!(c.gate_count(), 3);
        assert_eq!(c.two_qubit_gate_count(), 2);
        assert_eq!(c.num_qubits(), 3);
    }

    #[test]
    #[should_panic(expected = "addresses qubit 5")]
    fn out_of_range_qubit_panics() {
        Circuit::new(2).h(5);
    }

    #[test]
    #[should_panic(expected = "repeats qubit")]
    fn repeated_qubit_in_two_qubit_gate_panics() {
        Circuit::new(3).cx(1, 1);
    }

    #[test]
    fn depth_packs_disjoint_gates() {
        let mut c = Circuit::new(4);
        // Layer 1: h0, h1, h2, h3. Layer 2: cx(0,1), cx(2,3). Layer 3: cx(1,2).
        c.h(0).h(1).h(2).h(3).cx(0, 1).cx(2, 3).cx(1, 2);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn depth_of_empty_circuit_is_zero() {
        assert_eq!(Circuit::new(3).depth(), 0);
    }

    #[test]
    fn append_merges_gate_lists() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.append(&b);
        assert_eq!(a.gates(), &[Gate::H(0), Gate::Cx(0, 1)]);
    }

    #[test]
    fn inverse_reverses_and_adjoints() {
        let mut c = Circuit::new(2);
        c.s(0).cx(0, 1);
        let inv = c.inverse();
        assert_eq!(inv.gates(), &[Gate::Cx(0, 1), Gate::Sdg(0)]);
    }

    #[test]
    fn stats_count_fusible_pairs_greedily() {
        let mut c = Circuit::new(3);
        // cz(0,1) repeats the open (0,1) pair (the ry holds, it does not
        // close); cx(1,2) overlaps qubit 1 and closes it; the second
        // cx(1,2) repeats the new open pair; swap(0,2) closes that.
        c.cx(0, 1).ry(0, 0.1).cz(0, 1).cx(1, 2).cx(1, 2).swap(0, 2);
        let s = c.stats();
        assert_eq!(s.fusible_pairs, 2);
        assert_eq!(s.blocked_ops(), 4);
        // Lone entanglers on alternating pairs never pair up.
        let mut alt = Circuit::new(3);
        alt.cx(0, 1).cx(1, 2).cx(0, 1).cx(1, 2);
        assert_eq!(alt.stats().fusible_pairs, 0);
    }

    #[test]
    fn extend_accepts_gate_iterator() {
        let mut c = Circuit::new(2);
        c.extend([Gate::H(0), Gate::H(1)]);
        assert_eq!(c.gate_count(), 2);
    }
}
