//! Quantum circuit representation.

use crate::gate::Gate;
use std::fmt;

/// An ordered sequence of gates on a fixed number of qubits.
///
/// `Circuit` is a plain gate list: parameter binding is the caller's concern
/// (the `vqe` crate builds a fresh concrete circuit per parameter vector,
/// which keeps this type simple and cheap to simulate).
///
/// # Examples
///
/// Build a Bell pair preparation circuit:
///
/// ```
/// use qsim::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// assert_eq!(c.gate_count(), 2);
/// assert_eq!(c.depth(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// The number of qubits the circuit acts on.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The gates of the circuit, in application order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The number of gates in the circuit.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// The number of two-qubit gates in the circuit.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate addresses a qubit `>= num_qubits`, or if a
    /// two-qubit gate addresses the same qubit twice.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        let qs = gate.qubits();
        for &q in &qs {
            assert!(
                q < self.num_qubits,
                "gate {gate} addresses qubit {q} but circuit has {} qubits",
                self.num_qubits
            );
        }
        if qs.len() == 2 {
            assert!(
                qs[0] != qs[1],
                "two-qubit gate {gate} repeats qubit {}",
                qs[0]
            );
        }
        self.gates.push(gate);
        self
    }

    /// Appends all gates of `other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` acts on more qubits than this circuit.
    pub fn append(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot append a {}-qubit circuit to a {}-qubit circuit",
            other.num_qubits,
            self.num_qubits
        );
        self.gates.extend_from_slice(&other.gates);
        self
    }

    /// The inverse circuit: reversed gate order, each gate inverted.
    ///
    /// ```
    /// use qsim::{Circuit, Statevector};
    /// let mut c = Circuit::new(2);
    /// c.h(0).cx(0, 1).rz(1, 0.4);
    /// let mut s = Statevector::zero(2);
    /// s.apply_circuit(&c);
    /// s.apply_circuit(&c.inverse());
    /// assert!((s.probabilities()[0] - 1.0).abs() < 1e-12);
    /// ```
    pub fn inverse(&self) -> Circuit {
        Circuit {
            num_qubits: self.num_qubits,
            gates: self.gates.iter().rev().map(Gate::inverse).collect(),
        }
    }

    /// Circuit depth: the number of layers when gates are greedily packed
    /// into layers of disjoint qubits.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for g in &self.gates {
            let qs = g.qubits();
            let l = qs.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for &q in &qs {
                level[q] = l;
            }
            depth = depth.max(l);
        }
        depth
    }

    // --- fluent builder helpers -------------------------------------------

    /// Appends a Hadamard gate on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H(q))
    }
    /// Appends a Pauli-X gate on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X(q))
    }
    /// Appends a Pauli-Y gate on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Y(q))
    }
    /// Appends a Pauli-Z gate on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Z(q))
    }
    /// Appends an S gate on `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push(Gate::S(q))
    }
    /// Appends an S† gate on `q`.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Sdg(q))
    }
    /// Appends an X rotation on `q` by `theta` radians.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rx(q, theta))
    }
    /// Appends a Y rotation on `q` by `theta` radians.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Ry(q, theta))
    }
    /// Appends a Z rotation on `q` by `theta` radians.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rz(q, theta))
    }
    /// Appends a CX with control `c` and target `t`.
    pub fn cx(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Gate::Cx(c, t))
    }
    /// Appends a CZ on `a` and `b`.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Cz(a, b))
    }
    /// Appends a SWAP of `a` and `b`.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Swap(a, b))
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit({} qubits, {} gates):",
            self.num_qubits,
            self.gates.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        assert_eq!(c.gate_count(), 3);
        assert_eq!(c.two_qubit_gate_count(), 2);
        assert_eq!(c.num_qubits(), 3);
    }

    #[test]
    #[should_panic(expected = "addresses qubit 5")]
    fn out_of_range_qubit_panics() {
        Circuit::new(2).h(5);
    }

    #[test]
    #[should_panic(expected = "repeats qubit")]
    fn repeated_qubit_in_two_qubit_gate_panics() {
        Circuit::new(3).cx(1, 1);
    }

    #[test]
    fn depth_packs_disjoint_gates() {
        let mut c = Circuit::new(4);
        // Layer 1: h0, h1, h2, h3. Layer 2: cx(0,1), cx(2,3). Layer 3: cx(1,2).
        c.h(0).h(1).h(2).h(3).cx(0, 1).cx(2, 3).cx(1, 2);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn depth_of_empty_circuit_is_zero() {
        assert_eq!(Circuit::new(3).depth(), 0);
    }

    #[test]
    fn append_merges_gate_lists() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.append(&b);
        assert_eq!(a.gates(), &[Gate::H(0), Gate::Cx(0, 1)]);
    }

    #[test]
    fn inverse_reverses_and_adjoints() {
        let mut c = Circuit::new(2);
        c.s(0).cx(0, 1);
        let inv = c.inverse();
        assert_eq!(inv.gates(), &[Gate::Cx(0, 1), Gate::Sdg(0)]);
    }

    #[test]
    fn extend_accepts_gate_iterator() {
        let mut c = Circuit::new(2);
        c.extend([Gate::H(0), Gate::H(1)]);
        assert_eq!(c.gate_count(), 2);
    }
}
