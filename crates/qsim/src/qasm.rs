//! OpenQASM 2.0 export.
//!
//! Circuits built here can be re-run on real toolchains (Qiskit, BQSKit,
//! tket) — the natural hand-off point if someone wants to replay the
//! reproduction's circuits on actual hardware.

use crate::circuit::Circuit;
use crate::gate::Gate;
use std::fmt::Write as _;

/// Renders a circuit as an OpenQASM 2.0 program, measuring `measured` into
/// a classical register at the end (pass an empty slice for no
/// measurements).
///
/// # Panics
///
/// Panics if a measured qubit index is out of range.
///
/// # Examples
///
/// ```
/// use qsim::{to_qasm, Circuit};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let qasm = to_qasm(&c, &[0, 1]);
/// assert!(qasm.contains("h q[0];"));
/// assert!(qasm.contains("cx q[0], q[1];"));
/// assert!(qasm.contains("measure q[0] -> c[0];"));
/// ```
pub fn to_qasm(circuit: &Circuit, measured: &[usize]) -> String {
    for &q in measured {
        assert!(
            q < circuit.num_qubits(),
            "measured qubit {q} out of range for {} qubits",
            circuit.num_qubits()
        );
    }
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    if !measured.is_empty() {
        let _ = writeln!(out, "creg c[{}];", measured.len());
    }
    for g in circuit.gates() {
        let line = match *g {
            Gate::H(q) => format!("h q[{q}];"),
            Gate::X(q) => format!("x q[{q}];"),
            Gate::Y(q) => format!("y q[{q}];"),
            Gate::Z(q) => format!("z q[{q}];"),
            Gate::S(q) => format!("s q[{q}];"),
            Gate::Sdg(q) => format!("sdg q[{q}];"),
            Gate::T(q) => format!("t q[{q}];"),
            Gate::Tdg(q) => format!("tdg q[{q}];"),
            Gate::Rx(q, t) => format!("rx({t}) q[{q}];"),
            Gate::Ry(q, t) => format!("ry({t}) q[{q}];"),
            Gate::Rz(q, t) => format!("rz({t}) q[{q}];"),
            Gate::Cx(a, b) => format!("cx q[{a}], q[{b}];"),
            Gate::Cz(a, b) => format!("cz q[{a}], q[{b}];"),
            Gate::Swap(a, b) => format!("swap q[{a}], q[{b}];"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    for (i, &q) in measured.iter().enumerate() {
        let _ = writeln!(out, "measure q[{q}] -> c[{i}];");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_gate_set_renders() {
        let mut c = Circuit::new(3);
        c.h(0)
            .x(1)
            .y(2)
            .z(0)
            .s(1)
            .sdg(2)
            .rx(0, 0.5)
            .ry(1, -0.25)
            .rz(2, 1.5)
            .cx(0, 1)
            .cz(1, 2)
            .swap(0, 2);
        c.push(crate::gate::Gate::T(0));
        c.push(crate::gate::Gate::Tdg(1));
        let qasm = to_qasm(&c, &[]);
        for token in [
            "h q[0];",
            "x q[1];",
            "y q[2];",
            "z q[0];",
            "s q[1];",
            "sdg q[2];",
            "rx(0.5) q[0];",
            "ry(-0.25) q[1];",
            "rz(1.5) q[2];",
            "cx q[0], q[1];",
            "cz q[1], q[2];",
            "swap q[0], q[2];",
            "t q[0];",
            "tdg q[1];",
        ] {
            assert!(qasm.contains(token), "missing {token} in:\n{qasm}");
        }
        assert!(!qasm.contains("creg"), "no classical register expected");
    }

    #[test]
    fn headers_and_registers() {
        let mut c = Circuit::new(2);
        c.h(0);
        let qasm = to_qasm(&c, &[1]);
        assert!(qasm.starts_with("OPENQASM 2.0;\n"));
        assert!(qasm.contains("qreg q[2];"));
        assert!(qasm.contains("creg c[1];"));
        assert!(qasm.ends_with("measure q[1] -> c[0];\n"));
    }

    #[test]
    fn measurement_order_defines_classical_bits() {
        let c = Circuit::new(3);
        let qasm = to_qasm(&c, &[2, 0]);
        assert!(qasm.contains("measure q[2] -> c[0];"));
        assert!(qasm.contains("measure q[0] -> c[1];"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn measured_out_of_range_panics() {
        to_qasm(&Circuit::new(1), &[3]);
    }
}
