//! Minimal double-precision complex arithmetic.
//!
//! The simulator only needs a handful of operations on complex numbers, so
//! rather than pulling in an external crate we define a small [`C64`] type
//! with the usual field operations, conjugation and polar helpers.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use qsim::C64;
///
/// let z = C64::new(3.0, 4.0);
/// assert_eq!(z.norm_sqr(), 25.0);
/// assert_eq!(z.conj(), C64::new(3.0, -4.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a real complex number (`im = 0`).
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Returns `e^{iθ} = cos θ + i sin θ`.
    ///
    /// ```
    /// use qsim::C64;
    /// let z = C64::expi(std::f64::consts::PI);
    /// assert!((z.re + 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
    /// ```
    #[inline]
    pub fn expi(theta: f64) -> Self {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²` — the measurement probability weight of an
    /// amplitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64 {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        self.scale(1.0 / rhs)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(1.5, -2.0);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert_eq!(z - z, C64::ZERO);
        assert_eq!(-z + z, C64::ZERO);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(C64::I * C64::I, C64::new(-1.0, 0.0));
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = C64::new(2.0, 3.0);
        let b = C64::new(-1.0, 4.0);
        // (2 + 3i)(-1 + 4i) = -2 + 8i - 3i + 12i² = -14 + 5i
        assert_eq!(a * b, C64::new(-14.0, 5.0));
    }

    #[test]
    fn conj_and_norm() {
        let z = C64::new(3.0, 4.0);
        assert_eq!((z * z.conj()).re, z.norm_sqr());
        assert_eq!(z.abs(), 5.0);
    }

    #[test]
    fn expi_is_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * 0.5;
            let z = C64::expi(theta);
            assert!((z.norm_sqr() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn sum_over_iterator() {
        let total: C64 = (0..4).map(|k| C64::new(k as f64, 1.0)).sum();
        assert_eq!(total, C64::new(6.0, 4.0));
    }
}
