//! Shot sampling from outcome distributions.

use rand::Rng;

/// Draws `shots` samples from the distribution `probs` and returns a count
/// per outcome index.
///
/// The distribution is renormalized internally, so slightly unnormalized
/// inputs (e.g. probabilities that sum to `1 ± 1e-12` after floating-point
/// round-off) are fine.
///
/// # Panics
///
/// Panics if `probs` is empty, contains a negative entry, or sums to zero.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let counts = qsim::sample_counts(&[0.5, 0.5], 1000, &mut rng);
/// assert_eq!(counts.iter().sum::<u64>(), 1000);
/// assert!(counts[0] > 400 && counts[0] < 600);
/// ```
pub fn sample_counts<R: Rng + ?Sized>(probs: &[f64], shots: u64, rng: &mut R) -> Vec<u64> {
    let cdf = cumulative(probs);
    let mut counts = vec![0u64; probs.len()];
    for _ in 0..shots {
        counts[draw(&cdf, rng)] += 1;
    }
    counts
}

/// Draws a single outcome index from the distribution `probs`.
///
/// # Panics
///
/// Same conditions as [`sample_counts`].
pub fn sample_index<R: Rng + ?Sized>(probs: &[f64], rng: &mut R) -> usize {
    draw(&cumulative(probs), rng)
}

/// Draws `shots` samples per seed from the distribution `probs`, one
/// independent count vector per entry of `seeds`, computed on scoped
/// threads.
///
/// The CDF is built once and shared; each seed drives its own
/// `StdRng::seed_from_u64` stream, so the result for a given seed is
/// identical to a serial [`sample_counts`] call with that freshly seeded
/// RNG — batch parallelism never changes the counts. This is the
/// shot-sampling entry point for executors running many independent
/// trials or repeated measurements of the same prepared state.
///
/// # Panics
///
/// Same conditions as [`sample_counts`].
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let probs = [0.25, 0.75];
/// let batch = qsim::sample_counts_many(&probs, 100, &[7, 8]);
/// let mut rng = StdRng::seed_from_u64(7);
/// assert_eq!(batch[0], qsim::sample_counts(&probs, 100, &mut rng));
/// assert_eq!(batch[1].iter().sum::<u64>(), 100);
/// ```
pub fn sample_counts_many(probs: &[f64], shots: u64, seeds: &[u64]) -> Vec<Vec<u64>> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let cdf = cumulative(probs);
    parallel::parallel_map(seeds.to_vec(), |&seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; probs.len()];
        for _ in 0..shots {
            counts[draw(&cdf, &mut rng)] += 1;
        }
        counts
    })
}

fn cumulative(probs: &[f64]) -> Vec<f64> {
    assert!(
        !probs.is_empty(),
        "cannot sample from an empty distribution"
    );
    let mut cdf = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for &p in probs {
        assert!(p >= 0.0, "negative probability {p}");
        acc += p;
        cdf.push(acc);
    }
    assert!(acc > 0.0, "distribution sums to zero");
    cdf
}

fn draw<R: Rng + ?Sized>(cdf: &[f64], rng: &mut R) -> usize {
    let total = *cdf.last().expect("cdf is nonempty");
    let u = rng.random::<f64>() * total;
    // Binary search for the first cdf entry >= u.
    match cdf.binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in cdf")) {
        Ok(i) | Err(i) => i.min(cdf.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_distribution_always_hits_the_point_mass() {
        let mut rng = StdRng::seed_from_u64(1);
        let counts = sample_counts(&[0.0, 1.0, 0.0], 100, &mut rng);
        assert_eq!(counts, vec![0, 100, 0]);
    }

    #[test]
    fn counts_sum_to_shots() {
        let mut rng = StdRng::seed_from_u64(2);
        let counts = sample_counts(&[0.1, 0.2, 0.3, 0.4], 2048, &mut rng);
        assert_eq!(counts.iter().sum::<u64>(), 2048);
    }

    #[test]
    fn empirical_frequencies_track_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        let probs = [0.7, 0.2, 0.1];
        let shots = 100_000;
        let counts = sample_counts(&probs, shots, &mut rng);
        for (c, p) in counts.iter().zip(probs) {
            let freq = *c as f64 / shots as f64;
            assert!((freq - p).abs() < 0.01, "freq {freq} vs p {p}");
        }
    }

    #[test]
    fn unnormalized_inputs_are_rescaled() {
        let mut rng = StdRng::seed_from_u64(4);
        let counts = sample_counts(&[2.0, 2.0], 1000, &mut rng);
        assert_eq!(counts.iter().sum::<u64>(), 1000);
        assert!(counts[0] > 400);
    }

    #[test]
    fn same_seed_reproduces_samples() {
        let probs = [0.25, 0.25, 0.5];
        let a = sample_counts(&probs, 500, &mut StdRng::seed_from_u64(9));
        let b = sample_counts(&probs, 500, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn batch_sampling_matches_serial_per_seed() {
        let probs = [0.1, 0.2, 0.3, 0.4];
        let seeds: Vec<u64> = (0..12).collect();
        let batch = sample_counts_many(&probs, 333, &seeds);
        assert_eq!(batch.len(), seeds.len());
        for (&seed, counts) in seeds.iter().zip(&batch) {
            let mut rng = StdRng::seed_from_u64(seed);
            assert_eq!(counts, &sample_counts(&probs, 333, &mut rng), "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "negative probability")]
    fn negative_probability_panics() {
        sample_counts(&[0.5, -0.5], 1, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "sums to zero")]
    fn zero_distribution_panics() {
        sample_counts(&[0.0, 0.0], 1, &mut StdRng::seed_from_u64(0));
    }
}
