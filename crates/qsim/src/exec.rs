//! Multi-threaded circuit execution over the dense amplitude array.
//!
//! # Threading model
//!
//! Gate kernels are data-parallel: every gate updates disjoint amplitude
//! pairs that can be partitioned across threads. Spawning threads *per
//! gate* would cost more than an entire 12-qubit circuit, so the engine
//! parallelizes at **circuit scope**: [`run_threaded`] spawns `workers`
//! scoped threads once, walks all gates inside them in lockstep, and joins
//! at the end. Between gates that touch overlapping regions the workers
//! cross a [`parallel::SpinBarrier`]; gates confined to each worker's own
//! contiguous amplitude chunk need no synchronization at all (see below).
//!
//! Because the workspace denies `unsafe` code, workers cannot share
//! `&mut [C64]` slices whose partition changes per gate. Instead the
//! amplitudes are staged in a shared plane of [`AtomicU64`] bit patterns
//! (`re`/`im` interleaved): relaxed atomic loads and stores of `f64` bits
//! compile to plain moves on mainstream targets, every gate's write set is
//! disjoint across workers by construction, and the barrier provides the
//! acquire/release edges between gates.
//!
//! # Chunking strategy
//!
//! The amplitude array of length `2^n` is split into `workers` (a power of
//! two) contiguous chunks of `2^c` amplitudes, so chunk membership is given
//! by the top `n − c` bits of a basis index. A gate whose amplitude pairs
//! differ only in bits below `c` is **chunk-local**: each worker updates
//! its own chunk and, crucially, runs straight into the next local gate
//! with no barrier. Gates pairing amplitudes across a high bit are
//! **cross-chunk**: their pair space is partitioned evenly across workers
//! by [`parallel::worker_range`], with a barrier before and after.
//! Controlled gates are classified by where their *pairs* reach, not their
//! controls — a CX with a high control but low target only swaps within
//! chunks whose base index has the control bit set, so it stays local, and
//! a CZ is diagonal and always local.
//!
//! # Bit-identical results
//!
//! Serial and threaded execution produce bit-identical amplitudes: each
//! amplitude's new value is a pure elementwise function of its pair
//! (`pair_update`, shared with the serial kernels), no reductions are
//! reordered, and the partition only changes *which thread* computes a
//! value, never the arithmetic. The cross-path property test in
//! `tests/parallel_equiv.rs` asserts exact equality across qubit counts
//! 1–12 and thread counts 1–8.

use crate::complex::C64;
use crate::plan::{op_locality, OpLocality, PlanOp};
use std::sync::atomic::{AtomicU64, Ordering};

/// How [`Statevector::apply_circuit_with`](crate::Statevector::apply_circuit_with)
/// spreads gate kernels across threads.
///
/// The enum itself lives in [`parallel`] so the Bayesian-reconstruction
/// engine in `mitigation` shares the exact same dispatch seam; this
/// re-export keeps `qsim::Parallelism` working. The engine here rounds
/// [`Parallelism::Threads`] requests down to a power of two and caps them
/// so every worker owns at least one amplitude pair; a resulting count of
/// one falls back to serial.
///
/// # Examples
///
/// ```
/// use qsim::{Circuit, Parallelism, Statevector};
///
/// let mut c = Circuit::new(3);
/// c.h(0).cx(0, 1).cx(1, 2);
/// let mut serial = Statevector::zero(3);
/// serial.apply_circuit_with(&c, Parallelism::Serial);
/// let mut threaded = Statevector::zero(3);
/// threaded.apply_circuit_with(&c, Parallelism::Threads(4));
/// // Same amplitudes, bit for bit.
/// assert_eq!(serial.amplitudes(), threaded.amplitudes());
/// ```
pub use parallel::Parallelism;

/// Smallest amplitude-plane size for which [`Parallelism::Auto`] goes
/// threaded, expressed in bytes of the same estimate
/// [`crate::CircuitStats::state_bytes`] reports (16 bytes per amplitude:
/// below 2¹¹ amplitudes — 11 qubits — a whole circuit costs less than
/// spawning).
pub(crate) const AUTO_MIN_STATE_BYTES: u128 = (std::mem::size_of::<C64>() as u128) << 11;

/// The dense-plane byte footprint of `dim` amplitudes — the dispatch-side
/// twin of [`crate::CircuitStats::state_bytes`].
pub(crate) fn state_bytes_for(dim: usize) -> u128 {
    dim as u128 * std::mem::size_of::<C64>() as u128
}

/// The dense-plane byte footprint of an `n`-qubit register, saturating
/// for register sizes beyond any allocatable plane. The single source
/// behind [`crate::CircuitStats::state_bytes`] and
/// [`crate::CapacityError::bytes`].
pub(crate) fn state_bytes_for_qubits(num_qubits: usize) -> u128 {
    (std::mem::size_of::<C64>() as u128)
        .checked_shl(num_qubits as u32)
        .unwrap_or(u128::MAX)
}

/// Smallest plan op count for which [`Parallelism::Auto`] goes threaded:
/// spawn cost is amortized over the whole circuit, so very short plans
/// stay serial. Measured on the compiled plan's *post-fusion* sweep count
/// (see [`crate::CircuitPlan::op_count`] and [`crate::Circuit::stats`]),
/// not the raw gate count.
pub(crate) const AUTO_MIN_OPS: usize = 8;

/// Smallest per-worker chunk [`Parallelism::Auto`] will create. Explicit
/// [`Parallelism::Threads`] requests may go lower (down to one pair per
/// worker), which the equivalence tests exploit to cover tiny states.
const AUTO_MIN_CHUNK: usize = 1 << 10;

/// Hard cap on engine workers: per-gate barriers and per-call spawns stop
/// paying for themselves beyond this, even on wide machines.
pub(crate) const MAX_WORKERS: usize = 8;

/// Rounds a worker request down to the largest power of two that keeps at
/// least one amplitude pair per worker, capped at [`MAX_WORKERS`].
/// Returns 1 (serial) when the request or the state is too small.
pub(crate) fn clamp_workers(dim: usize, requested: usize) -> usize {
    let cap = MAX_WORKERS.min(dim / 2).min(requested);
    if cap < 2 {
        1
    } else {
        // Largest power of two <= cap.
        1 << (usize::BITS - 1 - cap.leading_zeros())
    }
}

/// The worker count [`Parallelism::Auto`] selects for a state of `dim`
/// amplitudes and a compiled plan of `ops` full-state sweeps.
pub(crate) fn auto_workers(dim: usize, ops: usize) -> usize {
    if state_bytes_for(dim) < AUTO_MIN_STATE_BYTES || ops < AUTO_MIN_OPS {
        return 1;
    }
    clamp_workers(dim, parallel::num_threads().min(dim / AUTO_MIN_CHUNK))
}

/// New values of an amplitude pair under a single-qubit matrix. Shared by
/// the serial and threaded kernels so both paths perform the exact same
/// floating-point operations (bit-identical results).
#[inline]
pub(crate) fn pair_update(m: &[[C64; 2]; 2], a0: C64, a1: C64) -> (C64, C64) {
    (m[0][0] * a0 + m[0][1] * a1, m[1][0] * a0 + m[1][1] * a1)
}

/// Spreads `p` over the bit positions of an index, leaving a zero at
/// position `bit`: bits `0..bit` of `p` stay, bits `bit..` shift up one.
/// Enumerates all indices whose `bit` is clear as `p` runs over `0..len/2`.
/// Shared with the serial plan kernels in `state.rs`, so both paths
/// enumerate the exact same amplitude pairs.
#[inline]
pub(crate) fn insert_zero_bit(p: usize, bit: usize) -> usize {
    let low = p & ((1 << bit) - 1);
    ((p >> bit) << (bit + 1)) | low
}

/// [`insert_zero_bit`] at two positions `lo < hi`: enumerates all indices
/// with both bits clear as `p` runs over `0..len/4`.
#[inline]
pub(crate) fn insert_zero_bits(p: usize, lo: usize, hi: usize) -> usize {
    insert_zero_bit(insert_zero_bit(p, lo), hi)
}

/// Whether a plan op's amplitude *pairs* reach across a
/// `2^chunk_bits`-amplitude chunk — the boolean view of the shared
/// [`op_locality`] classifier (the sharded executor additionally splits
/// the crossing case into elementwise exchanges and plane swaps; for the
/// worker engine both partition the global pair space the same way).
fn crosses_chunks(op: &PlanOp, chunk_bits: usize) -> bool {
    op_locality(op, chunk_bits) != OpLocality::Local
}

/// The shared amplitude plane: `re`/`im` of amplitude `i` live at atomic
/// words `2i` and `2i+1` as `f64` bit patterns. Relaxed ordering suffices
/// because every gate's write set is disjoint across workers and the
/// inter-gate barrier provides the acquire/release edges.
struct SharedAmps<'a> {
    bits: &'a [AtomicU64],
}

impl SharedAmps<'_> {
    #[inline]
    fn load(&self, i: usize) -> C64 {
        C64::new(
            f64::from_bits(self.bits[2 * i].load(Ordering::Relaxed)),
            f64::from_bits(self.bits[2 * i + 1].load(Ordering::Relaxed)),
        )
    }

    #[inline]
    fn store(&self, i: usize, v: C64) {
        self.bits[2 * i].store(v.re.to_bits(), Ordering::Relaxed);
        self.bits[2 * i + 1].store(v.im.to_bits(), Ordering::Relaxed);
    }

    #[inline]
    fn swap(&self, i: usize, j: usize) {
        let (a, b) = (self.load(i), self.load(j));
        self.store(i, b);
        self.store(j, a);
    }

    #[inline]
    fn negate(&self, i: usize) {
        let a = self.load(i);
        self.store(i, -a);
    }
}

/// Executes a compiled plan's `ops` over `amps` with `workers` scoped
/// threads.
///
/// Caller guarantees: `workers` is a power of two, `2 <= workers <=
/// amps.len() / 2`, and every op qubit is in range for the state.
pub(crate) fn run_threaded(amps: &mut [C64], ops: &[PlanOp], workers: usize) {
    let dim = amps.len();
    debug_assert!(workers.is_power_of_two() && workers >= 2 && workers <= dim / 2);
    let chunk = dim / workers;
    let chunk_bits = chunk.trailing_zeros() as usize;

    let cross: Vec<bool> = ops
        .iter()
        .map(|op| crosses_chunks(op, chunk_bits))
        .collect();

    // Stage the amplitudes into the shared atomic plane.
    let plane: Vec<AtomicU64> = amps
        .iter()
        .flat_map(|a| {
            [
                AtomicU64::new(a.re.to_bits()),
                AtomicU64::new(a.im.to_bits()),
            ]
        })
        .collect();
    let shared = SharedAmps { bits: &plane };
    let barrier = parallel::SpinBarrier::new(workers);

    parallel::scope_workers(workers, |w| {
        let base = w * chunk;
        for (k, op) in ops.iter().enumerate() {
            // A barrier is needed whenever ownership hands over: entering,
            // leaving, or staying in cross-chunk partitioning. Runs of
            // chunk-local ops synchronize nothing.
            if k > 0 && (cross[k] || cross[k - 1]) {
                barrier.wait();
            }
            if cross[k] {
                apply_cross(&shared, op, dim, workers, w);
            } else {
                apply_local(&shared, op, base, chunk);
            }
        }
    });

    for (i, a) in amps.iter_mut().enumerate() {
        *a = shared.load(i);
    }
}

/// Applies a chunk-local op over this worker's own amplitudes
/// `[base, base + chunk)`. All pair indices stay inside the chunk; qubits
/// at or above the chunk boundary can only appear as control/phase
/// conditions, which select whole chunks via `base`.
fn apply_local(shared: &SharedAmps<'_>, op: &PlanOp, base: usize, chunk: usize) {
    let chunk_bits = chunk.trailing_zeros() as usize;
    match *op {
        PlanOp::OneQ { q, m } => {
            let mask = 1 << q;
            for p in 0..chunk / 2 {
                let i = base + insert_zero_bit(p, q);
                let (a0, a1) = (shared.load(i), shared.load(i | mask));
                let (b0, b1) = pair_update(&m, a0, a1);
                shared.store(i, b0);
                shared.store(i | mask, b1);
            }
        }
        PlanOp::Cx { control, target } => {
            let tmask = 1 << target;
            if control < chunk_bits {
                let cmask = 1 << control;
                let (lo, hi) = (control.min(target), control.max(target));
                for p in 0..chunk / 4 {
                    let i = (base + insert_zero_bits(p, lo, hi)) | cmask;
                    shared.swap(i, i | tmask);
                }
            } else if base & (1 << control) != 0 {
                // High control: this whole chunk is in the controlled
                // subspace; apply X on the target within it.
                for p in 0..chunk / 2 {
                    let i = base + insert_zero_bit(p, target);
                    shared.swap(i, i | tmask);
                }
            }
        }
        PlanOp::Cz { lo, hi } => {
            let (lomask, himask) = (1usize << lo, 1usize << hi);
            if hi < chunk_bits {
                for p in 0..chunk / 4 {
                    shared.negate((base + insert_zero_bits(p, lo, hi)) | lomask | himask);
                }
            } else if lo < chunk_bits {
                if base & himask != 0 {
                    for p in 0..chunk / 2 {
                        shared.negate((base + insert_zero_bit(p, lo)) | lomask);
                    }
                }
            } else if base & lomask != 0 && base & himask != 0 {
                for i in base..base + chunk {
                    shared.negate(i);
                }
            }
        }
        PlanOp::Swap { lo, hi } => {
            let (lomask, himask) = (1usize << lo, 1usize << hi);
            for p in 0..chunk / 4 {
                let i0 = base + insert_zero_bits(p, lo, hi);
                shared.swap(i0 | lomask, i0 | himask);
            }
        }
    }
}

/// Applies a cross-chunk op over this worker's share of the gate's global
/// pair space. The pair-index → amplitude-index expansion is injective, so
/// worker shares never touch the same amplitude.
fn apply_cross(shared: &SharedAmps<'_>, op: &PlanOp, dim: usize, workers: usize, w: usize) {
    match *op {
        PlanOp::OneQ { q, m } => {
            let mask = 1 << q;
            for p in parallel::worker_range(dim / 2, workers, w) {
                let i = insert_zero_bit(p, q);
                let (a0, a1) = (shared.load(i), shared.load(i | mask));
                let (b0, b1) = pair_update(&m, a0, a1);
                shared.store(i, b0);
                shared.store(i | mask, b1);
            }
        }
        PlanOp::Cx { control, target } => {
            let (cmask, tmask) = (1usize << control, 1usize << target);
            let (lo, hi) = (control.min(target), control.max(target));
            for p in parallel::worker_range(dim / 4, workers, w) {
                let i = insert_zero_bits(p, lo, hi) | cmask;
                shared.swap(i, i | tmask);
            }
        }
        // CZ is diagonal and therefore always chunk-local.
        PlanOp::Cz { .. } => unreachable!("CZ never crosses chunks"),
        PlanOp::Swap { lo, hi } => {
            let (lomask, himask) = (1usize << lo, 1usize << hi);
            for p in parallel::worker_range(dim / 4, workers, w) {
                let i0 = insert_zero_bits(p, lo, hi);
                shared.swap(i0 | lomask, i0 | himask);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::plan::CircuitPlan;
    use crate::state::Statevector;

    #[test]
    fn insert_zero_bit_enumerates_clear_bit_indices() {
        // All 8 indices of a 16-element space with bit 2 clear, in order.
        let got: Vec<usize> = (0..8).map(|p| insert_zero_bit(p, 2)).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 8, 9, 10, 11]);
        // Bit 0: the even indices.
        let got: Vec<usize> = (0..8).map(|p| insert_zero_bit(p, 0)).collect();
        assert_eq!(got, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn insert_zero_bits_clears_both_positions() {
        for p in 0..16 {
            let i = insert_zero_bits(p, 1, 3);
            assert_eq!(i & 0b1010, 0, "index {i:#b} has a set inserted bit");
        }
        // Injective over the pair space.
        let mut seen: Vec<usize> = (0..16).map(|p| insert_zero_bits(p, 1, 3)).collect();
        seen.dedup();
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn clamp_workers_rounds_down_to_power_of_two() {
        assert_eq!(clamp_workers(4096, 1), 1);
        assert_eq!(clamp_workers(4096, 2), 2);
        assert_eq!(clamp_workers(4096, 3), 2);
        assert_eq!(clamp_workers(4096, 6), 4);
        assert_eq!(clamp_workers(4096, 8), 8);
        assert_eq!(clamp_workers(4096, 100), 8, "hard cap");
        assert_eq!(clamp_workers(4, 8), 2, "at most one pair per worker");
        assert_eq!(clamp_workers(2, 8), 1, "too small to split");
    }

    #[test]
    fn auto_stays_serial_for_small_states_and_short_circuits() {
        assert_eq!(auto_workers(1 << 10, 100), 1, "state too small");
        assert_eq!(auto_workers(1 << 12, 3), 1, "circuit too short");
    }

    #[test]
    fn threaded_matches_serial_on_a_dense_circuit() {
        // Touches every kernel: rotations on low and high qubits, CX in
        // all control/target orientations, CZ and SWAP across the chunk
        // boundary. With 4 workers on 5 qubits the chunk is 8 amplitudes
        // (bits 0-2 local, 3-4 cross).
        let n = 5;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.ry(q, 0.3 + q as f64).rz(q, -0.7 * q as f64);
        }
        c.cx(0, 4).cx(4, 0).cx(1, 2).cz(0, 4).cz(1, 2).swap(0, 4);
        c.swap(1, 2).h(4).x(3).cx(3, 1);

        let plan = CircuitPlan::compile(&c);
        let mut serial = Statevector::zero(n);
        serial.apply_plan(&plan);
        for workers in [2usize, 4, 8] {
            let mut threaded = Statevector::zero(n);
            let w = clamp_workers(threaded.amplitudes().len(), workers);
            run_threaded(threaded.amplitudes_mut(), plan.ops(), w);
            assert_eq!(
                serial.amplitudes(),
                threaded.amplitudes(),
                "{workers} workers"
            );
        }
    }
}
