//! Multi-threaded circuit execution over the dense amplitude array.
//!
//! # Threading model
//!
//! Gate kernels are data-parallel: every gate updates disjoint amplitude
//! pairs that can be partitioned across threads. Spawning threads *per
//! gate* would cost more than an entire 12-qubit circuit, so the engine
//! parallelizes at **circuit scope**: [`run_threaded`] spawns `workers`
//! scoped threads once, walks all gates inside them in lockstep, and joins
//! at the end. Between gates that touch overlapping regions the workers
//! cross a [`parallel::SpinBarrier`]; gates confined to each worker's own
//! contiguous amplitude chunk need no synchronization at all (see below).
//!
//! Because the workspace denies `unsafe` code, workers cannot share
//! `&mut [C64]` slices whose partition changes per gate. Instead the
//! amplitudes are staged in a shared plane of [`AtomicU64`] bit patterns
//! (`re`/`im` interleaved): relaxed atomic loads and stores of `f64` bits
//! compile to plain moves on mainstream targets, every gate's write set is
//! disjoint across workers by construction, and the barrier provides the
//! acquire/release edges between gates.
//!
//! # Chunking strategy
//!
//! The amplitude array of length `2^n` is split into `workers` (a power of
//! two) contiguous chunks of `2^c` amplitudes, so chunk membership is given
//! by the top `n − c` bits of a basis index. A gate whose amplitude pairs
//! differ only in bits below `c` is **chunk-local**: each worker updates
//! its own chunk and, crucially, runs straight into the next local gate
//! with no barrier. Gates pairing amplitudes across a high bit are
//! **cross-chunk**: their pair space is partitioned evenly across workers
//! by [`parallel::worker_range`], with a barrier before and after.
//! Controlled gates are classified by where their *pairs* reach, not their
//! controls — a CX with a high control but low target only swaps within
//! chunks whose base index has the control bit set, so it stays local, and
//! a CZ is diagonal and always local.
//!
//! # Bit-identical results
//!
//! Serial and threaded execution produce bit-identical amplitudes: each
//! amplitude's new value is a pure elementwise function of its pair
//! (`pair_update`, shared with the serial kernels), no reductions are
//! reordered, and the partition only changes *which thread* computes a
//! value, never the arithmetic. The cross-path property test in
//! `tests/parallel_equiv.rs` asserts exact equality across qubit counts
//! 1–12 and thread counts 1–8.

use crate::complex::C64;
use crate::plan::{op_locality, OpLocality, PlanOp};
use std::sync::atomic::{AtomicU64, Ordering};

/// How [`Statevector::apply_circuit_with`](crate::Statevector::apply_circuit_with)
/// spreads gate kernels across threads.
///
/// The enum itself lives in [`parallel`] so the Bayesian-reconstruction
/// engine in `mitigation` shares the exact same dispatch seam; this
/// re-export keeps `qsim::Parallelism` working. The engine here rounds
/// [`Parallelism::Threads`] requests down to a power of two and caps them
/// so every worker owns at least one amplitude pair; a resulting count of
/// one falls back to serial.
///
/// # Examples
///
/// ```
/// use qsim::{Circuit, Parallelism, Statevector};
///
/// let mut c = Circuit::new(3);
/// c.h(0).cx(0, 1).cx(1, 2);
/// let mut serial = Statevector::zero(3);
/// serial.apply_circuit_with(&c, Parallelism::Serial);
/// let mut threaded = Statevector::zero(3);
/// threaded.apply_circuit_with(&c, Parallelism::Threads(4));
/// // Same amplitudes, bit for bit.
/// assert_eq!(serial.amplitudes(), threaded.amplitudes());
/// ```
pub use parallel::Parallelism;

/// Smallest amplitude-plane size for which [`Parallelism::Auto`] goes
/// threaded, expressed in bytes of the same estimate
/// [`crate::CircuitStats::state_bytes`] reports (16 bytes per amplitude:
/// below 2¹¹ amplitudes — 11 qubits — a whole circuit costs less than
/// spawning).
pub(crate) const AUTO_MIN_STATE_BYTES: u128 = (std::mem::size_of::<C64>() as u128) << 11;

/// The dense-plane byte footprint of `dim` amplitudes — the dispatch-side
/// twin of [`crate::CircuitStats::state_bytes`].
pub(crate) fn state_bytes_for(dim: usize) -> u128 {
    dim as u128 * std::mem::size_of::<C64>() as u128
}

/// The dense-plane byte footprint of an `n`-qubit register, saturating
/// for register sizes beyond any allocatable plane. The single source
/// behind [`crate::CircuitStats::state_bytes`] and
/// [`crate::CapacityError::bytes`].
pub(crate) fn state_bytes_for_qubits(num_qubits: usize) -> u128 {
    (std::mem::size_of::<C64>() as u128)
        .checked_shl(num_qubits as u32)
        .unwrap_or(u128::MAX)
}

/// Smallest plan op count for which [`Parallelism::Auto`] goes threaded:
/// spawn cost is amortized over the whole circuit, so very short plans
/// stay serial. Measured on the compiled plan's *post-fusion* sweep count
/// (see [`crate::CircuitPlan::op_count`] and [`crate::Circuit::stats`]),
/// not the raw gate count.
pub(crate) const AUTO_MIN_OPS: usize = 8;

/// Smallest per-worker chunk [`Parallelism::Auto`] will create. Explicit
/// [`Parallelism::Threads`] requests may go lower (down to one pair per
/// worker), which the equivalence tests exploit to cover tiny states.
const AUTO_MIN_CHUNK: usize = 1 << 10;

/// Hard cap on engine workers: per-gate barriers and per-call spawns stop
/// paying for themselves beyond this, even on wide machines.
pub(crate) const MAX_WORKERS: usize = 8;

/// Rounds a worker request down to the largest power of two that keeps at
/// least one amplitude pair per worker, capped at [`MAX_WORKERS`].
/// Returns 1 (serial) when the request or the state is too small.
pub(crate) fn clamp_workers(dim: usize, requested: usize) -> usize {
    let cap = MAX_WORKERS.min(dim / 2).min(requested);
    if cap < 2 {
        1
    } else {
        // Largest power of two <= cap.
        1 << (usize::BITS - 1 - cap.leading_zeros())
    }
}

/// The worker count [`Parallelism::Auto`] selects for a state of `dim`
/// amplitudes and a compiled plan of `ops` full-state sweeps.
pub(crate) fn auto_workers(dim: usize, ops: usize) -> usize {
    if state_bytes_for(dim) < AUTO_MIN_STATE_BYTES || ops < AUTO_MIN_OPS {
        return 1;
    }
    clamp_workers(dim, parallel::num_threads().min(dim / AUTO_MIN_CHUNK))
}

/// New values of an amplitude pair under a single-qubit matrix. Shared by
/// the serial and threaded kernels so both paths perform the exact same
/// floating-point operations (bit-identical results).
#[inline]
pub(crate) fn pair_update(m: &[[C64; 2]; 2], a0: C64, a1: C64) -> (C64, C64) {
    (m[0][0] * a0 + m[0][1] * a1, m[1][0] * a0 + m[1][1] * a1)
}

/// New values of a pair-basis amplitude quad under a 4×4 block matrix.
/// Shared by the serial, threaded, and sharded [`PlanOp::Block4`]
/// kernels so all three tiers perform the exact same floating-point
/// operations (bit-identical results).
///
/// The accumulation tree is the fixed pairing `(t0 + t3) + (t1 + t2)`,
/// not left-to-right. A shard-layout remap that flips a block's pair
/// order relabels the pair basis by the permutation `(0)(3)(1 2)`
/// (`linalg::swap_qubits4` conjugation — exact entry copies); that
/// relabeling fixes the `{0,3}` operand pair and swaps the `{1,2}`
/// one wholesale, and IEEE addition is commutative, so this pairing
/// makes remapped blocks bit-identical to the serial reference where
/// left-to-right accumulation would diverge by a rounding.
#[inline]
pub(crate) fn quad_update(m: &[[C64; 4]; 4], a: [C64; 4]) -> [C64; 4] {
    let mut out = [C64::ZERO; 4];
    for (o, row) in out.iter_mut().zip(m) {
        *o = (row[0] * a[0] + row[3] * a[3]) + (row[1] * a[1] + row[2] * a[2]);
    }
    out
}

/// New values of a pair-basis amplitude quad under a row-sparse block
/// matrix: row `r` reads only `a[cols[r][0]]` and `a[cols[r][1]]` (a row
/// with one nonzero pads the second slot with a zero coefficient). Eight
/// complex multiplies instead of sixteen — entangler blocks built from
/// CX/CZ sandwiches are mostly this sparse. Two-term sums are
/// commutative bitwise, so like [`quad_update`]'s pairing this rule is
/// exact under the pair-flip relabeling a shard-layout remap performs.
#[inline(always)]
pub(crate) fn sparse2_update(
    cols: &[[usize; 2]; 4],
    vals: &[[C64; 2]; 4],
    a: [C64; 4],
) -> [C64; 4] {
    let mut out = [C64::ZERO; 4];
    for ((o, c), v) in out.iter_mut().zip(cols).zip(vals) {
        *o = v[0] * a[c[0]] + v[1] * a[c[1]];
    }
    out
}

/// Per-pass classification of a bound [`PlanOp::Block4`] matrix by its
/// nonzero pattern, shared by the serial, threaded, and sharded kernels.
///
/// Entangler blocks frequently bind matrices that are at least half
/// zeros (a CX times a `R ⊗ I` rotation sandwich has two nonzeros per
/// row), so each execution pass scans the 16 entries once and picks the
/// cheapest update rule. The classification is a pure function of the
/// matrix values, so every tier derives the same kernel for the same op
/// — cross-tier results stay bit-identical — and rebinding needs no
/// bookkeeping: a rebound matrix is simply re-classified at its next
/// pass.
#[derive(Clone, Copy, Debug)]
pub(crate) enum QuadKernel {
    /// Full 16-multiply [`quad_update`].
    Dense([[C64; 4]; 4]),
    /// At most two nonzeros in every row: [`sparse2_update`].
    Sparse2 {
        cols: [[usize; 2]; 4],
        vals: [[C64; 2]; 4],
    },
}

impl QuadKernel {
    /// Scans the matrix and picks the cheapest update rule that computes
    /// it exactly.
    pub(crate) fn of(m: &[[C64; 4]; 4]) -> Self {
        let mut cols = [[0usize; 2]; 4];
        let mut vals = [[C64::ZERO; 2]; 4];
        for (r, row) in m.iter().enumerate() {
            let mut k = 0;
            for (c, &v) in row.iter().enumerate() {
                if v != C64::ZERO {
                    if k == 2 {
                        return QuadKernel::Dense(*m);
                    }
                    cols[r][k] = c;
                    vals[r][k] = v;
                    k += 1;
                }
            }
        }
        QuadKernel::Sparse2 { cols, vals }
    }

    /// Applies the classified rule to one pair-basis quad.
    #[inline(always)]
    pub(crate) fn apply(&self, a: [C64; 4]) -> [C64; 4] {
        match self {
            QuadKernel::Dense(m) => quad_update(m, a),
            QuadKernel::Sparse2 { cols, vals } => sparse2_update(cols, vals, a),
        }
    }
}

/// Calls `f` with the two contiguous stride-1 lanes of every qubit-`q`
/// amplitude block: `s0` holds the indices with bit `q` clear, `s1` the
/// elementwise partners with it set, both `2^q` long. The branch-free
/// slice form lets the single-qubit sweeps autovectorize over whole f64
/// lanes instead of chasing per-element bit arithmetic.
#[inline]
pub(crate) fn for_each_pair_lanes(
    amps: &mut [C64],
    q: usize,
    mut f: impl FnMut(&mut [C64], &mut [C64]),
) {
    let mask = 1usize << q;
    let dim = amps.len();
    let mut base = 0;
    while base < dim {
        let (s0, s1) = amps[base..base + (mask << 1)].split_at_mut(mask);
        f(s0, s1);
        base += mask << 1;
    }
}

/// Calls `f` with the four contiguous stride-1 lanes of every
/// `(lo, hi)`-pair block (`lo < hi`), each `2^lo` long, in pair-basis
/// order `s = 2·bit(hi) + bit(lo)`: `(s0, s1, s2, s3)` hold the indices
/// with (neither, `lo`, `hi`, both) set. The two-qubit sweeps walk these
/// lanes with no per-element bit spreading, so the inner loops are
/// branch-free and autovectorizable.
#[inline]
pub(crate) fn for_each_quad_lanes(
    amps: &mut [C64],
    lo: usize,
    hi: usize,
    mut f: impl FnMut(&mut [C64], &mut [C64], &mut [C64], &mut [C64]),
) {
    debug_assert!(lo < hi);
    let lolen = 1usize << lo;
    let himask = 1usize << hi;
    let dim = amps.len();
    let mut outer = 0;
    while outer < dim {
        let mut mid = outer;
        while mid < outer + himask {
            let block = &mut amps[mid..mid + himask + 2 * lolen];
            let (s0, rest) = block.split_at_mut(lolen);
            let (s1, rest) = rest.split_at_mut(lolen);
            let (s2, rest) = rest[himask - 2 * lolen..].split_at_mut(lolen);
            f(s0, s1, s2, &mut rest[..lolen]);
            mid += lolen << 1;
        }
        outer += himask << 1;
    }
}

/// Minimum pair-bit position (log2 lane length) for the contiguous-lane
/// sweeps to pay off: below it the stride-1 lanes shrink to a handful of
/// elements and per-lane call overhead beats the vectorization win, so
/// the serial kernels fall back to index-spread enumeration. Both forms
/// visit identical amplitude sets with identical arithmetic, so the
/// switch can never change results — only speed.
pub(crate) const LANE_MIN_BIT: usize = 3;

/// Single-qubit matrix sweep over a contiguous amplitude slice (a full
/// statevector or one shard with `q` local). Hybrid enumeration per
/// [`LANE_MIN_BIT`]; the arithmetic per pair is [`pair_update`] on both
/// paths, keeping every tier bit-identical.
pub(crate) fn apply_1q_local(amps: &mut [C64], q: usize, m: &[[C64; 2]; 2]) {
    let m = *m;
    if q >= LANE_MIN_BIT {
        for_each_pair_lanes(amps, q, |s0, s1| {
            for (a, b) in s0.iter_mut().zip(s1.iter_mut()) {
                let (b0, b1) = pair_update(&m, *a, *b);
                *a = b0;
                *b = b1;
            }
        });
    } else {
        let mask = 1usize << q;
        for p in 0..amps.len() / 2 {
            let i = insert_zero_bit(p, q);
            let (b0, b1) = pair_update(&m, amps[i], amps[i | mask]);
            amps[i] = b0;
            amps[i | mask] = b1;
        }
    }
}

/// X sweep on `q` (a CX whose control sits outside the slice and is
/// known set): swaps the two `q` lanes.
pub(crate) fn apply_x_local(amps: &mut [C64], q: usize) {
    if q >= LANE_MIN_BIT {
        for_each_pair_lanes(amps, q, |s0, s1| s0.swap_with_slice(s1));
    } else {
        let mask = 1usize << q;
        for p in 0..amps.len() / 2 {
            let i = insert_zero_bit(p, q);
            amps.swap(i, i | mask);
        }
    }
}

/// Z sweep on `q` (a CZ whose partner sits outside the slice and is
/// known set): negates the set-`q` lane.
pub(crate) fn negate_bit_set(amps: &mut [C64], q: usize) {
    if q >= LANE_MIN_BIT {
        for_each_pair_lanes(amps, q, |_s0, s1| {
            for a in s1.iter_mut() {
                *a = -*a;
            }
        });
    } else {
        let mask = 1usize << q;
        for p in 0..amps.len() / 2 {
            let i = insert_zero_bit(p, q) | mask;
            amps[i] = -amps[i];
        }
    }
}

/// CX sweep with both qubits inside the slice: in the sorted pair basis
/// the control-set lanes are `s1`/`s3` (control = low bit) or `s2`/`s3`
/// (control = high bit); X on the target swaps them.
pub(crate) fn apply_cx_local(amps: &mut [C64], control: usize, target: usize) {
    let (lo, hi) = (control.min(target), control.max(target));
    if lo >= LANE_MIN_BIT {
        if control < target {
            for_each_quad_lanes(amps, lo, hi, |_s0, s1, _s2, s3| s1.swap_with_slice(s3));
        } else {
            for_each_quad_lanes(amps, lo, hi, |_s0, _s1, s2, s3| s2.swap_with_slice(s3));
        }
    } else {
        let (cmask, tmask) = (1usize << control, 1usize << target);
        for p in 0..amps.len() / 4 {
            let i = insert_zero_bits(p, lo, hi) | cmask;
            amps.swap(i, i | tmask);
        }
    }
}

/// CZ sweep with both qubits inside the slice: negates the both-set lane.
pub(crate) fn apply_cz_local(amps: &mut [C64], lo: usize, hi: usize) {
    if lo >= LANE_MIN_BIT {
        for_each_quad_lanes(amps, lo, hi, |_s0, _s1, _s2, s3| {
            for a in s3.iter_mut() {
                *a = -*a;
            }
        });
    } else {
        let mask = (1usize << lo) | (1usize << hi);
        for p in 0..amps.len() / 4 {
            let i = insert_zero_bits(p, lo, hi) | mask;
            amps[i] = -amps[i];
        }
    }
}

/// SWAP sweep with both qubits inside the slice: exchanges the two
/// single-set lanes.
pub(crate) fn apply_swap_local(amps: &mut [C64], lo: usize, hi: usize) {
    if lo >= LANE_MIN_BIT {
        for_each_quad_lanes(amps, lo, hi, |_s0, s1, s2, _s3| s1.swap_with_slice(s2));
    } else {
        let (lomask, himask) = (1usize << lo, 1usize << hi);
        for p in 0..amps.len() / 4 {
            let i0 = insert_zero_bits(p, lo, hi);
            amps.swap(i0 | lomask, i0 | himask);
        }
    }
}

/// Entangler-block sweep (4×4 matrix over pair `(lo, hi)`) with both
/// qubits inside the slice. The matrix is classified once per pass
/// ([`QuadKernel`]) and the sweep is monomorphized over the resulting
/// update rule, so the hot loop carries no per-quad dispatch.
pub(crate) fn apply_block4_local(amps: &mut [C64], lo: usize, hi: usize, m: &[[C64; 4]; 4]) {
    match QuadKernel::of(m) {
        QuadKernel::Dense(m) => block4_sweep(amps, lo, hi, |a| quad_update(&m, a)),
        QuadKernel::Sparse2 { cols, vals } => {
            block4_sweep(amps, lo, hi, |a| sparse2_update(&cols, &vals, a))
        }
    }
}

/// Hybrid quad enumeration behind [`apply_block4_local`]: contiguous
/// pair-basis lanes at `lo >= LANE_MIN_BIT`, streamed `hi`-half
/// sub-blocks below. Both paths feed identical quads to `update` in
/// identical order.
fn block4_sweep(
    amps: &mut [C64],
    lo: usize,
    hi: usize,
    mut update: impl FnMut([C64; 4]) -> [C64; 4],
) {
    if lo >= LANE_MIN_BIT {
        for_each_quad_lanes(amps, lo, hi, |s0, s1, s2, s3| {
            for (((a0, a1), a2), a3) in s0
                .iter_mut()
                .zip(s1.iter_mut())
                .zip(s2.iter_mut())
                .zip(s3.iter_mut())
            {
                let out = update([*a0, *a1, *a2, *a3]);
                *a0 = out[0];
                *a1 = out[1];
                *a2 = out[2];
                *a3 = out[3];
            }
        });
    } else {
        // Low pair bit too small for worthwhile `lo` lanes: pair the two
        // contiguous `hi` halves instead and stream aligned 2^(lo+1)
        // sub-blocks through them, so every load sits next to the last.
        let lomask = 1usize << lo;
        for_each_pair_lanes(amps, hi, |sa, sb| {
            for (ca, cb) in sa
                .chunks_exact_mut(lomask << 1)
                .zip(sb.chunks_exact_mut(lomask << 1))
            {
                for i0 in 0..lomask {
                    let out = update([ca[i0], ca[i0 | lomask], cb[i0], cb[i0 | lomask]]);
                    ca[i0] = out[0];
                    ca[i0 | lomask] = out[1];
                    cb[i0] = out[2];
                    cb[i0 | lomask] = out[3];
                }
            }
        });
    }
}

/// Spreads `p` over the bit positions of an index, leaving a zero at
/// position `bit`: bits `0..bit` of `p` stay, bits `bit..` shift up one.
/// Enumerates all indices whose `bit` is clear as `p` runs over `0..len/2`.
/// Shared with the serial plan kernels in `state.rs`, so both paths
/// enumerate the exact same amplitude pairs.
#[inline]
pub(crate) fn insert_zero_bit(p: usize, bit: usize) -> usize {
    let low = p & ((1 << bit) - 1);
    ((p >> bit) << (bit + 1)) | low
}

/// [`insert_zero_bit`] at two positions `lo < hi`: enumerates all indices
/// with both bits clear as `p` runs over `0..len/4`.
#[inline]
pub(crate) fn insert_zero_bits(p: usize, lo: usize, hi: usize) -> usize {
    insert_zero_bit(insert_zero_bit(p, lo), hi)
}

/// Whether a plan op's amplitude *pairs* reach across a
/// `2^chunk_bits`-amplitude chunk — the boolean view of the shared
/// [`op_locality`] classifier (the sharded executor additionally splits
/// the crossing case into elementwise exchanges and plane swaps; for the
/// worker engine both partition the global pair space the same way).
fn crosses_chunks(op: &PlanOp, chunk_bits: usize) -> bool {
    op_locality(op, chunk_bits) != OpLocality::Local
}

/// The shared amplitude plane: `re`/`im` of amplitude `i` live at atomic
/// words `2i` and `2i+1` as `f64` bit patterns. Relaxed ordering suffices
/// because every gate's write set is disjoint across workers and the
/// inter-gate barrier provides the acquire/release edges.
struct SharedAmps<'a> {
    bits: &'a [AtomicU64],
}

impl SharedAmps<'_> {
    #[inline]
    fn load(&self, i: usize) -> C64 {
        C64::new(
            f64::from_bits(self.bits[2 * i].load(Ordering::Relaxed)),
            f64::from_bits(self.bits[2 * i + 1].load(Ordering::Relaxed)),
        )
    }

    #[inline]
    fn store(&self, i: usize, v: C64) {
        self.bits[2 * i].store(v.re.to_bits(), Ordering::Relaxed);
        self.bits[2 * i + 1].store(v.im.to_bits(), Ordering::Relaxed);
    }

    #[inline]
    fn swap(&self, i: usize, j: usize) {
        let (a, b) = (self.load(i), self.load(j));
        self.store(i, b);
        self.store(j, a);
    }

    #[inline]
    fn negate(&self, i: usize) {
        let a = self.load(i);
        self.store(i, -a);
    }
}

/// Executes a compiled plan's `ops` over `amps` with `workers` scoped
/// threads.
///
/// Caller guarantees: `workers` is a power of two, `2 <= workers <=
/// amps.len() / 2`, and every op qubit is in range for the state.
pub(crate) fn run_threaded(amps: &mut [C64], ops: &[PlanOp], workers: usize) {
    let dim = amps.len();
    debug_assert!(workers.is_power_of_two() && workers >= 2 && workers <= dim / 2);
    let chunk = dim / workers;
    let chunk_bits = chunk.trailing_zeros() as usize;

    let cross: Vec<bool> = ops
        .iter()
        .map(|op| crosses_chunks(op, chunk_bits))
        .collect();

    // Stage the amplitudes into the shared atomic plane.
    let plane: Vec<AtomicU64> = amps
        .iter()
        .flat_map(|a| {
            [
                AtomicU64::new(a.re.to_bits()),
                AtomicU64::new(a.im.to_bits()),
            ]
        })
        .collect();
    let shared = SharedAmps { bits: &plane };
    let barrier = parallel::SpinBarrier::new(workers);

    parallel::scope_workers(workers, |w| {
        let base = w * chunk;
        for (k, op) in ops.iter().enumerate() {
            // A barrier is needed whenever ownership hands over: entering,
            // leaving, or staying in cross-chunk partitioning. Runs of
            // chunk-local ops synchronize nothing.
            if k > 0 && (cross[k] || cross[k - 1]) {
                barrier.wait();
            }
            if cross[k] {
                apply_cross(&shared, op, dim, workers, w);
            } else {
                apply_local(&shared, op, base, chunk);
            }
        }
    });

    for (i, a) in amps.iter_mut().enumerate() {
        *a = shared.load(i);
    }
}

/// Applies a chunk-local op over this worker's own amplitudes
/// `[base, base + chunk)`. All pair indices stay inside the chunk; qubits
/// at or above the chunk boundary can only appear as control/phase
/// conditions, which select whole chunks via `base`.
fn apply_local(shared: &SharedAmps<'_>, op: &PlanOp, base: usize, chunk: usize) {
    let chunk_bits = chunk.trailing_zeros() as usize;
    match *op {
        PlanOp::OneQ { q, m } => {
            let mask = 1 << q;
            for p in 0..chunk / 2 {
                let i = base + insert_zero_bit(p, q);
                let (a0, a1) = (shared.load(i), shared.load(i | mask));
                let (b0, b1) = pair_update(&m, a0, a1);
                shared.store(i, b0);
                shared.store(i | mask, b1);
            }
        }
        PlanOp::Cx { control, target } => {
            let tmask = 1 << target;
            if control < chunk_bits {
                let cmask = 1 << control;
                let (lo, hi) = (control.min(target), control.max(target));
                for p in 0..chunk / 4 {
                    let i = (base + insert_zero_bits(p, lo, hi)) | cmask;
                    shared.swap(i, i | tmask);
                }
            } else if base & (1 << control) != 0 {
                // High control: this whole chunk is in the controlled
                // subspace; apply X on the target within it.
                for p in 0..chunk / 2 {
                    let i = base + insert_zero_bit(p, target);
                    shared.swap(i, i | tmask);
                }
            }
        }
        PlanOp::Cz { lo, hi } => {
            let (lomask, himask) = (1usize << lo, 1usize << hi);
            if hi < chunk_bits {
                for p in 0..chunk / 4 {
                    shared.negate((base + insert_zero_bits(p, lo, hi)) | lomask | himask);
                }
            } else if lo < chunk_bits {
                if base & himask != 0 {
                    for p in 0..chunk / 2 {
                        shared.negate((base + insert_zero_bit(p, lo)) | lomask);
                    }
                }
            } else if base & lomask != 0 && base & himask != 0 {
                for i in base..base + chunk {
                    shared.negate(i);
                }
            }
        }
        PlanOp::Swap { lo, hi } => {
            let (lomask, himask) = (1usize << lo, 1usize << hi);
            for p in 0..chunk / 4 {
                let i0 = base + insert_zero_bits(p, lo, hi);
                shared.swap(i0 | lomask, i0 | himask);
            }
        }
        PlanOp::Block4 { lo, hi, ref m } => {
            let k = QuadKernel::of(m);
            let (lomask, himask) = (1usize << lo, 1usize << hi);
            for p in 0..chunk / 4 {
                let i0 = base + insert_zero_bits(p, lo, hi);
                block4_update(shared, &k, i0, lomask, himask);
            }
        }
    }
}

/// Loads one pair-basis quad from the shared plane, applies the
/// classified block kernel, and stores it back.
#[inline]
fn block4_update(shared: &SharedAmps<'_>, k: &QuadKernel, i0: usize, lomask: usize, himask: usize) {
    let a = [
        shared.load(i0),
        shared.load(i0 | lomask),
        shared.load(i0 | himask),
        shared.load(i0 | lomask | himask),
    ];
    let b = k.apply(a);
    shared.store(i0, b[0]);
    shared.store(i0 | lomask, b[1]);
    shared.store(i0 | himask, b[2]);
    shared.store(i0 | lomask | himask, b[3]);
}

/// Applies a cross-chunk op over this worker's share of the gate's global
/// pair space. The pair-index → amplitude-index expansion is injective, so
/// worker shares never touch the same amplitude.
fn apply_cross(shared: &SharedAmps<'_>, op: &PlanOp, dim: usize, workers: usize, w: usize) {
    match *op {
        PlanOp::OneQ { q, m } => {
            let mask = 1 << q;
            for p in parallel::worker_range(dim / 2, workers, w) {
                let i = insert_zero_bit(p, q);
                let (a0, a1) = (shared.load(i), shared.load(i | mask));
                let (b0, b1) = pair_update(&m, a0, a1);
                shared.store(i, b0);
                shared.store(i | mask, b1);
            }
        }
        PlanOp::Cx { control, target } => {
            let (cmask, tmask) = (1usize << control, 1usize << target);
            let (lo, hi) = (control.min(target), control.max(target));
            for p in parallel::worker_range(dim / 4, workers, w) {
                let i = insert_zero_bits(p, lo, hi) | cmask;
                shared.swap(i, i | tmask);
            }
        }
        // CZ is diagonal and therefore always chunk-local.
        PlanOp::Cz { .. } => unreachable!("CZ never crosses chunks"),
        PlanOp::Swap { lo, hi } => {
            let (lomask, himask) = (1usize << lo, 1usize << hi);
            for p in parallel::worker_range(dim / 4, workers, w) {
                let i0 = insert_zero_bits(p, lo, hi);
                shared.swap(i0 | lomask, i0 | himask);
            }
        }
        PlanOp::Block4 { lo, hi, ref m } => {
            let k = QuadKernel::of(m);
            let (lomask, himask) = (1usize << lo, 1usize << hi);
            for p in parallel::worker_range(dim / 4, workers, w) {
                let i0 = insert_zero_bits(p, lo, hi);
                block4_update(shared, &k, i0, lomask, himask);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::plan::CircuitPlan;
    use crate::state::Statevector;

    #[test]
    fn insert_zero_bit_enumerates_clear_bit_indices() {
        // All 8 indices of a 16-element space with bit 2 clear, in order.
        let got: Vec<usize> = (0..8).map(|p| insert_zero_bit(p, 2)).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 8, 9, 10, 11]);
        // Bit 0: the even indices.
        let got: Vec<usize> = (0..8).map(|p| insert_zero_bit(p, 0)).collect();
        assert_eq!(got, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn insert_zero_bits_clears_both_positions() {
        for p in 0..16 {
            let i = insert_zero_bits(p, 1, 3);
            assert_eq!(i & 0b1010, 0, "index {i:#b} has a set inserted bit");
        }
        // Injective over the pair space.
        let mut seen: Vec<usize> = (0..16).map(|p| insert_zero_bits(p, 1, 3)).collect();
        seen.dedup();
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn clamp_workers_rounds_down_to_power_of_two() {
        assert_eq!(clamp_workers(4096, 1), 1);
        assert_eq!(clamp_workers(4096, 2), 2);
        assert_eq!(clamp_workers(4096, 3), 2);
        assert_eq!(clamp_workers(4096, 6), 4);
        assert_eq!(clamp_workers(4096, 8), 8);
        assert_eq!(clamp_workers(4096, 100), 8, "hard cap");
        assert_eq!(clamp_workers(4, 8), 2, "at most one pair per worker");
        assert_eq!(clamp_workers(2, 8), 1, "too small to split");
    }

    #[test]
    fn auto_stays_serial_for_small_states_and_short_circuits() {
        assert_eq!(auto_workers(1 << 10, 100), 1, "state too small");
        assert_eq!(auto_workers(1 << 12, 3), 1, "circuit too short");
    }

    #[test]
    fn threaded_matches_serial_on_a_dense_circuit() {
        // Touches every kernel: rotations on low and high qubits, CX in
        // all control/target orientations, CZ and SWAP across the chunk
        // boundary. With 4 workers on 5 qubits the chunk is 8 amplitudes
        // (bits 0-2 local, 3-4 cross).
        let n = 5;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.ry(q, 0.3 + q as f64).rz(q, -0.7 * q as f64);
        }
        c.cx(0, 4).cx(4, 0).cx(1, 2).cz(0, 4).cz(1, 2).swap(0, 4);
        c.swap(1, 2).h(4).x(3).cx(3, 1);

        let plan = CircuitPlan::compile(&c);
        let mut serial = Statevector::zero(n);
        serial.apply_plan(&plan);
        for workers in [2usize, 4, 8] {
            let mut threaded = Statevector::zero(n);
            let w = clamp_workers(threaded.amplitudes().len(), workers);
            run_threaded(threaded.amplitudes_mut(), plan.ops(), w);
            assert_eq!(
                serial.amplitudes(),
                threaded.amplitudes(),
                "{workers} workers"
            );
        }
    }
}
