//! Dense state-vector quantum circuit simulator.
//!
//! This crate is the execution substrate of the VarSaw reproduction: it
//! stands in for the Qiskit Aer simulator the paper runs its noisy VQE
//! experiments on. It provides:
//!
//! - [`C64`]: minimal complex arithmetic,
//! - [`Gate`] / [`Circuit`]: the gate set and circuit IR used by the
//!   hardware-efficient ansatz and measurement-basis changes,
//! - [`Statevector`]: dense simulation with exact outcome probabilities and
//!   marginals,
//! - [`CircuitPlan`] / [`PlanCache`]: the circuit compiler — adjacent
//!   single-qubit gates fuse into one matrix sweep (diagonal runs fold
//!   through entanglers), same-pair entangler groups and their rotation
//!   sandwiches collapse into single 4×4 block sweeps, and the
//!   parameter-free analysis is cached by circuit structure so repeated
//!   ansatz executions only rebind angles (see [`plan`]),
//! - [`Parallelism`]: serial vs multi-threaded circuit execution — large
//!   states run the gate kernels on scoped threads (bit-identical to the
//!   serial path, which consumes the same compiled plan; worker count
//!   controlled by the `VARSAW_NUM_THREADS` environment variable via
//!   [`parallel::num_threads`]),
//! - [`ShardedState`] / [`Sharding`]: sharded amplitude-plane execution —
//!   the plane splits into contiguous shards keyed by the top qubit bits,
//!   local ops run shard-parallel with no communication, global-qubit ops
//!   go through explicit pairwise shard exchanges or O(1) plane swaps,
//!   and a plan-analysis pass ([`plan::ShardPlan`]) remaps hot qubits
//!   local first (bit-identical to the dense paths; see [`shard`]),
//! - [`transport`]: the rank-transport seam under sharded execution —
//!   one [`transport::ShardTransport`] trait, two backends
//!   (zero-copy in-process [`transport::LocalSwap`], message-passing
//!   [`transport::ChannelRanks`] rank threads), typed
//!   [`TransportError`] failures, and per-backend movement counters
//!   ([`TransportCounters`], via `ShardedState::shard_stats`),
//! - [`sample_counts`] / [`sample_counts_many`]: seeded shot sampling,
//!   serial and batched-parallel,
//! - [`lowest_eigenvalue`]: matrix-free Lanczos for exact reference
//!   energies.
//!
//! # Example
//!
//! Simulate a Bell pair and sample measurement shots:
//!
//! ```
//! use qsim::{Circuit, Statevector};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1);
//! let mut psi = Statevector::zero(2);
//! psi.apply_circuit(&c);
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let counts = qsim::sample_counts(&psi.probabilities(), 1000, &mut rng);
//! assert_eq!(counts[0b01] + counts[0b10], 0); // only 00 and 11 occur
//! ```

mod circuit;
mod complex;
mod exec;
mod gate;
mod linalg;
pub mod plan;
mod qasm;
mod sampler;
pub mod shard;
mod state;
pub mod transport;

pub use circuit::{Circuit, CircuitStats};
pub use complex::C64;
pub use exec::Parallelism;
pub use gate::Gate;
pub use linalg::{lowest_eigenvalue, smallest_tridiagonal_eigenvalue, HermitianOp, LanczosResult};
pub use plan::{CircuitPlan, PlanCache, ShardPlan, SharedPlanCache};
pub use qasm::to_qasm;
pub use sampler::{sample_counts, sample_counts_many, sample_index};
pub use shard::{ShardedState, Sharding};
pub use state::{CapacityError, Statevector};
pub use transport::{
    FaultInjection, FaultSchedule, TransportCounters, TransportError, TransportMode,
};
