//! The rank-transport seam under sharded execution.
//!
//! # Why a seam
//!
//! [`crate::shard::ShardedState`]'s decomposition maps one-to-one onto a
//! distributed backend — shards become ranks, pairwise exchanges become
//! messages, plane swaps become rank relabeling — but the original sweep
//! loop hard-wired the data movement into `qsim::shard`, so the executor
//! could never leave one address space. This module is the seam: the
//! planning layer ([`crate::plan::ShardPlan`]) stays untouched, the
//! orchestration layer (`qsim::shard`) expresses every cross-shard
//! movement as a call on the [`ShardTransport`] trait, and this module
//! owns the backends:
//!
//! - [`LocalSwap`] — today's in-process path: shared-memory pairwise
//!   walks for exchanges (sub-split across worker threads) and O(1)
//!   shard-handle swaps for plane swaps. Zero-copy, zero messages, the
//!   default.
//! - [`ChannelRanks`] — the dress rehearsal for sockets: every shard is
//!   owned by a **rank thread**, exchanges serialize amplitudes into
//!   `u64` bit-word messages over bounded channels, and plane swaps are
//!   rank-relabeling control messages. No two ranks share amplitude
//!   memory; all movement is explicit and counted.
//!
//! # Bit-identical across backends
//!
//! Both backends funnel every amplitude update through the same shared
//! kernels ([`LocalOps`], [`ExchangeKernel`], [`QuadBlockKernel`] — thin
//! wrappers over the `exec` kernels the serial and threaded planes use),
//! and the wire encoding is exact IEEE-754 bit transport
//! (`f64::to_bits`/`from_bits`), so results agree with the serial
//! reference **bit for bit** regardless of transport, shard count, or
//! thread count. Property-tested across the full grid in
//! `tests/shard_equiv.rs` and `tests/transport.rs`.
//!
//! # Error semantics
//!
//! Transport methods return typed [`TransportError`] values — a rank
//! that hung up surfaces [`TransportError::Disconnected`], a stalled
//! collective [`TransportError::Timeout`] — and **never** panic or
//! deadlock on peer failure: every blocking receive carries a deadline,
//! and a failed step flips a shared abort flag so in-flight ranks bail
//! out promptly instead of waiting for data that will never come. After
//! a failure the session is poisoned ([`TransportError::Poisoned`]) and
//! the rank threads are joined on drop — no leaks.
//!
//! # Counters
//!
//! Every backend tallies its movement in [`TransportCounters`]
//! (exchanges, plane swaps, sub-splits, messages, bytes moved), surfaced
//! through `ShardedState::shard_stats` so benches and experiments can
//! report movement volume per backend honestly.

use crate::complex::C64;
use crate::exec::{self, QuadKernel};
use crate::plan::PlanOp;
use crate::state::words;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a rank waits for an amplitude payload before reporting a
/// stalled collective. Generous next to any real exchange (shards are at
/// most a few MiB) but bounded, so a dead peer can never deadlock a step.
const DATA_TIMEOUT: Duration = Duration::from_secs(5);

/// How long the coordinator waits for per-step acknowledgements; must
/// exceed [`DATA_TIMEOUT`] so a rank's own timeout report wins the race.
const ACK_TIMEOUT: Duration = Duration::from_secs(10);

/// Poll granularity for abortable waits: a failed step flips the shared
/// abort flag and every in-flight rank notices within one poll.
const POLL: Duration = Duration::from_millis(5);

/// Bounded per-rank channel capacity. Commands are lockstep (at most one
/// outstanding plus a teardown `Exit`), and a quad leader receives at
/// most three payloads per step, so four slots keep every send
/// non-blocking in a healthy session and bounded in a failing one.
const CHANNEL_CAPACITY: usize = 4;

/// A shard-transport failure, always surfaced as a value — transports
/// never panic or deadlock on peer failure (see the [module docs](self)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// A rank endpoint hung up: its thread exited (or was never alive)
    /// and its channel is closed. `rank` is the peer being addressed,
    /// `step` the operation that noticed.
    Disconnected {
        /// The rank that is gone.
        rank: usize,
        /// The transport step that observed the hang-up.
        step: &'static str,
    },
    /// A collective step missed its deadline: a peer stalled or vanished
    /// mid-collective without closing its channel.
    Timeout {
        /// The transport step that timed out.
        step: &'static str,
    },
    /// The transport session already failed (or its state was already
    /// gathered); no further steps are possible.
    Poisoned,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected { rank, step } => {
                write!(f, "shard transport: rank {rank} disconnected during {step}")
            }
            TransportError::Timeout { step } => {
                write!(f, "shard transport: {step} timed out")
            }
            TransportError::Poisoned => {
                write!(f, "shard transport: session poisoned by an earlier failure")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Movement tallies a transport backend accumulates per session and
/// `ShardedState` accumulates across plans (see `shard_stats`).
///
/// `messages`/`bytes_moved` count explicit rank-addressed traffic, so
/// they are zero for [`LocalSwap`] (shared memory moves no messages) and
/// the honest wire volume for [`ChannelRanks`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportCounters {
    /// Batched local-op runs executed (one per `ShardStep::Local`).
    pub local_runs: u64,
    /// Pairwise exchange steps executed.
    pub exchanges: u64,
    /// Quad (both pair bits global) exchange steps executed.
    pub quad_exchanges: u64,
    /// Plane-swap steps executed (handle swaps or relabel rounds).
    pub plane_swaps: u64,
    /// Extra sub-slices created to spread exchanges across workers
    /// (zero when every pair ran as one slice).
    pub sub_splits: u64,
    /// Rank-addressed messages sent: commands, amplitude payloads, and
    /// replies. Zero for shared-memory transports.
    pub messages: u64,
    /// Amplitude-payload bytes serialized onto the wire. Zero for
    /// shared-memory transports.
    pub bytes_moved: u64,
}

impl TransportCounters {
    /// Field-wise accumulation (`ShardedState` merges one session's
    /// counters per applied plan).
    pub fn merge(&mut self, other: &TransportCounters) {
        self.local_runs += other.local_runs;
        self.exchanges += other.exchanges;
        self.quad_exchanges += other.quad_exchanges;
        self.plane_swaps += other.plane_swaps;
        self.sub_splits += other.sub_splits;
        self.messages += other.messages;
        self.bytes_moved += other.bytes_moved;
    }
}

/// Which transport backend a sharded state moves amplitudes with.
///
/// The process default comes from the `VARSAW_SHARD_TRANSPORT`
/// environment variable (validated by [`parallel::config`]; unknown
/// names warn and fall back to [`TransportMode::Local`]). The choice
/// never affects results — both backends are bit-identical to the
/// serial reference — only where amplitudes live and how they move.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportMode {
    /// [`LocalSwap`]: in-process handle swaps and shared-memory pairwise
    /// walks. Zero-copy.
    #[default]
    Local,
    /// [`ChannelRanks`]: one rank thread per shard, amplitude-word
    /// messages over bounded channels.
    Channel,
}

impl TransportMode {
    /// The process-wide default: the validated `VARSAW_SHARD_TRANSPORT`
    /// value, or [`TransportMode::Local`] when unset.
    pub fn from_env() -> Self {
        match parallel::shard_transport() {
            Some(parallel::config::ShardTransport::Channel) => TransportMode::Channel,
            Some(parallel::config::ShardTransport::Local) | None => TransportMode::Local,
        }
    }

    /// The backend name as it appears in env values and bench rows.
    pub fn name(self) -> &'static str {
        match self {
            TransportMode::Local => "local",
            TransportMode::Channel => "channel",
        }
    }

    /// Opens a transport session owning `shards` (moved in; recovered by
    /// [`ShardTransport::finish`]).
    pub(crate) fn connect(
        self,
        shards: Vec<Vec<C64>>,
        local_bits: usize,
        fault: &FaultInjection,
    ) -> Result<Box<dyn ShardTransport>, TransportError> {
        match self {
            TransportMode::Local => Ok(Box::new(LocalSwap::with_fault(shards, local_bits, fault))),
            TransportMode::Channel => {
                Ok(Box::new(ChannelRanks::connect(shards, local_bits, fault)?))
            }
        }
    }
}

/// Chaos-testing hooks for transport sessions, settable through
/// `ShardedState::with_fault` (or drawn per session from a
/// [`FaultSchedule`]). The default injects nothing.
///
/// On [`ChannelRanks`] both hooks prove the hard claims — corruption is
/// caught by the equivalence oracle (the cross-backend proptests are
/// non-vacuous) and a dead rank surfaces a typed error, not a deadlock.
/// [`LocalSwap`] owns no ranks but honors [`FaultInjection::kill_rank`]
/// all the same (a movement step touching the killed shard index fails
/// typed), so supervisors can rehearse recovery on either backend; it
/// moves no wire words, so `corrupt_word` has nothing to corrupt there.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultInjection {
    corrupt_word: Option<u64>,
    kill_rank: Option<usize>,
}

impl FaultInjection {
    /// No injected faults (the default).
    pub fn none() -> Self {
        FaultInjection::default()
    }

    /// Corrupts the `nth` amplitude word serialized onto the wire
    /// (counted across the whole session) by flipping its exponent bits
    /// — zero becomes one, any other value changes by at least a factor
    /// of two, so the corruption is always visible to the oracle.
    pub fn corrupt_word(nth: u64) -> Self {
        FaultInjection {
            corrupt_word: Some(nth),
            ..Default::default()
        }
    }

    /// Kills rank `rank` at session start: its thread exits immediately,
    /// so the first step that addresses it fails with a typed
    /// [`TransportError`].
    pub fn kill_rank(rank: usize) -> Self {
        FaultInjection {
            kill_rank: Some(rank),
            ..Default::default()
        }
    }

    /// Whether this injection does anything at all.
    pub fn is_none(&self) -> bool {
        self.corrupt_word.is_none() && self.kill_rank.is_none()
    }
}

/// A seed-deterministic schedule of transport faults: which fault kind
/// hits which rank in which session, driven by a SplitMix64 stream, so
/// chaos runs are exactly reproducible.
///
/// A schedule is a pure function: [`FaultSchedule::injection`] maps
/// `(schedule seed, stream, session index, rank count)` to one
/// [`FaultInjection`] with no hidden state, so two runs with the same
/// coordinates draw identical faults — and a supervisor retrying a
/// failed job can vary the `stream` coordinate (e.g. mix in the attempt
/// number) to give each attempt an independent draw without perturbing
/// any other job's schedule.
///
/// Rates are per-mille probabilities per session. Kill faults take
/// priority over corruption when both fire; a session whose draws all
/// miss gets [`FaultInjection::none`].
///
/// # Examples
///
/// ```
/// use qsim::FaultSchedule;
///
/// let schedule = FaultSchedule::new(42, 500, 0); // kill ~half the sessions
/// // Pure: the same coordinates always draw the same fault.
/// assert_eq!(schedule.injection(7, 0, 4), schedule.injection(7, 0, 4));
/// // Different sessions draw independently.
/// let hits = (0..100)
///     .filter(|&s| !schedule.injection(7, s, 4).is_none())
///     .count();
/// assert!(hits > 20 && hits < 80, "~50% of sessions draw a kill: {hits}");
/// assert!(FaultSchedule::none().injection(7, 0, 4).is_none());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    seed: u64,
    kill_per_mille: u16,
    corrupt_per_mille: u16,
}

impl FaultSchedule {
    /// An empty schedule: every session draws [`FaultInjection::none`].
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// A schedule drawing rank kills with probability `kill_per_mille`/1000
    /// and wire-word corruption with probability `corrupt_per_mille`/1000
    /// per session, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if either rate exceeds 1000.
    pub fn new(seed: u64, kill_per_mille: u16, corrupt_per_mille: u16) -> Self {
        assert!(kill_per_mille <= 1000, "kill rate is per mille");
        assert!(corrupt_per_mille <= 1000, "corrupt rate is per mille");
        FaultSchedule {
            seed,
            kill_per_mille,
            corrupt_per_mille,
        }
    }

    /// Whether this schedule can ever inject a fault.
    pub fn is_none(&self) -> bool {
        self.kill_per_mille == 0 && self.corrupt_per_mille == 0
    }

    /// Draws the fault for session `session` of stream `stream` over
    /// `nranks` ranks — a pure function of the four coordinates.
    pub fn injection(&self, stream: u64, session: u64, nranks: usize) -> FaultInjection {
        if self.is_none() || nranks == 0 {
            return FaultInjection::none();
        }
        // One SplitMix64 walk per (seed, stream, session) coordinate;
        // successive outputs decide kind, target rank, and target word.
        let mut x = splitmix64(
            self.seed
                ^ splitmix64(stream).wrapping_add(splitmix64(session ^ 0x9E37_79B9_7F4A_7C15)),
        );
        let mut next = || {
            x = splitmix64(x);
            x
        };
        if next() % 1000 < u64::from(self.kill_per_mille) {
            return FaultInjection::kill_rank((next() % nranks as u64) as usize);
        }
        if next() % 1000 < u64::from(self.corrupt_per_mille) {
            return FaultInjection::corrupt_word(next() % 256);
        }
        FaultInjection::none()
    }
}

/// SplitMix64's output mix: a cheap, high-quality finalizer (the same
/// family `sched::job_seed` uses), so fault draws decorrelate even for
/// adjacent stream/session coordinates.
fn splitmix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A batched run of shard-local plan ops, cheaply cloneable so a
/// channel backend can hand every rank the same batch. Applying it to a
/// shard performs exactly the arithmetic the in-process path performs.
#[derive(Clone, Debug)]
pub struct LocalOps {
    ops: Arc<[PlanOp]>,
    local_bits: usize,
}

impl LocalOps {
    pub(crate) fn new(ops: &[PlanOp], local_bits: usize) -> Self {
        LocalOps {
            ops: ops.into(),
            local_bits,
        }
    }

    /// The number of batched ops.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Runs the whole batch on one shard. `shard_index` supplies the
    /// global index bits (qubits at or above the local range appear only
    /// as control/phase conditions, which select whole shards).
    pub fn apply_to_shard(&self, shard: &mut [C64], shard_index: usize) {
        let base = shard_index << self.local_bits;
        for op in self.ops.iter() {
            apply_local_op(shard, base, self.local_bits, op);
        }
    }
}

/// The elementwise update rule of one pairwise exchange step, shared by
/// every backend so cross-backend results stay bit-identical. `sa` is
/// the shard with the exchanged bit clear, `sb` its partner with it set.
#[derive(Clone, Copy, Debug)]
pub struct ExchangeKernel {
    kind: PairKind,
    min_block: usize,
}

#[derive(Clone, Copy, Debug)]
enum PairKind {
    OneQ { m: [[C64; 2]; 2] },
    CxLocalControl { cmask: usize },
    SwapLocalLo { lomask: usize },
    Block4Lo { lomask: usize, k: QuadKernel },
}

impl ExchangeKernel {
    /// Smallest aligned slice this kernel may run on: sub-splits must
    /// preserve an element's low (condition/pair) bits within each
    /// sub-slice, so split sizes must be multiples of this power of two.
    pub fn min_block(&self) -> usize {
        self.min_block
    }

    /// Updates one paired (low-half, high-half) slice run elementwise.
    /// Both slices must have equal, `min_block`-aligned lengths.
    pub fn apply_pair(&self, sa: &mut [C64], sb: &mut [C64]) {
        debug_assert_eq!(sa.len(), sb.len());
        debug_assert_eq!(sa.len() % self.min_block, 0);
        match self.kind {
            PairKind::OneQ { m } => {
                for (a, b) in sa.iter_mut().zip(sb.iter_mut()) {
                    let (b0, b1) = exec::pair_update(&m, *a, *b);
                    *a = b0;
                    *b = b1;
                }
            }
            PairKind::CxLocalControl { cmask } => {
                // Swap pairs whose (local) index has the control bit set;
                // alignment guarantees `j & cmask` only depends on the
                // in-slice offset.
                for j in 0..sa.len() {
                    if j & cmask != 0 {
                        std::mem::swap(&mut sa[j], &mut sb[j]);
                    }
                }
            }
            PairKind::SwapLocalLo { lomask } => {
                // Pair (i0 | lomask) on the low half with i0 on the high
                // half, i0 running over lo-clear offsets.
                let lo_bit = lomask.trailing_zeros() as usize;
                for p in 0..sa.len() / 2 {
                    let i0 = exec::insert_zero_bit(p, lo_bit);
                    std::mem::swap(&mut sa[i0 | lomask], &mut sb[i0]);
                }
            }
            PairKind::Block4Lo { lomask, k } => {
                // The high pair bit selects the half (sa = clear, sb =
                // set); the low bit is in-slice. Quads load in pair-basis
                // order s = 2·bit(hi) + bit(lo).
                let lo_bit = lomask.trailing_zeros() as usize;
                for p in 0..sa.len() / 2 {
                    let i0 = exec::insert_zero_bit(p, lo_bit);
                    let out = k.apply([sa[i0], sa[i0 | lomask], sb[i0], sb[i0 | lomask]]);
                    sa[i0] = out[0];
                    sa[i0 | lomask] = out[1];
                    sb[i0] = out[2];
                    sb[i0 | lomask] = out[3];
                }
            }
        }
    }
}

/// The elementwise update rule of one quad exchange step (an entangler
/// block with both pair bits global): the four shard slices hold the
/// four pair-basis amplitude planes.
#[derive(Clone, Copy, Debug)]
pub struct QuadBlockKernel {
    k: QuadKernel,
}

impl QuadBlockKernel {
    /// Updates the four pair-basis planes elementwise. All slices must
    /// have equal lengths; plane order is `s = 2·bit(hi) + bit(lo)`.
    pub fn apply_planes(&self, s0: &mut [C64], s1: &mut [C64], s2: &mut [C64], s3: &mut [C64]) {
        debug_assert!(s0.len() == s1.len() && s1.len() == s2.len() && s2.len() == s3.len());
        for (((a0, a1), a2), a3) in s0
            .iter_mut()
            .zip(s1.iter_mut())
            .zip(s2.iter_mut())
            .zip(s3.iter_mut())
        {
            let out = self.k.apply([*a0, *a1, *a2, *a3]);
            *a0 = out[0];
            *a1 = out[1];
            *a2 = out[2];
            *a3 = out[3];
        }
    }
}

/// The movement shape of one `ShardStep::Exchange` op, classified by the
/// orchestrator and dispatched onto the transport.
pub(crate) enum ExchangeStep {
    /// Shards pair along one shard-index bit (`sbit`).
    Pair { sbit: usize, kernel: ExchangeKernel },
    /// Shards group into quads along two shard-index bits.
    Quad {
        bl: usize,
        bh: usize,
        kernel: QuadBlockKernel,
    },
}

/// Classifies an exchange op into its movement shape and shared kernel.
/// `min_block` alignment mirrors the condition/pair-bit constraints of
/// each kind (see [`ExchangeKernel::min_block`]).
pub(crate) fn classify_exchange(op: &PlanOp, local_bits: usize) -> ExchangeStep {
    let pair = |gq: usize, kind: PairKind, min_block: usize| {
        debug_assert!(gq >= local_bits);
        ExchangeStep::Pair {
            sbit: 1usize << (gq - local_bits),
            kernel: ExchangeKernel { kind, min_block },
        }
    };
    match *op {
        PlanOp::OneQ { q, m } => pair(q, PairKind::OneQ { m }, 1),
        PlanOp::Cx { control, target } => pair(
            target,
            PairKind::CxLocalControl {
                cmask: 1 << control,
            },
            1usize << (control + 1),
        ),
        PlanOp::Swap { lo, hi } => pair(
            hi,
            PairKind::SwapLocalLo { lomask: 1 << lo },
            1usize << (lo + 1),
        ),
        PlanOp::Block4 { lo, hi, ref m } => {
            if lo >= local_bits {
                // Both pair bits are shard-index bits: shards group into
                // quads instead of pairs.
                debug_assert!(hi > lo);
                ExchangeStep::Quad {
                    bl: 1usize << (lo - local_bits),
                    bh: 1usize << (hi - local_bits),
                    kernel: QuadBlockKernel {
                        k: QuadKernel::of(m),
                    },
                }
            } else {
                pair(
                    hi,
                    PairKind::Block4Lo {
                        lomask: 1 << lo,
                        k: QuadKernel::of(m),
                    },
                    1usize << (lo + 1),
                )
            }
        }
        PlanOp::Cz { .. } => unreachable!("CZ is diagonal and never exchanges"),
    }
}

/// One transport session over a set of shards (see the [module
/// docs](self) for the contract). Sessions are opened per applied plan:
/// the orchestrator moves the shard buffers in, issues steps, and
/// recovers the buffers with [`ShardTransport::finish`].
///
/// Implementations must guarantee:
///
/// - **bit-identity** — every amplitude goes through the shared kernels
///   ([`LocalOps`], [`ExchangeKernel`], [`QuadBlockKernel`]), and any
///   serialization round-trips `f64` bits exactly;
/// - **typed failure** — peer loss surfaces as a [`TransportError`]
///   value, never a panic or deadlock, and after an error the session
///   reports [`TransportError::Poisoned`] on further steps;
/// - **no leaks** — any owned threads are joined by `finish` or drop.
pub trait ShardTransport {
    /// The backend name (matches [`TransportMode::name`]).
    fn name(&self) -> &'static str;

    /// The number of shards this session owns.
    fn num_shards(&self) -> usize;

    /// Runs a batch of shard-local ops on every shard.
    fn run_local(&mut self, ops: &LocalOps, workers: usize) -> Result<(), TransportError>;

    /// Pairs shards along shard-index bit `sbit` and updates each pair
    /// elementwise with `kernel`.
    fn exchange_pairs(
        &mut self,
        sbit: usize,
        kernel: &ExchangeKernel,
        workers: usize,
    ) -> Result<(), TransportError>;

    /// Groups shards into quads along shard-index bits `bl < bh` and
    /// updates each quad elementwise with `kernel`.
    fn exchange_quads(
        &mut self,
        bl: usize,
        bh: usize,
        kernel: &QuadBlockKernel,
        workers: usize,
    ) -> Result<(), TransportError>;

    /// Applies a plane swap: each `(a, b)` pair of shard indices trades
    /// identities (handle swap or rank relabeling; no amplitude math).
    fn plane_swap(&mut self, swaps: &[(usize, usize)]) -> Result<(), TransportError>;

    /// The movement tallies accumulated so far.
    fn counters(&self) -> TransportCounters;

    /// Closes the session and returns the shard buffers in shard-index
    /// order, joining any owned threads.
    fn finish(self: Box<Self>) -> Result<Vec<Vec<C64>>, TransportError>;
}

// ---------------------------------------------------------------------
// LocalSwap: the zero-copy in-process backend.
// ---------------------------------------------------------------------

/// The in-process transport: shards live in one address space, exchanges
/// walk shared memory (sub-split across worker threads), plane swaps are
/// O(1) handle swaps. Zero-copy and message-free — the default backend
/// and the performance baseline.
#[derive(Debug)]
pub struct LocalSwap {
    shards: Vec<Vec<C64>>,
    shard_len: usize,
    counters: TransportCounters,
    /// The shard index playing a dead rank, from
    /// [`FaultInjection::kill_rank`] — any movement step touching it
    /// fails typed, mirroring the channel backend's failure surface.
    killed: Option<usize>,
    failed: bool,
}

impl LocalSwap {
    /// Opens a session owning `shards` (each `2^local_bits` amplitudes).
    pub fn new(shards: Vec<Vec<C64>>, local_bits: usize) -> Self {
        LocalSwap::with_fault(shards, local_bits, &FaultInjection::none())
    }

    /// Opens a session with injected faults. The in-process backend has
    /// no wire, so only [`FaultInjection::kill_rank`] is honored (a
    /// killed shard index fails every step that touches it);
    /// `corrupt_word` has no words to corrupt and is ignored.
    pub fn with_fault(shards: Vec<Vec<C64>>, local_bits: usize, fault: &FaultInjection) -> Self {
        let killed = fault.kill_rank.filter(|&r| r < shards.len());
        LocalSwap {
            shards,
            shard_len: 1usize << local_bits,
            counters: TransportCounters::default(),
            killed,
            failed: false,
        }
    }

    /// Fails a step when the session is poisoned or a killed shard index
    /// participates in it (`touches`). Mirrors [`ChannelRanks`]: the
    /// first failure poisons the session for every later step.
    fn check(
        &mut self,
        touches: impl Fn(usize) -> bool,
        step: &'static str,
    ) -> Result<(), TransportError> {
        if self.failed {
            return Err(TransportError::Poisoned);
        }
        if let Some(rank) = self.killed.filter(|&r| touches(r)) {
            self.failed = true;
            return Err(TransportError::Disconnected { rank, step });
        }
        Ok(())
    }
}

impl ShardTransport for LocalSwap {
    fn name(&self) -> &'static str {
        "local"
    }

    fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn run_local(&mut self, ops: &LocalOps, workers: usize) -> Result<(), TransportError> {
        self.check(|_| true, "local run")?;
        let nshards = self.shards.len();
        let w = workers.min(nshards).max(1);
        parallel::for_each_chunk_mut(&mut self.shards, w, |wi, chunk| {
            let first = parallel::worker_range(nshards, w, wi).start;
            for (i, shard) in chunk.iter_mut().enumerate() {
                ops.apply_to_shard(shard, first + i);
            }
        });
        self.counters.local_runs += 1;
        Ok(())
    }

    fn exchange_pairs(
        &mut self,
        sbit: usize,
        kernel: &ExchangeKernel,
        workers: usize,
    ) -> Result<(), TransportError> {
        self.check(|_| true, "pair exchange")?;
        // Sub-split each shard pair so small shard counts still saturate
        // the workers; power-of-two split counts keep slices aligned to
        // the kernel's condition/pair bits.
        let npairs = self.shards.len() / 2;
        let max_splits = self.shard_len / kernel.min_block();
        let splits = workers
            .div_ceil(npairs.max(1))
            .next_power_of_two()
            .clamp(1, max_splits.max(1));
        let sub = self.shard_len / splits;

        let mut tasks: Vec<(&mut [C64], &mut [C64])> = Vec::with_capacity(npairs * splits);
        for block in self.shards.chunks_mut(2 * sbit) {
            let (lo_half, hi_half) = block.split_at_mut(sbit);
            for (a, b) in lo_half.iter_mut().zip(hi_half.iter_mut()) {
                for (sa, sb) in a.chunks_mut(sub).zip(b.chunks_mut(sub)) {
                    tasks.push((sa, sb));
                }
            }
        }
        let w = workers.min(tasks.len()).max(1);
        parallel::for_each_chunk_mut(&mut tasks, w, |_, chunk| {
            for (sa, sb) in chunk.iter_mut() {
                kernel.apply_pair(sa, sb);
            }
        });
        self.counters.exchanges += 1;
        self.counters.sub_splits += splits as u64 - 1;
        Ok(())
    }

    fn exchange_quads(
        &mut self,
        bl: usize,
        bh: usize,
        kernel: &QuadBlockKernel,
        workers: usize,
    ) -> Result<(), TransportError> {
        self.check(|_| true, "quad exchange")?;
        let nquads = self.shards.len() / 4;
        let splits = workers
            .div_ceil(nquads.max(1))
            .next_power_of_two()
            .clamp(1, self.shard_len);
        let sub = self.shard_len / splits;

        // Pull the four member shards of each quad out of `self.shards`
        // without overlapping borrows: each slot is taken exactly once.
        let mut slots: Vec<Option<&mut [C64]>> = self
            .shards
            .iter_mut()
            .map(|s| Some(s.as_mut_slice()))
            .collect();
        let mut tasks: Vec<[&mut [C64]; 4]> = Vec::with_capacity(nquads * splits);
        for s in 0..slots.len() {
            if s & bl != 0 || s & bh != 0 {
                continue;
            }
            let s0 = slots[s].take().expect("quad base taken once");
            let s1 = slots[s | bl].take().expect("quad lo taken once");
            let s2 = slots[s | bh].take().expect("quad hi taken once");
            let s3 = slots[s | bl | bh].take().expect("quad both taken once");
            for (((c0, c1), c2), c3) in s0
                .chunks_mut(sub)
                .zip(s1.chunks_mut(sub))
                .zip(s2.chunks_mut(sub))
                .zip(s3.chunks_mut(sub))
            {
                tasks.push([c0, c1, c2, c3]);
            }
        }
        let w = workers.min(tasks.len()).max(1);
        parallel::for_each_chunk_mut(&mut tasks, w, |_, chunk| {
            for [s0, s1, s2, s3] in chunk.iter_mut() {
                kernel.apply_planes(s0, s1, s2, s3);
            }
        });
        self.counters.quad_exchanges += 1;
        self.counters.sub_splits += splits as u64 - 1;
        Ok(())
    }

    fn plane_swap(&mut self, swaps: &[(usize, usize)]) -> Result<(), TransportError> {
        self.check(
            |r| swaps.iter().any(|&(a, b)| a == r || b == r),
            "plane swap",
        )?;
        for &(a, b) in swaps {
            self.shards.swap(a, b);
        }
        self.counters.plane_swaps += 1;
        Ok(())
    }

    fn counters(&self) -> TransportCounters {
        self.counters
    }

    fn finish(self: Box<Self>) -> Result<Vec<Vec<C64>>, TransportError> {
        if self.failed {
            return Err(TransportError::Poisoned);
        }
        Ok(self.shards)
    }
}

// ---------------------------------------------------------------------
// ChannelRanks: the message-passing rank-thread backend.
// ---------------------------------------------------------------------

/// Shared fault-injection state (see [`FaultInjection`]): the word
/// counter orders every serialized word across ranks so exactly one
/// word gets corrupted.
#[derive(Debug)]
struct FaultState {
    corrupt_word: Option<u64>,
    kill_rank: Option<usize>,
    word_counter: AtomicU64,
}

impl FaultState {
    fn new(f: &FaultInjection) -> Self {
        FaultState {
            corrupt_word: f.corrupt_word,
            kill_rank: f.kill_rank,
            word_counter: AtomicU64::new(0),
        }
    }

    /// Serializes `amps` into `out`, applying word corruption when this
    /// session's injected target falls inside the encoded range.
    fn encode(&self, amps: &[C64], out: &mut Vec<u64>) {
        words::encode(amps, out);
        if let Some(target) = self.corrupt_word {
            let start = self
                .word_counter
                .fetch_add(out.len() as u64, Ordering::SeqCst);
            if target >= start && target < start + out.len() as u64 {
                // Flip the exponent bits: zero becomes one, anything
                // else changes by at least a factor of two, so the
                // corruption is always visible to the oracle.
                out[(target - start) as usize] ^= 0x3FF0_0000_0000_0000;
            }
        }
    }
}

/// An amplitude payload: `tag` is 0 for pair traffic and the quad
/// position (1–3) for quad gathers.
struct DataMsg {
    tag: usize,
    words: Vec<u64>,
}

/// One lockstep command to a rank. Each command is acknowledged exactly
/// once on the shared done channel (except `Exit`, which ends the rank).
enum Command {
    /// Run a local-op batch on the owned shard.
    Local(LocalOps),
    /// Lead a pairwise exchange: receive the peer's shard, run the
    /// kernel over both, send the peer's half back.
    PairLead {
        kernel: ExchangeKernel,
        peer: SyncSender<DataMsg>,
        peer_rank: usize,
    },
    /// Follow a pairwise exchange: send the owned shard to the leader,
    /// receive the replacement.
    PairFollow {
        leader: SyncSender<DataMsg>,
        leader_rank: usize,
    },
    /// Lead a quad exchange: receive three peer planes, run the kernel,
    /// scatter the results back. `peers[i]` owns pair-basis plane `i+1`.
    QuadLead {
        kernel: QuadBlockKernel,
        peers: Vec<(usize, SyncSender<DataMsg>)>,
    },
    /// Follow a quad exchange as pair-basis plane `pos` (1–3).
    QuadFollow {
        pos: usize,
        leader: SyncSender<DataMsg>,
        leader_rank: usize,
    },
    /// Adopt a new shard index (a plane swap relabeled this rank).
    Relabel { shard_index: usize },
    /// Leave the session, returning the owned shard through the join
    /// handle. Never acknowledged.
    Exit,
}

/// The message-passing transport: every shard is owned by one rank
/// thread; no two ranks share amplitude memory. Exchanges serialize
/// amplitudes into `u64` bit-word messages over bounded channels
/// (gather–compute–scatter at the pair/quad leader, which runs the same
/// shared kernels as [`LocalSwap`] — bit-identity by construction), and
/// plane swaps send rank-relabeling control messages instead of moving
/// any amplitude data. The in-process dress rehearsal for a socket
/// transport: everything that would cross a network is explicit,
/// serialized, and counted.
pub struct ChannelRanks {
    nshards: usize,
    /// `rank_of_shard[s]` = the rank currently owning shard index `s`
    /// (plane swaps permute this map).
    rank_of_shard: Vec<usize>,
    cmd_tx: Vec<SyncSender<Command>>,
    data_tx: Vec<SyncSender<DataMsg>>,
    done_rx: Receiver<(usize, Result<(), TransportError>)>,
    handles: Vec<Option<JoinHandle<(usize, Vec<C64>)>>>,
    abort: Arc<AtomicBool>,
    counters: TransportCounters,
    failed: Option<TransportError>,
    shard_len: usize,
}

impl fmt::Debug for ChannelRanks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelRanks")
            .field("nshards", &self.nshards)
            .field("rank_of_shard", &self.rank_of_shard)
            .field("counters", &self.counters)
            .field("failed", &self.failed)
            .finish_non_exhaustive()
    }
}

impl ChannelRanks {
    /// Spawns one rank thread per shard and hands each its shard buffer.
    pub fn connect(
        shards: Vec<Vec<C64>>,
        local_bits: usize,
        fault: &FaultInjection,
    ) -> Result<Self, TransportError> {
        let nshards = shards.len();
        let shard_len = 1usize << local_bits;
        let fault = Arc::new(FaultState::new(fault));
        let abort = Arc::new(AtomicBool::new(false));
        let (done_tx, done_rx) = mpsc::channel::<(usize, Result<(), TransportError>)>();

        let mut cmd_tx = Vec::with_capacity(nshards);
        let mut data_tx = Vec::with_capacity(nshards);
        let mut endpoints = Vec::with_capacity(nshards);
        for _ in 0..nshards {
            let (ctx, crx) = mpsc::sync_channel::<Command>(CHANNEL_CAPACITY);
            let (dtx, drx) = mpsc::sync_channel::<DataMsg>(CHANNEL_CAPACITY);
            cmd_tx.push(ctx);
            data_tx.push(dtx);
            endpoints.push((crx, drx));
        }

        let mut handles = Vec::with_capacity(nshards);
        for (rank, (shard, (crx, drx))) in shards.into_iter().zip(endpoints).enumerate() {
            let done = done_tx.clone();
            let fault = Arc::clone(&fault);
            let abort = Arc::clone(&abort);
            let handle = std::thread::Builder::new()
                .name(format!("varsaw-rank-{rank}"))
                .spawn(move || rank_main(rank, shard, crx, drx, done, fault, abort))
                .map_err(|_| TransportError::Disconnected {
                    rank,
                    step: "rank spawn",
                })?;
            handles.push(Some(handle));
        }

        Ok(ChannelRanks {
            nshards,
            rank_of_shard: (0..nshards).collect(),
            cmd_tx,
            data_tx,
            done_rx,
            handles,
            abort,
            counters: TransportCounters::default(),
            failed: None,
            shard_len,
        })
    }

    /// Fails the session: poisons further steps and flips the abort flag
    /// so in-flight ranks bail out of data waits promptly.
    fn fail(&mut self, e: &TransportError) {
        self.abort.store(true, Ordering::SeqCst);
        self.failed.get_or_insert_with(|| e.clone());
    }

    fn check_live(&self) -> Result<(), TransportError> {
        match &self.failed {
            Some(_) => Err(TransportError::Poisoned),
            None => Ok(()),
        }
    }

    fn send(&self, rank: usize, cmd: Command, step: &'static str) -> Result<(), TransportError> {
        self.cmd_tx[rank]
            .send(cmd)
            .map_err(|_| TransportError::Disconnected { rank, step })
    }

    /// Collects `expected` per-step acknowledgements, surfacing the
    /// first failure (further acks of a failed step are irrelevant: the
    /// session is poisoned and torn down).
    fn wait_acks(&mut self, expected: usize, step: &'static str) -> Result<(), TransportError> {
        let deadline = Instant::now() + ACK_TIMEOUT;
        let mut received = 0;
        while received < expected {
            match self.done_rx.recv_timeout(POLL) {
                Ok((_rank, Ok(()))) => received += 1,
                Ok((_rank, Err(e))) => return Err(e),
                Err(RecvTimeoutError::Timeout) => {
                    // No rank exits mid-plan in a healthy session (Exit
                    // is only sent at teardown), so a finished rank
                    // thread here means its command will never be
                    // acked: report it now instead of waiting out the
                    // full ack deadline.
                    for (rank, handle) in self.handles.iter().enumerate() {
                        if handle.as_ref().is_some_and(|h| h.is_finished()) {
                            return Err(TransportError::Disconnected { rank, step });
                        }
                    }
                    if Instant::now() >= deadline {
                        return Err(TransportError::Timeout { step });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Every rank (and its done sender) is gone.
                    return Err(TransportError::Timeout { step });
                }
            }
        }
        Ok(())
    }

    /// Runs one lockstep step: sends the prepared `(rank, command)`
    /// batch, then waits for one ack per command.
    fn step(
        &mut self,
        sends: Vec<(usize, Command)>,
        step: &'static str,
    ) -> Result<(), TransportError> {
        self.check_live()?;
        let expected = sends.len();
        let result = (|| {
            for (rank, cmd) in sends {
                self.send(rank, cmd, step)?;
            }
            Ok(())
        })()
        .and_then(|()| self.wait_acks(expected, step));
        if let Err(ref e) = result {
            self.fail(e);
        }
        result
    }

    /// Tears the session down: aborts in-flight waits, asks every rank
    /// to exit, and joins the threads, collecting their shards.
    fn teardown(&mut self) -> Vec<(usize, Vec<C64>)> {
        self.abort.store(true, Ordering::SeqCst);
        for tx in &self.cmd_tx {
            // A dead rank's channel is closed; that is fine here.
            let _ = tx.send(Command::Exit);
        }
        let mut out = Vec::with_capacity(self.handles.len());
        for handle in &mut self.handles {
            if let Some(h) = handle.take() {
                if let Ok(pair) = h.join() {
                    out.push(pair);
                }
            }
        }
        out
    }
}

impl ShardTransport for ChannelRanks {
    fn name(&self) -> &'static str {
        "channel"
    }

    fn num_shards(&self) -> usize {
        self.nshards
    }

    /// Rank-level parallelism *is* the threading here: every rank runs
    /// its own batch concurrently, so `workers` is ignored.
    fn run_local(&mut self, ops: &LocalOps, _workers: usize) -> Result<(), TransportError> {
        let sends = self
            .rank_of_shard
            .iter()
            .map(|&rank| (rank, Command::Local(ops.clone())))
            .collect::<Vec<_>>();
        let n = sends.len() as u64;
        self.step(sends, "local run")?;
        self.counters.local_runs += 1;
        self.counters.messages += n;
        Ok(())
    }

    fn exchange_pairs(
        &mut self,
        sbit: usize,
        kernel: &ExchangeKernel,
        _workers: usize,
    ) -> Result<(), TransportError> {
        let mut sends = Vec::with_capacity(self.nshards);
        let mut npairs = 0u64;
        for s in 0..self.nshards {
            if s & sbit != 0 {
                continue;
            }
            let leader = self.rank_of_shard[s];
            let follower = self.rank_of_shard[s | sbit];
            sends.push((
                leader,
                Command::PairLead {
                    kernel: *kernel,
                    peer: self.data_tx[follower].clone(),
                    peer_rank: follower,
                },
            ));
            sends.push((
                follower,
                Command::PairFollow {
                    leader: self.data_tx[leader].clone(),
                    leader_rank: leader,
                },
            ));
            npairs += 1;
        }
        self.step(sends, "pair exchange")?;
        self.counters.exchanges += 1;
        // Per pair: 2 commands + 2 amplitude payloads (gather + reply).
        self.counters.messages += 4 * npairs;
        self.counters.bytes_moved += 2 * npairs * self.shard_len as u64 * words::BYTES_PER_AMP;
        Ok(())
    }

    fn exchange_quads(
        &mut self,
        bl: usize,
        bh: usize,
        kernel: &QuadBlockKernel,
        _workers: usize,
    ) -> Result<(), TransportError> {
        let mut sends = Vec::with_capacity(self.nshards);
        let mut nquads = 0u64;
        for s in 0..self.nshards {
            if s & bl != 0 || s & bh != 0 {
                continue;
            }
            let leader = self.rank_of_shard[s];
            let members = [s | bl, s | bh, s | bl | bh];
            let peers: Vec<(usize, SyncSender<DataMsg>)> = members
                .iter()
                .map(|&m| {
                    let r = self.rank_of_shard[m];
                    (r, self.data_tx[r].clone())
                })
                .collect();
            for (pos, &(rank, _)) in peers.iter().enumerate() {
                sends.push((
                    rank,
                    Command::QuadFollow {
                        pos: pos + 1,
                        leader: self.data_tx[leader].clone(),
                        leader_rank: leader,
                    },
                ));
            }
            sends.push((
                leader,
                Command::QuadLead {
                    kernel: *kernel,
                    peers,
                },
            ));
            nquads += 1;
        }
        self.step(sends, "quad exchange")?;
        self.counters.quad_exchanges += 1;
        // Per quad: 4 commands + 3 gathers + 3 scatters.
        self.counters.messages += 10 * nquads;
        self.counters.bytes_moved += 6 * nquads * self.shard_len as u64 * words::BYTES_PER_AMP;
        Ok(())
    }

    fn plane_swap(&mut self, swaps: &[(usize, usize)]) -> Result<(), TransportError> {
        let mut sends = Vec::with_capacity(swaps.len() * 2);
        for &(a, b) in swaps {
            let (ra, rb) = (self.rank_of_shard[a], self.rank_of_shard[b]);
            sends.push((ra, Command::Relabel { shard_index: b }));
            sends.push((rb, Command::Relabel { shard_index: a }));
            self.rank_of_shard.swap(a, b);
        }
        let n = sends.len() as u64;
        self.step(sends, "plane swap")?;
        self.counters.plane_swaps += 1;
        self.counters.messages += n;
        Ok(())
    }

    fn counters(&self) -> TransportCounters {
        self.counters
    }

    fn finish(mut self: Box<Self>) -> Result<Vec<Vec<C64>>, TransportError> {
        self.check_live()?;
        let collected = self.teardown();
        if collected.len() != self.nshards {
            return Err(TransportError::Timeout {
                step: "final gather",
            });
        }
        let mut shards: Vec<Option<Vec<C64>>> = (0..self.nshards).map(|_| None).collect();
        for (shard_index, shard) in collected {
            shards[shard_index] = Some(shard);
        }
        shards
            .into_iter()
            .map(|s| {
                s.ok_or(TransportError::Timeout {
                    step: "final gather",
                })
            })
            .collect()
    }
}

impl Drop for ChannelRanks {
    fn drop(&mut self) {
        // `finish` already took the handles in the healthy path; this
        // covers error paths so rank threads never leak.
        self.teardown();
    }
}

/// The body of one rank thread: owns exactly one shard, serves lockstep
/// commands, and returns `(shard_index, shard)` on exit.
fn rank_main(
    rank: usize,
    mut shard: Vec<C64>,
    cmd_rx: Receiver<Command>,
    data_rx: Receiver<DataMsg>,
    done_tx: mpsc::Sender<(usize, Result<(), TransportError>)>,
    fault: Arc<FaultState>,
    abort: Arc<AtomicBool>,
) -> (usize, Vec<C64>) {
    let mut shard_index = rank;
    if fault.kill_rank == Some(rank) {
        return (shard_index, shard);
    }
    let mut wire = Vec::new();
    loop {
        let cmd = match cmd_rx.recv() {
            Ok(c) => c,
            // The coordinator is gone; nothing left to serve.
            Err(_) => return (shard_index, shard),
        };
        let result = match cmd {
            Command::Exit => return (shard_index, shard),
            Command::Relabel { shard_index: s } => {
                shard_index = s;
                Ok(())
            }
            Command::Local(ops) => {
                ops.apply_to_shard(&mut shard, shard_index);
                Ok(())
            }
            Command::PairLead {
                kernel,
                peer,
                peer_rank,
            } => pair_lead(
                &mut shard, &kernel, &peer, peer_rank, &data_rx, &fault, &abort, &mut wire,
            ),
            Command::PairFollow {
                leader,
                leader_rank,
            } => pair_follow(
                &mut shard,
                0,
                &leader,
                leader_rank,
                &data_rx,
                &fault,
                &abort,
                &mut wire,
            ),
            Command::QuadLead { kernel, peers } => {
                quad_lead(&mut shard, &kernel, &peers, &data_rx, &fault, &abort)
            }
            Command::QuadFollow {
                pos,
                leader,
                leader_rank,
            } => pair_follow(
                &mut shard,
                pos,
                &leader,
                leader_rank,
                &data_rx,
                &fault,
                &abort,
                &mut wire,
            ),
        };
        if done_tx.send((rank, result)).is_err() {
            return (shard_index, shard);
        }
    }
}

/// Abortable bounded receive: waits up to [`DATA_TIMEOUT`] for a
/// payload, bailing within one [`POLL`] interval when the session
/// aborts — the mechanism that turns a dead peer into a typed error
/// instead of a deadlock.
fn recv_data(
    data_rx: &Receiver<DataMsg>,
    abort: &AtomicBool,
    step: &'static str,
) -> Result<DataMsg, TransportError> {
    let deadline = Instant::now() + DATA_TIMEOUT;
    loop {
        match data_rx.recv_timeout(POLL) {
            Ok(msg) => return Ok(msg),
            Err(RecvTimeoutError::Timeout) => {
                if abort.load(Ordering::SeqCst) || Instant::now() >= deadline {
                    return Err(TransportError::Timeout { step });
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(TransportError::Timeout { step });
            }
        }
    }
}

/// Pair-exchange leader: gather the peer's shard, run the shared kernel
/// over (own = bit-clear half, peer = bit-set half), scatter the peer's
/// new half back.
#[allow(clippy::too_many_arguments)]
fn pair_lead(
    shard: &mut [C64],
    kernel: &ExchangeKernel,
    peer: &SyncSender<DataMsg>,
    peer_rank: usize,
    data_rx: &Receiver<DataMsg>,
    fault: &FaultState,
    abort: &AtomicBool,
    wire: &mut Vec<u64>,
) -> Result<(), TransportError> {
    let msg = recv_data(data_rx, abort, "pair gather")?;
    let mut peer_shard = vec![C64::ZERO; shard.len()];
    words::decode_into(&msg.words, &mut peer_shard);
    kernel.apply_pair(shard, &mut peer_shard);
    fault.encode(&peer_shard, wire);
    peer.send(DataMsg {
        tag: 0,
        words: std::mem::take(wire),
    })
    .map_err(|_| TransportError::Disconnected {
        rank: peer_rank,
        step: "pair scatter",
    })
}

/// Pair/quad-exchange follower: send the owned shard (tagged with its
/// pair-basis position) to the leader, adopt the returned replacement.
#[allow(clippy::too_many_arguments)]
fn pair_follow(
    shard: &mut [C64],
    tag: usize,
    leader: &SyncSender<DataMsg>,
    leader_rank: usize,
    data_rx: &Receiver<DataMsg>,
    fault: &FaultState,
    abort: &AtomicBool,
    wire: &mut Vec<u64>,
) -> Result<(), TransportError> {
    fault.encode(shard, wire);
    leader
        .send(DataMsg {
            tag,
            words: std::mem::take(wire),
        })
        .map_err(|_| TransportError::Disconnected {
            rank: leader_rank,
            step: "exchange gather",
        })?;
    let msg = recv_data(data_rx, abort, "exchange reply")?;
    words::decode_into(&msg.words, shard);
    Ok(())
}

/// Quad-exchange leader: gather the three peer planes (ordered by their
/// pair-basis tags), run the shared quad kernel across all four, scatter
/// the three peer planes back.
fn quad_lead(
    shard: &mut [C64],
    kernel: &QuadBlockKernel,
    peers: &[(usize, SyncSender<DataMsg>)],
    data_rx: &Receiver<DataMsg>,
    fault: &FaultState,
    abort: &AtomicBool,
) -> Result<(), TransportError> {
    debug_assert_eq!(peers.len(), 3);
    let mut planes: [Vec<C64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..3 {
        let msg = recv_data(data_rx, abort, "quad gather")?;
        debug_assert!((1..=3).contains(&msg.tag));
        let plane = &mut planes[msg.tag - 1];
        debug_assert!(plane.is_empty(), "each quad plane arrives once");
        plane.resize(shard.len(), C64::ZERO);
        words::decode_into(&msg.words, plane);
    }
    {
        let [p1, p2, p3] = &mut planes;
        kernel.apply_planes(shard, p1, p2, p3);
    }
    for (pos, plane) in planes.iter().enumerate() {
        let mut wire = Vec::new();
        fault.encode(plane, &mut wire);
        let (rank, tx) = &peers[pos];
        tx.send(DataMsg {
            tag: pos + 1,
            words: wire,
        })
        .map_err(|_| TransportError::Disconnected {
            rank: *rank,
            step: "quad scatter",
        })?;
    }
    Ok(())
}

/// Applies one shard-local op to a single shard whose global index bits
/// are `base` (already shifted into amplitude-index position). Qubits at
/// or above `local_bits` only appear as control/phase conditions, which
/// select whole shards via `base`.
fn apply_local_op(shard: &mut [C64], base: usize, local_bits: usize, op: &PlanOp) {
    match *op {
        PlanOp::OneQ { q, m } => {
            debug_assert!(q < local_bits);
            exec::apply_1q_local(shard, q, &m);
        }
        PlanOp::Cx { control, target } => {
            debug_assert!(target < local_bits);
            if control < local_bits {
                exec::apply_cx_local(shard, control, target);
            } else if base & (1usize << control) != 0 {
                // Global control: this whole shard sits in the controlled
                // subspace; apply X on the target within it.
                exec::apply_x_local(shard, target);
            }
        }
        PlanOp::Cz { lo, hi } => match (lo < local_bits, hi < local_bits) {
            (true, true) => exec::apply_cz_local(shard, lo, hi),
            (true, false) => {
                if base & (1usize << hi) != 0 {
                    exec::negate_bit_set(shard, lo);
                }
            }
            (false, false) => {
                if base & (1usize << lo) != 0 && base & (1usize << hi) != 0 {
                    for a in shard.iter_mut() {
                        *a = -*a;
                    }
                }
            }
            (false, true) => unreachable!("CZ stores sorted qubits"),
        },
        PlanOp::Swap { lo, hi } => {
            debug_assert!(hi < local_bits);
            exec::apply_swap_local(shard, lo, hi);
        }
        PlanOp::Block4 { lo, hi, ref m } => {
            debug_assert!(hi < local_bits, "local blocks have both pair bits local");
            exec::apply_block4_local(shard, lo, hi, m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amp(re: f64, im: f64) -> C64 {
        C64::new(re, im)
    }

    fn two_shards() -> Vec<Vec<C64>> {
        vec![
            vec![amp(0.6, 0.0), amp(0.0, 0.4)],
            vec![amp(-0.3, 0.5), amp(0.2, -0.1)],
        ]
    }

    fn h_kernel() -> ExchangeKernel {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        ExchangeKernel {
            kind: PairKind::OneQ {
                m: [[amp(s, 0.0), amp(s, 0.0)], [amp(s, 0.0), amp(-s, 0.0)]],
            },
            min_block: 1,
        }
    }

    #[test]
    fn both_backends_agree_bit_for_bit_on_an_exchange() {
        let kernel = h_kernel();
        let mut local: Box<dyn ShardTransport> = Box::new(LocalSwap::new(two_shards(), 1));
        local.exchange_pairs(1, &kernel, 2).unwrap();
        let a = local.finish().unwrap();
        let mut chan: Box<dyn ShardTransport> =
            Box::new(ChannelRanks::connect(two_shards(), 1, &FaultInjection::none()).unwrap());
        chan.exchange_pairs(1, &kernel, 2).unwrap();
        let b = chan.finish().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn channel_counters_report_wire_volume() {
        let mut chan = ChannelRanks::connect(two_shards(), 1, &FaultInjection::none()).unwrap();
        chan.exchange_pairs(1, &h_kernel(), 1).unwrap();
        let c = chan.counters();
        assert_eq!(c.exchanges, 1);
        // One pair: 2 commands + 2 payloads; 2 shards of 2 amps each way.
        assert_eq!(c.messages, 4);
        assert_eq!(c.bytes_moved, 2 * 2 * words::BYTES_PER_AMP);
        Box::new(chan).finish().unwrap();
    }

    #[test]
    fn local_counters_report_zero_messages() {
        let mut local = LocalSwap::new(two_shards(), 1);
        local.exchange_pairs(1, &h_kernel(), 4).unwrap();
        let c = local.counters();
        assert_eq!(c.exchanges, 1);
        assert_eq!(c.messages, 0);
        assert_eq!(c.bytes_moved, 0);
    }

    #[test]
    fn dead_rank_surfaces_a_typed_error_not_a_deadlock() {
        let mut chan =
            ChannelRanks::connect(two_shards(), 1, &FaultInjection::kill_rank(1)).unwrap();
        let err = chan
            .exchange_pairs(1, &h_kernel(), 1)
            .expect_err("dead rank must fail the step");
        assert!(
            matches!(
                err,
                TransportError::Disconnected { rank: 1, .. } | TransportError::Timeout { .. }
            ),
            "unexpected error: {err:?}"
        );
        // The session is poisoned afterwards.
        assert_eq!(
            chan.run_local(&LocalOps::new(&[], 1), 1),
            Err(TransportError::Poisoned)
        );
        assert_eq!(Box::new(chan).finish(), Err(TransportError::Poisoned));
    }

    #[test]
    fn local_backend_honors_kill_rank_typed_and_poisons() {
        let mut local = LocalSwap::with_fault(two_shards(), 1, &FaultInjection::kill_rank(1));
        let err = local
            .exchange_pairs(1, &h_kernel(), 1)
            .expect_err("killed shard index must fail the step");
        assert_eq!(
            err,
            TransportError::Disconnected {
                rank: 1,
                step: "pair exchange"
            }
        );
        assert_eq!(
            local.run_local(&LocalOps::new(&[], 1), 1),
            Err(TransportError::Poisoned)
        );
        assert_eq!(Box::new(local).finish(), Err(TransportError::Poisoned));
    }

    #[test]
    fn local_backend_ignores_out_of_range_kills_and_corruption() {
        let mut local = LocalSwap::with_fault(two_shards(), 1, &FaultInjection::kill_rank(7));
        local.exchange_pairs(1, &h_kernel(), 1).unwrap();
        let mut local = LocalSwap::with_fault(two_shards(), 1, &FaultInjection::corrupt_word(0));
        local.exchange_pairs(1, &h_kernel(), 1).unwrap();
        Box::new(local).finish().unwrap();
    }

    #[test]
    fn fault_schedules_are_pure_and_rate_bounded() {
        let schedule = FaultSchedule::new(99, 250, 250);
        for session in 0..32 {
            for stream in 0..4 {
                assert_eq!(
                    schedule.injection(stream, session, 8),
                    schedule.injection(stream, session, 8),
                    "stream {stream} session {session}"
                );
            }
        }
        // Streams decorrelate: two streams must not share their full
        // fault pattern (probability ~2^-32 under independent draws).
        let pattern = |stream: u64| -> Vec<FaultInjection> {
            (0..64).map(|s| schedule.injection(stream, s, 8)).collect()
        };
        assert_ne!(pattern(0), pattern(1), "streams must draw independently");
        // An always-kill schedule targets a valid rank every session.
        let always = FaultSchedule::new(5, 1000, 0);
        for session in 0..16 {
            let inj = always.injection(0, session, 4);
            let rank = inj.kill_rank.expect("rate 1000 always kills");
            assert!(rank < 4, "rank {rank} out of range");
        }
        assert!(FaultSchedule::none().is_none());
        assert!(FaultSchedule::none().injection(3, 3, 4).is_none());
    }

    #[test]
    fn plane_swap_is_rank_relabeling() {
        let mut chan = ChannelRanks::connect(two_shards(), 1, &FaultInjection::none()).unwrap();
        chan.plane_swap(&[(0, 1)]).unwrap();
        let c = chan.counters();
        assert_eq!(c.plane_swaps, 1);
        assert_eq!(c.messages, 2, "two relabel control messages");
        assert_eq!(c.bytes_moved, 0, "no amplitude data moves");
        let shards = Box::new(chan).finish().unwrap();
        let orig = two_shards();
        assert_eq!(shards[0], orig[1]);
        assert_eq!(shards[1], orig[0]);
    }
}
