//! The fault supervisor's chaos oracle.
//!
//! The supervision contract extends the queue's determinism contract to
//! faulted runs: under any seed-deterministic [`FaultSchedule`], any
//! [`RetryPolicy`], either transport, and any worker count, every job
//! either completes **bit-identical to its fault-free sequential
//! reference** (results stay a pure function of `(root_seed, job_id,
//! spec)` — retries consume no shared RNG and never perturb co-tenants)
//! or returns a typed [`JobError`]. Never a panic, never a deadlock,
//! never a leaked rank thread, and the memory-budget accounting is exact
//! after every drain. The property test below fuzzes that whole grid;
//! targeted tests pin the retry ladder, deadlines, cancellation, and the
//! bounded wait.

use proptest::prelude::*;
use qnoise::DeviceModel;
use qsim::{Circuit, FaultSchedule, Parallelism, Sharding, TransportMode};
use sched::{
    job_seed, Degradation, JobError, JobQueue, JobSpec, MeasureScope, Measurement, RetryPolicy,
};
use std::collections::BTreeMap;
use std::time::Duration;
use vqe::SimExecutor;

const SHOTS: u64 = 64;

/// A hardware-efficient-style ansatz: RY layer, CX chain, RY layer.
fn ansatz(n: usize, angles: &[f64]) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.ry(q, angles[q % angles.len()]);
    }
    for q in 0..n.saturating_sub(1) {
        c.cx(q, q + 1);
    }
    for q in 0..n {
        c.ry(q, angles[(n + q) % angles.len()]);
    }
    c
}

/// An `n`-qubit Pauli basis from letter codes (0=I 1=X 2=Y 3=Z), forced
/// non-identity so subset readouts are legal.
fn basis(n: usize, letters: &[usize]) -> pauli::PauliString {
    let mut chars: Vec<char> = letters
        .iter()
        .take(n)
        .map(|&l| ['I', 'X', 'Y', 'Z'][l % 4])
        .collect();
    chars.resize(n, 'I');
    if chars.iter().all(|&c| c == 'I') {
        chars[0] = 'Z';
    }
    chars.iter().collect::<String>().parse().unwrap()
}

/// The fault-free sequential reference: each job alone, on a fresh
/// serial unsharded executor seeded by `job_seed(root_seed, job_id)`.
fn reference(
    device: &DeviceModel,
    root_seed: u64,
    specs: &[JobSpec],
) -> BTreeMap<u64, (Vec<mitigation::Pmf>, u64)> {
    specs
        .iter()
        .map(|spec| {
            let mut exec =
                SimExecutor::new(device.clone(), SHOTS, job_seed(root_seed, spec.job_id))
                    .with_parallelism(Parallelism::Serial);
            let state = exec.prepare(&spec.circuit);
            let pmfs = spec
                .measurements
                .iter()
                .map(|m| match m.scope {
                    MeasureScope::Subset => exec.run_prepared(&state, &m.basis),
                    MeasureScope::Global => exec.run_prepared_all(&state, &m.basis),
                })
                .collect();
            (spec.job_id, (pmfs, exec.circuits_executed()))
        })
        .collect()
}

/// Thread count from `/proc/self/status` (`None` off Linux).
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// Thread count after letting just-exited threads drain from `/proc`: a
/// joined scoped worker can stay visible for a moment after the join
/// returns, while a genuinely leaked thread persists. Polls briefly and
/// returns the lowest count seen.
fn settled_thread_count(baseline: usize) -> Option<usize> {
    let mut count = thread_count()?;
    for _ in 0..100 {
        if count <= baseline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
        count = count.min(thread_count()?);
    }
    Some(count)
}

/// One chaos drain: returns per-job outcomes in spec order.
fn chaos_drain(
    device: &DeviceModel,
    root_seed: u64,
    specs: &[JobSpec],
    schedule: FaultSchedule,
    policy: RetryPolicy,
    transport: TransportMode,
    workers: usize,
) -> (Vec<Result<sched::JobOutput, JobError>>, u128) {
    let queue = JobQueue::new(device.clone(), SHOTS, root_seed)
        .with_workers(workers)
        .with_sharding(Sharding::Shards(4))
        .with_transport(transport)
        .with_fault_schedule(schedule)
        .with_retry_policy(policy);
    let handles: Vec<_> = specs
        .iter()
        .map(|s| queue.submit(s.clone()).unwrap())
        .collect();
    queue.drain();
    assert_eq!(queue.pending(), 0);
    assert_eq!(queue.completed() as usize, specs.len());
    let outcomes = handles.iter().map(|h| h.wait()).collect();
    (outcomes, queue.in_flight_bytes())
}

proptest! {
    /// Fault schedule × retry policy × transport × worker count: every
    /// job is bit-identical to its fault-free reference or a typed
    /// transport error; thread counts return to baseline (no leaked
    /// ranks), in-flight bytes return to zero (no leaked budget), and
    /// the whole outcome vector is reproducible run for run.
    #[test]
    fn chaos_schedules_never_break_determinism_or_leak(
        raw in prop::collection::vec(
            (
                prop::collection::vec(-3.0..3.0f64, 4),    // ansatz angles
                prop::collection::vec(0usize..4, 5),       // basis letters
                0usize..2,                                 // scope
            ),
            1..5,
        ),
        kill_per_mille in prop::sample::select(vec![0u16, 250, 500, 800]),
        retries in 0u32..=3,
        degrade_raw in 0usize..2,
        transport_raw in 0usize..2,
        workers in 1usize..=3,
        schedule_seed in 0u64..1_000_000,
        root_seed in 0u64..1_000_000,
    ) {
        let device = DeviceModel::mumbai_like();
        let specs: Vec<JobSpec> = raw
            .iter()
            .enumerate()
            .map(|(i, (angles, letters, scope))| JobSpec {
                job_id: 31 + 5 * i as u64,
                tenant: i as u64 % 2,
                circuit: ansatz(5, angles),
                measurements: vec![if *scope == 0 {
                    Measurement::subset(basis(5, letters))
                } else {
                    Measurement::global(basis(5, letters))
                }],
            })
            .collect();
        let expected = reference(&device, root_seed, &specs);

        // Kill-rank faults only: corruption completes "successfully"
        // with wrong amplitudes, which is the norm-drift oracle's beat
        // (qsim/tests/transport.rs), not the supervisor's.
        let schedule = FaultSchedule::new(schedule_seed, kill_per_mille, 0);
        let degrade = degrade_raw == 1;
        let policy = RetryPolicy::retries(retries).with_degrade(degrade);
        let transport = if transport_raw == 1 {
            TransportMode::Channel
        } else {
            TransportMode::Local
        };

        let baseline = thread_count();
        let (outcomes, leftover) =
            chaos_drain(&device, root_seed, &specs, schedule, policy, transport, workers);
        prop_assert_eq!(leftover, 0, "budget must be fully released after drain");
        if let Some(before) = baseline {
            if let Some(after) = settled_thread_count(before) {
                prop_assert!(
                    after <= before,
                    "rank/worker threads leaked: {} before the drain, {} after",
                    before,
                    after
                );
            }
        }

        let max_attempts = retries + 1;
        for (spec, outcome) in specs.iter().zip(&outcomes) {
            match outcome {
                Ok(out) => {
                    let (pmfs, cost) = &expected[&out.job_id];
                    prop_assert_eq!(&out.pmfs, pmfs,
                        "job {} must be bit-identical to its fault-free reference",
                        out.job_id);
                    prop_assert_eq!(out.cost, *cost, "job {} cost", out.job_id);
                    prop_assert!(out.attempts >= 1 && out.attempts <= max_attempts);
                    if out.attempts == 1 || !degrade {
                        prop_assert_eq!(out.degraded_to, None);
                    }
                    if out.degraded_to == Some(Degradation::Unsharded) {
                        prop_assert!(degrade && out.attempts >= 2);
                    }
                }
                Err(JobError::Transport(_)) => {
                    prop_assert!(kill_per_mille > 0,
                        "job {} failed without any fault scheduled", spec.job_id);
                }
                Err(e) => prop_assert!(false,
                    "job {} failed with a non-transport error: {e}", spec.job_id),
            }
        }

        // Chaos runs are exactly reproducible: same schedule, same
        // everything — same outcome vector, Ok and Err alike.
        let (again, _) =
            chaos_drain(&device, root_seed, &specs, schedule, policy, transport, workers);
        prop_assert_eq!(&outcomes, &again, "chaos runs must be reproducible");
    }
}

/// Certain-kill schedule + degrading retries: the ladder walks down to
/// unsharded serial and completes bit-identical, with honest
/// `attempts`/`degraded_to` bookkeeping.
#[test]
fn degradation_ladder_lands_unsharded_and_bit_identical() {
    let device = DeviceModel::mumbai_like();
    let angles: Vec<f64> = (0..8).map(|i| 0.4 * i as f64 - 1.3).collect();
    let specs: Vec<JobSpec> = (0..3u64)
        .map(|i| JobSpec {
            job_id: 200 + i,
            tenant: i % 2,
            circuit: ansatz(5, &angles),
            measurements: vec![Measurement::subset(basis(5, &[3, 0, 1, 0, 3]))],
        })
        .collect();
    let expected = reference(&device, 55, &specs);

    // Channel walks channel → local → unsharded (3 attempts); local has
    // no transport rung to shed first, so it lands unsharded on attempt 2.
    for (transport, attempts) in [(TransportMode::Local, 2), (TransportMode::Channel, 3)] {
        let (outcomes, leftover) = chaos_drain(
            &device,
            55,
            &specs,
            FaultSchedule::new(1, 1000, 0), // every sharded session dies
            RetryPolicy::retries(2),        // enough rungs to reach unsharded
            transport,
            2,
        );
        assert_eq!(leftover, 0);
        for out in outcomes {
            let out = out.unwrap_or_else(|e| panic!("{}: {e}", transport.name()));
            let (pmfs, cost) = &expected[&out.job_id];
            assert_eq!(&out.pmfs, pmfs, "{}: job {}", transport.name(), out.job_id);
            assert_eq!(out.cost, *cost);
            assert_eq!(out.attempts, attempts, "{}", transport.name());
            assert_eq!(out.degraded_to, Some(Degradation::Unsharded));
        }
    }
}

/// The same certain-kill schedule without degradation exhausts its
/// attempts and reports the last transport failure, typed.
#[test]
fn exhausted_retries_surface_the_typed_transport_error() {
    let device = DeviceModel::mumbai_like();
    let specs = vec![JobSpec {
        job_id: 300,
        tenant: 0,
        circuit: ansatz(5, &[0.3, -0.9, 1.4]),
        measurements: vec![Measurement::subset(basis(5, &[3, 3, 0, 0, 0]))],
    }];
    let (outcomes, leftover) = chaos_drain(
        &device,
        9,
        &specs,
        FaultSchedule::new(1, 1000, 0),
        RetryPolicy::retries(1).with_degrade(false),
        TransportMode::Channel,
        1,
    );
    assert_eq!(leftover, 0);
    match &outcomes[0] {
        Err(JobError::Transport(_)) => {}
        other => panic!("expected a typed transport error, got {other:?}"),
    }
}

/// A zero deadline expires every job — queued or running — with a typed
/// error, and the budget accounting survives.
#[test]
fn deadlines_expire_jobs_typed_and_release_budget() {
    let device = DeviceModel::mumbai_like();
    let queue = JobQueue::new(device, SHOTS, 7)
        .with_workers(2)
        .with_deadline(Duration::ZERO);
    let handles: Vec<_> = (0..4u64)
        .map(|i| {
            queue
                .submit(JobSpec {
                    job_id: i,
                    tenant: 0,
                    circuit: ansatz(4, &[0.5, -0.2]),
                    measurements: vec![Measurement::subset(basis(4, &[3, 0, 0, 0]))],
                })
                .unwrap()
        })
        .collect();
    queue.drain();
    for h in &handles {
        assert_eq!(h.wait(), Err(JobError::DeadlineExceeded));
    }
    assert_eq!(queue.in_flight_bytes(), 0);
    assert_eq!(queue.completed(), 4);

    // A per-job override beats the queue default: a generous explicit
    // deadline lets a job through the same queue.
    let h = queue
        .submit_with_deadline(
            JobSpec {
                job_id: 100,
                tenant: 0,
                circuit: ansatz(4, &[0.5, -0.2]),
                measurements: vec![Measurement::subset(basis(4, &[3, 0, 0, 0]))],
            },
            Duration::from_secs(60),
        )
        .unwrap();
    queue.drain();
    assert!(h.wait().is_ok());
}

/// Cancellation before dispatch completes the job with a typed error;
/// cancellation after completion never rewrites the result.
#[test]
fn cancellation_is_cooperative_and_never_rewrites_history() {
    let device = DeviceModel::mumbai_like();
    let queue = JobQueue::new(device, SHOTS, 3).with_workers(1);
    let mk = |id: u64| JobSpec {
        job_id: id,
        tenant: 0,
        circuit: ansatz(4, &[1.1, 0.2]),
        measurements: vec![Measurement::subset(basis(4, &[3, 0, 0, 0]))],
    };
    let doomed = queue.submit(mk(1)).unwrap();
    let survivor = queue.submit(mk(2)).unwrap();
    doomed.cancel();
    assert!(doomed.is_cancelled());
    assert!(!survivor.is_cancelled());
    queue.drain();
    assert_eq!(doomed.wait(), Err(JobError::Cancelled));
    let out = survivor.wait().expect("uncancelled co-tenant completes");
    assert_eq!(out.attempts, 1);

    // Cancel after the fact: the result stands.
    survivor.cancel();
    assert_eq!(survivor.try_result(), Some(Ok(out)));
    assert_eq!(queue.in_flight_bytes(), 0);
}

/// `wait_timeout` bounds the wait: times out (`None`) while nobody
/// drains, returns the result once a drain ran, and keeps returning it.
#[test]
fn wait_timeout_bounds_the_wait() {
    let device = DeviceModel::mumbai_like();
    let queue = JobQueue::new(device, SHOTS, 13).with_workers(1);
    let h = queue
        .submit(JobSpec {
            job_id: 1,
            tenant: 0,
            circuit: ansatz(4, &[0.7, -0.4]),
            measurements: vec![Measurement::subset(basis(4, &[3, 0, 0, 0]))],
        })
        .unwrap();
    assert_eq!(h.wait_timeout(Duration::from_millis(10)), None);
    queue.drain();
    let got = h
        .wait_timeout(Duration::from_millis(10))
        .expect("drained job is ready");
    assert!(got.is_ok());
    assert_eq!(h.wait_timeout(Duration::ZERO), Some(got));
}

/// Errors under memory pressure: a budget that serializes jobs, workers
/// parked on it, and every job failing — the drain still terminates,
/// every handle completes typed, and the budget is fully released. This
/// is the pressure-park path the completion guard protects.
#[test]
fn failing_jobs_under_memory_pressure_never_wedge_the_drain() {
    let device = DeviceModel::mumbai_like();
    let budget = (16u128 << 5) * 3 / 2; // one 5-qubit state at a time
    let queue = JobQueue::new(device, SHOTS, 21)
        .with_workers(4)
        .with_memory_budget(budget)
        .with_sharding(Sharding::Shards(4))
        .with_transport(TransportMode::Channel)
        .with_fault_schedule(FaultSchedule::new(2, 1000, 0))
        .with_retry_policy(RetryPolicy::none());
    let handles: Vec<_> = (0..6u64)
        .map(|i| {
            queue
                .submit(JobSpec {
                    job_id: 400 + i,
                    tenant: i % 3,
                    circuit: ansatz(5, &[0.2 * i as f64, 1.0]),
                    measurements: vec![Measurement::subset(basis(5, &[3, 0, 0, 0, 0]))],
                })
                .unwrap()
        })
        .collect();
    queue.drain();
    for h in &handles {
        match h.wait() {
            Err(JobError::Transport(_)) => {}
            other => panic!("expected typed transport failures, got {other:?}"),
        }
    }
    assert_eq!(queue.in_flight_bytes(), 0);
    assert!(queue.peak_in_flight_bytes() <= budget);
}

/// Backoff delays are bounded and cooperative: a retrying policy with a
/// real backoff still completes promptly and deterministically.
#[test]
fn backoff_is_bounded_and_does_not_change_results() {
    let device = DeviceModel::mumbai_like();
    let specs = vec![JobSpec {
        job_id: 500,
        tenant: 0,
        circuit: ansatz(5, &[0.9, -1.2]),
        measurements: vec![Measurement::global(basis(5, &[3, 1, 0, 0, 2]))],
    }];
    let expected = reference(&device, 31, &specs);
    let policy = RetryPolicy::retries(2).with_backoff(Duration::from_millis(1));
    let (outcomes, _) = chaos_drain(
        &device,
        31,
        &specs,
        FaultSchedule::new(4, 1000, 0),
        policy,
        TransportMode::Local,
        1,
    );
    let out = outcomes[0].as_ref().expect("ladder completes the job");
    let (pmfs, cost) = &expected[&out.job_id];
    assert_eq!(&out.pmfs, pmfs, "backoff must not change results");
    assert_eq!(out.cost, *cost);
    // Local transport: the sharded attempt dies, the unsharded rung lands.
    assert_eq!(out.attempts, 2);
}
