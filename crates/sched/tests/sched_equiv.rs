//! The scheduler's determinism oracle.
//!
//! The queue's contract is that scheduling is *invisible* in the results:
//! whatever the submission order, worker count, or interleaving, every
//! job's PMFs and metered cost are bit-identical to running that job
//! alone on a fresh sequential executor seeded by
//! [`sched::job_seed`]`(root_seed, job_id)`. The property test below
//! fuzzes job sets across tenants, shuffles submission orders, and varies
//! worker counts 1–4, comparing everything against that reference — plus
//! targeted tests for admission control, memory-pressure queueing,
//! weight-ordered draining, starvation-freedom, and plan-cache sharing.

use proptest::prelude::*;
use qnoise::DeviceModel;
use qsim::{Circuit, Parallelism};
use sched::{job_seed, AdmitError, JobQueue, JobSpec, MeasureScope, Measurement};
use std::collections::BTreeMap;
use vqe::SimExecutor;

const SHOTS: u64 = 64;

/// A hardware-efficient-style ansatz: RY layer, CX chain, RY layer.
/// `angles` must hold at least `2 * n` values.
fn ansatz(n: usize, angles: &[f64]) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.ry(q, angles[q]);
    }
    for q in 0..n.saturating_sub(1) {
        c.cx(q, q + 1);
    }
    for q in 0..n {
        c.ry(q, angles[n + q]);
    }
    c
}

/// Builds an `n`-qubit Pauli basis from letter codes (0=I 1=X 2=Y 3=Z),
/// forcing at least one non-identity letter so subset readouts are legal.
fn basis(n: usize, letters: &[usize]) -> pauli::PauliString {
    let mut chars: Vec<char> = letters
        .iter()
        .take(n)
        .map(|&l| ['I', 'X', 'Y', 'Z'][l % 4])
        .collect();
    chars.resize(n, 'I');
    if chars.iter().all(|&c| c == 'I') {
        chars[0] = 'Z';
    }
    chars.iter().collect::<String>().parse().unwrap()
}

/// The sequential reference: each job alone, on a fresh serial executor
/// seeded by `job_seed(root_seed, job_id)` — no queue, no sharing, no
/// concurrency. Returns per-job `(pmfs, cost)`.
fn reference(
    device: &DeviceModel,
    root_seed: u64,
    specs: &[JobSpec],
) -> BTreeMap<u64, (Vec<mitigation::Pmf>, u64)> {
    specs
        .iter()
        .map(|spec| {
            let mut exec =
                SimExecutor::new(device.clone(), SHOTS, job_seed(root_seed, spec.job_id))
                    .with_parallelism(Parallelism::Serial);
            let state = exec.prepare(&spec.circuit);
            let pmfs = spec
                .measurements
                .iter()
                .map(|m| match m.scope {
                    MeasureScope::Subset => exec.run_prepared(&state, &m.basis),
                    MeasureScope::Global => exec.run_prepared_all(&state, &m.basis),
                })
                .collect();
            (spec.job_id, (pmfs, exec.circuits_executed()))
        })
        .collect()
}

proptest! {
    /// N jobs × T tenants × shuffled submission orders × worker counts
    /// 1–4: every scheduled result equals the sequential reference, job
    /// for job and bit for bit, and cost accounting is exact.
    #[test]
    fn scheduled_results_match_the_sequential_reference(
        raw in prop::collection::vec(
            (
                2usize..=5,                                // register width
                prop::collection::vec(-3.0..3.0f64, 10),   // ansatz angles
                prop::collection::vec(0usize..4, 5),       // basis 1 letters
                prop::collection::vec(0usize..4, 5),       // basis 2 letters
                0usize..2,                                 // first scope
                1usize..=2,                                // measurements
            ),
            1..9,
        ),
        tenants in 1u64..=3,
        workers in 1usize..=4,
        perm in prop::sample::shuffle((0..16usize).collect::<Vec<_>>()),
        root_seed in 0u64..1_000_000,
    ) {
        let device = DeviceModel::mumbai_like();
        let specs: Vec<JobSpec> = raw
            .iter()
            .enumerate()
            .map(|(i, (n, angles, letters1, letters2, scope, nmeas))| {
                let first = if *scope == 0 {
                    Measurement::subset(basis(*n, letters1))
                } else {
                    Measurement::global(basis(*n, letters1))
                };
                let mut measurements = vec![first];
                if *nmeas == 2 {
                    // Second measurement flips the scope for coverage.
                    measurements.push(if *scope == 0 {
                        Measurement::global(basis(*n, letters2))
                    } else {
                        Measurement::subset(basis(*n, letters2))
                    });
                }
                JobSpec {
                    // Stable ids, deliberately not 0..len: seeds key off
                    // the id, never off the submission position.
                    job_id: 11 + 3 * i as u64,
                    tenant: i as u64 % tenants,
                    circuit: ansatz(*n, angles),
                    measurements,
                }
            })
            .collect();

        let expected = reference(&device, root_seed, &specs);
        let expected_total: u64 = expected.values().map(|(_, c)| *c).sum();

        // A case-specific permutation of the job indices (the generated
        // 0..16 shuffle filtered down to this case's length), and its
        // reverse — two different interleavings, two worker counts.
        let order: Vec<usize> = perm.iter().copied().filter(|&i| i < specs.len()).collect();
        let reversed: Vec<usize> = order.iter().rev().copied().collect();

        for (w, submit_order) in [(workers, &order), (workers % 4 + 1, &reversed)] {
            let queue = JobQueue::new(device.clone(), SHOTS, root_seed).with_workers(w);
            let handles: Vec<_> = submit_order
                .iter()
                .map(|&i| queue.submit(specs[i].clone()).unwrap())
                .collect();
            prop_assert_eq!(queue.pending(), specs.len());
            queue.drain();
            prop_assert_eq!(queue.completed() as usize, specs.len());
            prop_assert_eq!(queue.pending(), 0);

            let mut total = 0u64;
            for h in &handles {
                prop_assert!(h.is_done());
                let polled = h.try_result().expect("drained jobs are done");
                let out = h.wait().expect("admitted jobs complete");
                prop_assert_eq!(&Ok(out.clone()), &polled, "poll and wait agree");
                let (pmfs, cost) = &expected[&out.job_id];
                prop_assert_eq!(&out.pmfs, pmfs, "job {} PMFs drifted", out.job_id);
                prop_assert_eq!(out.cost, *cost, "job {} cost drifted", out.job_id);
                total += out.cost;
            }
            prop_assert_eq!(total, expected_total, "aggregate cost accounting");
        }
    }
}

#[test]
fn oversized_jobs_are_rejected_and_leave_the_queue_healthy() {
    let device = DeviceModel::mumbai_like();
    let queue = JobQueue::new(device, SHOTS, 5).with_memory_budget(16 << 8);

    // Over the register limit: can never be simulated.
    let err = queue
        .submit(JobSpec {
            job_id: 1,
            tenant: 0,
            circuit: Circuit::new(33),
            measurements: vec![],
        })
        .unwrap_err();
    assert_eq!(
        err,
        AdmitError::ExceedsSimulator {
            num_qubits: 33,
            bytes: 16 << 33
        }
    );

    // Over the queue's budget: could simulate, but never under this queue.
    let err = queue
        .submit(JobSpec {
            job_id: 1,
            tenant: 0,
            circuit: Circuit::new(12),
            measurements: vec![],
        })
        .unwrap_err();
    assert_eq!(
        err,
        AdmitError::ExceedsBudget {
            needed: 16 << 12,
            budget: 16 << 8
        }
    );

    // Rejections leave no trace: the id is still free, fitting jobs run.
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).cx(1, 2);
    let handle = queue
        .submit(JobSpec {
            job_id: 1,
            tenant: 0,
            circuit: c,
            measurements: vec![Measurement::subset("ZZZ".parse().unwrap())],
        })
        .unwrap();
    queue.drain();
    assert_eq!(handle.wait().unwrap().cost, 1);
    assert_eq!(queue.completed(), 1);
}

#[test]
fn admission_rejects_malformed_measurements_and_duplicate_ids() {
    let device = DeviceModel::noiseless(4);
    let queue = JobQueue::new(device, SHOTS, 5);
    let bell = || {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    };

    // Identity basis as a subset readout measures nothing.
    let err = queue
        .submit(JobSpec {
            job_id: 1,
            tenant: 0,
            circuit: bell(),
            measurements: vec![Measurement::subset("II".parse().unwrap())],
        })
        .unwrap_err();
    assert_eq!(err, AdmitError::IdentityBasis { measurement: 0 });

    // A basis wider than the register.
    let err = queue
        .submit(JobSpec {
            job_id: 1,
            tenant: 0,
            circuit: bell(),
            measurements: vec![Measurement::subset("ZZZ".parse().unwrap())],
        })
        .unwrap_err();
    assert_eq!(
        err,
        AdmitError::BasisTooWide {
            measurement: 0,
            basis_qubits: 3,
            circuit_qubits: 2
        }
    );

    // A global readout of more qubits than the device owns.
    let err = queue
        .submit(JobSpec {
            job_id: 1,
            tenant: 0,
            circuit: Circuit::new(6),
            measurements: vec![Measurement::global("ZIIIII".parse().unwrap())],
        })
        .unwrap_err();
    assert_eq!(
        err,
        AdmitError::DeviceTooSmall {
            measurement: 0,
            needed: 6,
            device: 4
        }
    );

    // Ids are single-use (seeds derive from them)…
    queue
        .submit(JobSpec {
            job_id: 1,
            tenant: 0,
            circuit: bell(),
            measurements: vec![Measurement::subset("ZZ".parse().unwrap())],
        })
        .unwrap();
    let err = queue
        .submit(JobSpec {
            job_id: 1,
            tenant: 1,
            circuit: bell(),
            measurements: vec![Measurement::subset("XX".parse().unwrap())],
        })
        .unwrap_err();
    assert_eq!(err, AdmitError::DuplicateJobId(1));
    queue.drain();
    assert_eq!(queue.completed(), 1);
}

#[test]
fn memory_pressure_queues_jobs_and_never_breaks_the_budget_or_results() {
    let device = DeviceModel::mumbai_like();
    let root_seed = 17;
    let specs: Vec<JobSpec> = (0..6)
        .map(|i| {
            let mut c = Circuit::new(6);
            for q in 0..6 {
                c.ry(q, 0.3 + i as f64);
            }
            for q in 0..5 {
                c.cx(q, q + 1);
            }
            JobSpec {
                job_id: 100 + i,
                tenant: i % 2,
                circuit: c,
                measurements: vec![Measurement::subset("ZZZZZZ".parse().unwrap())],
            }
        })
        .collect();
    let expected = reference(&device, root_seed, &specs);

    // Budget holds one 6-qubit state (1024 B) with room to spare but not
    // two — so even with 4 workers, jobs run one at a time.
    let budget = (16u128 << 6) * 3 / 2;
    let queue = JobQueue::new(device, SHOTS, root_seed)
        .with_workers(4)
        .with_memory_budget(budget);
    let handles: Vec<_> = specs
        .iter()
        .map(|s| queue.submit(s.clone()).unwrap())
        .collect();
    queue.drain();

    assert_eq!(queue.completed(), 6);
    assert!(
        queue.peak_in_flight_bytes() <= budget,
        "peak {} exceeded budget {budget}",
        queue.peak_in_flight_bytes()
    );
    assert_eq!(queue.peak_in_flight_bytes(), 16 << 6);
    for h in &handles {
        let out = h.wait().unwrap();
        let (pmfs, cost) = &expected[&out.job_id];
        assert_eq!(&out.pmfs, pmfs, "memory pressure must not change results");
        assert_eq!(out.cost, *cost);
    }
}

#[test]
fn queue_drains_in_weight_order_under_one_worker() {
    let device = DeviceModel::noiseless(3);
    let queue = JobQueue::new(device, SHOTS, 3).with_workers(1);
    queue.set_tenant_weight(0, 4);
    queue.set_tenant_weight(1, 2);
    queue.set_tenant_weight(2, 1);
    // Interleave submissions so completion order reflects policy, not
    // submission order. Job id encodes the tenant in its tens digit.
    for k in 0..4u64 {
        for tenant in [2u64, 1, 0] {
            let mut c = Circuit::new(2);
            c.ry(0, 0.1 + k as f64).cx(0, 1);
            queue
                .submit(JobSpec {
                    job_id: tenant * 10 + k,
                    tenant,
                    circuit: c,
                    measurements: vec![Measurement::subset("ZZ".parse().unwrap())],
                })
                .unwrap();
        }
    }
    queue.drain();
    let order = queue.completion_order();
    assert_eq!(order.len(), 12);
    // CFS with weights 4:2:1 puts exactly 4, 2 and 1 completions from the
    // respective tenants in the first seven slots.
    let prefix_count = |t: u64| order.iter().take(7).filter(|&&id| id / 10 == t).count();
    assert_eq!(
        (prefix_count(0), prefix_count(1), prefix_count(2)),
        (4, 2, 1),
        "weighted shares in the first 7 completions: {order:?}"
    );
}

#[test]
fn a_flooding_tenant_cannot_starve_a_meek_one() {
    let device = DeviceModel::noiseless(3);
    let queue = JobQueue::new(device, SHOTS, 3).with_workers(1);
    // Tenant 0 floods 20 jobs first; the meek tenant 1 submits one job
    // last. Equal weights.
    for k in 0..20u64 {
        let mut c = Circuit::new(2);
        c.ry(0, k as f64 * 0.2).cx(0, 1);
        queue
            .submit(JobSpec {
                job_id: k,
                tenant: 0,
                circuit: c,
                measurements: vec![Measurement::subset("ZZ".parse().unwrap())],
            })
            .unwrap();
    }
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1);
    queue
        .submit(JobSpec {
            job_id: 999,
            tenant: 1,
            circuit: c,
            measurements: vec![Measurement::subset("XX".parse().unwrap())],
        })
        .unwrap();
    queue.drain();
    let order = queue.completion_order();
    let meek_pos = order.iter().position(|&id| id == 999).unwrap();
    assert!(
        meek_pos < 2,
        "meek tenant's job must run among the first two dispatches \
         despite 20 queued rivals, completed at {meek_pos}: {order:?}"
    );
}

#[test]
fn tenants_running_one_ansatz_family_share_compiled_plans() {
    let device = DeviceModel::mumbai_like();
    let queue = JobQueue::new(device, SHOTS, 23).with_workers(4);
    // 4 tenants × 3 jobs, all the same ansatz structure with different
    // angles, all measured in the same X⊗X basis (a non-empty rotation).
    let mut job_id = 0;
    for tenant in 0..4u64 {
        for k in 0..3 {
            let mut c = Circuit::new(3);
            for q in 0..3 {
                c.ry(q, 0.1 + tenant as f64 + k as f64);
            }
            c.cx(0, 1).cx(1, 2);
            queue
                .submit(JobSpec {
                    job_id,
                    tenant,
                    circuit: c,
                    measurements: vec![Measurement::subset("XXX".parse().unwrap())],
                })
                .unwrap();
            job_id += 1;
        }
    }
    queue.drain();
    assert_eq!(queue.completed(), 12);
    let (structures, hits, misses) = queue.plan_cache_stats();
    // Two structures total — the shared ansatz shape and the shared
    // rotation shape — compiled once each; everything else rebinds.
    assert_eq!(structures, 2, "tenants share the family's structures");
    assert_eq!(misses, 2, "one compile per structure across all tenants");
    assert_eq!(hits, 22, "12 preparations + 12 rotations, minus 2 compiles");
}

#[test]
fn results_are_a_function_of_job_id_not_submission_order() {
    let device = DeviceModel::mumbai_like();
    let mk = |angle: f64| {
        let mut c = Circuit::new(3);
        c.ry(0, angle).cx(0, 1).cx(1, 2);
        c
    };
    let specs = vec![
        JobSpec {
            job_id: 7,
            tenant: 0,
            circuit: mk(0.4),
            measurements: vec![Measurement::global("ZZZ".parse().unwrap())],
        },
        JobSpec {
            job_id: 8,
            tenant: 1,
            circuit: mk(-1.9),
            measurements: vec![Measurement::subset("XIZ".parse().unwrap())],
        },
    ];
    let expected = reference(&device, 42, &specs);
    for order in [[0usize, 1], [1, 0]] {
        for workers in [1usize, 3] {
            let queue = JobQueue::new(device.clone(), SHOTS, 42).with_workers(workers);
            let handles: Vec<_> = order
                .iter()
                .map(|&i| queue.submit(specs[i].clone()).unwrap())
                .collect();
            queue.drain();
            for h in &handles {
                let out = h.wait().unwrap();
                let (pmfs, cost) = &expected[&out.job_id];
                assert_eq!(&out.pmfs, pmfs);
                assert_eq!(out.cost, *cost);
            }
        }
    }
}

/// Sharded job execution rides the shard-transport seam: whichever
/// backend moves the amplitudes — zero-copy in-process swaps or
/// message-passing rank threads — every job's PMFs and cost stay
/// bit-identical to the dense sequential reference. This is the test
/// the CI `VARSAW_SHARD_TRANSPORT` matrix leans on.
#[test]
fn sharded_jobs_match_the_reference_under_both_transports() {
    use qsim::{Sharding, TransportMode};

    let device = DeviceModel::mumbai_like();
    let angles: Vec<f64> = (0..16).map(|i| 0.3 * i as f64 - 1.7).collect();
    let specs: Vec<JobSpec> = (0..4u64)
        .map(|i| JobSpec {
            job_id: 100 + i,
            tenant: i % 2,
            circuit: ansatz(5, &angles[i as usize..]),
            measurements: vec![
                Measurement::global(basis(5, &[3, 3, 0, 1, 2])),
                Measurement::subset(basis(5, &[0, 1, 0, 3, 0])),
            ],
        })
        .collect();
    let expected = reference(&device, 77, &specs);

    for transport in [TransportMode::Local, TransportMode::Channel] {
        let queue = JobQueue::new(device.clone(), SHOTS, 77)
            .with_workers(3)
            .with_sharding(Sharding::Shards(4))
            .with_transport(transport);
        let handles: Vec<_> = specs
            .iter()
            .map(|s| queue.submit(s.clone()).unwrap())
            .collect();
        queue.drain();
        for h in &handles {
            let out = h.wait().unwrap_or_else(|e| panic!("{transport:?}: {e}"));
            let (pmfs, cost) = &expected[&out.job_id];
            assert_eq!(&out.pmfs, pmfs, "{transport:?}: job {} PMFs", out.job_id);
            assert_eq!(out.cost, *cost, "{transport:?}: job {} cost", out.job_id);
        }
    }
}
