//! Telemetry transparency oracle for the job queue.
//!
//! Instrumentation must be invisible in the results: with per-job
//! recorders active, the queue's PMFs and metered cost stay bit-identical
//! to the sequential reference — the same contract `sched_equiv` proves,
//! re-asserted here under spans. On top of that, every completed job now
//! carries wall-clock milestones, which must be monotonic and internally
//! consistent regardless of the telemetry feature.

use qnoise::DeviceModel;
use qsim::{Circuit, Parallelism};
use sched::{job_seed, JobQueue, JobSpec, MeasureScope, Measurement};
use vqe::SimExecutor;

const SHOTS: u64 = 64;
const ROOT_SEED: u64 = 0xA11CE;

/// A small hardware-efficient ansatz.
fn ansatz(n: usize, shift: f64) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.ry(q, shift + 0.3 * q as f64);
    }
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c
}

fn specs() -> Vec<JobSpec> {
    (0..6u64)
        .map(|id| JobSpec {
            job_id: id,
            tenant: id % 2,
            circuit: ansatz(4, 0.1 + 0.2 * id as f64),
            measurements: vec![
                Measurement {
                    basis: "ZZII".parse().unwrap(),
                    scope: MeasureScope::Subset,
                },
                Measurement {
                    basis: "IXXI".parse().unwrap(),
                    scope: MeasureScope::Global,
                },
            ],
        })
        .collect()
}

#[test]
fn job_timing_is_monotonic_and_consistent() {
    telemetry::set_active(true);
    let queue = JobQueue::new(DeviceModel::mumbai_like(), SHOTS, ROOT_SEED).with_workers(2);
    let handles: Vec<_> = specs()
        .into_iter()
        .map(|s| queue.submit(s).expect("admitted"))
        .collect();
    queue.drain();
    for h in handles {
        let out = h.try_result().expect("completed").expect("succeeded");
        let t = out.timing;
        assert!(
            t.enqueued_at <= t.dispatched_at && t.dispatched_at <= t.completed_at,
            "milestones out of order for job {}",
            out.job_id
        );
        // The split is exact arithmetic over the monotonic milestones.
        assert_eq!(t.queue_wait() + t.run_time(), t.total());
    }
}

#[test]
fn telemetry_never_perturbs_queue_results() {
    telemetry::set_active(true);
    let device = DeviceModel::mumbai_like();
    let queue = JobQueue::new(device.clone(), SHOTS, ROOT_SEED).with_workers(3);
    let handles: Vec<_> = specs()
        .into_iter()
        .map(|s| queue.submit(s).expect("admitted"))
        .collect();
    queue.drain();

    for (spec, h) in specs().iter().zip(handles) {
        let out = h.try_result().expect("completed").expect("succeeded");
        // The sequential reference: this job alone, fresh serial executor.
        let mut exec = SimExecutor::new(device.clone(), SHOTS, job_seed(ROOT_SEED, spec.job_id))
            .with_parallelism(Parallelism::Serial);
        let state = exec.prepare(&spec.circuit);
        let reference: Vec<_> = spec
            .measurements
            .iter()
            .map(|m| match m.scope {
                MeasureScope::Subset => exec.run_prepared(&state, &m.basis),
                MeasureScope::Global => exec.run_prepared_all(&state, &m.basis),
            })
            .collect();
        assert_eq!(out.pmfs, reference, "job {} diverged", spec.job_id);
        assert_eq!(out.cost, exec.circuits_executed());

        // With the feature compiled in and recording on, every job must
        // carry a populated breakdown; compiled out, the field is None.
        #[cfg(feature = "telemetry")]
        assert!(
            out.stages.as_ref().is_some_and(|s| !s.is_empty()),
            "job {} missing stage breakdown",
            out.job_id
        );
        #[cfg(not(feature = "telemetry"))]
        assert!(out.stages.is_none());
    }

    // The queue aggregate is the fold of the per-job breakdowns.
    #[cfg(feature = "telemetry")]
    {
        let agg = queue.telemetry_snapshot();
        assert!(!agg.is_empty());
        assert!(agg.stat(telemetry::Stage::SchedQueueWait).count >= 6);
    }
    #[cfg(not(feature = "telemetry"))]
    assert!(queue.telemetry_snapshot().is_empty());
}
