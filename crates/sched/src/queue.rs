//! The multi-tenant job queue above [`vqe::SimExecutor`].

use crate::fair::{FairScheduler, Pick};
use mitigation::Pmf;
use pauli::PauliString;
use qnoise::DeviceModel;
use qsim::{
    CapacityError, Circuit, FaultSchedule, Parallelism, Sharding, SharedPlanCache, TransportError,
    TransportMode,
};
use std::collections::HashSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use vqe::{PrepareError, SimExecutor};

/// The dense-plane representation limit (qubits) of the statevector
/// engine; see [`qsim::Statevector::try_zero`]. Jobs past it can never
/// run, so admission rejects them outright.
const SIM_MAX_QUBITS: usize = 30;

/// Mixes a queue's root seed with a job's stable id into that job's
/// executor seed — a SplitMix64-style finalizer, so nearby job ids land
/// on unrelated streams.
///
/// The seed is a pure function of `(root_seed, job_id)`: **not** of
/// submission order, worker count, or scheduling interleaving. This is
/// what makes every scheduled result bit-identical to a sequential
/// reference run of the same job, and it is exported so such references
/// can be built without going through the queue:
///
/// ```
/// let a = sched::job_seed(42, 7);
/// assert_eq!(a, sched::job_seed(42, 7));   // stable
/// assert_ne!(a, sched::job_seed(42, 8));   // decorrelated neighbours
/// assert_ne!(a, sched::job_seed(43, 7));
/// ```
pub fn job_seed(root_seed: u64, job_id: u64) -> u64 {
    let mut z = root_seed ^ job_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which qubits one measurement of a job reads out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeasureScope {
    /// Measure only the basis' support — JigSaw/VarSaw-style subset
    /// execution ([`SimExecutor::run_prepared`]).
    Subset,
    /// Measure the full register — Qiskit-style Global execution
    /// ([`SimExecutor::run_prepared_all`]).
    Global,
}

/// One measurement a job performs on its prepared state.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// The Pauli basis to rotate into.
    pub basis: PauliString,
    /// Whether the readout covers the basis support or the full register.
    pub scope: MeasureScope,
}

impl Measurement {
    /// A subset measurement of `basis` (readout on its support only).
    pub fn subset(basis: PauliString) -> Self {
        Measurement {
            basis,
            scope: MeasureScope::Subset,
        }
    }

    /// A full-register (Global) measurement of `basis`.
    pub fn global(basis: PauliString) -> Self {
        Measurement {
            basis,
            scope: MeasureScope::Global,
        }
    }
}

/// One unit of schedulable work: prepare `circuit` from `|0…0⟩`, then
/// perform each measurement in order on the prepared state.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Caller-assigned stable identity. Seeds derive from it (see
    /// [`job_seed`]), so resubmitting the same id under the same root
    /// seed reproduces the same result bit for bit; the queue rejects
    /// duplicates ([`AdmitError::DuplicateJobId`]) to keep ids honest.
    pub job_id: u64,
    /// The tenant this job bills to (fair-queueing key).
    pub tenant: u64,
    /// The state-preparation circuit.
    pub circuit: Circuit,
    /// Measurements to run on the prepared state, in order. May be empty
    /// (a prepare-only job, costing zero metered circuits).
    pub measurements: Vec<Measurement>,
}

/// Wall-clock milestones of a completed job: admission, dispatch, and
/// completion. Recorded unconditionally — the instants are cheap, and
/// the queue-wait / run-time split is the first thing an operator asks
/// a scheduler for. Not part of the determinism contract: [`JobOutput`]
/// equality ignores timing.
#[derive(Clone, Copy, Debug)]
pub struct JobTiming {
    /// When [`JobQueue::submit`] admitted the job.
    pub enqueued_at: Instant,
    /// When a worker picked the job off the fair scheduler.
    pub dispatched_at: Instant,
    /// When the job's result was assembled (success or typed error —
    /// the slot is filled immediately after).
    pub completed_at: Instant,
}

impl JobTiming {
    /// Time spent admitted but not yet dispatched.
    pub fn queue_wait(&self) -> Duration {
        self.dispatched_at.duration_since(self.enqueued_at)
    }

    /// Time from dispatch to completion (all attempts and backoffs).
    pub fn run_time(&self) -> Duration {
        self.completed_at.duration_since(self.dispatched_at)
    }

    /// End-to-end latency from admission to completion.
    pub fn total(&self) -> Duration {
        self.completed_at.duration_since(self.enqueued_at)
    }
}

/// A completed job's results.
#[derive(Clone, Debug)]
pub struct JobOutput {
    /// The id from the [`JobSpec`].
    pub job_id: u64,
    /// The tenant from the [`JobSpec`].
    pub tenant: u64,
    /// One outcome PMF per measurement, in spec order.
    pub pmfs: Vec<Pmf>,
    /// Metered circuit executions (the paper's Cost metric) — exactly
    /// what a sequential [`SimExecutor`] run of this job would report.
    /// Failed attempts meter nothing: only the successful attempt's cost
    /// is billed, so retries never inflate a tenant's Cost.
    pub cost: u64,
    /// Execution attempts the supervisor spent (1 = no fault seen).
    pub attempts: u32,
    /// How far the supervisor degraded the execution tier to complete
    /// this job (`None` = ran at the configured tier). Every tier is
    /// bit-identical, so degradation never changes the PMFs.
    pub degraded_to: Option<Degradation>,
    /// Wall-clock milestones (enqueue → dispatch → complete).
    pub timing: JobTiming,
    /// Per-stage time breakdown of this job's execution — `Some` only
    /// when the `telemetry` feature is compiled in and recording is
    /// active ([`telemetry::set_active`] / `VARSAW_TELEMETRY`).
    pub stages: Option<telemetry::TelemetrySnapshot>,
}

impl PartialEq for JobOutput {
    /// Equality covers only the deterministic payload. Timing and stage
    /// breakdowns are wall-clock observations — two bit-identical runs
    /// of the same job never clock the same nanoseconds, and the
    /// determinism oracles compare whole outputs.
    fn eq(&self, other: &Self) -> bool {
        self.job_id == other.job_id
            && self.tenant == other.tenant
            && self.pmfs == other.pmfs
            && self.cost == other.cost
            && self.attempts == other.attempts
            && self.degraded_to == other.degraded_to
    }
}

/// How far the supervisor's degradation ladder stepped a job down from
/// its configured execution tier after repeated transport faults. All
/// tiers are bit-identical — degradation trades communication realism
/// for reliability, never results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Degradation {
    /// Fell back from the message-passing channel transport to
    /// in-process local swaps (still sharded).
    LocalTransport,
    /// Fell back to unsharded serial execution, which opens no transport
    /// session and therefore cannot fault.
    Unsharded,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Degradation::LocalTransport => write!(f, "local transport"),
            Degradation::Unsharded => write!(f, "unsharded serial"),
        }
    }
}

/// How the [`JobQueue`] supervisor responds to a [`JobError::Transport`]
/// failure: up to `max_attempts` total attempts with deterministic
/// exponential backoff, optionally stepping down the degradation ladder
/// (channel transport → local transport → unsharded serial) one rung per
/// failure.
///
/// Retries preserve the queue's determinism contract: every attempt
/// rebuilds the job's executor from the same [`job_seed`], so a job that
/// eventually succeeds is bit-identical to its fault-free reference no
/// matter how many attempts it took — and failed attempts consume no
/// shared RNG, so co-tenants are never perturbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (≥ 1): the first run plus up to
    /// `max_attempts - 1` retries.
    pub max_attempts: u32,
    /// Base backoff before the first retry; attempt `n` waits
    /// `backoff · 2ⁿ⁻¹`, capped at one second. The wait is cooperative:
    /// cancellation and deadlines are honored while backing off.
    pub backoff: Duration,
    /// Whether retries may step down the degradation ladder. When
    /// `false`, every attempt runs at the configured tier.
    pub degrade: bool,
}

impl RetryPolicy {
    /// No supervision: one attempt, no backoff, no degradation.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
            degrade: true,
        }
    }

    /// `retries` retries after the first attempt, no backoff, with
    /// degradation enabled — the common test/chaos shape.
    pub fn retries(retries: u32) -> Self {
        RetryPolicy {
            max_attempts: retries.saturating_add(1),
            backoff: Duration::ZERO,
            degrade: true,
        }
    }

    /// The environment-configured policy: `VARSAW_JOB_RETRIES` retries
    /// ([`parallel::job_retries`], default 0) with a 10 ms base backoff
    /// and degradation enabled.
    pub fn from_env() -> Self {
        RetryPolicy {
            max_attempts: parallel::job_retries().unwrap_or(0).saturating_add(1),
            backoff: Duration::from_millis(10),
            degrade: true,
        }
    }

    /// Replaces the base backoff.
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Replaces the degradation setting.
    pub fn with_degrade(mut self, degrade: bool) -> Self {
        self.degrade = degrade;
        self
    }

    /// The deterministic backoff before retrying after failed attempt
    /// `attempt` (1-based): `backoff · 2^(attempt−1)`, capped at 1 s.
    fn delay(&self, attempt: u32) -> Duration {
        const CAP: Duration = Duration::from_secs(1);
        let shift = attempt.saturating_sub(1).min(16);
        self.backoff.saturating_mul(1 << shift).min(CAP)
    }
}

impl Default for RetryPolicy {
    /// [`RetryPolicy::none`] — supervision is opt-in per queue (or via
    /// the environment through [`RetryPolicy::from_env`], which
    /// [`JobQueue::new`] installs).
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Why a submitted job was refused at admission. Admission rejects only
/// jobs that can **never** run; jobs that merely don't fit right now are
/// queued and dispatched once running jobs release capacity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The job's dense state exceeds the queue's memory budget, so no
    /// schedule could ever hold it.
    ExceedsBudget {
        /// Bytes the job's statevector needs ([`qsim::CircuitStats::state_bytes`]).
        needed: u128,
        /// The queue's configured budget.
        budget: u128,
    },
    /// The register exceeds the simulator's dense representation limit.
    ExceedsSimulator {
        /// The job's register width.
        num_qubits: usize,
        /// Bytes its dense state would need.
        bytes: u128,
    },
    /// A job with this id was already submitted; ids must be unique
    /// because seeds derive from them.
    DuplicateJobId(u64),
    /// A subset measurement of the identity basis reads nothing out.
    IdentityBasis {
        /// Index into [`JobSpec::measurements`].
        measurement: usize,
    },
    /// A measurement basis is wider than the job's register.
    BasisTooWide {
        /// Index into [`JobSpec::measurements`].
        measurement: usize,
        /// The basis width.
        basis_qubits: usize,
        /// The register width.
        circuit_qubits: usize,
    },
    /// A measurement reads out more qubits than the device has.
    DeviceTooSmall {
        /// Index into [`JobSpec::measurements`].
        measurement: usize,
        /// Qubits the readout needs.
        needed: usize,
        /// Qubits the device has.
        device: usize,
    },
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::ExceedsBudget { needed, budget } => write!(
                f,
                "job needs {needed} bytes of state but the queue budget is {budget}"
            ),
            AdmitError::ExceedsSimulator { num_qubits, bytes } => write!(
                f,
                "a {num_qubits}-qubit register ({bytes} bytes) exceeds the \
                 simulator's {SIM_MAX_QUBITS}-qubit dense limit"
            ),
            AdmitError::DuplicateJobId(id) => {
                write!(f, "job id {id} was already submitted")
            }
            AdmitError::IdentityBasis { measurement } => write!(
                f,
                "measurement {measurement} is a subset readout of the identity basis"
            ),
            AdmitError::BasisTooWide {
                measurement,
                basis_qubits,
                circuit_qubits,
            } => write!(
                f,
                "measurement {measurement} acts on {basis_qubits} qubits but the \
                 register has {circuit_qubits}"
            ),
            AdmitError::DeviceTooSmall {
                measurement,
                needed,
                device,
            } => write!(
                f,
                "measurement {measurement} reads out {needed} qubits but the \
                 device has {device}"
            ),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Why an admitted job failed during execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The state allocation was refused at run time (e.g. the allocator
    /// rejected the reservation even though the job was within budget).
    Capacity(CapacityError),
    /// Sharded preparation failed inside the shard-transport layer (a
    /// rank disconnected or timed out) — see [`qsim::TransportError`].
    /// Unlike a capacity refusal, this is a property of the execution,
    /// not the request: the supervisor retries it under the queue's
    /// [`RetryPolicy`]; this error reports the **last** attempt's
    /// failure after the policy was exhausted.
    Transport(TransportError),
    /// The job was cancelled through [`JobHandle::cancel`] before it
    /// completed (checked at dispatch, between measurements, and while
    /// backing off between retry attempts).
    Cancelled,
    /// The job's deadline passed before it completed (see
    /// [`JobQueue::with_deadline`] / [`JobQueue::submit_with_deadline`];
    /// checked at the same cooperative boundaries as cancellation).
    DeadlineExceeded,
    /// The job's execution panicked. The supervisor converts the unwind
    /// into this typed error so the worker survives, the job's memory
    /// budget is released, and parked co-workers are woken — a panicking
    /// job can neither deadlock the drain nor leak budget.
    Panicked(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Capacity(e) => write!(f, "job failed to allocate its state: {e}"),
            JobError::Transport(e) => write!(f, "job failed in shard transport: {e}"),
            JobError::Cancelled => write!(f, "job was cancelled"),
            JobError::DeadlineExceeded => write!(f, "job missed its deadline"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<CapacityError> for JobError {
    fn from(e: CapacityError) -> Self {
        JobError::Capacity(e)
    }
}

impl From<PrepareError> for JobError {
    fn from(e: PrepareError) -> Self {
        match e {
            PrepareError::Capacity(e) => JobError::Capacity(e),
            PrepareError::Transport(e) => JobError::Transport(e),
        }
    }
}

/// The write-once completion cell a [`JobHandle`] watches.
#[derive(Debug, Default)]
struct Slot {
    cell: Mutex<Option<Result<JobOutput, JobError>>>,
    ready: Condvar,
    /// Set by [`JobHandle::cancel`]; workers observe it cooperatively at
    /// session boundaries.
    cancelled: AtomicBool,
}

impl Slot {
    fn fill(&self, result: Result<JobOutput, JobError>) {
        let mut cell = lock(&self.cell);
        debug_assert!(cell.is_none(), "a job completes exactly once");
        *cell = Some(result);
        self.ready.notify_all();
    }
}

/// A caller's view of one submitted job: poll with
/// [`JobHandle::try_result`] or block with [`JobHandle::wait`]. Handles
/// are cheap to clone and results stay readable after completion.
#[derive(Clone, Debug)]
pub struct JobHandle {
    job_id: u64,
    tenant: u64,
    slot: Arc<Slot>,
}

impl JobHandle {
    /// The id of the job this handle watches.
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// The tenant the job bills to.
    pub fn tenant(&self) -> u64 {
        self.tenant
    }

    /// Whether the job has completed (successfully or not).
    pub fn is_done(&self) -> bool {
        lock(&self.slot.cell).is_some()
    }

    /// Polls for the result without blocking: `None` while the job is
    /// still queued or running.
    pub fn try_result(&self) -> Option<Result<JobOutput, JobError>> {
        lock(&self.slot.cell).clone()
    }

    /// Blocks until the job completes and returns its result. Only
    /// returns while a [`JobQueue::drain`] is running (or has run) —
    /// waiting on a job nobody drains blocks forever, like any unfired
    /// future.
    pub fn wait(&self) -> Result<JobOutput, JobError> {
        let mut cell = lock(&self.slot.cell);
        loop {
            if let Some(result) = cell.as_ref() {
                return result.clone();
            }
            cell = self
                .slot
                .ready
                .wait(cell)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks until the job completes or `timeout` elapses: `None` on
    /// timeout, `Some(result)` otherwise. The bounded twin of
    /// [`JobHandle::wait`] — callers supervising a drain from outside
    /// (or guarding against a wedged rank) poll with this instead of
    /// blocking forever.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<JobOutput, JobError>> {
        let deadline = Instant::now() + timeout;
        let mut cell = lock(&self.slot.cell);
        loop {
            if let Some(result) = cell.as_ref() {
                return Some(result.clone());
            }
            let remaining = deadline.checked_duration_since(Instant::now())?;
            cell = self
                .slot
                .ready
                .wait_timeout(cell, remaining)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Requests cooperative cancellation: the job completes with
    /// [`JobError::Cancelled`] at its next session boundary (dispatch,
    /// between measurements, or mid-backoff). A job that already
    /// completed keeps its result — cancellation never rewrites history.
    /// Idempotent and safe from any thread.
    pub fn cancel(&self) {
        self.slot.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested (not whether it has been
    /// observed — poll [`JobHandle::try_result`] for the outcome).
    pub fn is_cancelled(&self) -> bool {
        self.slot.cancelled.load(Ordering::Relaxed)
    }
}

/// A job queued for dispatch.
#[derive(Debug)]
struct PendingJob {
    spec: JobSpec,
    /// Dense state footprint, the unit of admission accounting.
    bytes: u128,
    /// Estimated metered cost (measurement count), the unit of fairness
    /// accounting.
    cost: u64,
    slot: Arc<Slot>,
    /// Absolute completion deadline (clock starts at submission).
    deadline: Option<Instant>,
    /// When the job was admitted — the anchor for queue-wait accounting.
    enqueued_at: Instant,
}

/// Mutable scheduler state behind the queue's mutex.
#[derive(Debug)]
struct SchedState {
    sched: FairScheduler<PendingJob>,
    seen_ids: HashSet<u64>,
    in_flight_bytes: u128,
    in_flight_jobs: usize,
    peak_in_flight_bytes: u128,
    completion_log: Vec<u64>,
}

/// Locks a mutex, recovering the guard from a poisoned lock — scheduler
/// state stays readable even if a worker panicked mid-drain.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// A multi-tenant job queue above [`vqe::SimExecutor`].
///
/// - **Admission control**: [`JobQueue::submit`] sizes each job by its
///   dense state footprint and rejects — with a typed [`AdmitError`],
///   never a panic — anything that could never run (over the memory
///   budget, past the simulator's representation limit, malformed
///   measurements, duplicate ids). Admitted jobs that merely don't fit
///   *right now* queue until running jobs release capacity.
/// - **Weighted fairness**: dispatch follows per-tenant virtual runtime
///   (the `fair` module); [`JobQueue::set_tenant_weight`] skews
///   capacity proportionally, and a flooding tenant cannot starve others.
/// - **Determinism**: each job runs on a fresh executor seeded by
///   [`job_seed`]`(root_seed, job_id)` and pinned serial, so results and
///   per-job cost are bit-identical to a sequential reference run —
///   independent of submission order, worker count, and interleaving.
/// - **Plan sharing**: all job executors plan through one
///   [`SharedPlanCache`], so tenants running the same ansatz family
///   share compiled circuit structures ([`JobQueue::plan_cache_stats`]).
///
/// # Example
///
/// ```
/// use qnoise::DeviceModel;
/// use qsim::Circuit;
/// use sched::{JobQueue, JobSpec, Measurement};
///
/// let queue = JobQueue::new(DeviceModel::mumbai_like(), 256, 9).with_workers(2);
/// let mut handles = Vec::new();
/// for (job_id, tenant) in [(1u64, 0u64), (2, 1)] {
///     let mut c = Circuit::new(2);
///     c.h(0).cx(0, 1);
///     handles.push(
///         queue
///             .submit(JobSpec {
///                 job_id,
///                 tenant,
///                 circuit: c,
///                 measurements: vec![Measurement::subset("ZZ".parse().unwrap())],
///             })
///             .unwrap(),
///     );
/// }
/// queue.drain();
/// for h in &handles {
///     let out = h.wait().unwrap();
///     assert_eq!(out.cost, 1);
///     assert_eq!(out.pmfs[0].qubits(), &[0, 1]);
/// }
/// assert_eq!(queue.completed(), 2);
/// ```
#[derive(Debug)]
pub struct JobQueue {
    device: DeviceModel,
    shots: u64,
    root_seed: u64,
    workers: usize,
    budget: u128,
    sharding: Sharding,
    transport: TransportMode,
    retry: RetryPolicy,
    /// Default per-job deadline applied at submission (jobs can override
    /// via [`JobQueue::submit_with_deadline`]).
    default_deadline: Option<Duration>,
    /// Chaos seam: each attempt of each job draws its transport faults
    /// from this schedule on an attempt-specific stream.
    fault_schedule: FaultSchedule,
    shared: SharedPlanCache,
    /// Aggregate stage telemetry folded in from every completed job —
    /// see [`JobQueue::telemetry_snapshot`].
    telemetry: telemetry::Recorder,
    state: Mutex<SchedState>,
    /// Workers park here when nothing runnable fits; completions and
    /// submissions wake them.
    wake: Condvar,
}

impl JobQueue {
    /// A queue executing on `device` with `shots` shots per measurement.
    /// Worker count defaults to [`parallel::sched_workers`], the memory
    /// budget to unlimited (the simulator's per-job representation limit
    /// still applies), and sharding to off.
    pub fn new(device: DeviceModel, shots: u64, root_seed: u64) -> Self {
        JobQueue {
            device,
            shots,
            root_seed,
            workers: parallel::sched_workers(),
            budget: u128::MAX,
            sharding: Sharding::Off,
            transport: TransportMode::from_env(),
            retry: RetryPolicy::from_env(),
            default_deadline: parallel::job_deadline_ms().map(Duration::from_millis),
            fault_schedule: FaultSchedule::none(),
            shared: SharedPlanCache::new(),
            telemetry: telemetry::Recorder::new(),
            state: Mutex::new(SchedState {
                sched: FairScheduler::new(),
                seen_ids: HashSet::new(),
                in_flight_bytes: 0,
                in_flight_jobs: 0,
                peak_in_flight_bytes: 0,
                completion_log: Vec::new(),
            }),
            wake: Condvar::new(),
        }
    }

    /// Sets the number of worker threads a [`JobQueue::drain`] runs
    /// (≥ 1). Results never depend on it.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        self.workers = workers;
        self
    }

    /// Caps the total dense-state bytes of concurrently running jobs.
    /// Jobs needing more than the whole budget are rejected at admission;
    /// admitted jobs queue until they fit.
    pub fn with_memory_budget(mut self, bytes: u128) -> Self {
        self.budget = bytes;
        self
    }

    /// Sets the [`Sharding`] mode job executors prepare states with
    /// (default off). Sharded preparation is bit-identical, so this
    /// never changes results.
    pub fn with_sharding(mut self, sharding: Sharding) -> Self {
        self.sharding = sharding;
        self
    }

    /// Sets the shard-[`TransportMode`] job executors move amplitudes
    /// through when sharding is on (default: the `VARSAW_SHARD_TRANSPORT`
    /// environment knob, falling back to in-process swaps). Both backends
    /// are bit-identical, so this never changes results; transport
    /// failures surface per job as [`JobError::Transport`].
    pub fn with_transport(mut self, transport: TransportMode) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the [`RetryPolicy`] the supervisor applies to
    /// [`JobError::Transport`] failures (default: the
    /// environment-configured [`RetryPolicy::from_env`], i.e.
    /// `VARSAW_JOB_RETRIES` retries). Retried jobs stay bit-identical to
    /// their fault-free reference — supervision never changes results,
    /// only whether a faulted job survives.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The retry policy the supervisor runs under.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Sets the default per-job deadline (measured from submission;
    /// default: the `VARSAW_JOB_DEADLINE_MS` environment knob, falling
    /// back to none). Jobs still queued or running when their deadline
    /// passes complete with [`JobError::DeadlineExceeded`] at the next
    /// cooperative check, releasing their budget — a wedged rank cannot
    /// hold a tenant's budget forever.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Installs a seed-deterministic [`FaultSchedule`] as the chaos
    /// seam: every execution attempt of every job draws its transport
    /// faults at schedule stream [`job_seed`]`(job_id, attempt)`, so
    /// fault placement is a pure function of `(schedule, job_id,
    /// attempt)` — independent of workers, interleaving, and co-tenants,
    /// and different per attempt (a retried job is not doomed to re-hit
    /// the same fault).
    pub fn with_fault_schedule(mut self, schedule: FaultSchedule) -> Self {
        self.fault_schedule = schedule;
        self
    }

    /// Sets `tenant`'s fair-share weight (default 1): a weight-3 tenant
    /// drains roughly three times as fast as a weight-1 tenant under
    /// contention.
    ///
    /// # Panics
    ///
    /// Panics if `weight == 0`.
    pub fn set_tenant_weight(&self, tenant: u64, weight: u32) {
        lock(&self.state).sched.set_weight(tenant, weight);
    }

    /// Submits a job, returning its completion handle, or a typed
    /// [`AdmitError`] if the job could never run. Admission never panics
    /// and never aborts the process; a rejected job leaves no trace (its
    /// id stays available). The queue's default deadline (if any)
    /// applies, measured from now.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, AdmitError> {
        self.submit_inner(spec, self.default_deadline)
    }

    /// [`JobQueue::submit`] with an explicit per-job deadline overriding
    /// the queue default. The clock starts now — queueing time counts,
    /// so an admitted job that never fits before its deadline completes
    /// with [`JobError::DeadlineExceeded`] instead of waiting forever.
    pub fn submit_with_deadline(
        &self,
        spec: JobSpec,
        deadline: Duration,
    ) -> Result<JobHandle, AdmitError> {
        self.submit_inner(spec, Some(deadline))
    }

    fn submit_inner(
        &self,
        spec: JobSpec,
        deadline: Option<Duration>,
    ) -> Result<JobHandle, AdmitError> {
        let deadline = deadline.map(|d| Instant::now() + d);
        let bytes = spec.circuit.stats().state_bytes();
        if spec.circuit.num_qubits() > SIM_MAX_QUBITS {
            return Err(AdmitError::ExceedsSimulator {
                num_qubits: spec.circuit.num_qubits(),
                bytes,
            });
        }
        if bytes > self.budget {
            return Err(AdmitError::ExceedsBudget {
                needed: bytes,
                budget: self.budget,
            });
        }
        let device_qubits = self.device.num_qubits();
        for (i, m) in spec.measurements.iter().enumerate() {
            if m.basis.num_qubits() > spec.circuit.num_qubits() {
                return Err(AdmitError::BasisTooWide {
                    measurement: i,
                    basis_qubits: m.basis.num_qubits(),
                    circuit_qubits: spec.circuit.num_qubits(),
                });
            }
            let needed = match m.scope {
                MeasureScope::Subset => {
                    let support = m.basis.support();
                    if support.is_empty() {
                        return Err(AdmitError::IdentityBasis { measurement: i });
                    }
                    support.len()
                }
                MeasureScope::Global => spec.circuit.num_qubits(),
            };
            if needed > device_qubits {
                return Err(AdmitError::DeviceTooSmall {
                    measurement: i,
                    needed,
                    device: device_qubits,
                });
            }
        }

        let mut st = lock(&self.state);
        if !st.seen_ids.insert(spec.job_id) {
            return Err(AdmitError::DuplicateJobId(spec.job_id));
        }
        let slot = Arc::new(Slot::default());
        let handle = JobHandle {
            job_id: spec.job_id,
            tenant: spec.tenant,
            slot: Arc::clone(&slot),
        };
        let cost = spec.measurements.len() as u64;
        let tenant = spec.tenant;
        st.sched.push(
            tenant,
            PendingJob {
                spec,
                bytes,
                cost,
                slot,
                deadline,
                enqueued_at: Instant::now(),
            },
        );
        drop(st);
        // A parked worker (mid-drain submission from another thread) may
        // now have work.
        self.wake.notify_all();
        Ok(handle)
    }

    /// Runs worker threads until every pending job has completed, then
    /// returns. Callable repeatedly; an empty queue drains immediately.
    /// Worker count comes from [`JobQueue::with_workers`], and — like
    /// every scheduling knob — affects throughput only, never results.
    pub fn drain(&self) {
        parallel::scope_workers(self.workers, |_| self.worker_loop());
    }

    /// Number of jobs admitted but not yet dispatched.
    pub fn pending(&self) -> usize {
        lock(&self.state).sched.pending()
    }

    /// Number of jobs that have completed (successfully or not).
    pub fn completed(&self) -> u64 {
        lock(&self.state).completion_log.len() as u64
    }

    /// Job ids in completion order — the observable the fairness and
    /// starvation tests assert on.
    pub fn completion_order(&self) -> Vec<u64> {
        lock(&self.state).completion_log.clone()
    }

    /// High-water mark of concurrently in-flight state bytes; never
    /// exceeds the configured budget.
    pub fn peak_in_flight_bytes(&self) -> u128 {
        lock(&self.state).peak_in_flight_bytes
    }

    /// State bytes of currently running jobs. Exactly zero after a
    /// completed [`JobQueue::drain`] — every completion path (success,
    /// typed error, retry exhaustion, cancellation, deadline, even a
    /// panic) releases its reservation, so chaos runs can assert the
    /// accounting is airtight.
    pub fn in_flight_bytes(&self) -> u128 {
        lock(&self.state).in_flight_bytes
    }

    /// Statistics `(structures, hits, misses)` of the plan cache all job
    /// executors share — hits are jobs that reused another job's (or
    /// tenant's) compiled circuit structure.
    pub fn plan_cache_stats(&self) -> (usize, u64, u64) {
        self.shared.stats()
    }

    /// The shared plan cache itself, for wiring external executors into
    /// the same structure pool.
    pub fn shared_plans(&self) -> SharedPlanCache {
        self.shared.clone()
    }

    /// Aggregate per-stage telemetry across every job this queue has
    /// completed — the sum of the jobs' [`JobOutput::stages`] breakdowns.
    /// Empty unless the `telemetry` feature is compiled in and recording
    /// is active.
    pub fn telemetry_snapshot(&self) -> telemetry::TelemetrySnapshot {
        self.telemetry.snapshot()
    }

    /// One worker: repeatedly dispatch the fair scheduler's next fitting
    /// job, run it on a fresh per-job executor, publish the result. Parks
    /// on the queue's condvar while jobs are pending but over the free
    /// budget (or other workers' completions might unblock them); exits
    /// when nothing is pending or running.
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut st = lock(&self.state);
                loop {
                    if st.sched.pending() == 0 && st.in_flight_jobs == 0 {
                        return;
                    }
                    let free = self.budget - st.in_flight_bytes;
                    let pick = {
                        let _span = telemetry::span(telemetry::Stage::SchedDispatch);
                        st.sched.pick(|j| j.bytes <= free, |j| j.cost)
                    };
                    match pick {
                        Pick::Job(job) => {
                            st.in_flight_bytes += job.bytes;
                            st.in_flight_jobs += 1;
                            st.peak_in_flight_bytes =
                                st.peak_in_flight_bytes.max(st.in_flight_bytes);
                            break job;
                        }
                        Pick::Blocked | Pick::Empty => {
                            st = self.wake.wait(st).unwrap_or_else(|e| e.into_inner());
                        }
                    }
                }
            };
            let dispatched_at = Instant::now();
            // The per-job recorder: installed on this thread for the
            // whole execution (jobs run pinned serial, so every span
            // lands here), harvested into the output's stage breakdown
            // and folded into the queue-wide aggregate.
            let recorder = telemetry::Recorder::new();
            // The completion guard: a panic inside job execution must
            // not unwind past the budget release below — parked
            // co-workers would wait forever on bytes that never free
            // (the pressure-park missed-wakeup bug). The unwind becomes
            // a typed completion instead.
            let result = {
                let _guard = recorder.install();
                telemetry::record_duration(
                    telemetry::Stage::SchedQueueWait,
                    dispatched_at.duration_since(job.enqueued_at),
                );
                catch_unwind(AssertUnwindSafe(|| self.run_job(&job, dispatched_at)))
                    .unwrap_or_else(|payload| Err(JobError::Panicked(panic_message(&payload))))
            };
            let stages = recorder.finish();
            if let Some(snapshot) = &stages {
                self.telemetry.absorb(snapshot);
            }
            let result = result.map(|mut out| {
                out.stages = stages;
                out
            });
            {
                let mut st = lock(&self.state);
                st.in_flight_bytes -= job.bytes;
                st.in_flight_jobs -= 1;
                st.completion_log.push(job.spec.job_id);
            }
            job.slot.fill(result);
            self.wake.notify_all();
        }
    }

    /// Returns [`JobError::Cancelled`] / [`JobError::DeadlineExceeded`]
    /// when the job should stop — the cooperative check run at every
    /// session boundary (dispatch, between measurements, mid-backoff).
    fn check_alive(job: &PendingJob) -> Result<(), JobError> {
        if job.slot.cancelled.load(Ordering::Relaxed) {
            return Err(JobError::Cancelled);
        }
        if let Some(deadline) = job.deadline {
            if Instant::now() >= deadline {
                return Err(JobError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// The execution tier for degradation-ladder rung `rung`: rung 0 is
    /// the configured tier; each transport failure under a degrading
    /// policy steps one rung down — channel transport → local transport
    /// → unsharded serial (which opens no transport and cannot fault).
    fn rung(&self, rung: u32) -> (Sharding, TransportMode, Option<Degradation>) {
        let sharded = !matches!(self.sharding, Sharding::Off);
        match rung {
            0 => (self.sharding, self.transport, None),
            1 if sharded && self.transport == TransportMode::Channel => (
                self.sharding,
                TransportMode::Local,
                Some(Degradation::LocalTransport),
            ),
            _ => (
                Sharding::Off,
                TransportMode::Local,
                Some(Degradation::Unsharded),
            ),
        }
    }

    /// Cooperatively waits out a retry backoff: sleeps in short slices
    /// so cancellation and deadlines interrupt the wait instead of
    /// stacking on top of it.
    fn backoff_wait(job: &PendingJob, delay: Duration) -> Result<(), JobError> {
        const SLICE: Duration = Duration::from_millis(2);
        let _span = telemetry::span(telemetry::Stage::SchedRetry);
        let until = Instant::now() + delay;
        loop {
            Self::check_alive(job)?;
            let Some(remaining) = until.checked_duration_since(Instant::now()) else {
                return Ok(());
            };
            std::thread::sleep(remaining.min(SLICE));
        }
    }

    /// Supervises one job: run an attempt, and on a transport failure
    /// quarantine the attempt's poisoned state (it dies with the
    /// attempt's executor — nothing is reused), back off
    /// deterministically, optionally step down the degradation ladder,
    /// and retry on a fresh executor — up to the policy's attempt
    /// budget. Capacity errors, cancellation, and deadline expiry never
    /// retry: they are properties of the request or the clock, not of
    /// the failed execution.
    fn run_job(&self, job: &PendingJob, dispatched_at: Instant) -> Result<JobOutput, JobError> {
        let max_attempts = self.retry.max_attempts.max(1);
        let mut rung = 0u32;
        for attempt in 1..=max_attempts {
            Self::check_alive(job)?;
            let (sharding, transport, degraded) = self.rung(rung);
            match self.run_attempt(job, attempt, sharding, transport, dispatched_at) {
                Ok(mut out) => {
                    out.attempts = attempt;
                    out.degraded_to = degraded;
                    return Ok(out);
                }
                Err(JobError::Transport(e)) => {
                    if attempt == max_attempts {
                        return Err(JobError::Transport(e));
                    }
                    if self.retry.degrade {
                        rung += 1;
                    }
                    Self::backoff_wait(job, self.retry.delay(attempt))?;
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("the attempt loop returns on its last iteration")
    }

    /// Executes one attempt exactly as a standalone sequential run
    /// would: fresh executor, seed from [`job_seed`], serial statevector
    /// path (workers provide the parallelism; pinning jobs serial avoids
    /// oversubscription and keeps per-job RNG streams self-contained).
    /// The attempt's fault-schedule stream is
    /// [`job_seed`]`(job_id, attempt)`, so chaos draws are a pure
    /// function of `(schedule, job_id, attempt)`.
    fn run_attempt(
        &self,
        job: &PendingJob,
        attempt: u32,
        sharding: Sharding,
        transport: TransportMode,
        dispatched_at: Instant,
    ) -> Result<JobOutput, JobError> {
        let spec = &job.spec;
        let seed = job_seed(self.root_seed, spec.job_id);
        let stream = job_seed(spec.job_id, u64::from(attempt));
        let mut exec = SimExecutor::new(self.device.clone(), self.shots, seed)
            .with_shared_plans(self.shared.clone())
            .with_parallelism(Parallelism::Serial)
            .with_sharding(sharding)
            .with_transport(transport)
            .with_fault_schedule(self.fault_schedule, stream);
        let state = exec.try_prepare(&spec.circuit)?;
        let mut pmfs = Vec::with_capacity(spec.measurements.len());
        for m in &spec.measurements {
            Self::check_alive(job)?;
            pmfs.push(match m.scope {
                MeasureScope::Subset => exec.run_prepared(&state, &m.basis),
                MeasureScope::Global => exec.run_prepared_all(&state, &m.basis),
            });
        }
        Ok(JobOutput {
            job_id: spec.job_id,
            tenant: spec.tenant,
            pmfs,
            cost: exec.circuits_executed(),
            attempts: attempt,
            degraded_to: None,
            timing: JobTiming {
                enqueued_at: job.enqueued_at,
                dispatched_at,
                completed_at: Instant::now(),
            },
            stages: None,
        })
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
