//! Multi-tenant VQE job scheduling above the simulation stack.
//!
//! A VarSaw-style mitigation service does not run one VQA at a time: many
//! tenants submit ansatz evaluations against one simulator pool. This
//! crate provides the queueing tier for that setting — [`JobQueue`] —
//! with four properties the rest of the workspace's guarantees demand:
//!
//! - **Typed admission control.** Jobs are sized up front by their dense
//!   state footprint ([`qsim::CircuitStats::state_bytes`]); anything that
//!   could never run is rejected at [`JobQueue::submit`] with an
//!   [`AdmitError`] — never a panic, never an abort (the execution path
//!   underneath is the fallible `try_zero` /
//!   [`vqe::SimExecutor::try_prepare`] seam). Jobs that fit the budget
//!   but not the *currently free* capacity simply queue.
//! - **Weighted fair scheduling.** Dispatch order follows per-tenant
//!   virtual runtime (CFS-style, the `fair` module): heavier tenants drain
//!   proportionally faster, flooding tenants cannot starve meek ones,
//!   and single-worker drains are fully deterministic.
//! - **Interleaving-independent results.** Every job runs on a fresh
//!   executor seeded by [`job_seed`]`(root_seed, job_id)` — a function of
//!   the job's *stable id*, not its submission position — so PMFs, RNG
//!   streams and metered cost are bit-identical to a sequential
//!   reference run, whatever the submission order or worker count. The
//!   `sched_equiv` integration suite property-tests exactly this oracle.
//! - **Cross-tenant plan sharing.** All job executors compile through
//!   one [`qsim::SharedPlanCache`], so tenants running the same ansatz
//!   family rebind each other's cached circuit structures
//!   ([`JobQueue::plan_cache_stats`]).
//!
//! Completion is surfaced per job through a [`JobHandle`] — poll with
//! [`JobHandle::try_result`], block with [`JobHandle::wait`], or block
//! boundedly with [`JobHandle::wait_timeout`] — and the queue itself is
//! driven by [`JobQueue::drain`], which runs
//! [`parallel::sched_workers`] scoped workers (override per queue with
//! [`JobQueue::with_workers`], or process-wide with the
//! `VARSAW_SCHED_WORKERS` environment variable).
//!
//! On top of the queue sits a **fault supervisor**: transport failures
//! ([`JobError::Transport`]) retry under a deterministic [`RetryPolicy`]
//! (env knob `VARSAW_JOB_RETRIES`), optionally stepping down a
//! degradation ladder — channel transport → local transport → unsharded
//! serial — recorded per job as [`JobOutput::attempts`] and
//! [`JobOutput::degraded_to`]. Jobs carry deadlines (env knob
//! `VARSAW_JOB_DEADLINE_MS`, or [`JobQueue::submit_with_deadline`]) and
//! support cooperative cancellation ([`JobHandle::cancel`]); both are
//! honored at session boundaries. Chaos runs drive the whole ladder
//! reproducibly through [`JobQueue::with_fault_schedule`], and every
//! completion path — success, typed error, even a panic — releases the
//! job's memory budget and wakes parked workers (`tests/chaos.rs`
//! property-tests the oracle).
//!
//! # Example
//!
//! Two tenants submit the same ansatz family in opposite orders; results
//! depend on neither order nor worker count:
//!
//! ```
//! use qnoise::DeviceModel;
//! use qsim::Circuit;
//! use sched::{JobQueue, JobSpec, Measurement};
//!
//! let spec = |job_id: u64, tenant: u64, angle: f64| {
//!     let mut c = Circuit::new(2);
//!     c.ry(0, angle).cx(0, 1);
//!     JobSpec {
//!         job_id,
//!         tenant,
//!         circuit: c,
//!         measurements: vec![Measurement::subset("ZZ".parse().unwrap())],
//!     }
//! };
//!
//! let run = |order: &[(u64, u64, f64)], workers: usize| {
//!     let queue = JobQueue::new(DeviceModel::mumbai_like(), 128, 7).with_workers(workers);
//!     let handles: Vec<_> = order
//!         .iter()
//!         .map(|&(id, tenant, angle)| queue.submit(spec(id, tenant, angle)).unwrap())
//!         .collect();
//!     queue.drain();
//!     let mut outs: Vec<_> = handles.iter().map(|h| h.wait().unwrap()).collect();
//!     outs.sort_by_key(|o| o.job_id);
//!     outs
//! };
//!
//! let jobs = [(1, 0, 0.3), (2, 1, -1.1), (3, 0, 2.2)];
//! let reversed: Vec<_> = jobs.iter().rev().copied().collect();
//! assert_eq!(run(&jobs, 1), run(&reversed, 4)); // bit-identical
//! ```

mod fair;
mod queue;

pub use queue::{
    job_seed, AdmitError, Degradation, JobError, JobHandle, JobOutput, JobQueue, JobSpec,
    JobTiming, MeasureScope, Measurement, RetryPolicy,
};
