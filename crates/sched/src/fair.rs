//! Weighted fair queueing across tenants.
//!
//! The scheduler keeps one FIFO run-queue per tenant and a per-tenant
//! *virtual runtime* in the spirit of CFS: dispatching a job advances its
//! tenant's virtual runtime by `cost / weight`, and the next dispatch goes
//! to the eligible tenant with the smallest virtual runtime (ties broken
//! by tenant id, so single-worker drains are fully deterministic). Heavier
//! weights therefore drain proportionally faster, and a tenant that
//! floods the queue only advances its own clock — it cannot push other
//! tenants' heads back, which is the starvation-freedom property
//! `sched::JobQueue`'s tests pin down.
//!
//! Tenants returning from idle have their virtual runtime floored to the
//! minimum over currently-pending tenants: sleeping does not bank credit
//! that would later let a tenant monopolize the workers.
//!
//! The type is deliberately execution-agnostic (generic over the queued
//! job type, with fit/cost closures supplied at [`FairScheduler::pick`]
//! time) so the policy is unit-testable without touching simulators.

use std::collections::{BTreeMap, VecDeque};

/// Virtual-runtime units charged per unit cost at weight 1. A power of
/// two much larger than any realistic weight keeps `cost * SCALE / weight`
/// exact for small weights and monotone for all of them.
const VRUNTIME_SCALE: u128 = 1 << 16;

/// One tenant's scheduling state.
#[derive(Debug)]
struct Tenant<J> {
    weight: u32,
    vruntime: u128,
    queue: VecDeque<J>,
}

/// The outcome of asking the scheduler for work.
#[derive(Debug)]
pub(crate) enum Pick<J> {
    /// A job was dispatched (and its tenant charged).
    Job(J),
    /// Jobs are pending, but none currently fits — wait for capacity.
    Blocked,
    /// No jobs are pending at all.
    Empty,
}

/// Weighted fair queue over tenants; see the [module docs](self).
#[derive(Debug)]
pub(crate) struct FairScheduler<J> {
    /// `BTreeMap` so iteration (and thus tie-breaking) is ordered by
    /// tenant id — deterministic regardless of insertion history.
    tenants: BTreeMap<u64, Tenant<J>>,
    pending: usize,
}

impl<J> FairScheduler<J> {
    pub(crate) fn new() -> Self {
        FairScheduler {
            tenants: BTreeMap::new(),
            pending: 0,
        }
    }

    /// Sets `tenant`'s weight (default 1; must be ≥ 1). Takes effect from
    /// the next dispatch.
    pub(crate) fn set_weight(&mut self, tenant: u64, weight: u32) {
        assert!(weight >= 1, "tenant weight must be at least 1");
        self.entry(tenant).weight = weight;
    }

    fn entry(&mut self, tenant: u64) -> &mut Tenant<J> {
        self.tenants.entry(tenant).or_insert_with(|| Tenant {
            weight: 1,
            vruntime: 0,
            queue: VecDeque::new(),
        })
    }

    /// Number of queued (not yet dispatched) jobs.
    pub(crate) fn pending(&self) -> usize {
        self.pending
    }

    /// Smallest virtual runtime among tenants with pending work.
    fn min_pending_vruntime(&self) -> Option<u128> {
        self.tenants
            .values()
            .filter(|t| !t.queue.is_empty())
            .map(|t| t.vruntime)
            .min()
    }

    /// Enqueues a job for `tenant`. A tenant waking from idle is floored
    /// to the minimum pending virtual runtime, so idling never banks
    /// scheduling credit.
    pub(crate) fn push(&mut self, tenant: u64, job: J) {
        let floor = self.min_pending_vruntime();
        let t = self.entry(tenant);
        if t.queue.is_empty() {
            if let Some(floor) = floor {
                t.vruntime = t.vruntime.max(floor);
            }
        }
        t.queue.push_back(job);
        self.pending += 1;
    }

    /// Dispatches the next job: among tenants whose **head** job satisfies
    /// `fits` (per-tenant order is strictly FIFO), the one with the
    /// smallest `(vruntime, tenant_id)` wins, and is charged
    /// `cost_of(job).max(1) * SCALE / weight` virtual runtime up front —
    /// charging at dispatch (not completion) keeps concurrent workers from
    /// handing one tenant every slot before its first job finishes.
    pub(crate) fn pick(
        &mut self,
        fits: impl Fn(&J) -> bool,
        cost_of: impl Fn(&J) -> u64,
    ) -> Pick<J> {
        if self.pending == 0 {
            return Pick::Empty;
        }
        let chosen = self
            .tenants
            .iter()
            .filter(|(_, t)| t.queue.front().is_some_and(&fits))
            .min_by_key(|(id, t)| (t.vruntime, **id))
            .map(|(id, _)| *id);
        let Some(id) = chosen else {
            return Pick::Blocked;
        };
        let t = self.tenants.get_mut(&id).expect("chosen tenant exists");
        let job = t.queue.pop_front().expect("chosen tenant has a head job");
        self.pending -= 1;
        let cost = u128::from(cost_of(&job).max(1));
        t.vruntime += cost * VRUNTIME_SCALE / u128::from(t.weight);
        Pick::Job(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains jobs of unit cost with no capacity limit, returning the
    /// dispatch order. Jobs are `(tenant, tag)` pairs for readability.
    fn drain(s: &mut FairScheduler<(u64, u32)>) -> Vec<(u64, u32)> {
        let mut order = Vec::new();
        loop {
            match s.pick(|_| true, |_| 1) {
                Pick::Job(j) => order.push(j),
                Pick::Empty => return order,
                Pick::Blocked => unreachable!("everything fits"),
            }
        }
    }

    #[test]
    fn equal_weights_alternate_round_robin() {
        let mut s = FairScheduler::new();
        for k in 0..3 {
            s.push(0, (0, k));
            s.push(1, (1, k));
        }
        let order = drain(&mut s);
        let tenants: Vec<u64> = order.iter().map(|&(t, _)| t).collect();
        assert_eq!(tenants, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn per_tenant_order_is_fifo() {
        let mut s = FairScheduler::new();
        for k in 0..4 {
            s.push(7, (7, k));
        }
        let tags: Vec<u32> = drain(&mut s).iter().map(|&(_, k)| k).collect();
        assert_eq!(tags, vec![0, 1, 2, 3]);
    }

    #[test]
    fn heavier_tenants_drain_proportionally_faster() {
        let mut s = FairScheduler::new();
        s.set_weight(1, 3);
        for k in 0..4 {
            s.push(0, (0, k)); // weight 1
            s.push(1, (1, k)); // weight 3
        }
        let order = drain(&mut s);
        // In any prefix, the weight-3 tenant should hold roughly three
        // times the dispatches; in particular its whole queue drains
        // within the first 6 of 8 slots.
        let t1_done = order.iter().take(6).filter(|&&(t, _)| t == 1).count();
        assert_eq!(t1_done, 4, "weight-3 tenant finished early: {order:?}");
    }

    #[test]
    fn late_arrivals_are_floored_not_credited() {
        let mut s = FairScheduler::new();
        for k in 0..10 {
            s.push(0, (0, k));
        }
        for _ in 0..5 {
            match s.pick(|_| true, |_| 1) {
                Pick::Job((0, _)) => {}
                other => panic!("expected tenant 0, got {other:?}"),
            }
        }
        // Tenant 1 arrives after tenant 0 already ran 5 jobs. The floor
        // starts it at tenant 0's clock — not at 0 (which would owe it 5
        // back-to-back slots) and not ahead (which would starve it).
        s.push(1, (1, 0));
        let next_two: Vec<u64> = (0..2)
            .map(|_| match s.pick(|_| true, |_| 1) {
                Pick::Job((t, _)) => t,
                other => panic!("expected a job, got {other:?}"),
            })
            .collect();
        assert!(
            next_two.contains(&1),
            "late tenant must run within two dispatches: {next_two:?}"
        );
        assert!(
            next_two.contains(&0),
            "late tenant must not get a burst of back-credit: {next_two:?}"
        );
    }

    #[test]
    fn blocked_and_empty_are_distinguished() {
        let mut s: FairScheduler<(u64, u32)> = FairScheduler::new();
        assert!(matches!(s.pick(|_| true, |_| 1), Pick::Empty));
        s.push(0, (0, 0));
        assert!(matches!(s.pick(|_| false, |_| 1), Pick::Blocked));
        assert_eq!(s.pending(), 1, "a blocked pick dispatches nothing");
        assert!(matches!(s.pick(|_| true, |_| 1), Pick::Job((0, 0))));
        assert!(matches!(s.pick(|_| true, |_| 1), Pick::Empty));
    }

    #[test]
    fn costlier_jobs_are_charged_more() {
        let mut s: FairScheduler<(u64, u32)> = FairScheduler::new();
        s.push(0, (0, 10)); // tag doubles as cost below
        s.push(0, (0, 1));
        s.push(1, (1, 1));
        s.push(1, (1, 1));
        let mut order = Vec::new();
        loop {
            match s.pick(|_| true, |&(_, c)| u64::from(c)) {
                Pick::Job((t, _)) => order.push(t),
                Pick::Empty => break,
                Pick::Blocked => unreachable!(),
            }
        }
        // Tenant 0's first job costs 10, so both of tenant 1's unit jobs
        // run before tenant 0 gets a second slot.
        assert_eq!(order, vec![0, 1, 1, 0]);
    }
}
