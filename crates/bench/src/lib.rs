//! Benchmark crate for the VarSaw reproduction. See `benches/kernels.rs`
//! (computational kernels) and `benches/figures.rs` (one unit per paper
//! table/figure).
