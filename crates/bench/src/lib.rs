//! Benchmark crate for the VarSaw reproduction. See `benches/kernels.rs`
//! (computational kernels), `benches/figures.rs` (one unit per paper
//! table/figure) and `benches/reconstruction.rs` (the Bayesian
//! reconstruction engine). Run them with `cargo bench -p bench`.
//!
//! Besides the bench targets, this library hosts the cross-run
//! regression check CI uses on the archived `BENCH_*.json` artifacts:
//! [`parse_bench_json`] reads the criterion shim's record format and
//! [`compare_runs`] flags kernels whose mean regressed past a ratio
//! threshold (see the `bench_diff` binary). On top of the pairwise
//! check sits the rolling-history trend gate: `BENCH_HISTORY.jsonl`
//! accumulates one line per archived run ([`append_history`], window
//! from `VARSAW_BENCH_HISTORY_WINDOW`), and [`trend_regressions`]
//! judges the current run against the rolling median ± scaled MAD of
//! that history — robust to a single noisy baseline run in a way the
//! pairwise check cannot be.
//!
//! The criterion harness itself is exercised here:
//!
//! ```
//! use criterion::Criterion;
//! use std::time::Duration;
//!
//! let mut c = Criterion::default()
//!     .sample_size(2)
//!     .warm_up_time(Duration::from_millis(1))
//!     .measurement_time(Duration::from_millis(5));
//! c.bench_function("doc/noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
//! ```

/// One benchmark record from a `BENCH_*.json` artifact, as written by the
/// criterion shim (`{"id", "mean_ns", "best_ns", "samples"}`).
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Benchmark id, e.g. `reconstruction/bayesian_8q_7windows`.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: u128,
    /// Best (minimum) sample in nanoseconds.
    pub best_ns: u128,
    /// Number of samples taken.
    pub samples: u64,
}

/// A kernel whose mean regressed past the comparison threshold.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Benchmark id present in both runs.
    pub id: String,
    /// Mean of the previous run, nanoseconds.
    pub old_mean_ns: u128,
    /// Mean of the current run, nanoseconds.
    pub new_mean_ns: u128,
    /// `new / old` slowdown ratio.
    pub ratio: f64,
}

/// A kernel whose mean regressed against its rolling history — flagged by
/// [`trend_regressions`] when the current mean clears both the noise band
/// (median + [`TREND_MAD_SIGMAS`] · scaled MAD) and the ratio guard
/// (median · `max_ratio`).
#[derive(Clone, Debug, PartialEq)]
pub struct TrendRegression {
    /// Benchmark id.
    pub id: String,
    /// Rolling median of the historical means, nanoseconds.
    pub median_ns: u128,
    /// Scaled median absolute deviation of the historical means
    /// (MAD · 1.4826, the consistency constant for a normal spread),
    /// nanoseconds.
    pub mad_ns: u128,
    /// Mean of the current run, nanoseconds.
    pub new_mean_ns: u128,
    /// `new / median` slowdown ratio.
    pub ratio: f64,
    /// How many historical runs carried this id.
    pub runs: usize,
}

/// Parses a `BENCH_*.json` artifact.
///
/// This is a minimal hand-rolled reader for the flat record array the
/// criterion shim writes (the workspace is offline — no serde). It
/// tolerates whitespace and field order but not nested objects, which the
/// shim never produces. Unknown fields are ignored; a record missing `id`
/// or `mean_ns` is an error.
pub fn parse_bench_json(text: &str) -> Result<Vec<BenchRecord>, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('[')
        .and_then(|b| b.strip_suffix(']'))
        .ok_or_else(|| "not a JSON array".to_string())?;
    let mut records = Vec::new();
    let mut rest = body;
    while let Some(start) = rest.find('{') {
        let end = object_end(&rest[start..])? + start;
        let object = &rest[start + 1..end];
        records.push(parse_record(object)?);
        rest = &rest[end + 1..];
    }
    Ok(records)
}

/// The byte offset of the `}` closing the object `text` starts with,
/// skipping braces inside quoted strings (bench ids may contain them).
fn object_end(text: &str) -> Result<usize, String> {
    debug_assert!(text.starts_with('{'));
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in text.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '}' if !in_string => return Ok(i),
            _ => {}
        }
    }
    Err("unterminated object".to_string())
}

/// Parses one `key: value` record body (the text between `{` and `}`).
fn parse_record(object: &str) -> Result<BenchRecord, String> {
    let mut id = None;
    let mut mean_ns = None;
    let mut best_ns = 0u128;
    let mut samples = 0u64;
    let mut rest = object;
    while let Some(key_start) = rest.find('"') {
        let key_end = rest[key_start + 1..]
            .find('"')
            .ok_or_else(|| "unterminated key".to_string())?
            + key_start
            + 1;
        let key = &rest[key_start + 1..key_end];
        let after = rest[key_end + 1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("missing ':' after key {key}"))?
            .trim_start();
        let (value, remaining) = take_value(after)?;
        match key {
            "id" => id = Some(value),
            "mean_ns" => mean_ns = Some(parse_u128(&value, "mean_ns")?),
            "best_ns" => best_ns = parse_u128(&value, "best_ns")?,
            "samples" => samples = parse_u128(&value, "samples")? as u64,
            _ => {}
        }
        rest = remaining;
    }
    Ok(BenchRecord {
        id: id.ok_or_else(|| "record without id".to_string())?,
        mean_ns: mean_ns.ok_or_else(|| "record without mean_ns".to_string())?,
        best_ns,
        samples,
    })
}

/// Splits one JSON scalar (string or number) off the front of `rest`,
/// unescaping strings the way the shim escapes them.
fn take_value(rest: &str) -> Result<(String, &str), String> {
    if let Some(body) = rest.strip_prefix('"') {
        let mut value = String::new();
        let mut chars = body.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    // The shim escapes control characters as \uXXXX.
                    Some((u_at, 'u')) => {
                        let hex = body
                            .get(u_at + 1..u_at + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                        value.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u codepoint {code:#x}"))?,
                        );
                        // Consume the four hex digits.
                        for _ in 0..4 {
                            chars.next();
                        }
                    }
                    Some((_, escaped)) => value.push(escaped),
                    None => return Err("dangling escape".to_string()),
                },
                '"' => return Ok((value, &body[i + 1..])),
                c => value.push(c),
            }
        }
        Err("unterminated string".to_string())
    } else {
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(format!("expected a value at: {rest:.20}"));
        }
        Ok((rest[..end].to_string(), &rest[end..]))
    }
}

fn parse_u128(value: &str, field: &str) -> Result<u128, String> {
    value
        .parse()
        .map_err(|e| format!("bad {field} value {value:?}: {e}"))
}

/// Splits the ids of two runs into `(added, removed)`: ids only in the
/// new run and ids only in the old one. Neither is a failure — new bench
/// targets land without a baseline and retired ones disappear — but the
/// diff report names them so a silently vanished kernel is noticed.
pub fn diff_ids(old: &[BenchRecord], new: &[BenchRecord]) -> (Vec<String>, Vec<String>) {
    let added = new
        .iter()
        .filter(|n| !old.iter().any(|o| o.id == n.id))
        .map(|n| n.id.clone())
        .collect();
    let removed = old
        .iter()
        .filter(|o| !new.iter().any(|n| n.id == o.id))
        .map(|o| o.id.clone())
        .collect();
    (added, removed)
}

/// Compares two bench runs: every id present in both whose mean slowed
/// down by more than `max_ratio` is a [`Regression`]. Ids present in only
/// one run (added or removed benches) are never failures — CI runners are
/// shared and noisy, so the threshold should be generous (the CI job uses
/// 2.0).
///
/// Sub-microsecond kernels are skipped: at that scale scheduler jitter on
/// a shared runner swamps any real signal.
pub fn compare_runs(old: &[BenchRecord], new: &[BenchRecord], max_ratio: f64) -> Vec<Regression> {
    const MIN_MEAN_NS: u128 = 1_000;
    let mut regressions: Vec<Regression> = new
        .iter()
        .filter(|n| n.mean_ns >= MIN_MEAN_NS)
        .filter_map(|n| {
            let o = old.iter().find(|o| o.id == n.id)?;
            let ratio = n.mean_ns as f64 / o.mean_ns.max(1) as f64;
            (ratio > max_ratio).then(|| Regression {
                id: n.id.clone(),
                old_mean_ns: o.mean_ns,
                new_mean_ns: n.mean_ns,
                ratio,
            })
        })
        .collect();
    regressions.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
    regressions
}

/// Minimum historical runs before the trend gate judges an id — below
/// this, a median/MAD is too fragile to gate on and the id is skipped.
pub const TREND_MIN_RUNS: usize = 3;

/// How many scaled MADs above the rolling median the noise band extends.
pub const TREND_MAD_SIGMAS: f64 = 4.0;

/// The normal-consistency constant turning a raw MAD into a σ-comparable
/// spread estimate.
const MAD_SCALE: f64 = 1.4826;

/// Parses a `BENCH_HISTORY.jsonl` rolling history: one line per archived
/// run, each line the same flat record array a `BENCH_*.json` artifact
/// holds (so a history line round-trips through [`parse_bench_json`]).
/// Blank lines are skipped; a malformed line is an error naming its line
/// number — a corrupted history should be noticed, not silently shrunk.
pub fn parse_history(text: &str) -> Result<Vec<Vec<BenchRecord>>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| parse_bench_json(line).map_err(|e| format!("history line {}: {e}", i + 1)))
        .collect()
}

/// Serializes records in the criterion shim's artifact format, so a
/// history line is exactly what [`parse_bench_json`] reads back.
pub fn render_bench_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":\"");
        for c in r.id.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push_str(&format!(
            "\",\"mean_ns\":{},\"best_ns\":{},\"samples\":{}}}",
            r.mean_ns, r.best_ns, r.samples
        ));
    }
    out.push(']');
    out
}

/// Appends `run` to a serialized rolling history, keeping only the newest
/// `window` runs (the new one included). Existing lines are kept verbatim
/// — the window bounds the file without re-serializing history.
pub fn append_history(history_text: &str, run: &[BenchRecord], window: usize) -> String {
    let window = window.max(1);
    let mut lines: Vec<&str> = history_text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .collect();
    if lines.len() >= window {
        lines.drain(..lines.len() - (window - 1));
    }
    let mut out = String::new();
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(&render_bench_json(run));
    out.push('\n');
    out
}

/// The median of a non-empty sorted slice (lower-middle for even counts —
/// bias toward the faster half keeps the gate slightly stricter).
fn median_sorted(sorted: &[u128]) -> u128 {
    sorted[(sorted.len() - 1) / 2]
}

/// Judges the current run against its rolling history: for every id with
/// at least [`TREND_MIN_RUNS`] historical means, the current mean is
/// compared to the history's median ± scaled MAD. A kernel regresses only
/// when it clears **both** guards — `median + `[`TREND_MAD_SIGMAS`]` · mad`
/// (so a historically noisy kernel gets a proportionally wide band) and
/// `median · max_ratio` (so a rock-stable history still needs a real
/// slowdown, not a microscopic one, to trip). Sub-microsecond kernels and
/// ids without enough history are skipped, like [`compare_runs`].
pub fn trend_regressions(
    history: &[Vec<BenchRecord>],
    current: &[BenchRecord],
    max_ratio: f64,
) -> Vec<TrendRegression> {
    const MIN_MEAN_NS: u128 = 1_000;
    let mut regressions: Vec<TrendRegression> = current
        .iter()
        .filter(|n| n.mean_ns >= MIN_MEAN_NS)
        .filter_map(|n| {
            let mut means: Vec<u128> = history
                .iter()
                .flat_map(|run| run.iter().filter(|r| r.id == n.id))
                .map(|r| r.mean_ns)
                .collect();
            if means.len() < TREND_MIN_RUNS {
                return None;
            }
            means.sort_unstable();
            let median = median_sorted(&means);
            let mut deviations: Vec<u128> = means.iter().map(|&m| m.abs_diff(median)).collect();
            deviations.sort_unstable();
            let mad = (median_sorted(&deviations) as f64 * MAD_SCALE) as u128;
            let noise_band = median as f64 + TREND_MAD_SIGMAS * mad as f64;
            let ratio_guard = median.max(1) as f64 * max_ratio;
            let new = n.mean_ns as f64;
            (new > noise_band && new > ratio_guard).then(|| TrendRegression {
                id: n.id.clone(),
                median_ns: median,
                mad_ns: mad,
                new_mean_ns: n.mean_ns,
                ratio: new / median.max(1) as f64,
                runs: means.len(),
            })
        })
        .collect();
    regressions.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, mean_ns: u128) -> BenchRecord {
        BenchRecord {
            id: id.to_string(),
            mean_ns,
            best_ns: mean_ns,
            samples: 10,
        }
    }

    #[test]
    fn parses_shim_output_roundtrip() {
        let text = r#"[
  {"id":"statevector/efficient_su2_12q","mean_ns":788000,"best_ns":750000,"samples":10},
  {"id":"reconstruction/bayesian_8q_7windows","mean_ns":8850,"best_ns":8800,"samples":10}
]
"#;
        let records = parse_bench_json(text).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, "statevector/efficient_su2_12q");
        assert_eq!(records[0].mean_ns, 788_000);
        assert_eq!(records[1].best_ns, 8_800);
        assert_eq!(records[1].samples, 10);
    }

    #[test]
    fn parses_escaped_ids_and_empty_arrays() {
        let records = parse_bench_json(r#"[{"id":"a\"b","mean_ns":5}]"#).unwrap();
        assert_eq!(records[0].id, "a\"b");
        assert_eq!(records[0].best_ns, 0, "missing fields default");
        assert!(parse_bench_json("[\n]\n").unwrap().is_empty());
    }

    #[test]
    fn parses_ids_with_braces_and_unicode_escapes() {
        // Braces inside a quoted id must not end the object early, and
        // \uXXXX control escapes (as the shim writes them) must decode.
        let text = "[{\"id\":\"su2{12q}\",\"mean_ns\":7},\
                    {\"id\":\"x\\u000ay\",\"mean_ns\":9,\"best_ns\":8,\"samples\":3}]";
        let records = parse_bench_json(text).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, "su2{12q}");
        assert_eq!(records[1].id, "x\ny");
        assert_eq!(records[1].best_ns, 8);
        assert!(parse_bench_json(r#"[{"id":"x\u00zz","mean_ns":1}]"#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_bench_json("not json").is_err());
        assert!(parse_bench_json(r#"[{"mean_ns":5}]"#).is_err(), "no id");
        assert!(parse_bench_json(r#"[{"id":"x"}]"#).is_err(), "no mean");
        assert!(parse_bench_json(r#"[{"id":"x","mean_ns":"q"}]"#).is_err());
    }

    #[test]
    fn flags_only_large_regressions_on_shared_ids() {
        let old = vec![record("a", 10_000), record("b", 10_000), record("gone", 99)];
        let new = vec![
            record("a", 25_000),        // 2.5x: regression
            record("b", 19_000),        // 1.9x: within threshold
            record("added", 1_000_000), // no baseline: ignored
        ];
        let regressions = compare_runs(&old, &new, 2.0);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].id, "a");
        assert!((regressions[0].ratio - 2.5).abs() < 1e-12);
    }

    #[test]
    fn diff_ids_reports_added_and_removed() {
        let old = vec![record("a", 1), record("gone", 2)];
        let new = vec![record("a", 1), record("fresh", 3)];
        let (added, removed) = diff_ids(&old, &new);
        assert_eq!(added, vec!["fresh".to_string()]);
        assert_eq!(removed, vec!["gone".to_string()]);
        let (added, removed) = diff_ids(&old, &old);
        assert!(added.is_empty() && removed.is_empty());
    }

    #[test]
    fn sub_microsecond_kernels_are_ignored() {
        let old = vec![record("tiny", 50)];
        let new = vec![record("tiny", 900)]; // 18x but still < 1µs
        assert!(compare_runs(&old, &new, 2.0).is_empty());
    }

    #[test]
    fn regressions_sorted_worst_first() {
        let old = vec![record("a", 1_000), record("b", 1_000)];
        let new = vec![record("a", 3_000), record("b", 9_000)];
        let r = compare_runs(&old, &new, 2.0);
        assert_eq!(r[0].id, "b");
        assert_eq!(r[1].id, "a");
    }

    #[test]
    fn render_parse_roundtrip_with_escapes() {
        let run = vec![record("a\"b\\c\nq", 5_000), record("plain/id", 7)];
        let parsed = parse_bench_json(&render_bench_json(&run)).unwrap();
        assert_eq!(parsed, run);
        assert_eq!(render_bench_json(&[]), "[]");
    }

    #[test]
    fn history_parses_lines_and_names_bad_ones() {
        let text = format!(
            "{}\n\n{}\n",
            render_bench_json(&[record("a", 1_500)]),
            render_bench_json(&[record("a", 1_600), record("b", 9)]),
        );
        let history = parse_history(&text).unwrap();
        assert_eq!(history.len(), 2);
        assert_eq!(history[1][1].id, "b");
        assert!(parse_history("[]\nnot json\n")
            .unwrap_err()
            .contains("line 2"));
    }

    #[test]
    fn append_history_bounds_the_window() {
        let mut text = String::new();
        for i in 0..5u128 {
            text = append_history(&text, &[record("a", 1_000 + i)], 3);
        }
        let history = parse_history(&text).unwrap();
        assert_eq!(history.len(), 3, "window keeps only the newest runs");
        let means: Vec<u128> = history.iter().map(|run| run[0].mean_ns).collect();
        assert_eq!(means, vec![1_002, 1_003, 1_004]);
    }

    #[test]
    fn trend_flags_doubling_and_passes_unchanged_run() {
        // A tight ≥3-run history around 10µs.
        let history: Vec<Vec<BenchRecord>> = [10_000u128, 10_100, 9_950, 10_050]
            .iter()
            .map(|&m| vec![record("kernel", m)])
            .collect();
        // Unchanged run: clean.
        assert!(trend_regressions(&history, &[record("kernel", 10_020)], 2.0).is_empty());
        // Synthetic 2× regression: flagged.
        let flagged = trend_regressions(&history, &[record("kernel", 20_400)], 2.0);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].runs, 4);
        assert!(flagged[0].ratio > 2.0);
    }

    #[test]
    fn trend_needs_enough_history_and_skips_tiny_kernels() {
        let short: Vec<Vec<BenchRecord>> = (0..2).map(|_| vec![record("kernel", 10_000)]).collect();
        assert!(
            trend_regressions(&short, &[record("kernel", 90_000)], 2.0).is_empty(),
            "two runs are not a trend"
        );
        let tiny: Vec<Vec<BenchRecord>> = (0..4).map(|_| vec![record("tiny", 50)]).collect();
        assert!(
            trend_regressions(&tiny, &[record("tiny", 900)], 2.0).is_empty(),
            "sub-microsecond kernels are jitter, not signal"
        );
    }

    #[test]
    fn trend_noise_band_protects_noisy_kernels() {
        // Median 20µs, scaled MAD ≈ 14.8µs: the ratio guard alone (40µs)
        // would flag 45µs, but the noise band (≈ 79µs) knows better.
        let noisy: Vec<Vec<BenchRecord>> = [10_000u128, 20_000, 30_000]
            .iter()
            .map(|&m| vec![record("kernel", m)])
            .collect();
        assert!(trend_regressions(&noisy, &[record("kernel", 45_000)], 2.0).is_empty());
        // Far past both guards: still flagged.
        assert_eq!(
            trend_regressions(&noisy, &[record("kernel", 90_000)], 2.0).len(),
            1
        );
    }
}
