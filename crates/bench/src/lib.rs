//! Benchmark crate for the VarSaw reproduction. See `benches/kernels.rs`
//! (computational kernels) and `benches/figures.rs` (one unit per paper
//! table/figure). Run them with `cargo bench -p bench`.
//!
//! The library itself is empty — it exists so the bench targets have a
//! package to hang off — but the harness they use is exercised here:
//!
//! ```
//! use criterion::Criterion;
//! use std::time::Duration;
//!
//! let mut c = Criterion::default()
//!     .sample_size(2)
//!     .warm_up_time(Duration::from_millis(1))
//!     .measurement_time(Duration::from_millis(5));
//! c.bench_function("doc/noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
//! ```
