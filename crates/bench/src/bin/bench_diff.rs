//! Cross-run benchmark regression check over `BENCH_*.json` artifacts.
//!
//! ```text
//! bench_diff <previous.json> <current.json> [--max-ratio 2.0]
//! bench_diff --trend <history.jsonl> <current.json>... [--max-ratio 2.0]
//!            [--window N] [--append]
//! ```
//!
//! **Pairwise mode** compares the current artifact to one archived
//! baseline (see [`bench::compare_runs`]). **Trend mode** judges the
//! concatenation of the current artifacts against a rolling
//! `BENCH_HISTORY.jsonl` — one line per past run — using the rolling
//! median ± scaled MAD of the last `--window` runs (default from
//! `VARSAW_BENCH_HISTORY_WINDOW`, see [`bench::trend_regressions`]);
//! `--append` folds the current run into the history afterwards, so CI
//! can re-archive the file.
//!
//! Benchmarks present in only one side are reported as *added* /
//! *removed* and never fail the check — a new bench target's first run
//! has no baseline, and a retired one should disappear loudly, not
//! silently.
//!
//! Exit codes, so CI can tell outcomes apart:
//! - `0` — clean (including "baseline present but too short to judge").
//! - `1` — at least one kernel regressed past the gate.
//! - `2` — usage error, or the *current* artifact is missing/unparsable
//!   (the bench step itself broke).
//! - `3` — the *baseline* (previous artifact or history file) is missing
//!   or unparsable: nothing to compare against. The first run on a branch
//!   lands here; CI treats it as "no baseline yet", not a failure.

use bench::{
    append_history, compare_runs, diff_ids, parse_bench_json, parse_history, trend_regressions,
    BenchRecord, TREND_MIN_RUNS,
};
use std::process::ExitCode;

/// Clean / regressed / bench-step-broken / no-baseline.
const EXIT_OK: u8 = 0;
const EXIT_REGRESSED: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_NO_BASELINE: u8 = 3;

struct Options {
    trend: bool,
    append: bool,
    window: usize,
    max_ratio: f64,
    paths: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        trend: false,
        append: false,
        window: parallel::bench_history_window(),
        max_ratio: 2.0,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trend" => opts.trend = true,
            "--append" => opts.append = true,
            "--max-ratio" => {
                let v = it.next().ok_or("--max-ratio needs a value")?;
                opts.max_ratio = v
                    .parse()
                    .map_err(|e| format!("bad --max-ratio {v:?}: {e}"))?;
            }
            "--window" => {
                let v = it.next().ok_or("--window needs a value")?;
                opts.window = v.parse().map_err(|e| format!("bad --window {v:?}: {e}"))?;
                if opts.window == 0 {
                    return Err("--window must be at least 1".into());
                }
            }
            _ => opts.paths.push(arg.clone()),
        }
    }
    Ok(opts)
}

/// Loads one current artifact; errors here mean the bench step broke.
fn load(path: &str) -> Result<Vec<BenchRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_bench_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn run(args: &[String]) -> Result<u8, String> {
    let opts = parse_args(args)?;
    if opts.trend {
        run_trend(&opts)
    } else {
        run_pair(&opts)
    }
}

fn run_pair(opts: &Options) -> Result<u8, String> {
    let [old_path, new_path] = opts.paths.as_slice() else {
        return Err("usage: bench_diff <previous.json> <current.json> [--max-ratio 2.0]".into());
    };
    let max_ratio = opts.max_ratio;

    if !std::path::Path::new(old_path).exists() {
        println!("bench_diff: no previous artifact at {old_path}; nothing to compare (first run?)");
        return Ok(EXIT_NO_BASELINE);
    }
    let new = load(new_path)?;
    let old = match load(old_path) {
        Ok(old) => old,
        Err(e) => {
            // The baseline is someone else's archived artifact: being
            // unable to read it is a missing baseline, not our failure.
            println!("bench_diff: unusable baseline ({e}); nothing to compare");
            return Ok(EXIT_NO_BASELINE);
        }
    };

    let shared = new
        .iter()
        .filter(|n| old.iter().any(|o| o.id == n.id))
        .count();
    println!(
        "bench_diff: {} current kernels, {shared} with a baseline, threshold {max_ratio:.2}x",
        new.len()
    );
    for n in &new {
        if let Some(o) = old.iter().find(|o| o.id == n.id) {
            let ratio = n.mean_ns as f64 / o.mean_ns.max(1) as f64;
            println!(
                "  {:<50} {:>12} -> {:>12} ns  ({ratio:>5.2}x)",
                n.id, o.mean_ns, n.mean_ns
            );
        }
    }
    let (added, removed) = diff_ids(&old, &new);
    for id in &added {
        println!("  {id:<50} added (no baseline to compare)");
    }
    for id in &removed {
        println!("  {id:<50} removed (present only in the baseline)");
    }

    let regressions = compare_runs(&old, &new, max_ratio);
    if regressions.is_empty() {
        println!("bench_diff: no kernel regressed past {max_ratio:.2}x");
        return Ok(EXIT_OK);
    }
    eprintln!(
        "bench_diff: {} kernel(s) regressed past {max_ratio:.2}x:",
        regressions.len()
    );
    for r in &regressions {
        eprintln!(
            "  {:<50} {:>12} -> {:>12} ns  ({:.2}x)",
            r.id, r.old_mean_ns, r.new_mean_ns, r.ratio
        );
    }
    Ok(EXIT_REGRESSED)
}

fn run_trend(opts: &Options) -> Result<u8, String> {
    let [history_path, current_paths @ ..] = opts.paths.as_slice() else {
        return Err(
            "usage: bench_diff --trend <history.jsonl> <current.json>... \
             [--max-ratio 2.0] [--window N] [--append]"
                .into(),
        );
    };
    if current_paths.is_empty() {
        return Err("bench_diff --trend needs at least one current artifact".into());
    }

    let mut current = Vec::new();
    for path in current_paths {
        current.extend(load(path)?);
    }

    let history_text = match std::fs::read_to_string(history_path) {
        Ok(text) => text,
        Err(_) => String::new(),
    };
    let no_history_yet = history_text.trim().is_empty();
    let history = match parse_history(&history_text) {
        Ok(runs) => runs,
        Err(e) => {
            println!("bench_diff: unusable history ({e}); starting fresh");
            maybe_append(opts, history_path, "", &current)?;
            return Ok(EXIT_NO_BASELINE);
        }
    };
    // Judge against at most the newest `window` runs — the file may have
    // been archived under a larger window than today's knob.
    let windowed = &history[history.len().saturating_sub(opts.window)..];

    let verdict = if no_history_yet {
        println!("bench_diff: no history at {history_path}; nothing to judge (first run?)");
        EXIT_NO_BASELINE
    } else {
        println!(
            "bench_diff: {} current kernels vs {} archived run(s) (window {}), \
             ratio guard {:.2}x",
            current.len(),
            windowed.len(),
            opts.window,
            opts.max_ratio
        );
        if windowed.len() < TREND_MIN_RUNS {
            println!(
                "bench_diff: fewer than {TREND_MIN_RUNS} archived runs — trend gate is \
                 advisory only this run"
            );
        }
        let regressions = trend_regressions(windowed, &current, opts.max_ratio);
        if regressions.is_empty() {
            println!("bench_diff: no kernel regressed against its trend");
            EXIT_OK
        } else {
            eprintln!(
                "bench_diff: {} kernel(s) regressed against their trend:",
                regressions.len()
            );
            for r in &regressions {
                eprintln!(
                    "  {:<50} median {:>12} ns (±{} ns MAD over {} runs) -> {:>12} ns  ({:.2}x)",
                    r.id, r.median_ns, r.mad_ns, r.runs, r.new_mean_ns, r.ratio
                );
            }
            EXIT_REGRESSED
        }
    };

    maybe_append(opts, history_path, &history_text, &current)?;
    Ok(verdict)
}

/// Folds the current run into the history file when `--append` is on.
fn maybe_append(
    opts: &Options,
    history_path: &str,
    history_text: &str,
    current: &[BenchRecord],
) -> Result<(), String> {
    if !opts.append {
        return Ok(());
    }
    let updated = append_history(history_text, current, opts.window);
    std::fs::write(history_path, updated)
        .map_err(|e| format!("cannot write {history_path}: {e}"))?;
    println!(
        "bench_diff: appended current run to {history_path} (window {})",
        opts.window
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}
