//! Cross-run benchmark regression check over `BENCH_*.json` artifacts.
//!
//! ```text
//! bench_diff <previous.json> <current.json> [--max-ratio 2.0]
//! ```
//!
//! Exits nonzero when any kernel present in both runs slowed its mean by
//! more than the ratio threshold (see [`bench::compare_runs`] for the
//! comparison rules). Benchmarks present in only one of the two artifacts
//! are reported as *added* / *removed* and never fail the check — a new
//! bench target's first CI run has no baseline, and a retired one should
//! disappear loudly, not silently. A missing *previous* file is likewise
//! not an error — the first CI run on a branch has no archived baseline —
//! but a missing or unparsable *current* file is: that means the bench
//! step itself broke.

use bench::{compare_runs, diff_ids, parse_bench_json, BenchRecord};
use std::process::ExitCode;

fn load(path: &str) -> Result<Vec<BenchRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_bench_json(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut paths = Vec::new();
    let mut max_ratio = 2.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--max-ratio" {
            let v = it.next().ok_or("--max-ratio needs a value")?;
            max_ratio = v
                .parse()
                .map_err(|e| format!("bad --max-ratio {v:?}: {e}"))?;
        } else {
            paths.push(arg.clone());
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return Err("usage: bench_diff <previous.json> <current.json> [--max-ratio 2.0]".into());
    };

    if !std::path::Path::new(old_path).exists() {
        println!("bench_diff: no previous artifact at {old_path}; nothing to compare (first run?)");
        return Ok(ExitCode::SUCCESS);
    }
    let old = load(old_path)?;
    let new = load(new_path)?;

    let shared = new
        .iter()
        .filter(|n| old.iter().any(|o| o.id == n.id))
        .count();
    println!(
        "bench_diff: {} current kernels, {shared} with a baseline, threshold {max_ratio:.2}x",
        new.len()
    );
    for n in &new {
        if let Some(o) = old.iter().find(|o| o.id == n.id) {
            let ratio = n.mean_ns as f64 / o.mean_ns.max(1) as f64;
            println!(
                "  {:<50} {:>12} -> {:>12} ns  ({ratio:>5.2}x)",
                n.id, o.mean_ns, n.mean_ns
            );
        }
    }
    let (added, removed) = diff_ids(&old, &new);
    for id in &added {
        println!("  {id:<50} added (no baseline to compare)");
    }
    for id in &removed {
        println!("  {id:<50} removed (present only in the baseline)");
    }

    let regressions = compare_runs(&old, &new, max_ratio);
    if regressions.is_empty() {
        println!("bench_diff: no kernel regressed past {max_ratio:.2}x");
        return Ok(ExitCode::SUCCESS);
    }
    eprintln!(
        "bench_diff: {} kernel(s) regressed past {max_ratio:.2}x:",
        regressions.len()
    );
    for r in &regressions {
        eprintln!(
            "  {:<50} {:>12} -> {:>12} ns  ({:.2}x)",
            r.id, r.old_mean_ns, r.new_mean_ns, r.ratio
        );
    }
    Ok(ExitCode::FAILURE)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::FAILURE
        }
    }
}
