//! Fused-vs-unfused statevector execution on the EfficientSU2 ansatz —
//! the circuit shape every VQE iteration re-executes.
//!
//! Pairs to compare (CI archives them as `BENCH_fusion.json`):
//!
//! - `*_unfused_serial` vs `*_fused_serial`: gate-by-gate legacy execution
//!   against a precompiled [`qsim::CircuitPlan`] on one thread.
//! - `*_unfused_threaded` vs `*_fused_threaded`: the worker engine running
//!   a one-op-per-gate plan against the fused plan — fusion halves the
//!   rotation sweeps *and* the barrier regions.
//! - `plan_compile` / `plan_rebind`: what a cache miss and a cache hit
//!   cost on top of execution (rebind is the per-VQE-iteration price).
//! - `entangler_*_blocked` vs `entangler_*_pergate`: entangler-block
//!   fusion (adjacent same-pair two-qubit gates and their rotation
//!   sandwiches collapsed into 4×4 `Block4` sweeps) against the same
//!   plan with per-gate two-qubit sweeps
//!   ([`qsim::CircuitPlan::compile_unblocked`]).

use criterion::{criterion_group, criterion_main, Criterion};
use qsim::{Circuit, CircuitPlan, Parallelism, Statevector};
use vqe::{EfficientSu2, Entanglement};

fn ansatz_circuit(n: usize, entanglement: Entanglement) -> Circuit {
    let a = EfficientSu2::new(n, 2, entanglement);
    a.circuit(&a.initial_parameters(7))
}

fn bench_fusion(c: &mut Criterion) {
    let mut g = c.benchmark_group("fusion");
    let threads = parallel::num_threads();
    println!("bench fusion/*_threaded uses {threads} thread(s)");
    for (label, entanglement) in [
        ("full", Entanglement::Full),
        ("linear", Entanglement::Linear),
    ] {
        for n in [10usize, 12] {
            let circuit = ansatz_circuit(n, entanglement);
            let fused = CircuitPlan::compile(&circuit);
            let unfused = CircuitPlan::compile_unfused(&circuit);
            println!(
                "bench fusion efficient_su2_{label}_{n}q: {} gates -> {} fused ops ({} unfused)",
                circuit.gate_count(),
                fused.op_count(),
                unfused.op_count()
            );
            g.bench_function(format!("efficient_su2_{label}_{n}q_unfused_serial"), |b| {
                b.iter(|| {
                    let mut st = Statevector::zero(n);
                    st.apply_circuit_unfused(&circuit);
                    std::hint::black_box(st.amplitudes()[0])
                })
            });
            g.bench_function(format!("efficient_su2_{label}_{n}q_fused_serial"), |b| {
                b.iter(|| {
                    let mut st = Statevector::zero(n);
                    st.apply_plan(&fused);
                    std::hint::black_box(st.amplitudes()[0])
                })
            });
            g.bench_function(
                format!("efficient_su2_{label}_{n}q_unfused_threaded"),
                |b| {
                    b.iter(|| {
                        let mut st = Statevector::zero(n);
                        st.apply_plan_with(&unfused, Parallelism::Threads(threads));
                        std::hint::black_box(st.amplitudes()[0])
                    })
                },
            );
            g.bench_function(format!("efficient_su2_{label}_{n}q_fused_threaded"), |b| {
                b.iter(|| {
                    let mut st = Statevector::zero(n);
                    st.apply_plan_with(&fused, Parallelism::Threads(threads));
                    std::hint::black_box(st.amplitudes()[0])
                })
            });
        }
    }
    // Entangler-block fusion: the blocked plan against the same
    // fused-and-folded plan with per-gate two-qubit sweeps, isolating
    // what the 4x4 block kernels buy on the ansatz shapes.
    for (label, entanglement) in [
        ("full", Entanglement::Full),
        ("linear", Entanglement::Linear),
    ] {
        for n in [10usize, 12] {
            let circuit = ansatz_circuit(n, entanglement);
            let blocked = CircuitPlan::compile(&circuit);
            let pergate = CircuitPlan::compile_unblocked(&circuit);
            println!(
                "bench fusion entangler_{label}_{n}q: {} pergate ops -> {} blocked ({} blocks)",
                pergate.op_count(),
                blocked.op_count(),
                blocked.block_count()
            );
            g.bench_function(format!("entangler_{label}_{n}q_blocked_serial"), |b| {
                b.iter(|| {
                    let mut st = Statevector::zero(n);
                    st.apply_plan(&blocked);
                    std::hint::black_box(st.amplitudes()[0])
                })
            });
            g.bench_function(format!("entangler_{label}_{n}q_pergate_serial"), |b| {
                b.iter(|| {
                    let mut st = Statevector::zero(n);
                    st.apply_plan(&pergate);
                    std::hint::black_box(st.amplitudes()[0])
                })
            });
        }
    }
    // Compilation overhead: a cache miss (full analysis) and a cache hit
    // (rebind: matrix products only) on the main-evaluation shape.
    let circuit = ansatz_circuit(10, Entanglement::Full);
    let plan = CircuitPlan::compile(&circuit);
    g.bench_function("plan_compile_full_10q", |b| {
        b.iter(|| std::hint::black_box(CircuitPlan::compile(&circuit).op_count()))
    });
    g.bench_function("plan_rebind_full_10q", |b| {
        b.iter(|| std::hint::black_box(plan.rebind(&circuit).op_count()))
    });
    g.finish();
}

fn config() -> Criterion {
    // Fused-vs-unfused ratios gate CI, so this target spends a longer
    // measurement window than the kernel benches: scheduler jitter on a
    // shared single-core runner otherwise swings 10-sample means by tens
    // of percent.
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(2000))
        .warm_up_time(std::time::Duration::from_millis(400))
}

criterion_group! {
    name = fusion;
    config = config();
    targets = bench_fusion
}
criterion_main!(fusion);
