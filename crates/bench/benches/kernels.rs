//! Criterion benchmarks for the computational kernels every experiment
//! leans on: state-vector simulation, Pauli algebra, noise channels,
//! Bayesian reconstruction, grouping and the Lanczos eigensolver.

use chem::{molecular_hamiltonian, MoleculeSpec};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mitigation::{reconstruct, Pmf, ReconstructionConfig, Reconstructor};
use pauli::{group_by_cover, PauliString};
use qnoise::{apply_readout_errors, ReadoutError};
use qsim::{Circuit, Parallelism, Statevector};
use rand::{rngs::StdRng, SeedableRng};
use vqe::{EfficientSu2, Entanglement};

fn ansatz_circuit(n: usize) -> Circuit {
    let a = EfficientSu2::new(n, 2, Entanglement::Full);
    a.circuit(&a.initial_parameters(7))
}

fn bench_statevector(c: &mut Criterion) {
    // The canonical `efficient_su2_*` entries use the Auto dispatch —
    // what every caller of `apply_circuit` gets.
    let mut g = c.benchmark_group("statevector");
    for n in [6usize, 8, 10, 12] {
        let circuit = ansatz_circuit(n);
        g.bench_function(format!("efficient_su2_{n}q"), |b| {
            b.iter(|| {
                let mut st = Statevector::zero(n);
                st.apply_circuit(&circuit);
                std::hint::black_box(st.probabilities()[0])
            })
        });
    }
    // Serial-vs-parallel pairs at the sizes where Auto can go threaded,
    // so speedup (or spawn overhead on starved machines) is measurable
    // from one bench run. The parallel row pins `num_threads()` workers
    // explicitly — on a single-core container it degrades to ~serial.
    for n in [10usize, 12] {
        let circuit = ansatz_circuit(n);
        g.bench_function(format!("efficient_su2_{n}q_serial"), |b| {
            b.iter(|| {
                let mut st = Statevector::zero(n);
                st.apply_circuit_with(&circuit, Parallelism::Serial);
                std::hint::black_box(st.probabilities()[0])
            })
        });
        // Stable id (no thread count embedded) so archived BENCH_*.json
        // records match across runners; the worker count is reported on
        // its own line instead.
        let threads = parallel::num_threads();
        println!("bench statevector/efficient_su2_{n}q_parallel uses {threads} thread(s)");
        g.bench_function(format!("efficient_su2_{n}q_parallel"), |b| {
            b.iter(|| {
                let mut st = Statevector::zero(n);
                st.apply_circuit_with(&circuit, Parallelism::Threads(threads));
                std::hint::black_box(st.probabilities()[0])
            })
        });
    }
    g.finish();
}

fn bench_pauli_expectation(c: &mut Criterion) {
    let n = 10;
    let circuit = ansatz_circuit(n);
    let mut st = Statevector::zero(n);
    st.apply_circuit(&circuit);
    let string: PauliString = "ZXIZYIZXIZ".parse().unwrap();
    c.bench_function("pauli/exact_expectation_10q", |b| {
        b.iter(|| std::hint::black_box(string.expectation(&st)))
    });
}

fn bench_grouping(c: &mut Criterion) {
    let mut g = c.benchmark_group("grouping");
    for label in ["CH4-8", "H2O-12"] {
        let (name, qubits) = label.split_once('-').unwrap();
        let spec = MoleculeSpec::find(name, qubits.parse().unwrap()).unwrap();
        let h = molecular_hamiltonian(&spec);
        let strings: Vec<PauliString> = h
            .measurable_terms()
            .iter()
            .map(|t| t.string().clone())
            .collect();
        g.bench_function(format!("group_by_cover_{label}"), |b| {
            b.iter(|| std::hint::black_box(group_by_cover(&strings).len()))
        });
    }
    g.finish();
}

fn bench_reconstruction(c: &mut Criterion) {
    // An 8-qubit global PMF with 7 window locals — one basis circuit's
    // JigSaw reconstruction. The canonical id measures the one-shot
    // `reconstruct()` path (key tables built per call); the `_cached` row
    // is what the VQE evaluators actually pay from iteration two on — a
    // persistent `Reconstructor` whose key tables and scratch survive.
    // The full serial/parallel matrix lives in `benches/reconstruction.rs`.
    let n = 8usize;
    let circuit = ansatz_circuit(n);
    let mut st = Statevector::zero(n);
    st.apply_circuit(&circuit);
    let qubits: Vec<usize> = (0..n).collect();
    let global = Pmf::new(qubits.clone(), st.probabilities());
    let locals: Vec<Pmf> = (0..n - 1).map(|w| global.marginal(&[w, w + 1])).collect();
    c.bench_function("reconstruction/bayesian_8q_7windows", |b| {
        b.iter(|| {
            std::hint::black_box(reconstruct(
                &global,
                &locals,
                ReconstructionConfig::default(),
            ))
        })
    });
    let mut engine = Reconstructor::new();
    c.bench_function("reconstruction/bayesian_8q_7windows_cached", |b| {
        b.iter(|| {
            std::hint::black_box(engine.reconstruct(
                &global,
                &locals,
                ReconstructionConfig::default(),
            ))
        })
    });
}

fn bench_noise_channel(c: &mut Criterion) {
    let errors = vec![ReadoutError::new(0.02, 0.05); 10];
    let base: Vec<f64> = (0..1024).map(|i| (i as f64 + 1.0) / 524800.0).collect();
    c.bench_function("noise/readout_channel_10q", |b| {
        b.iter_batched(
            || base.clone(),
            |mut probs| {
                apply_readout_errors(&mut probs, &errors);
                std::hint::black_box(probs[0])
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_sampling(c: &mut Criterion) {
    let circuit = ansatz_circuit(8);
    let mut st = Statevector::zero(8);
    st.apply_circuit(&circuit);
    let probs = st.probabilities();
    c.bench_function("sampling/1024_shots_8q", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| std::hint::black_box(qsim::sample_counts(&probs, 1024, &mut rng)))
    });
}

fn bench_lanczos(c: &mut Criterion) {
    let spec = MoleculeSpec::find("CH4", 6).unwrap();
    let h = molecular_hamiltonian(&spec);
    c.bench_function("lanczos/ground_energy_ch4_6", |b| {
        b.iter(|| std::hint::black_box(h.ground_energy(1)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = kernels;
    config = config();
    targets = bench_statevector, bench_pauli_expectation, bench_grouping,
        bench_reconstruction, bench_noise_channel, bench_sampling, bench_lanczos
}
criterion_main!(kernels);
