//! Scheduler throughput: jobs/second through `sched::JobQueue` at mixed
//! register sizes, against the zero-overhead bound of running the same
//! jobs back-to-back on bare sequential executors.
//!
//! Pairs to compare (CI archives them as `BENCH_sched.json`):
//!
//! - `mixed_8q_10q_sequential` vs `mixed_8q_10q_queue_{w}w`: 12 jobs —
//!   two tenants, alternating 8- and 10-qubit EfficientSU2 ansätze, one
//!   subset measurement each — run bare versus submitted, drained and
//!   awaited through the queue at 1 and 4 workers. The 1-worker ratio is
//!   the queue's bookkeeping overhead (admission, fair-queueing,
//!   completion slots); the 4-worker point is the fan-out win. Results
//!   are bit-identical on every side, so the comparison is pure
//!   scheduling cost.

use criterion::{criterion_group, criterion_main, Criterion};
use qnoise::DeviceModel;
use qsim::Parallelism;
use sched::{job_seed, JobQueue, JobSpec, Measurement};
use vqe::{EfficientSu2, Entanglement, SimExecutor};

const SHOTS: u64 = 256;
const ROOT_SEED: u64 = 9;

/// The benchmark's job mix: 12 jobs across two tenants, alternating 8-
/// and 10-qubit registers, fresh angles per job (same two structures).
fn job_mix() -> Vec<JobSpec> {
    (0..12u64)
        .map(|i| {
            let n = if i % 2 == 0 { 8 } else { 10 };
            let ansatz = EfficientSu2::new(n, 2, Entanglement::Linear);
            let circuit = ansatz.circuit(&ansatz.initial_parameters(i));
            let basis: pauli::PauliString = "ZZ".repeat(n / 2).parse().unwrap();
            JobSpec {
                job_id: i,
                tenant: i % 2,
                circuit,
                measurements: vec![Measurement::subset(basis)],
            }
        })
        .collect()
}

/// One bare sequential pass over the mix — the reference the queue's
/// results are bit-identical to, and the zero-overhead throughput bound.
fn run_sequential(device: &DeviceModel, specs: &[JobSpec]) -> f64 {
    let mut acc = 0.0;
    for spec in specs {
        let mut exec = SimExecutor::new(device.clone(), SHOTS, job_seed(ROOT_SEED, spec.job_id))
            .with_parallelism(Parallelism::Serial);
        let state = exec.prepare(&spec.circuit);
        for m in &spec.measurements {
            acc += exec.run_prepared(&state, &m.basis).probs()[0];
        }
    }
    acc
}

/// The same mix through the queue: submit everything, drain with
/// `workers`, wait every handle.
fn run_queue(device: &DeviceModel, specs: &[JobSpec], workers: usize) -> f64 {
    let queue = JobQueue::new(device.clone(), SHOTS, ROOT_SEED).with_workers(workers);
    let handles: Vec<_> = specs
        .iter()
        .map(|s| queue.submit(s.clone()).unwrap())
        .collect();
    queue.drain();
    handles
        .iter()
        .map(|h| h.wait().unwrap().pmfs[0].probs()[0])
        .sum()
}

fn bench_sched_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched");
    let device = DeviceModel::mumbai_like();
    let specs = job_mix();
    println!(
        "bench sched mixed_8q_10q: {} jobs, 2 tenants, shots={SHOTS}",
        specs.len()
    );

    // The results must agree bit for bit before timing means anything.
    let reference = run_sequential(&device, &specs);
    for workers in [1usize, 4] {
        assert_eq!(run_queue(&device, &specs, workers), reference);
    }
    g.bench_function("mixed_8q_10q_sequential", |b| {
        b.iter(|| std::hint::black_box(run_sequential(&device, &specs)))
    });
    for workers in [1usize, 4] {
        g.bench_function(format!("mixed_8q_10q_queue_{workers}w"), |b| {
            b.iter(|| std::hint::black_box(run_queue(&device, &specs, workers)))
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(2500))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = sched_group;
    config = config();
    targets = bench_sched_throughput
}
criterion_main!(sched_group);
