//! Telemetry overhead: what the instrumentation costs a representative
//! VQE iteration.
//!
//! Rows (CI archives them as `BENCH_telemetry.json`):
//!
//! - `vqe_iteration_10q` — the iteration as the build ships it. With the
//!   default build this is the **zero-cost claim's bench row**: the spans
//!   compile to no-ops, so its trend history must stay flat (≤ 2%)
//!   against the pre-telemetry baseline.
//! - `vqe_iteration_10q_recording` / `_switched_off` — only with
//!   `--features telemetry`: the same iteration with recording active
//!   (spans + atomics on the hot path) and with the runtime switch off
//!   (compiled-in spans, branch-only). Their ratio to the first row is
//!   the measured overhead quoted in ARCHITECTURE.md.

use criterion::{criterion_group, criterion_main, Criterion};
use qnoise::DeviceModel;
use qsim::Parallelism;
use vqe::{EfficientSu2, Entanglement, SimExecutor};

const SHOTS: u64 = 1024;
const SEED: u64 = 23;
const NUM_QUBITS: usize = 10;

/// One representative iteration: prepare the ansatz, two Globals, three
/// subset reads — the same shape the `telemetry` experiment attributes.
fn iteration() -> f64 {
    let mut exec = SimExecutor::new(DeviceModel::mumbai_like(), SHOTS, SEED)
        .with_parallelism(Parallelism::Serial);
    let ansatz = EfficientSu2::new(NUM_QUBITS, 2, Entanglement::Linear);
    let circuit = ansatz.circuit(&ansatz.initial_parameters(5));
    let state = exec.prepare(&circuit);
    let globals: [pauli::PauliString; 2] =
        ["ZZZZZZZZZZ".parse().unwrap(), "XXXXXXXXXX".parse().unwrap()];
    let subsets: [pauli::PauliString; 3] = [
        "ZZIIIIIIII".parse().unwrap(),
        "IIXXXIIIII".parse().unwrap(),
        "IIIIIYYZII".parse().unwrap(),
    ];
    let mut acc = 0.0;
    for basis in &globals {
        acc += exec.run_prepared_all(&state, basis).probs()[0];
    }
    for basis in &subsets {
        acc += exec.run_prepared(&state, basis).probs()[0];
    }
    acc
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry");
    println!(
        "bench telemetry vqe_iteration_{NUM_QUBITS}q: shots={SHOTS}, spans compiled {}",
        if telemetry::compiled() { "in" } else { "out" }
    );

    g.bench_function(format!("vqe_iteration_{NUM_QUBITS}q"), |b| {
        b.iter(|| std::hint::black_box(iteration()))
    });

    // The instrumented variants only exist when the spans are compiled
    // in; results stay bit-identical either way (recording is pure
    // observation), so the reference check below is unconditional.
    if telemetry::compiled() {
        let reference = iteration();
        telemetry::set_active(true);
        assert_eq!(iteration(), reference, "recording must not perturb results");
        g.bench_function(format!("vqe_iteration_{NUM_QUBITS}q_recording"), |b| {
            b.iter(|| std::hint::black_box(iteration()))
        });
        telemetry::set_active(false);
        assert_eq!(
            iteration(),
            reference,
            "the switch must not perturb results"
        );
        g.bench_function(format!("vqe_iteration_{NUM_QUBITS}q_switched_off"), |b| {
            b.iter(|| std::hint::black_box(iteration()))
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(2500))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = telemetry_group;
    config = config();
    targets = bench_telemetry_overhead
}
criterion_main!(telemetry_group);
