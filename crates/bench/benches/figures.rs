//! Per-table/figure benchmarks: each benchmark id names the paper artifact
//! whose regeneration cost it measures. These are the building blocks of
//! the `experiments` binary (which produces the actual rows/series); the
//! benches here time one representative unit of each experiment so
//! regressions in any experiment's hot path are caught.

use chem::{molecular_hamiltonian, tfim_paper, MoleculeSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use qnoise::DeviceModel;
use varsaw::{
    cost, run_method, JigsawEvaluator, Method, RunSetup, SpatialPlan, TemporalPolicy,
    VarSawEvaluator,
};
use vqe::{BaselineEvaluator, EfficientSu2, EnergyEvaluator, Entanglement, SimExecutor, VqeConfig};

fn spec(label: &str) -> MoleculeSpec {
    let (name, qubits) = label.split_once('-').unwrap();
    MoleculeSpec::find(name, qubits.parse().unwrap()).unwrap()
}

/// Table 1 / Fig.19 unit: a single mitigated JigSaw evaluation.
fn table1_jigsaw_evaluation(c: &mut Criterion) {
    let h = molecular_hamiltonian(&spec("CH4-6"));
    let ansatz = EfficientSu2::new(6, 2, Entanglement::Full);
    let params = ansatz.initial_parameters(3);
    c.bench_function("table1/jigsaw_evaluation_ch4_6", |b| {
        let mut eval = JigsawEvaluator::new(
            &h,
            ansatz.clone(),
            2,
            SimExecutor::exact(DeviceModel::mumbai_like(), 1),
        );
        b.iter(|| std::hint::black_box(eval.evaluate(&params)))
    });
}

/// Fig.6/Fig.12 unit: spatial plan construction.
fn fig12_spatial_plans(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    for label in ["CH4-6", "CH4-8", "H2O-12"] {
        let h = molecular_hamiltonian(&spec(label));
        g.bench_function(format!("spatial_plan_{label}"), |b| {
            b.iter(|| std::hint::black_box(SpatialPlan::new(&h, 2).stats()))
        });
    }
    g.finish();
}

/// Fig.8 unit: the full cost-model sweep.
fn fig8_cost_model(c: &mut Criterion) {
    c.bench_function("fig8/cost_model_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for q in (4..=1000).step_by(12) {
                acc += cost::jigsaw_cost(q, 2)
                    + cost::traditional_cost(q)
                    + cost::varsaw_cost(q, 0.01, 2);
            }
            std::hint::black_box(acc)
        })
    });
}

/// Fig.13/Fig.14 unit: one objective evaluation for each method.
fn fig13_method_evaluations(c: &mut Criterion) {
    let h = molecular_hamiltonian(&spec("CH4-6"));
    let ansatz = EfficientSu2::new(6, 2, Entanglement::Full);
    let params = ansatz.initial_parameters(5);
    let dev = DeviceModel::mumbai_like();
    let mut g = c.benchmark_group("fig13");
    g.bench_function("baseline_evaluation_ch4_6", |b| {
        let mut eval =
            BaselineEvaluator::new(&h, ansatz.clone(), SimExecutor::new(dev.clone(), 1024, 1));
        b.iter(|| std::hint::black_box(eval.evaluate(&params)))
    });
    g.bench_function("varsaw_evaluation_ch4_6", |b| {
        let mut eval = VarSawEvaluator::new(
            &h,
            ansatz.clone(),
            2,
            TemporalPolicy::Adaptive {
                initial_interval: 2,
            },
            SimExecutor::new(dev.clone(), 1024, 1),
        );
        b.iter(|| std::hint::black_box(eval.evaluate(&params)))
    });
    g.finish();
}

/// Fig.16 unit: a short TFIM tuning run with sparsity.
fn fig16_tfim_run(c: &mut Criterion) {
    c.bench_function("fig16/tfim_sparse_20_iterations", |b| {
        b.iter(|| {
            let setup = RunSetup::new(
                tfim_paper(),
                EfficientSu2::new(5, 2, Entanglement::Full),
                DeviceModel::lagos_like(),
                9,
            );
            let out = run_method(
                &setup,
                Method::VarSaw(TemporalPolicy::OneShot),
                &VqeConfig {
                    max_iterations: 20,
                    max_circuits: None,
                },
            );
            std::hint::black_box(out.trace.best_energy())
        })
    });
}

/// Table 5 unit: scaling a device's noise.
fn table5_device_scaling(c: &mut Criterion) {
    let dev = DeviceModel::mumbai_like();
    c.bench_function("table5/device_scaling", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for s in [5.0, 3.0, 1.0, 0.8, 0.5, 0.1, 0.05] {
                acc += dev.scaled(s).average_readout_error();
            }
            std::hint::black_box(acc)
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(900))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = figures;
    config = config();
    targets = table1_jigsaw_evaluation, fig12_spatial_plans, fig8_cost_model,
        fig13_method_evaluations, fig16_tfim_run, table5_device_scaling
}
criterion_main!(figures);
