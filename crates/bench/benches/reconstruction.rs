//! Benchmarks for the Bayesian-reconstruction engine, CI-archived as
//! `BENCH_reconstruction.json` (see the bench-smoke job): the one-shot
//! compatibility path, the key-cached persistent path the VQE evaluators
//! run, multi-round sweeps, and the serial/parallel pair at a size where
//! the chunked marginal reduction can go threaded.

use criterion::{criterion_group, criterion_main, Criterion};
use mitigation::{reconstruct, Parallelism, Pmf, ReconstructionConfig, Reconstructor};
use qsim::Statevector;
use vqe::{EfficientSu2, Entanglement};

/// The 8-qubit EfficientSU2 output distribution with 7 pairwise window
/// locals — one basis circuit's JigSaw reconstruction, as in `kernels.rs`.
fn jigsaw_8q() -> (Pmf, Vec<Pmf>) {
    let n = 8usize;
    let a = EfficientSu2::new(n, 2, Entanglement::Full);
    let mut st = Statevector::zero(n);
    st.apply_circuit(&a.circuit(&a.initial_parameters(7)));
    let global = Pmf::new((0..n).collect(), st.probabilities());
    let locals: Vec<Pmf> = (0..n - 1).map(|w| global.marginal(&[w, w + 1])).collect();
    (global, locals)
}

/// A synthetic n-qubit global with pairwise locals that disagree with its
/// marginals (so every update really reweights). Deterministic, no
/// statevector: 2^n amplitudes would dominate setup at large n.
fn synthetic(n: usize) -> (Pmf, Vec<Pmf>) {
    let dim = 1usize << n;
    let probs: Vec<f64> = (0..dim)
        .map(|x| ((x.wrapping_mul(2654435761)) % 1000 + 1) as f64)
        .collect();
    let global = Pmf::new((0..n).collect(), probs);
    let locals: Vec<Pmf> = (0..n - 1)
        .map(|w| Pmf::new(vec![w, w + 1], vec![0.4, 0.1, 0.2, 0.3]))
        .collect();
    (global, locals)
}

fn bench_oneshot(c: &mut Criterion) {
    let (global, locals) = jigsaw_8q();
    c.bench_function("reconstruction/oneshot_8q_7windows", |b| {
        b.iter(|| {
            std::hint::black_box(reconstruct(
                &global,
                &locals,
                ReconstructionConfig::default(),
            ))
        })
    });
}

fn bench_cached(c: &mut Criterion) {
    let (global, locals) = jigsaw_8q();
    let mut engine = Reconstructor::new();
    c.bench_function("reconstruction/cached_8q_7windows", |b| {
        b.iter(|| {
            std::hint::black_box(engine.reconstruct(
                &global,
                &locals,
                ReconstructionConfig::default(),
            ))
        })
    });
    let rounds4 = ReconstructionConfig {
        epsilon: 1e-9,
        rounds: 4,
    };
    c.bench_function("reconstruction/cached_rounds4_8q_7windows", |b| {
        b.iter(|| std::hint::black_box(engine.reconstruct(&global, &locals, rounds4)))
    });
}

fn bench_parallel_pair(c: &mut Criterion) {
    // 16 qubits: 65536 outcomes, 16 chunks — above the Auto threshold, so
    // the serial/parallel pair isolates the threaded marginal reduction.
    // Stable ids (no thread count embedded), worker count on its own line,
    // mirroring the statevector pairs.
    let (global, locals) = synthetic(16);
    let cfg = ReconstructionConfig::default();
    let mut serial = Reconstructor::new().with_parallelism(Parallelism::Serial);
    c.bench_function("reconstruction/serial_16q_15windows", |b| {
        b.iter(|| std::hint::black_box(serial.reconstruct(&global, &locals, cfg)))
    });
    let threads = parallel::num_threads();
    println!("bench reconstruction/parallel_16q_15windows uses {threads} thread(s)");
    let mut parallel_engine = Reconstructor::new().with_parallelism(Parallelism::Threads(threads));
    c.bench_function("reconstruction/parallel_16q_15windows", |b| {
        b.iter(|| std::hint::black_box(parallel_engine.reconstruct(&global, &locals, cfg)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = reconstruction;
    config = config();
    targets = bench_oneshot, bench_cached, bench_parallel_pair
}
criterion_main!(reconstruction);
