//! The sharded amplitude-plane executor and the batched parameter-set
//! dispatch — the two halves of the scale tier above the dense engine.
//!
//! Pairs to compare (CI archives them as `BENCH_shard.json`):
//!
//! - `single_plane_{n}q` vs `sharded_{n}q_{s}shards`: one compiled
//!   EfficientSU2 plan applied to the dense plane against the sharded
//!   executor at 16–20 qubits. Shards batch runs of local ops per shard
//!   (one cache-resident pass instead of one full-plane sweep per op),
//!   so the sharded side wins on states past the cache sizes even
//!   single-threaded; the printed analysis shows how many exchanges the
//!   hot-qubit remap left over.
//! - `sharded_channel_{n}q_{s}shards`: the same shard plan through the
//!   message-passing rank-thread transport instead of in-process handle
//!   swaps — every cross-shard amplitude serialized onto a channel and
//!   back. The gap to `sharded_{n}q_{s}shards` is the honest cost of
//!   rank isolation; the printed counters show the wire volume per
//!   apply.
//! - `spsa_probes_12q_8x_{sequential,batched}`: eight SPSA-style probe
//!   evaluations of a 12-qubit TFIM objective. The sequential side
//!   submits one circuit dispatch at a time (`prepare` +
//!   `run_prepared_all` per measurement group — the execution model
//!   every evaluator used before batched dispatch existed); the batched
//!   side is `BaselineEvaluator::evaluate_batch`, which plans the whole
//!   family up front (shared compiled plans, scratch reuse, direct
//!   full-register reads) and reproduces the sequential results seed for
//!   seed — the ratio is pure per-dispatch overhead amortization.

use chem::tfim_chain;
use criterion::{criterion_group, criterion_main, Criterion};
use mitigation::Pmf;
use qnoise::DeviceModel;
use qsim::{CircuitPlan, ShardPlan, ShardedState, Statevector, TransportMode};
use vqe::{
    BaselineEvaluator, EfficientSu2, EnergyEvaluator, Entanglement, GroupedHamiltonian, SimExecutor,
};

/// Shard counts sized so one shard sits comfortably inside the cache
/// hierarchy (2¹²–2¹⁴ amplitudes = 64 KiB–256 KiB).
fn shard_count(n: usize) -> usize {
    match n {
        16 => 16,
        18 => 64,
        _ => 64,
    }
}

fn bench_sharded_apply(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard");
    for n in [16usize, 18, 20] {
        let ansatz = EfficientSu2::new(n, 2, Entanglement::Linear);
        let circuit = ansatz.circuit(&ansatz.initial_parameters(7));
        let plan = CircuitPlan::compile(&circuit);
        let shards = shard_count(n);
        let sp = ShardPlan::analyze(&plan, shards);
        println!(
            "bench shard {n}q/{shards} shards: {} ops -> {} local, {} exchanges, {} plane swaps",
            plan.op_count(),
            sp.local_count(),
            sp.exchange_count(),
            sp.plane_swap_count()
        );
        g.bench_function(format!("single_plane_{n}q"), |b| {
            b.iter(|| {
                let mut st = Statevector::zero(n);
                st.apply_plan(&plan);
                std::hint::black_box(st.amplitudes()[0])
            })
        });
        g.bench_function(format!("sharded_{n}q_{shards}shards"), |b| {
            b.iter(|| {
                let mut st = ShardedState::zero(n, shards);
                st.apply_shard_plan(&sp);
                std::hint::black_box(st.norm_sqr())
            })
        });
        // One counted apply outside the timing loop: the wire volume is
        // deterministic per plan, so printing it once tells the whole
        // story alongside the channel row's mean.
        let mut counted = ShardedState::zero(n, shards).with_transport(TransportMode::Channel);
        counted.apply_shard_plan(&sp);
        let stats = counted.shard_stats();
        println!(
            "bench shard {n}q/{shards} channel wire: {} messages, {:.1} MiB moved per apply",
            stats.messages,
            stats.bytes_moved as f64 / (1024.0 * 1024.0)
        );
        g.bench_function(format!("sharded_channel_{n}q_{shards}shards"), |b| {
            b.iter(|| {
                let mut st = ShardedState::zero(n, shards).with_transport(TransportMode::Channel);
                st.apply_shard_plan(&sp);
                std::hint::black_box(st.norm_sqr())
            })
        });
    }
    g.finish();
}

fn bench_batched_probes(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard");
    let n = 12;
    let h = tfim_chain(n, 1.0, 0.7, false);
    let ansatz = EfficientSu2::new(n, 2, Entanglement::Linear);
    let probes: Vec<Vec<f64>> = (0..8).map(|i| ansatz.initial_parameters(i)).collect();
    let probe_refs: Vec<&[f64]> = probes.iter().map(|p| p.as_slice()).collect();
    let grouped = GroupedHamiltonian::new(&h);
    let mut seq_exec = SimExecutor::new(DeviceModel::mumbai_like(), 1024, 7);
    let mut eval = BaselineEvaluator::new(
        &h,
        ansatz.clone(),
        SimExecutor::new(DeviceModel::mumbai_like(), 1024, 7),
    );
    println!(
        "bench shard spsa_probes_12q: {} measurement groups x 8 probes",
        grouped.num_groups()
    );
    // Warm both plan caches so each side pays rebinds only.
    eval.evaluate(&probes[0]);
    let warm = seq_exec.prepare(&ansatz.circuit(&probes[0]));
    grouped.measure(&mut seq_exec, &warm);

    g.bench_function("spsa_probes_12q_8x_sequential", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in &probes {
                let state = seq_exec.prepare(&ansatz.circuit(p));
                let pmfs: Vec<Pmf> = grouped
                    .groups()
                    .iter()
                    .map(|grp| seq_exec.run_prepared_all(&state, &grp.basis))
                    .collect();
                acc += grouped.energy_from_pmfs(&pmfs);
            }
            std::hint::black_box(acc)
        })
    });
    g.bench_function("spsa_probes_12q_8x_batched", |b| {
        b.iter(|| std::hint::black_box(eval.evaluate_batch(&probe_refs).iter().sum::<f64>()))
    });
    g.finish();
}

fn config() -> Criterion {
    // The sharded-vs-dense ratios gate CI and single iterations at 20
    // qubits run hundreds of milliseconds, so this target uses few
    // samples inside a generous measurement window.
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(2500))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = shard;
    config = config();
    targets = bench_sharded_apply, bench_batched_probes
}
criterion_main!(shard);
