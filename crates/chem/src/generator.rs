//! Deterministic synthetic molecular Hamiltonians.
//!
//! The paper derives its Hamiltonians from PySCF (Section 5.2); with no
//! chemistry stack available we substitute structurally faithful synthetic
//! Hamiltonians (see ARCHITECTURE.md). The generator reproduces the features the
//! VarSaw pipeline is sensitive to:
//!
//! - the exact per-molecule term counts of Table 2,
//! - a large identity offset plus Z/ZZ-dominated "diagonal" terms with the
//!   largest coefficients (Coulomb/number operators under Jordan–Wigner),
//! - XX+YY-style hopping pairs and X·Z…Z·X parity ladders spreading terms
//!   across measurement bases (what makes subset commuting profitable),
//! - a long tail of higher-weight, small-coefficient exchange terms with
//!   magnitudes decaying in weight.
//!
//! Generation is deterministic in the spec's seed: every run, test and
//! experiment sees the same molecule.

use crate::molecule::MoleculeSpec;
use pauli::{Hamiltonian, Pauli, PauliString, PauliTerm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Generates the synthetic Hamiltonian for a molecular workload.
///
/// The result has exactly `spec.pauli_terms` terms (counting the identity
/// offset term), all with distinct Pauli strings, on `spec.qubits` qubits.
///
/// # Panics
///
/// Panics if the spec requests more distinct strings than exist on its
/// qubit count (cannot happen for the Table 2 registry).
///
/// # Examples
///
/// ```
/// use chem::{molecular_hamiltonian, MoleculeSpec};
///
/// let spec = MoleculeSpec::find("H2", 4).unwrap();
/// let h = molecular_hamiltonian(&spec);
/// assert_eq!(h.num_terms(), 15);
/// assert_eq!(h.num_qubits(), 4);
/// ```
pub fn molecular_hamiltonian(spec: &MoleculeSpec) -> Hamiltonian {
    let n = spec.qubits;
    let target = spec.pauli_terms;
    assert!(
        (target as u128) < 4u128.pow(n as u32),
        "cannot build {target} distinct terms on {n} qubits"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut seen: HashSet<PauliString> = HashSet::new();
    let mut h = Hamiltonian::new(n);

    let push = |h: &mut Hamiltonian,
                seen: &mut HashSet<PauliString>,
                coeff: f64,
                s: PauliString|
     -> bool {
        if h.num_terms() >= target || seen.contains(&s) {
            return false;
        }
        seen.insert(s.clone());
        h.push(PauliTerm::new(coeff, s));
        true
    };

    // 1. Identity offset: the nuclear-repulsion + frozen-core constant.
    push(
        &mut h,
        &mut seen,
        spec.offset + rng.random::<f64>() - 0.5,
        PauliString::identity(n),
    );

    // 2. Single-Z number operators: the dominant measurable terms. All
    //    negative, so the mean-field ground state is the aligned |0…0⟩
    //    reference — molecular Hamiltonians are Hartree–Fock dominated the
    //    same way, which keeps the VQE landscape a smooth descent from the
    //    near-zero ansatz start instead of a spin glass.
    for q in 0..n {
        let c = -(0.4 + rng.random::<f64>() * 1.2);
        push(&mut h, &mut seen, c, PauliString::single(n, q, Pauli::Z));
    }

    // 3. ZZ Coulomb/exchange pairs, with couplings decaying in qubit
    //    distance (orbital locality).
    'zz: for a in 0..n {
        for b in (a + 1)..n {
            let mut s = PauliString::identity(n);
            s.set(a, Pauli::Z);
            s.set(b, Pauli::Z);
            let decay = 1.0 / (b - a) as f64;
            let c = (0.05 + rng.random::<f64>() * 0.3) * decay * sign(&mut rng);
            push(&mut h, &mut seen, c, s);
            if h.num_terms() >= target {
                break 'zz;
            }
        }
    }

    // 3b. Double-excitation quads: the weight-4 XX/YY families on
    //     contiguous 4-qubit runs (the JW image of two-body excitations —
    //     real H2 at 4 qubits has exactly these four terms after its Z
    //     sector). The four family members share a coefficient magnitude.
    if n >= 4 {
        'quads: for start in 0..=(n - 4) {
            let c = (0.05 + rng.random::<f64>() * 0.2) * sign(&mut rng);
            for pattern in [
                [Pauli::X, Pauli::X, Pauli::Y, Pauli::Y],
                [Pauli::Y, Pauli::Y, Pauli::X, Pauli::X],
                [Pauli::X, Pauli::Y, Pauli::Y, Pauli::X],
                [Pauli::Y, Pauli::X, Pauli::X, Pauli::Y],
            ] {
                let mut s = PauliString::identity(n);
                for (i, &p) in pattern.iter().enumerate() {
                    s.set(start + i, p);
                }
                push(&mut h, &mut seen, c, s);
                if h.num_terms() >= target {
                    break 'quads;
                }
            }
        }
    }

    // 4. Hopping ladders X·Z…Z·X and Y·Z…Z·Y between neighbours at a few
    //    distances (Jordan–Wigner images of one-body excitations). The XX
    //    and YY partners share a coefficient, as in real JW Hamiltonians.
    'hop: for dist in 1..n.min(4) {
        for a in 0..n.saturating_sub(dist) {
            let b = a + dist;
            let c = (0.02 + rng.random::<f64>() * 0.25) * sign(&mut rng);
            for outer in [Pauli::X, Pauli::Y] {
                let mut s = PauliString::identity(n);
                s.set(a, outer);
                s.set(b, outer);
                for q in (a + 1)..b {
                    s.set(q, Pauli::Z);
                }
                push(&mut h, &mut seen, c, s);
                if h.num_terms() >= target {
                    break 'hop;
                }
            }
        }
    }

    // 5. Tail of two-body exchange terms: strings of weight 2–6
    //    (Jordan–Wigner two-body images are high-weight), Z-biased.
    //    Supports are mostly *contiguous* qubit runs — JW ladder products
    //    act on contiguous ranges — with a minority of spread supports.
    //    Coefficients decay as the tail grows.
    let mut tail_idx = 0usize;
    while h.num_terms() < target {
        let weight = (2 + (rng.random::<f64>() * 5.0) as usize).min(n); // 2..=6
        let z_biased = |rng: &mut StdRng| match rng.random_range(0..4u8) {
            0 => Pauli::X,
            1 => Pauli::Y,
            _ => Pauli::Z,
        };
        let mut s = PauliString::identity(n);
        if rng.random::<f64>() < 0.7 {
            // Contiguous run of `weight` qubits.
            let start = rng.random_range(0..=(n - weight));
            for q in start..start + weight {
                s.set(q, z_biased(&mut rng));
            }
        } else {
            // Spread support.
            let mut placed = 0;
            while placed < weight {
                let q = rng.random_range(0..n);
                if !s.pauli_at(q).is_identity() {
                    continue;
                }
                s.set(q, z_biased(&mut rng));
                placed += 1;
            }
        }
        let decay = 1.0 / (1.0 + 0.002 * tail_idx as f64);
        let c = (0.005 + rng.random::<f64>() * 0.12) * decay * sign(&mut rng);
        if push(&mut h, &mut seen, c, s) {
            tail_idx += 1;
        }
    }

    debug_assert_eq!(h.num_terms(), target);
    h
}

fn sign(rng: &mut StdRng) -> f64 {
    if rng.random::<bool>() {
        1.0
    } else {
        -1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecule::table2;

    #[test]
    fn term_counts_match_table2_for_small_systems() {
        for spec in table2().iter().filter(|m| m.qubits <= 12) {
            let h = molecular_hamiltonian(spec);
            assert_eq!(h.num_terms(), spec.pauli_terms, "{}", spec.label());
            assert_eq!(h.num_qubits(), spec.qubits);
        }
    }

    #[test]
    fn strings_are_distinct() {
        let spec = MoleculeSpec::find("CH4", 6).unwrap();
        let h = molecular_hamiltonian(&spec);
        let mut strings: Vec<_> = h.iter().map(|t| t.string().clone()).collect();
        strings.sort();
        strings.dedup();
        assert_eq!(strings.len(), h.num_terms());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = MoleculeSpec::find("LiH", 6).unwrap();
        assert_eq!(molecular_hamiltonian(&spec), molecular_hamiltonian(&spec));
    }

    #[test]
    fn bases_are_spread_beyond_z() {
        // The spatial optimization needs terms across measurement bases.
        let spec = MoleculeSpec::find("H2O", 6).unwrap();
        let h = molecular_hamiltonian(&spec);
        let has = |p: Pauli| h.iter().any(|t| t.string().paulis().contains(&p));
        assert!(has(Pauli::X) && has(Pauli::Y) && has(Pauli::Z));
    }

    #[test]
    fn identity_offset_is_near_spec_offset() {
        let spec = MoleculeSpec::find("H2O", 6).unwrap();
        let h = molecular_hamiltonian(&spec);
        assert!((h.identity_offset() - spec.offset).abs() < 1.0);
    }

    #[test]
    fn ground_energy_is_below_offset() {
        // The measurable terms must pull the ground state below the constant
        // offset, otherwise VQE has nothing to optimize.
        let spec = MoleculeSpec::find("H2", 4).unwrap();
        let h = molecular_hamiltonian(&spec);
        let e0 = h.ground_energy(1);
        assert!(e0 < h.identity_offset() - 0.5, "E0 = {e0}");
    }

    #[test]
    fn large_molecule_generates_quickly_and_exactly() {
        let spec = MoleculeSpec::find("C2H4", 20).unwrap();
        let h = molecular_hamiltonian(&spec);
        assert_eq!(h.num_terms(), 10510);
    }
}
