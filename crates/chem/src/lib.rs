//! Molecular workloads for the VarSaw reproduction.
//!
//! Stands in for the PySCF + Qiskit Nature pipeline the paper uses to build
//! its VQE Hamiltonians (Section 5.2). Provides:
//!
//! - [`MoleculeSpec`] / [`table2`] / [`temporal_workloads`]: the paper's
//!   Table 2 workload inventory, with exact qubit and Pauli-term counts,
//! - [`molecular_hamiltonian`]: a deterministic synthetic
//!   electronic-structure-like Hamiltonian generator (see ARCHITECTURE.md for the
//!   substitution rationale),
//! - [`tfim_chain`] / [`tfim_paper`]: transverse-field Ising Hamiltonians
//!   for the real-device experiment (Fig.16),
//! - [`heisenberg_chain`] / [`xy_chain`]: the spin-chain workloads the
//!   paper proposes as VarSaw extensions (Section 7.3).
//!
//! Reference energies ("Ref. Energy" in Table 1) are exact lowest
//! eigenvalues of these Hamiltonians, via
//! [`pauli::Hamiltonian::ground_energy`].
//!
//! # Example
//!
//! ```
//! use chem::{molecular_hamiltonian, MoleculeSpec};
//!
//! let spec = MoleculeSpec::find("H2", 4).unwrap();
//! let h = molecular_hamiltonian(&spec);
//! let reference = h.ground_energy(7);
//! assert!(reference < h.identity_offset());
//! ```

mod generator;
mod molecule;
mod qaoa;
mod spin;
mod tfim;

pub use generator::molecular_hamiltonian;
pub use molecule::{table2, temporal_workloads, MoleculeSpec};
pub use qaoa::{maxcut_hamiltonian, random_graph};
pub use spin::{heisenberg_chain, xy_chain};
pub use tfim::{tfim_chain, tfim_paper};
