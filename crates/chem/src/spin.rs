//! Spin-chain Hamiltonians: the paper's proposed VarSaw extensions.
//!
//! Section 7.3 names time-evolving Hamiltonian simulation workloads —
//! Ising, Heisenberg, XY models — as the natural next applications: their
//! Pauli terms spread across measurement bases, which is exactly where
//! VarSaw's spatial and temporal optimizations pay off. This module builds
//! those Hamiltonians so the extension experiments can run on them.

use pauli::{Hamiltonian, Pauli, PauliString, PauliTerm};

/// The anisotropic Heisenberg (XYZ) chain
/// `H = Σᵢ (Jx XᵢXᵢ₊₁ + Jy YᵢYᵢ₊₁ + Jz ZᵢZᵢ₊₁) − h Σᵢ Zᵢ`
/// on `n` qubits with open boundary.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use chem::heisenberg_chain;
///
/// let h = heisenberg_chain(4, 1.0, 1.0, 1.0, 0.5);
/// assert_eq!(h.num_terms(), 3 * 3 + 4); // 3 couplings per bond + 4 fields
/// ```
pub fn heisenberg_chain(n: usize, jx: f64, jy: f64, jz: f64, h: f64) -> Hamiltonian {
    assert!(n >= 2, "Heisenberg chain needs at least 2 qubits");
    let mut ham = Hamiltonian::new(n);
    for i in 0..n - 1 {
        for (j, p) in [(jx, Pauli::X), (jy, Pauli::Y), (jz, Pauli::Z)] {
            if j != 0.0 {
                let mut s = PauliString::identity(n);
                s.set(i, p);
                s.set(i + 1, p);
                ham.push(PauliTerm::new(j, s));
            }
        }
    }
    if h != 0.0 {
        for q in 0..n {
            ham.push(PauliTerm::new(-h, PauliString::single(n, q, Pauli::Z)));
        }
    }
    ham
}

/// The XY chain `H = Σᵢ (Jx XᵢXᵢ₊₁ + Jy YᵢYᵢ₊₁) − h Σᵢ Zᵢ` — the
/// Heisenberg chain with the ZZ coupling switched off.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn xy_chain(n: usize, jx: f64, jy: f64, h: f64) -> Hamiltonian {
    heisenberg_chain(n, jx, jy, 0.0, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heisenberg_term_count() {
        let h = heisenberg_chain(5, 1.0, 1.0, 1.0, 0.3);
        assert_eq!(h.num_terms(), 3 * 4 + 5);
        assert_eq!(h.num_qubits(), 5);
    }

    #[test]
    fn xy_chain_drops_zz() {
        let h = xy_chain(4, 1.0, 0.8, 0.2);
        assert_eq!(h.num_terms(), 2 * 3 + 4);
        assert!(h
            .iter()
            .all(|t| t.string().weight() == 1 || !all_z(t.string())));
    }

    fn all_z(s: &PauliString) -> bool {
        s.support().iter().all(|&q| s.pauli_at(q) == Pauli::Z)
    }

    #[test]
    fn zero_couplings_are_omitted() {
        let h = heisenberg_chain(3, 0.0, 0.0, 1.0, 0.0);
        assert_eq!(h.num_terms(), 2);
    }

    #[test]
    fn heisenberg_ground_energy_matches_known_2site_value() {
        // Two-site isotropic antiferromagnet J(XX+YY+ZZ): singlet at −3J.
        let h = heisenberg_chain(2, 1.0, 1.0, 1.0, 0.0);
        assert!((h.ground_energy(3) + 3.0).abs() < 1e-8);
    }

    #[test]
    fn bases_spread_across_measurements() {
        // The point of the extension: these workloads need X, Y and Z bases.
        let h = heisenberg_chain(6, 1.0, 1.0, 1.0, 0.4);
        let strings: Vec<PauliString> = h.iter().map(|t| t.string().clone()).collect();
        let groups = pauli::group_by_cover(&strings);
        assert!(groups.len() >= 3);
    }

    #[test]
    #[should_panic(expected = "at least 2 qubits")]
    fn rejects_single_site() {
        heisenberg_chain(1, 1.0, 1.0, 1.0, 0.0);
    }
}
