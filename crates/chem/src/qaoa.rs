//! QAOA MaxCut Hamiltonians.
//!
//! The paper scopes its evaluation to VQE but names QAOA as the other
//! flagship VQA (Section 2.4). MaxCut cost Hamiltonians are all-Z, so
//! VarSaw's *temporal* optimization applies directly while the spatial
//! one is cheap-but-trivial (a single measurement basis) — a useful
//! boundary case for tests and extensions.

use pauli::{Hamiltonian, Pauli, PauliString, PauliTerm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The MaxCut cost Hamiltonian `C = Σ_(u,v)∈E w·(Z_u Z_v − 1)/2` for a
/// weighted graph; its ground state encodes the maximum cut.
///
/// # Panics
///
/// Panics if an edge endpoint is out of range, a self-loop appears, or
/// `n == 0`.
///
/// # Examples
///
/// ```
/// use chem::maxcut_hamiltonian;
///
/// // A triangle: best cut severs 2 of 3 edges.
/// let h = maxcut_hamiltonian(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
/// assert!((h.ground_energy(1) + 2.0).abs() < 1e-8);
/// ```
pub fn maxcut_hamiltonian(n: usize, edges: &[(usize, usize, f64)]) -> Hamiltonian {
    assert!(n > 0, "graph needs at least one vertex");
    let mut h = Hamiltonian::new(n);
    for &(u, v, w) in edges {
        assert!(
            u < n && v < n,
            "edge ({u}, {v}) out of range for {n} vertices"
        );
        assert!(u != v, "self-loop on vertex {u}");
        let mut s = PauliString::identity(n);
        s.set(u, Pauli::Z);
        s.set(v, Pauli::Z);
        h.push(PauliTerm::new(0.5 * w, s));
        h.push(PauliTerm::new(-0.5 * w, PauliString::identity(n)));
    }
    h.simplify(1e-15)
}

/// A deterministic random graph for QAOA benchmarks: `n` vertices, each
/// possible edge kept with probability `density`, unit weights.
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]`.
pub fn random_graph(n: usize, density: f64, seed: u64) -> Vec<(usize, usize, f64)> {
    assert!((0.0..=1.0).contains(&density), "density must lie in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random::<f64>() < density {
                edges.push((u, v, 1.0));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge_cut_value() {
        // One edge: cut it → energy −1; uncut → 0.
        let h = maxcut_hamiltonian(2, &[(0, 1, 1.0)]);
        assert!((h.ground_energy(1) + 1.0).abs() < 1e-8);
    }

    #[test]
    fn square_graph_is_bipartite() {
        // A 4-cycle can be fully cut: energy −4.
        let edges = [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)];
        let h = maxcut_hamiltonian(4, &edges);
        assert!((h.ground_energy(1) + 4.0).abs() < 1e-8);
    }

    #[test]
    fn weights_scale_the_cut() {
        let h = maxcut_hamiltonian(2, &[(0, 1, 2.5)]);
        assert!((h.ground_energy(1) + 2.5).abs() < 1e-8);
    }

    #[test]
    fn all_terms_are_z_type() {
        let edges = random_graph(6, 0.5, 3);
        let h = maxcut_hamiltonian(6, &edges);
        for t in h.measurable_terms() {
            assert!(t
                .string()
                .support()
                .iter()
                .all(|&q| t.string().pauli_at(q) == Pauli::Z));
        }
        // All-Z terms group into a single measurement basis family or few.
        let strings: Vec<PauliString> = h
            .measurable_terms()
            .iter()
            .map(|t| t.string().clone())
            .collect();
        let groups = pauli::group_by_cover(&strings);
        assert!(groups.len() <= strings.len());
    }

    #[test]
    fn random_graph_is_deterministic() {
        assert_eq!(random_graph(8, 0.4, 9), random_graph(8, 0.4, 9));
        assert!(random_graph(8, 0.0, 1).is_empty());
        assert_eq!(random_graph(5, 1.0, 1).len(), 10);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        maxcut_hamiltonian(3, &[(1, 1, 1.0)]);
    }
}
