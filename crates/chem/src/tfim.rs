//! Transverse-field Ising model Hamiltonians.
//!
//! The paper's real-device experiments (Section 6.5, Fig.16) run VQE on a
//! 5-qubit TFIM Hamiltonian with 3 Pauli terms. The exact terms are not
//! spelled out in the paper; [`tfim_paper`] picks a 3-term, 5-qubit Ising
//! instance whose terms span both the Z and X measurement bases (so that
//! global executions are non-trivial and subsets exist), which is the
//! property the experiment depends on. [`tfim_chain`] provides the standard
//! full chain for examples and extensions.

use pauli::{Hamiltonian, Pauli, PauliString, PauliTerm};

/// The standard transverse-field Ising chain
/// `H = −J Σᵢ ZᵢZᵢ₊₁ − h Σᵢ Xᵢ` on `n` qubits (open boundary; closed if
/// `periodic`).
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use chem::tfim_chain;
///
/// let h = tfim_chain(4, 1.0, 0.5, false);
/// assert_eq!(h.num_terms(), 3 + 4); // 3 ZZ bonds + 4 X fields
/// ```
pub fn tfim_chain(n: usize, j: f64, h: f64, periodic: bool) -> Hamiltonian {
    assert!(n >= 2, "TFIM chain needs at least 2 qubits");
    let mut ham = Hamiltonian::new(n);
    let bonds = if periodic { n } else { n - 1 };
    for i in 0..bonds {
        let mut s = PauliString::identity(n);
        s.set(i, Pauli::Z);
        s.set((i + 1) % n, Pauli::Z);
        ham.push(PauliTerm::new(-j, s));
    }
    for q in 0..n {
        ham.push(PauliTerm::new(-h, PauliString::single(n, q, Pauli::X)));
    }
    ham
}

/// The 5-qubit, 3-Pauli-term Ising instance standing in for the paper's
/// real-device TFIM workload (Fig.16).
///
/// Terms: `−1.0·ZZIII − 1.0·IIZZZ − 0.7·XXXXX`. The two Z-cluster terms
/// and the X term require different measurement bases, giving the global
/// runs a non-trivial cost and the subsets something to commute.
///
/// ```
/// use chem::tfim_paper;
///
/// let h = tfim_paper();
/// assert_eq!(h.num_qubits(), 5);
/// assert_eq!(h.num_terms(), 3);
/// ```
pub fn tfim_paper() -> Hamiltonian {
    Hamiltonian::from_pairs(5, &[(-1.0, "ZZIII"), (-1.0, "IIZZZ"), (-0.7, "XXXXX")])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_term_counts() {
        assert_eq!(tfim_chain(5, 1.0, 1.0, false).num_terms(), 4 + 5);
        assert_eq!(tfim_chain(5, 1.0, 1.0, true).num_terms(), 5 + 5);
    }

    #[test]
    fn chain_ground_energy_at_zero_field_is_classical() {
        // With h = 0 the ground state is the fully aligned chain:
        // E0 = −J·(n−1).
        let h = tfim_chain(4, 1.0, 0.0, false);
        assert!((h.ground_energy(3) + 3.0).abs() < 1e-7);
    }

    #[test]
    fn chain_critical_point_energy_is_lower_than_classical() {
        let h = tfim_chain(4, 1.0, 1.0, false);
        // Transverse field only lowers the ground energy.
        assert!(h.ground_energy(3) < -3.0);
    }

    #[test]
    fn paper_instance_shape() {
        let h = tfim_paper();
        assert_eq!(h.num_terms(), 3);
        let strings: Vec<_> = h.iter().map(|t| t.string().clone()).collect();
        let groups = pauli::group_by_cover(&strings);
        assert_eq!(groups.len(), 3, "terms span distinct bases");
    }

    #[test]
    #[should_panic(expected = "at least 2 qubits")]
    fn chain_rejects_single_qubit() {
        tfim_chain(1, 1.0, 1.0, false);
    }
}
