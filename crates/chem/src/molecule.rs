//! The paper's molecular workload inventory (Table 2).

use std::fmt;

/// A molecular VQE workload: name, qubit count and Hamiltonian size.
///
/// Mirrors one row of the paper's Table 2. `temporal` marks whether the
/// paper (and our experiments) run the full spatial+temporal evaluation on
/// it — the larger systems are evaluated for spatial benefits only, since
/// simulating thousands of VQE iterations on them is impractical.
///
/// # Examples
///
/// ```
/// use chem::MoleculeSpec;
///
/// let ch4 = MoleculeSpec::find("CH4", 6).unwrap();
/// assert_eq!(ch4.pauli_terms, 94);
/// assert!(ch4.temporal);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MoleculeSpec {
    /// Molecule name, e.g. `"CH4"`.
    pub name: &'static str,
    /// Number of qubits in the encoding.
    pub qubits: usize,
    /// Number of Pauli terms in the Hamiltonian (including identity).
    pub pauli_terms: usize,
    /// Whether the temporal-redundancy evaluation runs on this workload.
    pub temporal: bool,
    /// Deterministic seed for the synthetic Hamiltonian generator.
    pub seed: u64,
    /// A constant energy offset giving the synthetic molecule an energy
    /// scale loosely resembling the paper's reported values.
    pub offset: f64,
}

impl MoleculeSpec {
    /// A short identifier like `"CH4-6"` (name-qubits), used across the
    /// experiment harnesses and matching the paper's figure labels.
    pub fn label(&self) -> String {
        format!("{}-{}", self.name, self.qubits)
    }

    /// Looks up a workload from the Table 2 registry by name and qubit
    /// count.
    pub fn find(name: &str, qubits: usize) -> Option<MoleculeSpec> {
        table2()
            .into_iter()
            .find(|m| m.name == name && m.qubits == qubits)
    }
}

impl fmt::Display for MoleculeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} qubits, {} Pauli terms{})",
            self.label(),
            self.qubits,
            self.pauli_terms,
            if self.temporal { ", temporal" } else { "" }
        )
    }
}

/// The thirteen molecular configurations of the paper's Table 2.
///
/// Qubit and Pauli-term counts are taken verbatim from the paper; the
/// Hamiltonian *contents* are synthetic (see [`crate::molecular_hamiltonian`]
/// and ARCHITECTURE.md).
pub fn table2() -> Vec<MoleculeSpec> {
    fn spec(
        name: &'static str,
        qubits: usize,
        pauli_terms: usize,
        temporal: bool,
        seed: u64,
        offset: f64,
    ) -> MoleculeSpec {
        MoleculeSpec {
            name,
            qubits,
            pauli_terms,
            temporal,
            seed,
            offset,
        }
    }
    vec![
        spec("H2", 4, 15, true, 101, 10.0),
        spec("LiH", 6, 118, true, 102, 1.5),
        spec("LiH", 8, 193, true, 103, 1.5),
        spec("H2O", 6, 62, true, 104, -105.0),
        spec("H2O", 8, 193, true, 105, -105.0),
        spec("H2O", 12, 670, false, 106, -105.0),
        spec("CH4", 6, 94, true, 107, -24.0),
        spec("CH4", 8, 241, true, 108, -24.0),
        spec("H6", 10, 919, false, 109, -3.0),
        spec("BeH2", 12, 670, false, 110, -15.0),
        spec("N2", 12, 660, false, 111, -108.0),
        spec("C2H4", 20, 10510, false, 112, -78.0),
        spec("Cr2", 34, 32699, false, 113, -2086.0),
    ]
}

/// The subset of [`table2`] used in the temporal (full VQE) evaluations —
/// the systems of up to 8 qubits, in the paper's Fig.14 order.
pub fn temporal_workloads() -> Vec<MoleculeSpec> {
    let order = [
        ("H2", 4),
        ("LiH", 6),
        ("H2O", 6),
        ("CH4", 6),
        ("LiH", 8),
        ("H2O", 8),
        ("CH4", 8),
    ];
    order
        .iter()
        .map(|&(n, q)| MoleculeSpec::find(n, q).expect("registry contains all temporal workloads"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_paper_counts() {
        let t = table2();
        assert_eq!(t.len(), 13);
        let cr2 = MoleculeSpec::find("Cr2", 34).unwrap();
        assert_eq!(cr2.pauli_terms, 32699);
        assert!(!cr2.temporal);
        let h2 = MoleculeSpec::find("H2", 4).unwrap();
        assert_eq!(h2.pauli_terms, 15);
    }

    #[test]
    fn temporal_workloads_are_the_seven_small_systems() {
        let tw = temporal_workloads();
        assert_eq!(tw.len(), 7);
        assert!(tw.iter().all(|m| m.temporal && m.qubits <= 8));
        assert_eq!(tw[0].label(), "H2-4");
        assert_eq!(tw[6].label(), "CH4-8");
    }

    #[test]
    fn labels_are_unique() {
        let t = table2();
        let mut labels: Vec<String> = t.iter().map(|m| m.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), t.len());
    }

    #[test]
    fn seeds_are_unique() {
        let t = table2();
        let mut seeds: Vec<u64> = t.iter().map(|m| m.seed).collect();
        seeds.sort();
        seeds.dedup();
        assert_eq!(seeds.len(), t.len());
    }

    #[test]
    fn find_misses_return_none() {
        assert!(MoleculeSpec::find("XeF6", 4).is_none());
        assert!(MoleculeSpec::find("H2", 5).is_none());
    }
}
