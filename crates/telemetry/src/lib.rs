//! Stage-attributed telemetry for the VarSaw reproduction's hot paths.
//!
//! The workspace's speed claims (fusion ratios, batched dispatch, shard
//! transports) all rest on "where did the time go" questions, so the hot
//! paths carry instrumentation points with a **fixed stage taxonomy**
//! ([`Stage`]): plan compilation vs rebinding, the statevector sweep per
//! execution tier, the shard-transport verbs, noise sampling, Bayesian
//! reconstruction, and the job scheduler's queue/dispatch/retry phases.
//!
//! Instrumentation is **feature-gated**: without this crate's `enabled`
//! feature (downstream crates forward their own `telemetry` feature to
//! it), [`span`] returns a zero-sized guard, [`record_duration`] is an
//! empty inline function, and the optimizer deletes the call sites — the
//! instrumented binaries are the uninstrumented ones. With the feature
//! on, spans time themselves with [`std::time::Instant`] and accumulate
//! into lock-free per-stage atomics:
//!
//! - a **process-global** accumulator, read with [`global_snapshot`];
//! - an optional **scoped [`Recorder`]** installed on the current thread
//!   ([`Recorder::install`]), which is how the job scheduler attributes
//!   stages to individual jobs (each job runs pinned to one worker
//!   thread).
//!
//! Even when compiled in, recording honors a runtime switch seeded from
//! the `VARSAW_TELEMETRY` environment knob (read once through
//! `parallel::config`) and adjustable with [`set_active`] — an
//! instrumented build can still run cold.
//!
//! Spans at the chosen call sites are **disjoint by construction** (a
//! sweep span never contains a transport span, noise spans sit outside
//! the sweep spans), so summing a snapshot's stages never double-counts
//! wall time; the `telemetry` experiments table relies on this when it
//! reports the fraction of an iteration attributed to named stages.
//!
//! ```
//! use telemetry::{Recorder, Stage};
//!
//! let recorder = Recorder::new();
//! {
//!     let _guard = recorder.install();
//!     let _span = telemetry::span(Stage::SweepSerial);
//!     // ... statevector work ...
//! }
//! if telemetry::compiled() {
//!     assert_eq!(recorder.snapshot().stat(Stage::SweepSerial).count, 1);
//! } else {
//!     assert!(recorder.snapshot().is_empty());
//! }
//! ```

use std::fmt;

/// The fixed stage taxonomy every instrumented call site attributes to.
///
/// The set is closed on purpose: dashboards, the experiments table, and
/// the bench-history tooling can enumerate [`Stage::ALL`] without
/// version skew, and a new stage is a reviewed API change rather than a
/// stray string label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Full fusion analysis of a circuit structure (plan-cache miss).
    PlanCompile,
    /// Rebinding parameters into a cached structure (plan-cache hit).
    PlanRebind,
    /// Dense statevector pass on the calling thread: gate sweeps,
    /// marginal/probability reads, and state copies of the serial tier.
    SweepSerial,
    /// Dense statevector pass fanned out across worker threads.
    SweepThreaded,
    /// Sharded statevector work: local shard sweeps and the final
    /// gather back into a dense state.
    SweepSharded,
    /// Shard-transport pairwise/quad amplitude exchanges.
    TransportExchange,
    /// Shard-transport whole-plane swaps (global-qubit permutations).
    TransportPlaneSwap,
    /// Distribution-level noise: depolarizing and readout confusion
    /// application, plus shot sampling.
    NoiseSampling,
    /// Bayesian reconstruction sweeps (`mitigation::Reconstructor`).
    Reconstruction,
    /// Time a job spent admitted but not yet dispatched.
    SchedQueueWait,
    /// Scheduler dispatch decisions (fair-queue picks).
    SchedDispatch,
    /// Retry backoff waits between supervised attempts.
    SchedRetry,
}

impl Stage {
    /// Number of stages in the taxonomy.
    pub const COUNT: usize = 12;

    /// Every stage, in display order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::PlanCompile,
        Stage::PlanRebind,
        Stage::SweepSerial,
        Stage::SweepThreaded,
        Stage::SweepSharded,
        Stage::TransportExchange,
        Stage::TransportPlaneSwap,
        Stage::NoiseSampling,
        Stage::Reconstruction,
        Stage::SchedQueueWait,
        Stage::SchedDispatch,
        Stage::SchedRetry,
    ];

    /// The stage's dense index into snapshot arrays (`0..COUNT`).
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable machine-readable name (`snake_case`), used by the
    /// experiments table and report files.
    pub const fn name(self) -> &'static str {
        match self {
            Stage::PlanCompile => "plan_compile",
            Stage::PlanRebind => "plan_rebind",
            Stage::SweepSerial => "sweep_serial",
            Stage::SweepThreaded => "sweep_threaded",
            Stage::SweepSharded => "sweep_sharded",
            Stage::TransportExchange => "transport_exchange",
            Stage::TransportPlaneSwap => "transport_plane_swap",
            Stage::NoiseSampling => "noise_sampling",
            Stage::Reconstruction => "reconstruction",
            Stage::SchedQueueWait => "sched_queue_wait",
            Stage::SchedDispatch => "sched_dispatch",
            Stage::SchedRetry => "sched_retry",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Accumulated totals for one [`Stage`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageStat {
    /// Recorded events (span completions / duration records).
    pub count: u64,
    /// Total recorded wall time, nanoseconds.
    pub total_ns: u64,
}

/// An immutable copy of per-stage accumulators: the exchange format
/// between the recording layer and everything that reports on it
/// (`sched::JobOutput` breakdowns, queue aggregates, the experiments
/// table).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    counts: [u64; Stage::COUNT],
    nanos: [u64; Stage::COUNT],
}

impl Default for TelemetrySnapshot {
    fn default() -> Self {
        TelemetrySnapshot::empty()
    }
}

impl TelemetrySnapshot {
    /// A snapshot with every stage at zero.
    pub const fn empty() -> Self {
        TelemetrySnapshot {
            counts: [0; Stage::COUNT],
            nanos: [0; Stage::COUNT],
        }
    }

    /// The totals recorded for `stage`.
    pub fn stat(&self, stage: Stage) -> StageStat {
        let i = stage.index();
        StageStat {
            count: self.counts[i],
            total_ns: self.nanos[i],
        }
    }

    /// Every `(stage, totals)` row in [`Stage::ALL`] order.
    pub fn rows(&self) -> impl Iterator<Item = (Stage, StageStat)> + '_ {
        Stage::ALL.into_iter().map(|s| (s, self.stat(s)))
    }

    /// Sum of all stages' recorded nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Sum of all stages' event counts.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether nothing has been recorded (all counters zero).
    pub fn is_empty(&self) -> bool {
        self.total_count() == 0 && self.total_ns() == 0
    }

    /// Adds `other`'s totals into `self`, stage by stage (saturating).
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for i in 0..Stage::COUNT {
            self.counts[i] = self.counts[i].saturating_add(other.counts[i]);
            self.nanos[i] = self.nanos[i].saturating_add(other.nanos[i]);
        }
    }

    /// The per-stage difference `self - earlier` (saturating at zero) —
    /// how two [`global_snapshot`] reads bracket a region of interest.
    pub fn since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let mut out = TelemetrySnapshot::empty();
        for i in 0..Stage::COUNT {
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
            out.nanos[i] = self.nanos[i].saturating_sub(earlier.nanos[i]);
        }
        out
    }

    /// Divides every per-stage count and total by `passes` — turns an
    /// N-pass accumulation into a per-pass average. `passes == 0` is
    /// treated as 1.
    #[must_use]
    pub fn scaled_down(&self, passes: u32) -> TelemetrySnapshot {
        let d = u64::from(passes.max(1));
        let mut out = TelemetrySnapshot::empty();
        for i in 0..Stage::COUNT {
            out.counts[i] = self.counts[i] / d;
            out.nanos[i] = self.nanos[i] / d;
        }
        out
    }

    #[cfg(feature = "enabled")]
    fn add(&mut self, stage: Stage, count: u64, ns: u64) {
        let i = stage.index();
        self.counts[i] = self.counts[i].saturating_add(count);
        self.nanos[i] = self.nanos[i].saturating_add(ns);
    }
}

/// Whether the instrumentation was compiled in (the `enabled` feature).
/// `false` means every recording entry point in this crate is a no-op
/// regardless of the runtime switch.
pub const fn compiled() -> bool {
    cfg!(feature = "enabled")
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{Stage, TelemetrySnapshot};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, OnceLock};
    use std::time::{Duration, Instant};

    /// Lock-free per-stage accumulators: one `(count, nanos)` atomic pair
    /// per stage. Relaxed ordering everywhere — totals are statistics,
    /// not synchronization.
    #[derive(Debug, Default)]
    pub(super) struct Cells {
        counts: [AtomicU64; Stage::COUNT],
        nanos: [AtomicU64; Stage::COUNT],
    }

    impl Cells {
        fn add(&self, stage: Stage, count: u64, ns: u64) {
            let i = stage.index();
            self.counts[i].fetch_add(count, Ordering::Relaxed);
            self.nanos[i].fetch_add(ns, Ordering::Relaxed);
        }

        fn snapshot(&self) -> TelemetrySnapshot {
            let mut out = TelemetrySnapshot::empty();
            for (i, stage) in Stage::ALL.into_iter().enumerate() {
                out.add(
                    stage,
                    self.counts[i].load(Ordering::Relaxed),
                    self.nanos[i].load(Ordering::Relaxed),
                );
            }
            out
        }

        fn clear(&self) {
            for i in 0..Stage::COUNT {
                self.counts[i].store(0, Ordering::Relaxed);
                self.nanos[i].store(0, Ordering::Relaxed);
            }
        }
    }

    fn global() -> &'static Cells {
        static GLOBAL: OnceLock<Cells> = OnceLock::new();
        GLOBAL.get_or_init(Cells::default)
    }

    fn active_flag() -> &'static AtomicBool {
        static ACTIVE: OnceLock<AtomicBool> = OnceLock::new();
        ACTIVE.get_or_init(|| AtomicBool::new(parallel::telemetry_default()))
    }

    thread_local! {
        static CURRENT: RefCell<Option<Arc<Cells>>> = const { RefCell::new(None) };
    }

    /// Whether recording is live right now: compiled in **and** the
    /// runtime switch is on (`VARSAW_TELEMETRY`, adjustable via
    /// [`set_active`]).
    pub fn active() -> bool {
        active_flag().load(Ordering::Relaxed)
    }

    /// Flips the runtime recording switch (overrides the environment
    /// default for the rest of the process). No-op without the
    /// `enabled` feature.
    pub fn set_active(on: bool) {
        active_flag().store(on, Ordering::Relaxed);
    }

    fn record(stage: Stage, count: u64, ns: u64) {
        global().add(stage, count, ns);
        // `try_with` so a span dropped during thread teardown (after the
        // thread-local was destroyed) degrades to global-only recording.
        let _ = CURRENT.try_with(|cur| {
            if let Some(cells) = cur.borrow().as_ref() {
                cells.add(stage, count, ns);
            }
        });
    }

    /// Records one completed event of `stage` lasting `elapsed`.
    /// For durations measured externally (e.g. queue wait computed from
    /// stored timestamps) where a live [`span`] guard cannot bracket the
    /// region.
    pub fn record_duration(stage: Stage, elapsed: Duration) {
        if active() {
            record(stage, 1, saturating_ns(elapsed));
        }
    }

    fn saturating_ns(d: Duration) -> u64 {
        u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
    }

    /// A live span: times the region from construction to drop and
    /// accumulates into the global cells plus the installed [`Recorder`]
    /// (if any). Zero-sized and inert without the `enabled` feature.
    #[must_use = "a span records the time until it is dropped; bind it to a variable"]
    #[derive(Debug)]
    pub struct Span {
        live: Option<(Stage, Instant)>,
    }

    /// Starts timing `stage`; the returned guard records on drop.
    /// Inactive (runtime switch off) spans cost one atomic load.
    pub fn span(stage: Stage) -> Span {
        Span {
            live: active().then(|| (stage, Instant::now())),
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            if let Some((stage, start)) = self.live.take() {
                record(stage, 1, saturating_ns(start.elapsed()));
            }
        }
    }

    /// A scoped accumulator: while [`installed`](Recorder::install) on a
    /// thread, every recording on that thread lands here *in addition
    /// to* the global cells. Cloning shares the accumulator.
    #[derive(Clone, Debug, Default)]
    pub struct Recorder {
        cells: Arc<Cells>,
    }

    impl Recorder {
        /// A fresh, empty recorder.
        pub fn new() -> Self {
            Recorder::default()
        }

        /// Installs this recorder as the calling thread's current sink
        /// until the guard drops (the previous sink, if any, is
        /// restored — installation nests).
        pub fn install(&self) -> RecorderGuard {
            let prev = CURRENT.with(|cur| cur.replace(Some(Arc::clone(&self.cells))));
            RecorderGuard { prev }
        }

        /// The totals recorded through this recorder so far.
        pub fn snapshot(&self) -> TelemetrySnapshot {
            self.cells.snapshot()
        }

        /// The recorder's totals as an optional breakdown: `Some` when
        /// instrumentation is compiled in, `None` otherwise — the shape
        /// `sched::JobOutput` carries.
        pub fn finish(&self) -> Option<TelemetrySnapshot> {
            Some(self.snapshot())
        }

        /// Folds an already-taken snapshot into this recorder (how the
        /// job queue aggregates per-job breakdowns).
        pub fn absorb(&self, snapshot: &TelemetrySnapshot) {
            for (stage, stat) in snapshot.rows() {
                if stat.count != 0 || stat.total_ns != 0 {
                    self.cells.add(stage, stat.count, stat.total_ns);
                }
            }
        }

        /// Resets every stage to zero.
        pub fn clear(&self) {
            self.cells.clear();
        }
    }

    /// Restores the thread's previous recorder when dropped — see
    /// [`Recorder::install`].
    #[must_use = "dropping the guard immediately uninstalls the recorder"]
    #[derive(Debug)]
    pub struct RecorderGuard {
        prev: Option<Arc<Cells>>,
    }

    impl Drop for RecorderGuard {
        fn drop(&mut self) {
            let prev = self.prev.take();
            let _ = CURRENT.try_with(|cur| {
                *cur.borrow_mut() = prev;
            });
        }
    }

    /// The process-global accumulated totals.
    pub fn global_snapshot() -> TelemetrySnapshot {
        global().snapshot()
    }

    /// Zeroes the process-global accumulators (tests and the
    /// experiments harness bracket regions with this plus
    /// [`global_snapshot`]).
    pub fn reset_global() {
        global().clear();
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::{Stage, TelemetrySnapshot};
    use std::time::Duration;

    /// Whether recording is live right now. Always `false` without the
    /// `enabled` feature.
    #[inline(always)]
    pub fn active() -> bool {
        false
    }

    /// Flips the runtime recording switch. No-op without the `enabled`
    /// feature.
    #[inline(always)]
    pub fn set_active(_on: bool) {}

    /// A live span guard. Zero-sized and inert without the `enabled`
    /// feature.
    #[must_use = "a span records the time until it is dropped; bind it to a variable"]
    #[derive(Debug)]
    pub struct Span;

    /// Starts timing `stage`. Compiles to nothing without the `enabled`
    /// feature.
    #[inline(always)]
    pub fn span(_stage: Stage) -> Span {
        Span
    }

    /// Records one completed event of `stage`. Compiles to nothing
    /// without the `enabled` feature.
    #[inline(always)]
    pub fn record_duration(_stage: Stage, _elapsed: Duration) {}

    /// A scoped accumulator. Zero-sized and inert without the `enabled`
    /// feature: snapshots are empty and [`Recorder::finish`] is `None`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Recorder;

    impl Recorder {
        /// A fresh recorder (inert).
        #[inline(always)]
        pub fn new() -> Self {
            Recorder
        }

        /// Installs this recorder on the calling thread (inert).
        #[inline(always)]
        pub fn install(&self) -> RecorderGuard {
            RecorderGuard
        }

        /// The totals recorded through this recorder: always empty.
        #[inline(always)]
        pub fn snapshot(&self) -> TelemetrySnapshot {
            TelemetrySnapshot::empty()
        }

        /// The optional breakdown shape: always `None` when the
        /// instrumentation is compiled out.
        #[inline(always)]
        pub fn finish(&self) -> Option<TelemetrySnapshot> {
            None
        }

        /// Folds a snapshot into this recorder (inert).
        #[inline(always)]
        pub fn absorb(&self, _snapshot: &TelemetrySnapshot) {}

        /// Resets every stage to zero (inert).
        #[inline(always)]
        pub fn clear(&self) {}
    }

    /// Restores the thread's previous recorder when dropped (inert).
    #[must_use = "dropping the guard immediately uninstalls the recorder"]
    #[derive(Debug)]
    pub struct RecorderGuard;

    /// The process-global accumulated totals: always empty.
    #[inline(always)]
    pub fn global_snapshot() -> TelemetrySnapshot {
        TelemetrySnapshot::empty()
    }

    /// Zeroes the process-global accumulators (inert).
    #[inline(always)]
    pub fn reset_global() {}
}

pub use imp::{
    active, global_snapshot, record_duration, reset_global, set_active, span, Recorder,
    RecorderGuard, Span,
};

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that record (or flip the runtime switch) share the global
    /// cells, so they serialize on this lock and pin the switch on.
    fn recording_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_active(true);
        guard
    }

    #[test]
    fn taxonomy_is_dense_and_named() {
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(stage.index(), i, "{stage}");
            assert!(!stage.name().is_empty());
        }
        // Names are unique (report files key on them).
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT);
    }

    #[test]
    fn empty_snapshot_reports_empty() {
        let snap = TelemetrySnapshot::empty();
        assert!(snap.is_empty());
        assert_eq!(snap.total_ns(), 0);
        assert_eq!(snap.total_count(), 0);
        assert_eq!(snap.rows().count(), Stage::COUNT);
    }

    #[test]
    fn merge_and_since_are_inverse_on_disjoint_stages() {
        let mut a = TelemetrySnapshot::empty();
        let b = TelemetrySnapshot::empty();
        a.merge(&b);
        assert!(a.is_empty());
        assert_eq!(a.since(&b), TelemetrySnapshot::empty());
    }

    #[test]
    fn noop_mode_records_nothing() {
        // Either mode: the recorder API is callable; in no-op mode it
        // stays empty, in enabled mode the span must land in both the
        // recorder and the global cells.
        let _lock = recording_lock();
        let recorder = Recorder::new();
        let before = global_snapshot();
        {
            let _guard = recorder.install();
            let _span = span(Stage::SweepSerial);
            std::hint::black_box(());
        }
        record_duration(Stage::SchedQueueWait, std::time::Duration::from_micros(5));
        let recorded = recorder.snapshot();
        if compiled() {
            assert_eq!(recorded.stat(Stage::SweepSerial).count, 1);
            // The duration record happened outside the guard, so only
            // the global cells see it.
            let delta = global_snapshot().since(&before);
            assert_eq!(delta.stat(Stage::SchedQueueWait).count, 1);
            assert!(delta.stat(Stage::SchedQueueWait).total_ns >= 5_000);
            assert_eq!(recorder.finish(), Some(recorded));
        } else {
            assert!(recorded.is_empty());
            assert!(global_snapshot().is_empty());
            assert_eq!(recorder.finish(), None);
        }
    }

    #[test]
    fn absorb_folds_snapshots() {
        let _lock = recording_lock();
        let recorder = Recorder::new();
        let mut snap = TelemetrySnapshot::empty();
        {
            let _guard = recorder.install();
            let _span = span(Stage::Reconstruction);
        }
        snap.merge(&recorder.snapshot());
        let aggregate = Recorder::new();
        aggregate.absorb(&snap);
        assert_eq!(aggregate.snapshot(), snap);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn runtime_switch_gates_recording() {
        let _lock = recording_lock();
        set_active(false);
        let recorder = Recorder::new();
        {
            let _guard = recorder.install();
            let _span = span(Stage::SweepThreaded);
        }
        assert!(recorder.snapshot().is_empty(), "switched-off span recorded");
        set_active(true);
        {
            let _guard = recorder.install();
            let _span = span(Stage::SweepThreaded);
        }
        assert_eq!(recorder.snapshot().stat(Stage::SweepThreaded).count, 1);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn install_nests_and_restores() {
        let _lock = recording_lock();
        let outer = Recorder::new();
        let inner = Recorder::new();
        let _outer_guard = outer.install();
        {
            let _inner_guard = inner.install();
            let _span = span(Stage::NoiseSampling);
        }
        // Inner guard dropped: the outer recorder is current again.
        let _span = span(Stage::PlanRebind);
        drop(_span);
        assert_eq!(inner.snapshot().stat(Stage::NoiseSampling).count, 1);
        assert_eq!(inner.snapshot().stat(Stage::PlanRebind).count, 0);
        assert_eq!(outer.snapshot().stat(Stage::PlanRebind).count, 1);
    }
}
