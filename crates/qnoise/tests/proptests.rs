//! Property-based tests for noise channels.

use proptest::prelude::*;
use qnoise::{apply_depolarizing, apply_readout_errors, DeviceModel, ReadoutError};

fn arb_readout() -> impl Strategy<Value = ReadoutError> {
    (0.0..0.5f64, 0.0..0.5f64).prop_map(|(a, b)| ReadoutError::new(a, b))
}

fn arb_dist(k: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.001..1.0f64, 1usize << k).prop_map(|w| {
        let total: f64 = w.iter().sum();
        w.into_iter().map(|x| x / total).collect()
    })
}

proptest! {
    /// Readout confusion is a stochastic map: preserves mass and
    /// nonnegativity.
    #[test]
    fn confusion_is_stochastic(errors in prop::collection::vec(arb_readout(), 3), dist in arb_dist(3)) {
        let mut p = dist;
        apply_readout_errors(&mut p, &errors);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| x >= -1e-12));
    }

    /// Order of qubit axes does not matter (the channel is a tensor
    /// product): applying errors [a, b] to a symmetric distribution equals
    /// applying [b, a] with the qubits relabeled.
    #[test]
    fn confusion_axes_commute(a in arb_readout(), b in arb_readout(), dist in arb_dist(2)) {
        let mut p1 = dist.clone();
        apply_readout_errors(&mut p1, &[a, b]);
        // Relabel qubits: swap bits of each index.
        let swapped: Vec<f64> = (0..4).map(|x| dist[((x & 1) << 1) | (x >> 1)]).collect();
        let mut p2 = swapped;
        apply_readout_errors(&mut p2, &[b, a]);
        for x in 0..4usize {
            let sx = ((x & 1) << 1) | (x >> 1);
            prop_assert!((p1[x] - p2[sx]).abs() < 1e-9);
        }
    }

    /// Depolarizing keeps distributions valid and shrinks the distance to
    /// uniform.
    #[test]
    fn depolarizing_contracts_toward_uniform(dist in arb_dist(3), lambda in 0.0..1.0f64) {
        let uniform = 1.0 / dist.len() as f64;
        let before: f64 = dist.iter().map(|&x| (x - uniform).abs()).sum();
        let mut p = dist;
        apply_depolarizing(&mut p, lambda);
        let after: f64 = p.iter().map(|&x| (x - uniform).abs()).sum();
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(after <= before + 1e-12);
    }

    /// Scaling a device by a factor ≤ 1 never increases any error rate.
    #[test]
    fn scaling_down_reduces_errors(factor in 0.0..1.0f64) {
        let dev = DeviceModel::mumbai_like();
        let scaled = dev.scaled(factor);
        for q in 0..dev.num_qubits() {
            prop_assert!(scaled.readout(q).average() <= dev.readout(q).average() + 1e-15);
        }
        prop_assert!(scaled.depolarizing() <= dev.depolarizing() + 1e-15);
    }

    /// Readout errors scaled by crosstalk stay valid probabilities.
    #[test]
    fn crosstalk_scaling_stays_valid(e in arb_readout(), measured in 1usize..50) {
        let dev = DeviceModel::new("t", vec![e; 4], qnoise::CrosstalkModel::new(0.1), 0.0);
        let eff = dev.effective_readout(0, measured);
        prop_assert!(eff.p10() <= 0.5 && eff.p01() <= 0.5);
        prop_assert!(eff.p10() >= e.p10() && eff.p01() >= e.p01());
    }
}
