//! Measurement crosstalk.

/// A model of measurement crosstalk: the per-qubit readout error grows with
/// the number of qubits measured *simultaneously*.
///
/// The paper motivates subsetting with exactly this effect: simultaneous
/// measurements are more error prone (1.26× on average on Google Sycamore,
/// up to an order of magnitude in the worst case — Sections 1 and 2.2). We
/// model it as a multiplicative amplification of the per-qubit flip
/// probabilities, linear in the number of *other* qubits measured at the
/// same time:
///
/// `factor(m) = 1 + per_neighbor · (m − 1)`
///
/// # Examples
///
/// ```
/// use qnoise::CrosstalkModel;
///
/// let ct = CrosstalkModel::new(0.08);
/// assert_eq!(ct.factor(1), 1.0);       // isolated measurement
/// assert!((ct.factor(6) - 1.4).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CrosstalkModel {
    per_neighbor: f64,
}

impl CrosstalkModel {
    /// No crosstalk.
    pub const NONE: CrosstalkModel = CrosstalkModel { per_neighbor: 0.0 };

    /// Creates a crosstalk model with the given per-simultaneous-neighbor
    /// amplification.
    ///
    /// # Panics
    ///
    /// Panics if `per_neighbor` is negative.
    pub fn new(per_neighbor: f64) -> Self {
        assert!(
            per_neighbor >= 0.0,
            "crosstalk amplification must be nonnegative"
        );
        CrosstalkModel { per_neighbor }
    }

    /// The per-neighbor amplification coefficient.
    pub fn per_neighbor(&self) -> f64 {
        self.per_neighbor
    }

    /// The error amplification factor when `measured` qubits are read out
    /// simultaneously. Returns 1 for zero or one qubit.
    pub fn factor(&self, measured: usize) -> f64 {
        1.0 + self.per_neighbor * measured.saturating_sub(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_measurement_is_unamplified() {
        let ct = CrosstalkModel::new(0.1);
        assert_eq!(ct.factor(0), 1.0);
        assert_eq!(ct.factor(1), 1.0);
    }

    #[test]
    fn factor_grows_linearly() {
        let ct = CrosstalkModel::new(0.05);
        assert!((ct.factor(2) - 1.05).abs() < 1e-12);
        assert!((ct.factor(11) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn none_has_unit_factor() {
        assert_eq!(CrosstalkModel::NONE.factor(100), 1.0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn rejects_negative() {
        CrosstalkModel::new(-0.1);
    }
}
