//! Synthetic device (noise) models.
//!
//! The paper evaluates on noise models of real IBM machines (IBMQ Mumbai for
//! the simulation studies, Lagos and Jakarta for the "real device" section).
//! We have no access to IBM calibration data, so this module generates
//! *deterministic synthetic* devices with per-qubit readout-error rates in
//! the 1–7% band the paper cites, asymmetric in the hardware-typical
//! direction, plus a crosstalk model and an optional depolarizing channel
//! standing in for all non-measurement noise. See ARCHITECTURE.md for the
//! substitution rationale.

use crate::crosstalk::CrosstalkModel;
use crate::readout::ReadoutError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A quantum device's noise description: per-physical-qubit readout errors,
/// measurement crosstalk, and a circuit-level depolarizing rate standing in
/// for gate/decoherence noise.
///
/// # Examples
///
/// ```
/// use qnoise::DeviceModel;
///
/// let dev = DeviceModel::mumbai_like();
/// assert_eq!(dev.num_qubits(), 27);
/// let best = dev.best_qubits(2);
/// let worst_avg = dev.readout(dev.worst_qubit()).average();
/// assert!(dev.readout(best[0]).average() <= worst_avg);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceModel {
    name: String,
    readout: Vec<ReadoutError>,
    crosstalk: CrosstalkModel,
    depolarizing: f64,
}

impl DeviceModel {
    /// Builds a device from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if `readout` is empty or `depolarizing` is outside `[0, 1]`.
    pub fn new(
        name: impl Into<String>,
        readout: Vec<ReadoutError>,
        crosstalk: CrosstalkModel,
        depolarizing: f64,
    ) -> Self {
        assert!(!readout.is_empty(), "device needs at least one qubit");
        assert!(
            (0.0..=1.0).contains(&depolarizing),
            "depolarizing rate must lie in [0, 1]"
        );
        DeviceModel {
            name: name.into(),
            readout,
            crosstalk,
            depolarizing,
        }
    }

    /// A noiseless device with `n` qubits.
    pub fn noiseless(n: usize) -> Self {
        DeviceModel::new(
            format!("noiseless-{n}"),
            vec![ReadoutError::NONE; n],
            CrosstalkModel::NONE,
            0.0,
        )
    }

    /// A device with `n` qubits, all with symmetric readout error `p`, no
    /// crosstalk and no depolarizing — handy in tests.
    pub fn uniform(n: usize, p: f64) -> Self {
        DeviceModel::new(
            format!("uniform-{n}-{p}"),
            vec![ReadoutError::symmetric(p); n],
            CrosstalkModel::NONE,
            0.0,
        )
    }

    /// A 27-qubit device patterned on the paper's primary noise model
    /// (IBMQ Mumbai): readout flip rates spread over ≈1–6% with the p01
    /// (relaxation) direction 1.5–2.5× worse, moderate crosstalk and a small
    /// depolarizing floor.
    pub fn mumbai_like() -> Self {
        Self::synthetic("mumbai-like", 27, 0.010, 0.030, 0.25, 0.01, 0xA11CE)
    }

    /// A 7-qubit device patterned on IBM Lagos (used in the paper's Fig.16).
    pub fn lagos_like() -> Self {
        Self::synthetic("lagos-like", 7, 0.012, 0.035, 0.30, 0.015, 0x1A605)
    }

    /// A 7-qubit device patterned on IBM Jakarta (Fig.16), slightly noisier
    /// than [`DeviceModel::lagos_like`].
    pub fn jakarta_like() -> Self {
        Self::synthetic("jakarta-like", 7, 0.016, 0.045, 0.35, 0.02, 0x7A4A)
    }

    /// Deterministic synthetic device: `n` qubits with `p10` drawn uniformly
    /// from `[p10_lo, p10_hi]` and `p01 = (1.5–2.5)·p10`, crosstalk
    /// amplification `ct` per simultaneous neighbor, depolarizing rate
    /// `depol`. The same `(name, seed)` always yields the same device.
    pub fn synthetic(
        name: &str,
        n: usize,
        p10_lo: f64,
        p10_hi: f64,
        ct: f64,
        depol: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let readout = (0..n)
            .map(|_| {
                let p10 = p10_lo + rng.random::<f64>() * (p10_hi - p10_lo);
                let ratio = 1.5 + rng.random::<f64>();
                ReadoutError::new(p10, (p10 * ratio).min(0.5))
            })
            .collect();
        DeviceModel::new(name, readout, CrosstalkModel::new(ct), depol)
    }

    /// The device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.readout.len()
    }

    /// The readout error of physical qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn readout(&self, q: usize) -> ReadoutError {
        self.readout[q]
    }

    /// The crosstalk model.
    pub fn crosstalk(&self) -> CrosstalkModel {
        self.crosstalk
    }

    /// The circuit-level depolarizing rate.
    pub fn depolarizing(&self) -> f64 {
        self.depolarizing
    }

    /// The `k` physical qubits with the lowest average readout error,
    /// best first.
    ///
    /// JigSaw/VarSaw subset circuits are mapped onto these (Section 2.3:
    /// "mapping the target logical qubits to be measured onto the physical
    /// qubits with highest measurement fidelity").
    ///
    /// # Panics
    ///
    /// Panics if `k > num_qubits`.
    pub fn best_qubits(&self, k: usize) -> Vec<usize> {
        assert!(
            k <= self.num_qubits(),
            "requested {k} qubits from a {}-qubit device",
            self.num_qubits()
        );
        let mut order: Vec<usize> = (0..self.num_qubits()).collect();
        order.sort_by(|&a, &b| {
            self.readout[a]
                .average()
                .partial_cmp(&self.readout[b].average())
                .expect("error rates are not NaN")
        });
        order.truncate(k);
        order
    }

    /// The physical qubit with the highest average readout error.
    pub fn worst_qubit(&self) -> usize {
        (0..self.num_qubits())
            .max_by(|&a, &b| {
                self.readout[a]
                    .average()
                    .partial_cmp(&self.readout[b].average())
                    .expect("error rates are not NaN")
            })
            .expect("device has at least one qubit")
    }

    /// The device-average readout error.
    pub fn average_readout_error(&self) -> f64 {
        self.readout.iter().map(|e| e.average()).sum::<f64>() / self.num_qubits() as f64
    }

    /// A copy of the device with every error rate multiplied by `factor`
    /// (flip probabilities saturate at 0.5, depolarizing at 1.0) — the
    /// paper's Appendix B noise sweep.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    pub fn scaled(&self, factor: f64) -> DeviceModel {
        assert!(factor >= 0.0, "scale factor must be nonnegative");
        DeviceModel {
            name: format!("{}×{:.2}", self.name, factor),
            readout: self.readout.iter().map(|e| e.scaled(factor)).collect(),
            crosstalk: self.crosstalk,
            depolarizing: (self.depolarizing * factor).min(1.0),
        }
    }

    /// The effective readout error of physical qubit `q` when `measured`
    /// qubits are read out simultaneously (crosstalk-amplified).
    pub fn effective_readout(&self, q: usize, measured: usize) -> ReadoutError {
        self.readout[q].scaled(self.crosstalk.factor(measured))
    }
}

impl fmt::Display for DeviceModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} qubits, avg readout {:.3}, crosstalk {:.2}/neighbor, depol {:.3})",
            self.name,
            self.num_qubits(),
            self.average_readout_error(),
            self.crosstalk.per_neighbor(),
            self.depolarizing
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_deterministic() {
        assert_eq!(DeviceModel::mumbai_like(), DeviceModel::mumbai_like());
        assert_eq!(DeviceModel::lagos_like(), DeviceModel::lagos_like());
        assert_eq!(DeviceModel::jakarta_like(), DeviceModel::jakarta_like());
    }

    #[test]
    fn preset_error_rates_are_in_paper_band() {
        for dev in [
            DeviceModel::mumbai_like(),
            DeviceModel::lagos_like(),
            DeviceModel::jakarta_like(),
        ] {
            for q in 0..dev.num_qubits() {
                let e = dev.readout(q);
                assert!(e.p10() >= 0.005 && e.p10() <= 0.08, "{e}");
                assert!(e.p01() >= e.p10(), "p01 should dominate: {e}");
            }
            let avg = dev.average_readout_error();
            assert!(avg > 0.01 && avg < 0.07, "avg {avg} outside 1–7%");
        }
    }

    #[test]
    fn best_qubits_are_sorted_by_error() {
        let dev = DeviceModel::mumbai_like();
        let best = dev.best_qubits(27);
        for w in best.windows(2) {
            assert!(dev.readout(w[0]).average() <= dev.readout(w[1]).average());
        }
        assert_eq!(dev.worst_qubit(), *best.last().unwrap());
    }

    #[test]
    fn scaling_scales_average_error() {
        let dev = DeviceModel::uniform(4, 0.05);
        let scaled = dev.scaled(2.0);
        assert!((scaled.average_readout_error() - 0.1).abs() < 1e-12);
        let silenced = dev.scaled(0.0);
        assert_eq!(silenced.average_readout_error(), 0.0);
    }

    #[test]
    fn effective_readout_includes_crosstalk() {
        let dev = DeviceModel::new(
            "t",
            vec![ReadoutError::symmetric(0.02); 4],
            CrosstalkModel::new(0.5),
            0.0,
        );
        let isolated = dev.effective_readout(0, 1);
        let grouped = dev.effective_readout(0, 4);
        assert_eq!(isolated.average(), 0.02);
        assert!((grouped.average() - 0.05).abs() < 1e-12); // 0.02 · (1 + 0.5·3)
    }

    #[test]
    fn noiseless_device_is_error_free() {
        let dev = DeviceModel::noiseless(5);
        assert_eq!(dev.average_readout_error(), 0.0);
        assert_eq!(dev.depolarizing(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn empty_device_rejected() {
        DeviceModel::new("x", vec![], CrosstalkModel::NONE, 0.0);
    }
}
