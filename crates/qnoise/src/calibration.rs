//! Readout-error calibration from measurement counts.
//!
//! On real hardware the confusion matrix is not known — it is *measured*,
//! by preparing computational basis states and counting the misreads
//! (IBM's measurement-mitigation calibration circuits). This module fits
//! per-qubit [`ReadoutError`]s from exactly those two count vectors, which
//! is what a hardware-faithful MBM deployment would feed the `mitigation`
//! crate's corrector instead of the device model's ground truth.

use crate::readout::ReadoutError;

/// Fits per-qubit readout errors from calibration counts.
///
/// `zeros[q]` is `(misreads, shots)` for qubit `q` when preparing `|0…0⟩`
/// (a misread is reading 1); `ones[q]` the same when preparing `|1…1⟩`
/// (a misread is reading 0). The estimates are the plain maximum-likelihood
/// frequencies, clamped into the representable `[0, 0.5]` range.
///
/// # Panics
///
/// Panics if the slices have different lengths or any shot count is zero.
///
/// # Examples
///
/// ```
/// use qnoise::fit_readout_errors;
///
/// // Qubit 0: 20/1000 flips from 0, 50/1000 flips from 1.
/// let errs = fit_readout_errors(&[(20, 1000)], &[(50, 1000)]);
/// assert!((errs[0].p10() - 0.02).abs() < 1e-12);
/// assert!((errs[0].p01() - 0.05).abs() < 1e-12);
/// ```
pub fn fit_readout_errors(zeros: &[(u64, u64)], ones: &[(u64, u64)]) -> Vec<ReadoutError> {
    assert_eq!(
        zeros.len(),
        ones.len(),
        "calibration count lists must cover the same qubits"
    );
    zeros
        .iter()
        .zip(ones)
        .map(|(&(m0, s0), &(m1, s1))| {
            assert!(s0 > 0 && s1 > 0, "calibration needs at least one shot");
            let p10 = (m0 as f64 / s0 as f64).min(0.5);
            let p01 = (m1 as f64 / s1 as f64).min(0.5);
            ReadoutError::new(p10, p01)
        })
        .collect()
}

/// Simulates the two standard calibration experiments against a device
/// model and fits the errors back — the full software loop a hardware
/// run would perform. `measured` qubits are read out simultaneously, so
/// the fit *includes* the crosstalk at that simultaneity level.
///
/// # Panics
///
/// Panics if `shots == 0` or `measured` is empty or out of range.
pub fn calibrate_device<R: rand::Rng + ?Sized>(
    device: &crate::DeviceModel,
    measured: &[usize],
    shots: u64,
    rng: &mut R,
) -> Vec<ReadoutError> {
    assert!(shots > 0, "calibration needs at least one shot");
    assert!(!measured.is_empty(), "no qubits to calibrate");
    let m = measured.len();
    let mut zeros = Vec::with_capacity(m);
    let mut ones = Vec::with_capacity(m);
    for &q in measured {
        assert!(q < device.num_qubits(), "qubit {q} out of range");
        let e = device.effective_readout(q, m);
        let mut m0 = 0u64;
        let mut m1 = 0u64;
        for _ in 0..shots {
            if e.flip_bit(false, rng) {
                m0 += 1;
            }
            if !e.flip_bit(true, rng) {
                m1 += 1;
            }
        }
        zeros.push((m0, shots));
        ones.push((m1, shots));
    }
    fit_readout_errors(&zeros, &ones)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CrosstalkModel, DeviceModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_frequencies_round_trip() {
        let errs = fit_readout_errors(&[(0, 100), (10, 100)], &[(5, 100), (0, 100)]);
        assert_eq!(errs[0], ReadoutError::new(0.0, 0.05));
        assert_eq!(errs[1], ReadoutError::new(0.1, 0.0));
    }

    #[test]
    fn estimates_clamp_to_half() {
        let errs = fit_readout_errors(&[(90, 100)], &[(0, 100)]);
        assert_eq!(errs[0].p10(), 0.5);
    }

    #[test]
    fn simulated_calibration_recovers_true_rates() {
        let dev = DeviceModel::new(
            "cal",
            vec![ReadoutError::new(0.03, 0.06); 3],
            CrosstalkModel::new(0.2),
            0.0,
        );
        let mut rng = StdRng::seed_from_u64(5);
        let fitted = calibrate_device(&dev, &[0, 1, 2], 50_000, &mut rng);
        for f in &fitted {
            // True rates at simultaneity 3: 0.03·1.4 = 0.042, 0.06·1.4 = 0.084.
            assert!((f.p10() - 0.042).abs() < 0.005, "{f}");
            assert!((f.p01() - 0.084).abs() < 0.005, "{f}");
        }
    }

    #[test]
    fn calibration_feeds_mbm_style_correction() {
        // Fit on few shots, then check the fit is close enough in TVD
        // terms to be useful.
        let dev = DeviceModel::mumbai_like();
        let mut rng = StdRng::seed_from_u64(9);
        let fitted = calibrate_device(&dev, &[0, 1], 4096, &mut rng);
        for (j, &q) in [0usize, 1].iter().enumerate() {
            let truth = dev.effective_readout(q, 2);
            assert!((fitted[j].p10() - truth.p10()).abs() < 0.02);
            assert!((fitted[j].p01() - truth.p01()).abs() < 0.02);
        }
    }

    #[test]
    #[should_panic(expected = "same qubits")]
    fn mismatched_lengths_panic() {
        fit_readout_errors(&[(0, 1)], &[]);
    }

    #[test]
    #[should_panic(expected = "at least one shot")]
    fn zero_shots_panic() {
        fit_readout_errors(&[(0, 0)], &[(0, 1)]);
    }
}
