//! Applying noise channels to outcome distributions.
//!
//! The executor simulates noise *exactly* at the distribution level: the
//! ideal outcome distribution is pushed through the per-qubit readout
//! confusion matrices (a tensor-product stochastic map, applied axis by
//! axis in `O(k·2ᵏ)`) and an optional depolarizing mixture, and only then
//! sampled. This is statistically identical to flipping bits shot by shot
//! but much cheaper at VQE shot counts.

use crate::readout::ReadoutError;

/// Applies per-qubit readout confusion matrices to a distribution in place.
///
/// `probs` is a distribution over `2^errors.len()` outcomes; bit `j` of the
/// outcome index corresponds to `errors[j]`.
///
/// # Panics
///
/// Panics if `probs.len() != 2^errors.len()`.
///
/// # Examples
///
/// ```
/// use qnoise::{apply_readout_errors, ReadoutError};
///
/// // True outcome is always 0; a 10% 0→1 flip moves 10% of the mass.
/// let mut p = vec![1.0, 0.0];
/// apply_readout_errors(&mut p, &[ReadoutError::new(0.1, 0.0)]);
/// assert!((p[0] - 0.9).abs() < 1e-12 && (p[1] - 0.1).abs() < 1e-12);
/// ```
pub fn apply_readout_errors(probs: &mut [f64], errors: &[ReadoutError]) {
    assert_eq!(
        probs.len(),
        1usize << errors.len(),
        "distribution over {} outcomes does not match {} qubits",
        probs.len(),
        errors.len()
    );
    let _span = telemetry::span(telemetry::Stage::NoiseSampling);
    for (j, e) in errors.iter().enumerate() {
        if *e == ReadoutError::NONE {
            continue;
        }
        let m = e.confusion();
        let mask = 1usize << j;
        for x in 0..probs.len() {
            if x & mask == 0 {
                let y = x | mask;
                let p0 = probs[x];
                let p1 = probs[y];
                probs[x] = m[0][0] * p0 + m[0][1] * p1;
                probs[y] = m[1][0] * p0 + m[1][1] * p1;
            }
        }
    }
}

/// Mixes a distribution with the uniform distribution in place:
/// `p ← (1−λ)·p + λ/N`.
///
/// This is the aggregate stand-in for gate/decoherence noise: a circuit-level
/// depolarizing channel commutes with measurement and leaves the relative
/// structure of the distribution intact, which is all the VarSaw pipeline is
/// sensitive to.
///
/// # Panics
///
/// Panics if `lambda` is outside `[0, 1]` or `probs` is empty.
pub fn apply_depolarizing(probs: &mut [f64], lambda: f64) {
    assert!(
        (0.0..=1.0).contains(&lambda),
        "depolarizing rate must lie in [0, 1]"
    );
    assert!(!probs.is_empty(), "empty distribution");
    if lambda == 0.0 {
        return;
    }
    let _span = telemetry::span(telemetry::Stage::NoiseSampling);
    let uniform = lambda / probs.len() as f64;
    for p in probs.iter_mut() {
        *p = (1.0 - lambda) * *p + uniform;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readout_preserves_total_mass() {
        let mut p = vec![0.4, 0.1, 0.3, 0.2];
        apply_readout_errors(
            &mut p,
            &[ReadoutError::new(0.05, 0.1), ReadoutError::new(0.02, 0.04)],
        );
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn noiseless_errors_are_identity() {
        let mut p = vec![0.25, 0.75];
        let orig = p.clone();
        apply_readout_errors(&mut p, &[ReadoutError::NONE]);
        assert_eq!(p, orig);
    }

    #[test]
    fn symmetric_half_noise_erases_information() {
        let mut p = vec![1.0, 0.0];
        apply_readout_errors(&mut p, &[ReadoutError::symmetric(0.5)]);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn two_qubit_confusion_factorizes() {
        // Independent errors on two qubits: P(read 11 | true 00) = p10_a · p10_b.
        let mut p = vec![1.0, 0.0, 0.0, 0.0];
        apply_readout_errors(
            &mut p,
            &[ReadoutError::new(0.1, 0.0), ReadoutError::new(0.2, 0.0)],
        );
        assert!((p[0b00] - 0.9 * 0.8).abs() < 1e-12);
        assert!((p[0b01] - 0.1 * 0.8).abs() < 1e-12);
        assert!((p[0b10] - 0.9 * 0.2).abs() < 1e-12);
        assert!((p[0b11] - 0.1 * 0.2).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_mixes_toward_uniform() {
        let mut p = vec![1.0, 0.0, 0.0, 0.0];
        apply_depolarizing(&mut p, 0.4);
        assert!((p[0] - 0.7).abs() < 1e-12);
        assert!((p[1] - 0.1).abs() < 1e-12);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_depolarizing_is_uniform() {
        let mut p = vec![0.9, 0.1, 0.0, 0.0];
        apply_depolarizing(&mut p, 1.0);
        assert!(p.iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn size_mismatch_panics() {
        apply_readout_errors(&mut [0.5, 0.5], &[ReadoutError::NONE, ReadoutError::NONE]);
    }
}
