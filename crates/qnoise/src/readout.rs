//! Per-qubit readout (measurement) errors.

use std::fmt;

/// An asymmetric classical bit-flip channel modelling one qubit's readout.
///
/// Measurement errors manifest as bit flips (Section 2.2 of the paper):
/// `p10` is the probability of reading 1 when the true outcome is 0, and
/// `p01` of reading 0 when the true outcome is 1. On superconducting
/// hardware `p01 > p10` is typical (relaxation during the long readout
/// pulse).
///
/// # Examples
///
/// ```
/// use qnoise::ReadoutError;
///
/// let e = ReadoutError::new(0.02, 0.05);
/// assert_eq!(e.average(), 0.035);
/// let worse = e.scaled(2.0);
/// assert_eq!(worse.p10(), 0.04);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReadoutError {
    p10: f64,
    p01: f64,
}

impl ReadoutError {
    /// A perfect readout (no error).
    pub const NONE: ReadoutError = ReadoutError { p10: 0.0, p01: 0.0 };

    /// Creates a readout error from its two flip probabilities.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 0.5]` — beyond 0.5 the
    /// "error" would carry more information than the signal.
    pub fn new(p10: f64, p01: f64) -> Self {
        assert!(
            (0.0..=0.5).contains(&p10) && (0.0..=0.5).contains(&p01),
            "flip probabilities must lie in [0, 0.5], got p10={p10}, p01={p01}"
        );
        ReadoutError { p10, p01 }
    }

    /// A symmetric readout error with both flips equal to `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 0.5]`.
    pub fn symmetric(p: f64) -> Self {
        Self::new(p, p)
    }

    /// P(read 1 | prepared 0).
    pub fn p10(&self) -> f64 {
        self.p10
    }

    /// P(read 0 | prepared 1).
    pub fn p01(&self) -> f64 {
        self.p01
    }

    /// The average flip probability.
    pub fn average(&self) -> f64 {
        0.5 * (self.p10 + self.p01)
    }

    /// Scales both flip probabilities by `factor`, saturating at 0.5.
    ///
    /// Used both for measurement-crosstalk amplification and for the
    /// noise-scale sweep of the paper's Appendix B.
    pub fn scaled(&self, factor: f64) -> ReadoutError {
        assert!(factor >= 0.0, "scale factor must be nonnegative");
        ReadoutError {
            p10: (self.p10 * factor).min(0.5),
            p01: (self.p01 * factor).min(0.5),
        }
    }

    /// The column-stochastic 2×2 confusion matrix
    /// `[[P(0|0), P(0|1)], [P(1|0), P(1|1)]]`.
    pub fn confusion(&self) -> [[f64; 2]; 2] {
        [[1.0 - self.p10, self.p01], [self.p10, 1.0 - self.p01]]
    }

    /// Applies the channel to one sampled bit.
    pub fn flip_bit<R: rand::Rng + ?Sized>(&self, bit: bool, rng: &mut R) -> bool {
        let p = if bit { self.p01 } else { self.p10 };
        if rng.random::<f64>() < p {
            !bit
        } else {
            bit
        }
    }
}

impl fmt::Display for ReadoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "readout(p10={:.4}, p01={:.4})", self.p10, self.p01)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn confusion_columns_are_stochastic() {
        let e = ReadoutError::new(0.03, 0.07);
        let m = e.confusion();
        assert!((m[0][0] + m[1][0] - 1.0).abs() < 1e-15);
        assert!((m[0][1] + m[1][1] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn scaling_saturates() {
        let e = ReadoutError::new(0.3, 0.4).scaled(5.0);
        assert_eq!(e.p10(), 0.5);
        assert_eq!(e.p01(), 0.5);
    }

    #[test]
    fn scaling_by_zero_removes_error() {
        assert_eq!(ReadoutError::new(0.1, 0.2).scaled(0.0), ReadoutError::NONE);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 0.5]")]
    fn rejects_out_of_range() {
        ReadoutError::new(0.6, 0.1);
    }

    #[test]
    fn flip_statistics_match_probabilities() {
        let e = ReadoutError::new(0.2, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let flips = (0..10_000).filter(|_| e.flip_bit(false, &mut rng)).count();
        let rate = flips as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "rate {rate}");
        // A true 1 never flips with p01 = 0.
        assert!(e.flip_bit(true, &mut rng));
    }

    #[test]
    fn symmetric_constructor() {
        let e = ReadoutError::symmetric(0.04);
        assert_eq!(e.p10(), e.p01());
        assert_eq!(e.average(), 0.04);
    }
}
