//! Measurement-noise substrate for the VarSaw reproduction.
//!
//! Stands in for the IBM device noise models (IBMQ Mumbai, Lagos, Jakarta)
//! the paper evaluates on. The focus is measurement error — the error class
//! VarSaw targets — modelled as per-qubit asymmetric readout bit flips
//! ([`ReadoutError`]) amplified by measurement crosstalk
//! ([`CrosstalkModel`]), with an optional circuit-level depolarizing channel
//! standing in for the remaining noise. [`DeviceModel`] bundles these with
//! best-qubit selection (subset circuits map onto the best-readout qubits,
//! as in JigSaw), and [`apply_readout_errors`] pushes distributions through
//! the exact confusion channel.
//!
//! # Example
//!
//! ```
//! use qnoise::{apply_readout_errors, DeviceModel};
//!
//! let dev = DeviceModel::mumbai_like();
//! // Measure 2 qubits on the best hardware sites, crosstalk included.
//! let phys = dev.best_qubits(2);
//! let errs: Vec<_> = phys.iter().map(|&q| dev.effective_readout(q, 2)).collect();
//! let mut probs = vec![1.0, 0.0, 0.0, 0.0];
//! apply_readout_errors(&mut probs, &errs);
//! assert!(probs[0] > 0.9); // small error on the best qubits
//! ```

mod calibration;
mod channel;
mod crosstalk;
mod device;
mod readout;

pub use calibration::{calibrate_device, fit_readout_errors};
pub use channel::{apply_depolarizing, apply_readout_errors};
pub use crosstalk::CrosstalkModel;
pub use device::DeviceModel;
pub use readout::ReadoutError;
