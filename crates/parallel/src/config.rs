//! Process-wide execution configuration, read from the environment once.
//!
//! Eight knobs control how the workspace's engines spread work, recover
//! from failures, and report on themselves:
//!
//! - [`NUM_THREADS_ENV`] (`VARSAW_NUM_THREADS`): the worker-thread count
//!   behind [`crate::num_threads`], shared by the statevector engine, the
//!   reconstruction engine and [`crate::parallel_map`];
//! - [`NUM_SHARDS_ENV`] (`VARSAW_NUM_SHARDS`): an override for the
//!   amplitude-plane shard count behind [`crate::num_shards`], consulted
//!   by `qsim::shard`'s auto-sizing heuristic;
//! - [`SCHED_WORKERS_ENV`] (`VARSAW_SCHED_WORKERS`): an override for the
//!   job-scheduler worker count behind [`crate::sched_workers`], consulted
//!   by `sched::JobQueue` when no explicit worker count is passed;
//! - [`SHARD_TRANSPORT_ENV`] (`VARSAW_SHARD_TRANSPORT`): the shard
//!   transport backend behind [`crate::shard_transport`], consulted by
//!   `qsim::transport` when a sharded state is built (`local` keeps the
//!   zero-copy in-process backend, `channel` routes exchanges through
//!   message-passing rank threads);
//! - [`JOB_RETRIES_ENV`] (`VARSAW_JOB_RETRIES`): the default retry budget
//!   behind [`crate::job_retries`], consulted by `sched::JobQueue` when no
//!   explicit retry policy is set — how many times a job whose transport
//!   session failed is re-dispatched before its error is surfaced;
//! - [`JOB_DEADLINE_MS_ENV`] (`VARSAW_JOB_DEADLINE_MS`): the default
//!   per-job deadline behind [`crate::job_deadline_ms`], consulted by
//!   `sched::JobQueue` when no explicit deadline is set;
//! - [`TELEMETRY_ENV`] (`VARSAW_TELEMETRY`): the runtime default of the
//!   stage-telemetry switch behind [`crate::telemetry_default`] — only
//!   observable in builds with the `telemetry` feature, where `0`/`off`
//!   keeps an instrumented binary from recording;
//! - [`BENCH_HISTORY_WINDOW_ENV`] (`VARSAW_BENCH_HISTORY_WINDOW`): the
//!   rolling-window length behind [`crate::bench_history_window`] that
//!   `bench_diff --trend` keeps in `BENCH_HISTORY.jsonl` and judges new
//!   runs against.
//!
//! Earlier revisions re-parsed `VARSAW_NUM_THREADS` at every call site,
//! which both repeated the work on hot paths and silently swallowed
//! typos (`VARSAW_NUM_THREADS=fast` fell back to the hardware default
//! with no indication anything was wrong). [`get`] now reads the
//! environment **once per process**, caches the resolved [`Config`], and
//! reports every rejected or adjusted value on stderr — later changes to
//! the environment variables have no effect.
//!
//! # Examples
//!
//! ```
//! std::env::set_var(parallel::NUM_THREADS_ENV, "3");
//! std::env::set_var(parallel::NUM_SHARDS_ENV, "4");
//! let config = parallel::config::get();
//! assert_eq!(config.threads, 3);
//! assert_eq!(config.shards, Some(4));
//! // Read once: later environment changes are not observed.
//! std::env::remove_var(parallel::NUM_THREADS_ENV);
//! assert_eq!(parallel::num_threads(), 3);
//! ```

use std::sync::OnceLock;

/// Environment variable overriding the default worker count.
pub const NUM_THREADS_ENV: &str = "VARSAW_NUM_THREADS";

/// Environment variable overriding the automatic amplitude-plane shard
/// count (see `qsim::shard`). Values are rounded down to a power of two,
/// the granularity the shard decomposition supports.
pub const NUM_SHARDS_ENV: &str = "VARSAW_NUM_SHARDS";

/// Environment variable overriding the job-scheduler worker count (the
/// threads `sched::JobQueue` drains with when the caller does not pass an
/// explicit count). Unset means "follow [`NUM_THREADS_ENV`]".
pub const SCHED_WORKERS_ENV: &str = "VARSAW_SCHED_WORKERS";

/// Environment variable selecting the shard-transport backend sharded
/// execution moves amplitudes with (see `qsim::transport`). Valid values
/// are the names in [`SHARD_TRANSPORT_NAMES`]; anything else is reported
/// on stderr with the valid set and treated as unset (engines then use
/// their in-process default).
pub const SHARD_TRANSPORT_ENV: &str = "VARSAW_SHARD_TRANSPORT";

/// The valid [`SHARD_TRANSPORT_ENV`] values, for error messages and docs.
pub const SHARD_TRANSPORT_NAMES: [&str; 2] = ["local", "channel"];

/// Environment variable setting the default per-job retry budget the job
/// scheduler recovers transport failures with (see `sched::JobQueue`):
/// how many *additional* dispatch attempts a job whose shard-transport
/// session failed receives before its typed error is surfaced. Unset
/// means no retries; capped at [`MAX_JOB_RETRIES`].
pub const JOB_RETRIES_ENV: &str = "VARSAW_JOB_RETRIES";

/// Environment variable setting the default per-job deadline, in
/// milliseconds, the job scheduler enforces at session boundaries (see
/// `sched::JobQueue`). Unset means no deadline.
pub const JOB_DEADLINE_MS_ENV: &str = "VARSAW_JOB_DEADLINE_MS";

/// Hard upper bound on [`JOB_RETRIES_ENV`] (sanity cap for typos; a
/// retry ladder deeper than this only replays the same deterministic
/// failure).
pub const MAX_JOB_RETRIES: u32 = 16;

/// Environment variable setting the runtime default of the stage
/// telemetry switch (see the `telemetry` crate). Accepted values are the
/// usual boolean spellings (`1`/`0`, `true`/`false`, `on`/`off`,
/// `yes`/`no`, case-insensitive); anything else is reported on stderr and
/// treated as unset. Only instrumented builds (the `telemetry` feature)
/// observe it — uninstrumented binaries have nothing to switch.
pub const TELEMETRY_ENV: &str = "VARSAW_TELEMETRY";

/// Environment variable bounding the rolling window of runs kept in
/// `BENCH_HISTORY.jsonl` and judged by `bench_diff --trend`. Zero and
/// non-numbers are rejected with a warning; values above
/// [`MAX_BENCH_HISTORY_WINDOW`] are capped. Unset means
/// [`DEFAULT_BENCH_HISTORY_WINDOW`].
pub const BENCH_HISTORY_WINDOW_ENV: &str = "VARSAW_BENCH_HISTORY_WINDOW";

/// Default [`BENCH_HISTORY_WINDOW_ENV`]: enough depth for a stable
/// median ± MAD band without letting months-old hardware drift vote.
pub const DEFAULT_BENCH_HISTORY_WINDOW: usize = 20;

/// Hard upper bound on [`BENCH_HISTORY_WINDOW_ENV`] (sanity cap: the
/// trend gate reads every kept line on each run).
pub const MAX_BENCH_HISTORY_WINDOW: usize = 500;

/// A validated [`SHARD_TRANSPORT_ENV`] value. The `parallel` crate only
/// names the backends; `qsim::transport` owns their semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardTransport {
    /// In-process handle swaps and shared-memory pairwise walks.
    Local,
    /// Rank threads exchanging serialized amplitude words over channels.
    Channel,
}

/// Hard upper bound on the worker count (sanity cap for typos in the
/// environment variable).
pub const MAX_THREADS: usize = 64;

/// Hard upper bound on the shard-count override (sanity cap for typos).
pub const MAX_SHARDS: usize = 1 << 12;

/// The resolved execution configuration of this process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Config {
    /// Worker threads parallel code should use (≥ 1); from
    /// [`NUM_THREADS_ENV`], defaulting to the hardware parallelism.
    pub threads: usize,
    /// Amplitude-plane shard-count override (a power of two), or `None`
    /// to let engines size shards automatically; from [`NUM_SHARDS_ENV`].
    pub shards: Option<usize>,
    /// Job-scheduler worker-count override, or `None` to follow
    /// [`Config::threads`]; from [`SCHED_WORKERS_ENV`].
    pub sched_workers: Option<usize>,
    /// Shard-transport backend override, or `None` to let engines use
    /// their in-process default; from [`SHARD_TRANSPORT_ENV`].
    pub shard_transport: Option<ShardTransport>,
    /// Default per-job retry budget for transport failures, or `None` for
    /// no retries; from [`JOB_RETRIES_ENV`], capped at [`MAX_JOB_RETRIES`].
    pub job_retries: Option<u32>,
    /// Default per-job deadline in milliseconds, or `None` for no
    /// deadline; from [`JOB_DEADLINE_MS_ENV`].
    pub job_deadline_ms: Option<u64>,
    /// Runtime default of the stage-telemetry switch, or `None` to let
    /// instrumented builds default to recording; from [`TELEMETRY_ENV`].
    pub telemetry: Option<bool>,
    /// Rolling bench-history window override, or `None` for
    /// [`DEFAULT_BENCH_HISTORY_WINDOW`]; from [`BENCH_HISTORY_WINDOW_ENV`].
    pub bench_history_window: Option<usize>,
}

impl Config {
    /// Resolves a configuration from raw environment values, returning it
    /// together with the warnings any invalid or adjusted value produced.
    /// Pure (no environment access), so rejection behavior is unit-testable.
    fn resolve(
        threads_raw: Option<&str>,
        shards_raw: Option<&str>,
        sched_raw: Option<&str>,
        transport_raw: Option<&str>,
        retries_raw: Option<&str>,
        deadline_raw: Option<&str>,
        telemetry_raw: Option<&str>,
        history_window_raw: Option<&str>,
        default_threads: usize,
    ) -> (Config, Vec<String>) {
        let mut warnings = Vec::new();

        let threads = match parse_count(NUM_THREADS_ENV, threads_raw, &mut warnings) {
            Some(n) if n > MAX_THREADS => {
                warnings.push(format!(
                    "{NUM_THREADS_ENV}={n} exceeds the cap of {MAX_THREADS}; using {MAX_THREADS}"
                ));
                MAX_THREADS
            }
            Some(n) => n,
            None => default_threads.clamp(1, MAX_THREADS),
        };

        let shards = match parse_count(NUM_SHARDS_ENV, shards_raw, &mut warnings) {
            Some(n) if n > MAX_SHARDS => {
                warnings.push(format!(
                    "{NUM_SHARDS_ENV}={n} exceeds the cap of {MAX_SHARDS}; using {MAX_SHARDS}"
                ));
                Some(MAX_SHARDS)
            }
            Some(n) if !n.is_power_of_two() => {
                // Largest power of two <= n (n >= 1 here).
                let rounded = 1usize << (usize::BITS - 1 - n.leading_zeros());
                warnings.push(format!(
                    "{NUM_SHARDS_ENV}={n} is not a power of two; using {rounded}"
                ));
                Some(rounded)
            }
            Some(n) => Some(n),
            None => None,
        };

        let sched_workers = match parse_count(SCHED_WORKERS_ENV, sched_raw, &mut warnings) {
            Some(n) if n > MAX_THREADS => {
                warnings.push(format!(
                    "{SCHED_WORKERS_ENV}={n} exceeds the cap of {MAX_THREADS}; using {MAX_THREADS}"
                ));
                Some(MAX_THREADS)
            }
            other => other,
        };

        let shard_transport = parse_transport(transport_raw, &mut warnings);

        // Unlike the count knobs, 0 is a legitimate retry budget (run
        // once, never retry — the unset default), so retries get their
        // own parse instead of `parse_count`.
        let job_retries = match retries_raw.map(str::trim).filter(|s| !s.is_empty()) {
            None => None,
            Some(raw) => match raw.parse::<u32>() {
                Ok(n) if n > MAX_JOB_RETRIES => {
                    warnings.push(format!(
                        "{JOB_RETRIES_ENV}={n} exceeds the cap of {MAX_JOB_RETRIES}; \
                         using {MAX_JOB_RETRIES}"
                    ));
                    Some(MAX_JOB_RETRIES)
                }
                Ok(n) => Some(n),
                Err(_) => {
                    warnings.push(format!(
                        "{JOB_RETRIES_ENV}={raw:?} is not a number; using the default"
                    ));
                    None
                }
            },
        };

        let job_deadline_ms =
            parse_count(JOB_DEADLINE_MS_ENV, deadline_raw, &mut warnings).map(|n| n as u64);

        let telemetry = parse_bool(TELEMETRY_ENV, telemetry_raw, &mut warnings);

        let bench_history_window =
            match parse_count(BENCH_HISTORY_WINDOW_ENV, history_window_raw, &mut warnings) {
                Some(n) if n > MAX_BENCH_HISTORY_WINDOW => {
                    warnings.push(format!(
                        "{BENCH_HISTORY_WINDOW_ENV}={n} exceeds the cap of \
                         {MAX_BENCH_HISTORY_WINDOW}; using {MAX_BENCH_HISTORY_WINDOW}"
                    ));
                    Some(MAX_BENCH_HISTORY_WINDOW)
                }
                other => other,
            };

        (
            Config {
                threads,
                shards,
                sched_workers,
                shard_transport,
                job_retries,
                job_deadline_ms,
                telemetry,
                bench_history_window,
            },
            warnings,
        )
    }
}

/// Prints `message` to stderr at most once per process per distinct
/// message — the single funnel for the workspace's warning paths
/// (invalid environment knobs, transport-degradation notices), so
/// repeated triggers (every retry of a chaos run, every re-resolve in a
/// test) cannot spam stderr.
///
/// Returns `true` when the message was printed (first sighting), `false`
/// when it was suppressed as a duplicate — callers normally ignore the
/// result; tests use it to observe the dedup.
pub fn warn_once(message: &str) -> bool {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static SEEN: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());
    let fresh = SEEN
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(message.to_string());
    if fresh {
        eprintln!("{message}");
    }
    fresh
}

/// Parses [`SHARD_TRANSPORT_ENV`]. `None`/empty means "not set" (no
/// warning); an unknown name produces a warning listing the valid set
/// and counts as unset, so engines fall back to their `local` default.
fn parse_transport(raw: Option<&str>, warnings: &mut Vec<String>) -> Option<ShardTransport> {
    let raw = raw?.trim();
    if raw.is_empty() {
        return None;
    }
    match raw.to_ascii_lowercase().as_str() {
        "local" => Some(ShardTransport::Local),
        "channel" => Some(ShardTransport::Channel),
        _ => {
            warnings.push(format!(
                "{SHARD_TRANSPORT_ENV}={raw:?} is not a known transport \
                 (valid: {SHARD_TRANSPORT_NAMES:?}); using \"local\""
            ));
            None
        }
    }
}

/// Parses one boolean variable. `None`/empty means "not set" (no
/// warning); the usual boolean spellings parse case-insensitively, and
/// anything else produces a warning and counts as unset.
fn parse_bool(name: &str, raw: Option<&str>, warnings: &mut Vec<String>) -> Option<bool> {
    let raw = raw?.trim();
    if raw.is_empty() {
        return None;
    }
    match raw.to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => {
            warnings.push(format!(
                "{name}={raw:?} is not a boolean (use 1/0, true/false, on/off); \
                 using the default"
            ));
            None
        }
    }
}

/// Parses one count variable. `None`/empty means "not set" (no warning);
/// unparsable or zero values produce a warning and count as unset.
fn parse_count(name: &str, raw: Option<&str>, warnings: &mut Vec<String>) -> Option<usize> {
    let raw = raw?.trim();
    if raw.is_empty() {
        return None;
    }
    match raw.parse::<usize>() {
        Ok(0) => {
            warnings.push(format!("{name}=0 is not a valid count; using the default"));
            None
        }
        Ok(n) => Some(n),
        Err(_) => {
            warnings.push(format!("{name}={raw:?} is not a number; using the default"));
            None
        }
    }
}

/// The process-wide configuration, reading the environment on first call
/// and caching the result (see the [module docs](self)).
pub fn get() -> &'static Config {
    static CONFIG: OnceLock<Config> = OnceLock::new();
    CONFIG.get_or_init(|| {
        let threads_raw = std::env::var(NUM_THREADS_ENV).ok();
        let shards_raw = std::env::var(NUM_SHARDS_ENV).ok();
        let sched_raw = std::env::var(SCHED_WORKERS_ENV).ok();
        let transport_raw = std::env::var(SHARD_TRANSPORT_ENV).ok();
        let retries_raw = std::env::var(JOB_RETRIES_ENV).ok();
        let deadline_raw = std::env::var(JOB_DEADLINE_MS_ENV).ok();
        let telemetry_raw = std::env::var(TELEMETRY_ENV).ok();
        let history_window_raw = std::env::var(BENCH_HISTORY_WINDOW_ENV).ok();
        let default_threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let (config, warnings) = Config::resolve(
            threads_raw.as_deref(),
            shards_raw.as_deref(),
            sched_raw.as_deref(),
            transport_raw.as_deref(),
            retries_raw.as_deref(),
            deadline_raw.as_deref(),
            telemetry_raw.as_deref(),
            history_window_raw.as_deref(),
            default_threads,
        );
        for w in &warnings {
            warn_once(&format!("parallel: {w}"));
        }
        config
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolve(threads: Option<&str>, shards: Option<&str>) -> (Config, Vec<String>) {
        resolve_all(threads, shards, None, None, None, None, 4)
    }

    /// The pre-telemetry positional form most tests use; the two new
    /// knobs stay unset.
    #[allow(clippy::too_many_arguments)]
    fn resolve_all(
        threads: Option<&str>,
        shards: Option<&str>,
        sched: Option<&str>,
        transport: Option<&str>,
        retries: Option<&str>,
        deadline: Option<&str>,
        default_threads: usize,
    ) -> (Config, Vec<String>) {
        Config::resolve(
            threads,
            shards,
            sched,
            transport,
            retries,
            deadline,
            None,
            None,
            default_threads,
        )
    }

    fn defaults() -> Config {
        Config {
            threads: 4,
            shards: None,
            sched_workers: None,
            shard_transport: None,
            job_retries: None,
            job_deadline_ms: None,
            telemetry: None,
            bench_history_window: None,
        }
    }

    #[test]
    fn unset_values_use_defaults_without_warnings() {
        let (c, w) = resolve(None, None);
        assert_eq!(c, defaults());
        assert!(w.is_empty());
    }

    #[test]
    fn empty_values_count_as_unset() {
        let (c, w) = resolve(Some(""), Some("  "));
        assert_eq!(c, defaults());
        assert!(w.is_empty());
    }

    #[test]
    fn valid_values_are_used_verbatim() {
        let (c, w) = resolve(Some("3"), Some("8"));
        assert_eq!(
            c,
            Config {
                threads: 3,
                shards: Some(8),
                ..defaults()
            }
        );
        assert!(w.is_empty());
    }

    #[test]
    fn invalid_values_are_reported_not_silently_defaulted() {
        let (c, w) = resolve(Some("fast"), Some("many"));
        assert_eq!(c, defaults());
        assert_eq!(w.len(), 2, "one warning per rejected variable: {w:?}");
        assert!(w[0].contains(NUM_THREADS_ENV), "{w:?}");
        assert!(w[1].contains(NUM_SHARDS_ENV), "{w:?}");
    }

    #[test]
    fn zero_is_rejected_with_a_warning() {
        let (c, w) = resolve(Some("0"), Some("0"));
        assert_eq!(c, defaults());
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn excessive_values_are_capped_with_a_warning() {
        let (c, w) = resolve(Some("9999"), Some("99999"));
        assert_eq!(c.threads, MAX_THREADS);
        assert_eq!(c.shards, Some(MAX_SHARDS));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn shard_counts_round_down_to_a_power_of_two() {
        let (c, w) = resolve(None, Some("6"));
        assert_eq!(c.shards, Some(4));
        assert_eq!(w.len(), 1);
        assert!(w[0].contains("power of two"), "{w:?}");
    }

    #[test]
    fn default_threads_are_clamped_to_the_cap() {
        let (c, _) = resolve_all(None, None, None, None, None, None, 1000);
        assert_eq!(c.threads, MAX_THREADS);
        let (c, _) = resolve_all(None, None, None, None, None, None, 0);
        assert_eq!(c.threads, 1);
    }

    #[test]
    fn sched_workers_parse_and_cap() {
        let (c, w) = resolve_all(None, None, Some("3"), None, None, None, 4);
        assert_eq!(c.sched_workers, Some(3));
        assert!(w.is_empty());
        let (c, w) = resolve_all(None, None, Some("9999"), None, None, None, 4);
        assert_eq!(c.sched_workers, Some(MAX_THREADS));
        assert_eq!(w.len(), 1);
        assert!(w[0].contains(SCHED_WORKERS_ENV), "{w:?}");
        let (c, w) = resolve_all(None, None, Some("zero"), None, None, None, 4);
        assert_eq!(c.sched_workers, None);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn job_retries_accept_zero_and_cap() {
        // 0 is a real value (run once, never retry), not a typo.
        let (c, w) = resolve_all(None, None, None, None, Some("0"), None, 4);
        assert_eq!(c.job_retries, Some(0));
        assert!(w.is_empty(), "{w:?}");
        let (c, w) = resolve_all(None, None, None, None, Some("3"), None, 4);
        assert_eq!(c.job_retries, Some(3));
        assert!(w.is_empty());
        let (c, w) = resolve_all(None, None, None, None, Some("999"), None, 4);
        assert_eq!(c.job_retries, Some(MAX_JOB_RETRIES));
        assert_eq!(w.len(), 1);
        assert!(w[0].contains(JOB_RETRIES_ENV), "{w:?}");
        let (c, w) = resolve_all(None, None, None, None, Some("lots"), None, 4);
        assert_eq!(c.job_retries, None);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn job_deadlines_parse_and_reject_zero() {
        let (c, w) = resolve_all(None, None, None, None, None, Some("2500"), 4);
        assert_eq!(c.job_deadline_ms, Some(2500));
        assert!(w.is_empty());
        // A zero deadline would expire every job before dispatch; treat
        // it as the typo it almost certainly is.
        let (c, w) = resolve_all(None, None, None, None, None, Some("0"), 4);
        assert_eq!(c.job_deadline_ms, None);
        assert_eq!(w.len(), 1);
        assert!(w[0].contains(JOB_DEADLINE_MS_ENV), "{w:?}");
        let (c, w) = resolve_all(None, None, None, None, None, Some("soon"), 4);
        assert_eq!(c.job_deadline_ms, None);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn telemetry_booleans_parse_and_reject_garbage() {
        for (raw, want) in [
            ("1", Some(true)),
            ("true", Some(true)),
            ("ON", Some(true)),
            ("yes", Some(true)),
            ("0", Some(false)),
            ("False", Some(false)),
            ("off", Some(false)),
            (" no ", Some(false)),
        ] {
            let (c, w) = Config::resolve(None, None, None, None, None, None, Some(raw), None, 4);
            assert_eq!(c.telemetry, want, "raw {raw:?}");
            assert!(w.is_empty(), "raw {raw:?}: {w:?}");
        }
        let (c, w) = Config::resolve(None, None, None, None, None, None, Some("maybe"), None, 4);
        assert_eq!(c.telemetry, None);
        assert_eq!(w.len(), 1, "{w:?}");
        assert!(w[0].contains(TELEMETRY_ENV), "{w:?}");
        let (c, w) = Config::resolve(None, None, None, None, None, None, Some("  "), None, 4);
        assert_eq!(c.telemetry, None);
        assert!(w.is_empty());
    }

    #[test]
    fn bench_history_window_parses_rejects_zero_and_caps() {
        let (c, w) = Config::resolve(None, None, None, None, None, None, None, Some("7"), 4);
        assert_eq!(c.bench_history_window, Some(7));
        assert!(w.is_empty());
        let (c, w) = Config::resolve(None, None, None, None, None, None, None, Some("0"), 4);
        assert_eq!(c.bench_history_window, None);
        assert_eq!(w.len(), 1);
        assert!(w[0].contains(BENCH_HISTORY_WINDOW_ENV), "{w:?}");
        let (c, w) = Config::resolve(None, None, None, None, None, None, None, Some("99999"), 4);
        assert_eq!(c.bench_history_window, Some(MAX_BENCH_HISTORY_WINDOW));
        assert_eq!(w.len(), 1);
        let (c, w) = Config::resolve(None, None, None, None, None, None, None, Some("soon"), 4);
        assert_eq!(c.bench_history_window, None);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn warn_once_deduplicates_per_message() {
        assert!(warn_once("config-test: first unique warning"));
        assert!(!warn_once("config-test: first unique warning"));
        assert!(warn_once("config-test: second unique warning"));
        assert!(!warn_once("config-test: second unique warning"));
    }

    #[test]
    fn transport_names_parse_case_insensitively() {
        for (raw, want) in [
            ("local", ShardTransport::Local),
            ("Local", ShardTransport::Local),
            ("channel", ShardTransport::Channel),
            ("CHANNEL", ShardTransport::Channel),
            (" channel ", ShardTransport::Channel),
        ] {
            let (c, w) = resolve_all(None, None, None, Some(raw), None, None, 4);
            assert_eq!(c.shard_transport, Some(want), "raw {raw:?}");
            assert!(w.is_empty(), "raw {raw:?}: {w:?}");
        }
    }

    #[test]
    fn unknown_transport_names_warn_with_the_valid_set_and_fall_back() {
        let (c, w) = resolve_all(None, None, None, Some("sockets"), None, None, 4);
        assert_eq!(c.shard_transport, None, "unknown names fall back to unset");
        assert_eq!(w.len(), 1, "{w:?}");
        assert!(w[0].contains(SHARD_TRANSPORT_ENV), "{w:?}");
        for name in SHARD_TRANSPORT_NAMES {
            assert!(w[0].contains(name), "warning must list {name:?}: {w:?}");
        }
    }

    #[test]
    fn empty_transport_counts_as_unset() {
        let (c, w) = resolve_all(None, None, None, Some("  "), None, None, 4);
        assert_eq!(c.shard_transport, None);
        assert!(w.is_empty());
    }
}
